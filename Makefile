# Standard entry points for the singlingout reproduction.
#
#   make ci        gofmt + vet + build + tests (race on the concurrency-
#                  sensitive packages, including internal/obs/serve) + a
#                  quick instrumented repro run + the bench regression gate
#   make bench     quick instrumented repro run producing BENCH_<rev>.json
#   make benchgate benchdiff against the committed BENCH_baseline.json
#   make gobench   the root go test -bench suite with work counters
#   make repro     full-size experiment tables (what EXPERIMENTS.md archives)

GO ?= go
rev := $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)

.PHONY: ci fmt vet build test race repro-quick bench benchgate gobench repro clean

ci: fmt vet build race test benchgate

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# ./internal/obs/... covers internal/obs/serve, whose SSE/scrape handlers
# run concurrently with the instrumented experiments; ./internal/query/...
# covers query/remote (the HTTP query service + client) and ./cmd/qserver
# the served binary's concurrent request handling.
race:
	$(GO) test -race ./internal/par/... ./internal/pso/... ./internal/obs/... ./internal/query/... ./internal/census/... ./cmd/qserver/...

test:
	$(GO) test ./...

# Quick instrumented end-to-end run: every experiment, JSONL journal and
# BENCH_<rev>.json summary under /tmp.
repro-quick:
	$(GO) run ./cmd/repro -quick -metrics /tmp/singlingout-run.jsonl

# Produce a bench summary for the current revision in the repo root.
# Refresh the committed gate baseline with:
#   make bench && cp BENCH_$(rev).json BENCH_baseline.json
bench:
	$(GO) run ./cmd/repro -quick -metrics /tmp/singlingout-bench.jsonl
	cp /tmp/BENCH_$(rev).json BENCH_$(rev).json
	@echo "wrote BENCH_$(rev).json"

# Gate: fail if any quick-mode experiment regressed more than 50% in
# wall clock against the committed baseline (experiments faster than
# 0.25s in the baseline are skipped as timing noise), or if a required
# probe row (the BENCH.remote.* query-service throughput rows) vanished
# from the new summary.
benchgate: repro-quick
	$(GO) run ./cmd/benchdiff -gate 50 -min 0.25 -require BENCH.remote. BENCH_baseline.json /tmp/BENCH_$(rev).json

gobench:
	$(GO) test -bench=. -benchmem .

repro:
	$(GO) run ./cmd/repro

clean:
	rm -f /tmp/singlingout-run.jsonl /tmp/singlingout-bench.jsonl /tmp/BENCH_*.json
