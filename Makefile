# Standard entry points for the singlingout reproduction.
#
#   make ci        gofmt + lint (repolint invariants + go vet) + build +
#                  tests (race on the concurrency-sensitive packages,
#                  including internal/obs/serve) + a quick instrumented
#                  repro run + the bench regression gate
#   make lint      repolint (internal/analysis invariant suite, including
#                  the dataflow analyzers) + go vet, plus an advisory
#                  govulncheck pass when the tool exists
#   make lint-fix  apply repolint's suggested fixes in place, then re-lint
#   make bench     quick instrumented repro run producing BENCH_<rev>.json
#   make benchgate benchdiff against the committed BENCH_baseline.json
#   make loadgen-smoke  sharded in-process qserver under injected
#                  overload; requires the BENCH.qserver.* rows
#                  (throughput/latency/shards/shed) to survive
#   make gobench   the root go test -bench suite with work counters
#   make repro     full-size experiment tables (what EXPERIMENTS.md archives)

GO ?= go
rev := $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)

.PHONY: ci fmt lint lint-fix fixcheck vet build test race repro-quick bench benchgate loadgen-smoke gobench repro clean

ci: fmt lint fixcheck build race test benchgate loadgen-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Repo invariants (determinism, errors.Is on sentinels, ctx propagation,
# obs naming, bounded goroutines — see docs/INVARIANTS.md) plus go vet.
# Exits non-zero on any unsuppressed finding. govulncheck is advisory:
# it runs when installed but never fails the build (the container this
# runs in is offline and does not ship the tool).
lint:
	$(GO) run ./cmd/repolint ./...
	$(GO) vet ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck: advisory findings above (not gating)"; \
	else \
		echo "govulncheck not installed; skipping advisory vulnerability scan"; \
	fi

# Apply every machine fix repolint suggests (errors.Is rewrites, ctx
# threading), gofmt-clean, then report what remains. Idempotent: running
# it twice writes nothing the second time.
lint-fix:
	$(GO) run ./cmd/repolint -fix ./...

# CI gate: repolint -fix at HEAD must be a no-op — a tree that still has
# machine-fixable findings is a tree someone forgot to run `make lint-fix`
# on. The rewritten files are left in place (they are the desired end
# state); commit them to clear the gate.
fixcheck:
	@before="$$(git diff -- '*.go' | cksum)"; \
	$(GO) run ./cmd/repolint -fix ./... >/dev/null; \
	after="$$(git diff -- '*.go' | cksum)"; \
	if [ "$$before" != "$$after" ]; then \
		echo "repolint -fix produced a diff; review and commit it (or run 'make lint-fix'):"; \
		git diff --stat -- '*.go'; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# ./internal/obs/... covers internal/obs/serve, whose SSE/scrape handlers
# run concurrently with the instrumented experiments; ./internal/query/...
# covers query/remote (the HTTP query service + client) and ./cmd/qserver
# the served binary's concurrent request handling. ./internal/diffix/...
# and ./internal/recon/... are included because both fan attack workloads
# out through internal/par worker pools (diffix averages noisy-query
# replicates in parallel, recon runs its solver fan-out there), so their
# tests exercise the pool's sharing discipline under real load.
race:
	$(GO) test -race ./internal/par/... ./internal/pso/... ./internal/obs/... ./internal/query/... ./internal/census/... ./internal/diffix/... ./internal/recon/... ./cmd/qserver/...

test:
	$(GO) test ./...

# Quick instrumented end-to-end run: every experiment, JSONL journal and
# BENCH_<rev>.json summary under /tmp.
repro-quick:
	$(GO) run ./cmd/repro -quick -metrics /tmp/singlingout-run.jsonl

# Produce a bench summary for the current revision in the repo root.
# Refresh the committed gate baseline with:
#   make bench && cp BENCH_$(rev).json BENCH_baseline.json
bench:
	$(GO) run ./cmd/repro -quick -metrics /tmp/singlingout-bench.jsonl
	cp /tmp/BENCH_$(rev).json BENCH_$(rev).json
	@echo "wrote BENCH_$(rev).json"

# Gate: fail if any quick-mode experiment regressed more than 50% in
# wall clock against the committed baseline (experiments faster than
# 0.25s in the baseline are skipped as timing noise), or if a required
# probe row (the BENCH.remote.* query-service throughput rows, the
# BENCH.lp.* solver rows carrying lp.pivots / lp.warm_starts, and the
# BENCH.converge.* queries-to-accuracy rows, which gate on the
# converge.queries counter — lower is better — instead of wall clock)
# vanished from the new summary.
benchgate: repro-quick
	$(GO) run ./cmd/benchdiff -gate 50 -min 0.25 -require BENCH.remote.,BENCH.lp.,BENCH.converge. BENCH_baseline.json /tmp/BENCH_$(rev).json

# Load-generator smoke: a small multi-analyst Zipf workload against an
# in-process qserver, journaled into its own directory (the BENCH file is
# named by revision, so it must not collide with repro's). The gate only
# requires the BENCH.qserver.* rows to exist — sub-second latency rows sit
# below the -min floor, so wall-clock noise never fails CI here.
loadgen-smoke:
	mkdir -p /tmp/singlingout-loadgen
	$(GO) run ./cmd/loadgen -analysts 4 -requests 16 -budget 100 \
		-shards 2 -max-concurrent 1 -queue-depth -1 -inject-delay 5ms -concurrency 4 \
		-metrics /tmp/singlingout-loadgen/loadgen.jsonl
	$(GO) run ./cmd/benchdiff -gate 50 -min 0.25 -require BENCH.qserver. BENCH_loadgen_baseline.json /tmp/singlingout-loadgen/BENCH_$(rev).json

gobench:
	$(GO) test -bench=. -benchmem .

repro:
	$(GO) run ./cmd/repro

clean:
	rm -f /tmp/singlingout-run.jsonl /tmp/singlingout-bench.jsonl /tmp/BENCH_*.json
	rm -rf /tmp/singlingout-loadgen
