# Standard entry points for the singlingout reproduction.
#
#   make ci       gofmt + vet + build + tests (race on the concurrency-
#                 sensitive packages) + a quick instrumented repro run
#   make bench    the root benchmark suite with work counters
#   make repro    full-size experiment tables (what EXPERIMENTS.md archives)

GO ?= go

.PHONY: ci fmt vet build test race repro-quick bench repro clean

ci: fmt vet build race test repro-quick

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./internal/par/... ./internal/pso/... ./internal/obs/... ./internal/query/... ./internal/census/...

test:
	$(GO) test ./...

# Quick instrumented end-to-end run: every experiment, JSONL journal and
# BENCH_<rev>.json summary under /tmp.
repro-quick:
	$(GO) run ./cmd/repro -quick -metrics /tmp/singlingout-run.jsonl

bench:
	$(GO) test -bench=. -benchmem .

repro:
	$(GO) run ./cmd/repro

clean:
	rm -f /tmp/singlingout-run.jsonl
