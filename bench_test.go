package singlingout

// The root benchmark suite regenerates every experiment in DESIGN.md's
// per-experiment index (one Benchmark per table/series, plus the ablation
// benches). Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment harness and prints the measured
// table once, so the bench log doubles as the reproduction record (see
// EXPERIMENTS.md for the archived full-size numbers).

import (
	"fmt"
	"sync"
	"testing"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
)

var printOnce sync.Map

// benchExperiment runs the harness b.N times with the obs registry
// enabled and reports the per-iteration work counters (oracle queries,
// simplex pivots, SAT work) alongside ns/op, so the bench log records the
// attacks' measured complexity, not just their wall-clock.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)
	before := reg.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(1, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.StopTimer()
			fmt.Print(tab.String())
			b.StartTimer()
		}
	}
	b.StopTimer()
	delta := reg.Snapshot().Delta(before)
	perOp := func(name, unit string) {
		if v := delta.Counters[name]; v > 0 {
			b.ReportMetric(float64(v)/float64(b.N), unit)
		}
	}
	perOp("query.count", "queries/op")
	perOp("lp.pivots", "pivots/op")
	perOp("sat.conflicts", "conflicts/op")
	perOp("sat.propagations", "props/op")
}

func BenchmarkE01ExhaustiveReconstruction(b *testing.B) { benchExperiment(b, "E01") }
func BenchmarkE02LPReconstruction(b *testing.B)         { benchExperiment(b, "E02") }
func BenchmarkE03LaplaceDP(b *testing.B)                { benchExperiment(b, "E03") }
func BenchmarkE04BirthdayIsolation(b *testing.B)        { benchExperiment(b, "E04") }
func BenchmarkE05IsolationCurve(b *testing.B)           { benchExperiment(b, "E05") }
func BenchmarkE06CountPSOSecurity(b *testing.B)         { benchExperiment(b, "E06") }
func BenchmarkE07PostProcessing(b *testing.B)           { benchExperiment(b, "E07") }
func BenchmarkE08CompositionAttack(b *testing.B)        { benchExperiment(b, "E08") }
func BenchmarkE09DPPSOSecurity(b *testing.B)            { benchExperiment(b, "E09") }
func BenchmarkE10KAnonPSOAttack(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11CensusReconstruction(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12QuasiIDUniqueness(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13DiffixReconstruction(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14KAnonComposition(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15CohenStyleAttack(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16LegalVerdictTable(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17MembershipInference(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18NetflixScoreboard(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19CensusDefenses(b *testing.B)           { benchExperiment(b, "E19") }

func BenchmarkAblationLPObjective(b *testing.B)         { benchExperiment(b, "A01") }
func BenchmarkAblationPrefixArity(b *testing.B)         { benchExperiment(b, "A02") }
func BenchmarkAblationMondrianSplit(b *testing.B)       { benchExperiment(b, "A03") }
func BenchmarkAblationCardinalityEncoding(b *testing.B) { benchExperiment(b, "A04") }
func BenchmarkAblationIntegerNoise(b *testing.B)        { benchExperiment(b, "A05") }
func BenchmarkAblationFullDomainSearch(b *testing.B)    { benchExperiment(b, "A06") }
