package singlingout

// The root benchmark suite regenerates every experiment in DESIGN.md's
// per-experiment index (one Benchmark per table/series, plus the ablation
// benches). Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment harness and prints the measured
// table once, so the bench log doubles as the reproduction record (see
// EXPERIMENTS.md for the archived full-size numbers).

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
	"singlingout/internal/query/remote"
)

var printOnce sync.Map

// benchExperiment runs the harness b.N times with the obs registry
// enabled and reports the per-iteration work counters (oracle queries,
// simplex pivots, SAT work) alongside ns/op, so the bench log records the
// attacks' measured complexity, not just their wall-clock.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)
	before := reg.Snapshot()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(ctx, 1, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.StopTimer()
			fmt.Print(tab.String())
			b.StartTimer()
		}
	}
	b.StopTimer()
	delta := reg.Snapshot().Delta(before)
	perOp := func(name, unit string) {
		if v := delta.Counters[name]; v > 0 {
			b.ReportMetric(float64(v)/float64(b.N), unit)
		}
	}
	perOp("query.count", "queries/op")
	perOp("lp.pivots", "pivots/op")
	perOp("sat.conflicts", "conflicts/op")
	perOp("sat.propagations", "props/op")
}

func BenchmarkE01ExhaustiveReconstruction(b *testing.B) { benchExperiment(b, "E01") }
func BenchmarkE02LPReconstruction(b *testing.B)         { benchExperiment(b, "E02") }
func BenchmarkE03LaplaceDP(b *testing.B)                { benchExperiment(b, "E03") }
func BenchmarkE04BirthdayIsolation(b *testing.B)        { benchExperiment(b, "E04") }
func BenchmarkE05IsolationCurve(b *testing.B)           { benchExperiment(b, "E05") }
func BenchmarkE06CountPSOSecurity(b *testing.B)         { benchExperiment(b, "E06") }
func BenchmarkE07PostProcessing(b *testing.B)           { benchExperiment(b, "E07") }
func BenchmarkE08CompositionAttack(b *testing.B)        { benchExperiment(b, "E08") }
func BenchmarkE09DPPSOSecurity(b *testing.B)            { benchExperiment(b, "E09") }
func BenchmarkE10KAnonPSOAttack(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11CensusReconstruction(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12QuasiIDUniqueness(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13DiffixReconstruction(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14KAnonComposition(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15CohenStyleAttack(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16LegalVerdictTable(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17MembershipInference(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18NetflixScoreboard(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19CensusDefenses(b *testing.B)           { benchExperiment(b, "E19") }

// BenchmarkRemoteReconstruct runs the E02.remote LP-reconstruction sweep
// against an in-process qserver over loopback HTTP — the full remote
// attack path (wire encoding, canonicalization, answer cache) rather than
// an in-process oracle call. The server persists across iterations, so
// later iterations measure the cache-hit path the way a long-lived
// service would serve a repeat analyst.
func BenchmarkRemoteReconstruct(b *testing.B) {
	srv, err := remote.NewServer(remote.ServerConfig{N: 32, Seed: 1, P: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	defer hs.Close()
	ctx := context.Background()
	o, err := remote.Dial(ctx, "http://"+ln.Addr().String(), remote.Options{Analyst: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	truth := remote.Dataset(1, 32, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E02OverOracle(ctx, o, truth, 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLPObjective(b *testing.B)         { benchExperiment(b, "A01") }
func BenchmarkAblationPrefixArity(b *testing.B)         { benchExperiment(b, "A02") }
func BenchmarkAblationMondrianSplit(b *testing.B)       { benchExperiment(b, "A03") }
func BenchmarkAblationCardinalityEncoding(b *testing.B) { benchExperiment(b, "A04") }
func BenchmarkAblationIntegerNoise(b *testing.B)        { benchExperiment(b, "A05") }
func BenchmarkAblationFullDomainSearch(b *testing.B)    { benchExperiment(b, "A06") }
