package singlingout

// The root benchmark suite regenerates every experiment in DESIGN.md's
// per-experiment index (one Benchmark per table/series, plus the ablation
// benches). Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment harness and prints the measured
// table once, so the bench log doubles as the reproduction record (see
// EXPERIMENTS.md for the archived full-size numbers).

import (
	"fmt"
	"sync"
	"testing"

	"singlingout/internal/experiments"
)

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(1, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Print(tab.String())
		}
	}
}

func BenchmarkE01ExhaustiveReconstruction(b *testing.B) { benchExperiment(b, "E01") }
func BenchmarkE02LPReconstruction(b *testing.B)         { benchExperiment(b, "E02") }
func BenchmarkE03LaplaceDP(b *testing.B)                { benchExperiment(b, "E03") }
func BenchmarkE04BirthdayIsolation(b *testing.B)        { benchExperiment(b, "E04") }
func BenchmarkE05IsolationCurve(b *testing.B)           { benchExperiment(b, "E05") }
func BenchmarkE06CountPSOSecurity(b *testing.B)         { benchExperiment(b, "E06") }
func BenchmarkE07PostProcessing(b *testing.B)           { benchExperiment(b, "E07") }
func BenchmarkE08CompositionAttack(b *testing.B)        { benchExperiment(b, "E08") }
func BenchmarkE09DPPSOSecurity(b *testing.B)            { benchExperiment(b, "E09") }
func BenchmarkE10KAnonPSOAttack(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11CensusReconstruction(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12QuasiIDUniqueness(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13DiffixReconstruction(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14KAnonComposition(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15CohenStyleAttack(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16LegalVerdictTable(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17MembershipInference(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18NetflixScoreboard(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19CensusDefenses(b *testing.B)           { benchExperiment(b, "E19") }

func BenchmarkAblationLPObjective(b *testing.B)         { benchExperiment(b, "A01") }
func BenchmarkAblationPrefixArity(b *testing.B)         { benchExperiment(b, "A02") }
func BenchmarkAblationMondrianSplit(b *testing.B)       { benchExperiment(b, "A03") }
func BenchmarkAblationCardinalityEncoding(b *testing.B) { benchExperiment(b, "A04") }
func BenchmarkAblationIntegerNoise(b *testing.B)        { benchExperiment(b, "A05") }
func BenchmarkAblationFullDomainSearch(b *testing.B)    { benchExperiment(b, "A06") }
