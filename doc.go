// Package singlingout reproduces Kobbi Nissim's PODS 2021 invited paper
// "Privacy: From Database Reconstruction to Legal Theorems" as a working
// Go library: the reconstruction and re-identification attacks the paper
// surveys (Dinur–Nissim, Sweeney linkage, Netflix scoreboard, the 2010
// census SAT reconstruction, Diffix LP reconstruction, Homer membership
// inference), the technologies it interrogates (k-anonymity with its
// variants, differential privacy), and its primary contribution — the
// predicate-singling-out framework with its experiment harness and
// legal-theorem layer.
//
// The implementation lives under internal/; runnable entry points are the
// commands under cmd/ and the programs under examples/. The root-level
// benchmarks (bench_test.go) regenerate every experiment table recorded
// in EXPERIMENTS.md.
package singlingout
