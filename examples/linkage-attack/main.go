// Linkage attack: Sweeney's GIC re-identification, simulated.
//
// A "Group Insurance Commission" publishes hospital microdata with names
// redacted but (ZIP, birth date, sex) intact; the attacker buys the voter
// registry and joins. The example then shows both modern defenses on the
// same data: k-anonymity stops this particular linkage, and the
// Netflix-style scoreboard attack shows how sparse high-dimensional data
// re-identifies even without clean quasi-identifiers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"singlingout/internal/kanon"
	"singlingout/internal/reident"
	"singlingout/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(1997))

	// The GIC data: 20k people; "names redacted" = row order is identity.
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 20000, ZIPs: 25, BlocksPerZIP: 20})
	if err != nil {
		log.Fatal(err)
	}
	qi := []int{
		pop.Schema.MustIndex(synth.AttrZIP),
		pop.Schema.MustIndex(synth.AttrBirthDate),
		pop.Schema.MustIndex(synth.AttrSex),
	}
	rep := reident.Uniqueness(pop, qi)
	fmt.Printf("GIC release: %d records; (ZIP, birth date, sex) unique for %.1f%%  [Sweeney: 87%%]\n",
		rep.Records, 100*rep.UniqueFraction())

	// The Cambridge voter registration: 70% of the population.
	reg, err := synth.Registry(rng, pop, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reident.Linkage(pop, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linkage with voter registry (70%% coverage): %.1f%% uniquely matched, precision %.1f%%\n",
		100*res.MatchRate(), 100*res.Precision())

	// Defense: 5-anonymize before release — the classes now cover entire
	// QI regions and the join produces no unique matches.
	rel, err := kanon.Mondrian(pop, qi, 5, kanon.MondrianOptions{})
	if err != nil {
		log.Fatal(err)
	}
	smallest := pop.Len()
	for _, c := range rel.Classes {
		if len(c.Rows) < smallest {
			smallest = len(c.Rows)
		}
	}
	fmt.Printf("after Mondrian 5-anonymization: %d classes, smallest class %d — no record unique on QI\n",
		len(rel.Classes), smallest)
	fmt.Println("(but see cmd/legalreport: k-anonymity still fails predicate singling out)")

	// The Netflix lesson: sparse behavioral data needs no QI at all.
	ratings, err := synth.GenerateRatings(rng, synth.RatingsConfig{
		Users: 2000, Movies: 800, MeanRatings: 30, Days: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	sb := &reident.Scoreboard{Released: ratings, StarsSlop: 1, DaySlop: 14, Eccentricity: 1.5}
	correct, wrong := reident.DeAnonymizationRate(rng, ratings, sb, 50, 8)
	fmt.Printf("Netflix-style scoreboard with 8 noisy ratings: %.0f%% identified, %.0f%% misidentified  [N-S: 99%% with 8 ratings]\n",
		100*correct, 100*wrong)
}
