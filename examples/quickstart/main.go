// Quickstart: a 5-minute tour of the library — differentially private
// counting, k-anonymization, and a predicate-singling-out audit, all on a
// synthetic population.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dp"
	"singlingout/internal/kanon"
	"singlingout/internal/pso"
	"singlingout/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. Generate a synthetic population (the stand-in for real microdata).
	cfg := synth.PopulationConfig{N: 5000, ZIPs: 10, BlocksPerZIP: 10}
	pop, err := synth.Population(rng, cfg)
	if err != nil {
		log.Fatal(err)
	}
	diseaseI := pop.Schema.MustIndex(synth.AttrDisease)
	diabetics := pop.Count(func(r dataset.Record) bool { return r[diseaseI] == 11 }) // "Diabetes"
	fmt.Printf("population: %d people, %d diabetic\n", pop.Len(), diabetics)

	// 2. Release the count with differential privacy (Theorem 1.3).
	for _, eps := range []float64{0.1, 1.0} {
		noisy := dp.LaplaceCount(rng, int64(diabetics), eps)
		fmt.Printf("ε=%-4g DP count: %.1f (error %+.1f)\n", eps, noisy, noisy-float64(diabetics))
	}

	// 3. k-anonymize the quasi-identifiers with Mondrian.
	qi := pop.Schema.QuasiIdentifiers()
	rel, err := kanon.Mondrian(pop, qi, 5, kanon.MondrianOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-anonymous release: %d classes, info loss %.3f, ℓ-diversity %d\n",
		len(rel.Classes), kanon.GenILoss(rel), kanon.LDiversity(rel, pop, diseaseI))

	// 4. Audit the release for GDPR singling out (Theorem 2.10): one run
	// of the equivalence-class attack.
	att := pso.KAnonClass{Sample: synth.IndividualSampler(cfg), WeightSamples: 2000}
	pred, err := att.Attack(rng, rel, pop.Len())
	if err != nil {
		log.Fatal(err)
	}
	matches := pso.IsolationCount(pred, pop)
	fmt.Printf("PSO attack predicate: %s\n", pred.Describe())
	fmt.Printf("matches %d raw record(s) — singled out: %v (≈37%% per attempt)\n",
		matches, matches == 1)
}
