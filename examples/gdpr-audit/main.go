// GDPR audit: evaluate concrete data-release mechanisms against the
// GDPR's preventing-singling-out requirement and print evidence-backed
// "legal theorems" (the Section 2.4 methodology of the paper).
//
// Three mechanisms are audited on the same high-dimensional survey
// population: a k-anonymizer, a batch of exact count queries, and the
// same counts released with differential privacy.
package main

import (
	"log"
	"math"
	"math/rand"
	"os"

	"singlingout/internal/legal"
	"singlingout/internal/pso"
	"singlingout/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	scfg := synth.SurveyConfig{Questions: 40, Skew: 0.8}
	schema := synth.SurveySchema(scfg)
	sample := synth.SurveySampler(scfg)
	qi := make([]int, len(schema.Attrs))
	for i := range qi {
		qi[i] = i
	}
	cfg := pso.Config{N: 400, Schema: schema, Sample: sample, Tau: 1e-4, Trials: 20}

	run := func(m pso.Mechanism, a pso.Attacker) pso.Result {
		res, err := pso.Run(rng, cfg, m, a)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Technology 1: k-anonymity, attacked two ways.
	kanonMech := pso.KAnonymity{QI: qi, K: 5, Algorithm: pso.UseMondrian}
	kanonClaim := legal.Evaluate("k-anonymity (Mondrian, k=5)", []pso.Result{
		run(kanonMech, pso.KAnonClass{Sample: sample, WeightSamples: 1200}),
		run(kanonMech, pso.Corner{Attr: 0, Sample: sample, WeightSamples: 1200}),
	})

	// Technology 2: a batch of adaptive exact counts.
	att := pso.PrefixDescent{TargetDepth: 40}
	countCfg := cfg
	countCfg.Tau = math.Pow(2, -30)
	countRes, err := pso.Run(rng, countCfg, pso.InteractiveCounts{Limit: att.Queries()}, att)
	if err != nil {
		log.Fatal(err)
	}
	countClaim := legal.Evaluate("batch of exact count queries (ℓ=40, adaptive)", []pso.Result{countRes})

	// Technology 3: the same counts under ε-differential privacy.
	dpRes, err := pso.Run(rng, countCfg, pso.InteractiveCounts{Limit: att.Queries(), Eps: 0.1}, att)
	if err != nil {
		log.Fatal(err)
	}
	dpClaim := legal.Evaluate("ε=0.1-DP count queries (ℓ=40, adaptive)", []pso.Result{dpRes})

	comparison := legal.CompareWithWorkingParty(map[string]legal.Verdict{
		"k-anonymity":          kanonClaim.Verdict,
		"differential privacy": dpClaim.Verdict,
	})
	if err := legal.Report(os.Stdout, []legal.Claim{kanonClaim, countClaim, dpClaim}, comparison); err != nil {
		log.Fatal(err)
	}
}
