// Census reconstruction: the paper's Section 1 narrative end to end.
//
//  1. A census bureau collects block-level microdata and publishes only
//     statistical tables (counts by sex × age bucket, race × ethnicity,
//     sex × race per block).
//  2. An attacker encodes the tables as SAT and reconstructs person-level
//     records.
//  3. The reconstructed records are re-identified by linkage against a
//     commercial-style registry.
//  4. The same tables released with differential privacy resist step 2.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"singlingout/internal/census"
	"singlingout/internal/dp"
	"singlingout/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(2010))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 400, ZIPs: 4, BlocksPerZIP: 15})
	if err != nil {
		log.Fatal(err)
	}
	cfg := census.DefaultConfig()
	tables := census.Tabulate(pop, cfg)
	fmt.Printf("published %d block tables covering %d people\n", len(tables), pop.Len())

	// Step 2: reconstruct.
	results, sum, err := census.Reconstruct(pop, cfg, 500000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction: %d/%d blocks solved, %d with a unique solution\n",
		sum.Solved, sum.Blocks, sum.Unique)
	fmt.Printf("records reconstructed exactly: %d/%d (%.1f%%)  [paper: 46%% of US population]\n",
		sum.ExactRecords, sum.Persons, 100*sum.ExactFraction)

	// Step 3: re-identify against a registry covering half the population.
	reg, err := synth.Registry(rng, pop, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	link := census.Linkage(pop, reg, results, cfg)
	fmt.Printf("linkage vs 50%%-coverage registry: %.1f%% putative, %.1f%% confirmed  [paper: 17%% confirmed]\n",
		100*link.PutativeRate(), 100*link.ConfirmedRate())

	// Step 4: what the bureau should have done — noise the tables.
	// A quick demonstration on one populated block: each published cell
	// gets ε-DP geometric noise, and the noisy tables no longer pin down
	// the microdata (most noisy tables are not even jointly consistent).
	var biggest census.BlockTables
	for _, bt := range tables {
		if bt.Total > biggest.Total {
			biggest = bt
		}
	}
	eps := 0.5
	noised := biggest
	noised.SexAge = noiseCells(rng, biggest.SexAge, eps)
	noised.RaceEt = noiseCells(rng, biggest.RaceEt, eps)
	noised.SexRc = noiseCells(rng, biggest.SexRc, eps)
	fmt.Printf("\nblock %d (%d residents) with ε=%.1f-DP noisy tables: ", biggest.Block, biggest.Total, eps)
	res, err := census.ReconstructBlock(noised, cfg, 200000)
	if errors.Is(err, census.ErrInconsistentTables) {
		fmt.Println("noisy tables are jointly inconsistent — the SAT attack finds no microdata at all")
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	truth := census.TrueTuples(pop, cfg)[biggest.Block]
	exact := census.MultisetIntersection(truth, res.Tuples)
	fmt.Printf("solver found a candidate, but only %d/%d records match the truth\n", exact, len(truth))
}

func noiseCells(rng *rand.Rand, cells map[[2]int]int, eps float64) map[[2]int]int {
	out := map[[2]int]int{}
	for k, v := range cells {
		n := int(dp.GeometricCount(rng, int64(v), eps))
		if n > 0 {
			out[k] = n
		}
	}
	return out
}
