package singlingout

// End-to-end integration tests exercising several subsystems together —
// the same flows the examples demonstrate, asserted.

import (
	"math/rand"
	"testing"

	"singlingout/internal/census"
	"singlingout/internal/kanon"
	"singlingout/internal/legal"
	"singlingout/internal/pso"
	"singlingout/internal/reident"
	"singlingout/internal/synth"
)

// TestPipelineCensusAttack runs tabulate → SAT reconstruct → link and
// checks the attack chain produces re-identifications on raw tables.
func TestPipelineCensusAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 200, ZIPs: 3, BlocksPerZIP: 12})
	if err != nil {
		t.Fatal(err)
	}
	cfg := census.DefaultConfig()
	results, sum, err := census.Reconstruct(pop, cfg, 300000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ExactFraction < 0.4 {
		t.Errorf("exact fraction = %v", sum.ExactFraction)
	}
	reg, err := synth.Registry(rng, pop, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	link := census.Linkage(pop, reg, results, cfg)
	if link.Confirmed == 0 {
		t.Error("expected confirmed re-identifications from the full pipeline")
	}
}

// TestPipelineAnonymizeThenAudit k-anonymizes a population and audits the
// release with the PSO framework, producing a legal claim — the
// anonymize-CLI flow.
func TestPipelineAnonymizeThenAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	scfg := synth.SurveyConfig{Questions: 40, Skew: 0.8}
	schema := synth.SurveySchema(scfg)
	sample := synth.SurveySampler(scfg)
	qi := make([]int, len(schema.Attrs))
	for i := range qi {
		qi[i] = i
	}
	cfg := pso.Config{N: 400, Schema: schema, Sample: sample, Tau: 1e-4, Trials: 15}
	res, err := pso.Run(rng, cfg,
		pso.KAnonymity{QI: qi, K: 5, Algorithm: pso.UseMondrian},
		pso.Corner{Attr: 0, Sample: sample, WeightSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	claim := legal.Evaluate("k-anonymity (pipeline)", []pso.Result{res})
	if claim.Verdict != legal.FailsPSO {
		t.Errorf("verdict = %v, want FailsPSO (res: %+v)", claim.Verdict, res)
	}
}

// TestPipelineAnonymizationStopsLinkage verifies the defensive flow: a
// released dataset that was Mondrian-anonymized cannot be linked the way
// the raw release can.
func TestPipelineAnonymizationStopsLinkage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 4000, ZIPs: 10, BlocksPerZIP: 10})
	if err != nil {
		t.Fatal(err)
	}
	qi := []int{
		pop.Schema.MustIndex(synth.AttrZIP),
		pop.Schema.MustIndex(synth.AttrBirthDate),
		pop.Schema.MustIndex(synth.AttrSex),
	}
	reg, err := synth.Registry(rng, pop, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := reident.Linkage(pop, reg)
	if err != nil {
		t.Fatal(err)
	}
	if raw.MatchRate() < 0.4 {
		t.Fatalf("raw linkage too weak for the test to be meaningful: %v", raw.MatchRate())
	}
	rel, err := kanon.Mondrian(pop, qi, 5, kanon.MondrianOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every class covers >= 5 records, so no QI combination inside a
	// class can be unique in the release.
	for _, c := range rel.Classes {
		if len(c.Rows) < 5 {
			t.Fatal("release violates k")
		}
	}
}
