package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tmpModule writes a throwaway module with one package and chdirs into
// it for the duration of the test, so run() resolves it as the root.
func tmpModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

const violationSrc = `package tmpmod

import (
	"fmt"
	"io"
)

var ErrGone = fmt.Errorf("gone")

func classify(err error) string {
	if err == io.EOF {
		return "eof"
	}
	if err == ErrGone {
		return "gone"
	}
	return "other"
}
`

// TestUnknownOnly pins the -only error contract: unknown names are
// rejected with the full list of valid analyzers and exit code 2.
func TestUnknownOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only=nosuchanalyzer"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("want exit 2, got %d (stderr: %s)", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "unknown analyzer(s) nosuchanalyzer") {
		t.Errorf("stderr does not name the bad analyzer: %s", msg)
	}
	for _, name := range []string{"determinism", "sentinelcmp", "rawdataflow", "budgetflow", "lockdiscipline", "walorder"} {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr does not list valid analyzer %q: %s", name, msg)
		}
	}
}

// TestJSONRoundTrip runs -json on a module with two sentinel
// comparisons and decodes the array back: every field must survive,
// including the machine fix attached to each finding.
func TestJSONRoundTrip(t *testing.T) {
	tmpModule(t, map[string]string{"a.go": violationSrc})

	var stdout, stderr bytes.Buffer
	code := run([]string{"-only=sentinelcmp", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stderr: %s)", code, stderr.String())
	}

	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got %d: %s", len(diags), stdout.String())
	}
	for i, d := range diags {
		if d.Analyzer != "sentinelcmp" {
			t.Errorf("finding %d: analyzer = %q, want sentinelcmp", i, d.Analyzer)
		}
		if !strings.HasSuffix(d.File, "a.go") || d.Line == 0 || d.Col == 0 {
			t.Errorf("finding %d: incomplete position %s:%d:%d", i, d.File, d.Line, d.Col)
		}
		if d.Message == "" {
			t.Errorf("finding %d: empty message", i)
		}
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			t.Errorf("finding %d: fix did not survive the round trip", i)
		}
	}
	// Round trip: re-encode, decode, re-encode — the two serialized
	// forms must be byte-identical.
	again, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var diags2 []jsonDiag
	if err := json.Unmarshal(again, &diags2); err != nil {
		t.Fatal(err)
	}
	again2, err := json.Marshal(diags2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, again2) {
		t.Errorf("round trip changed the findings:\nfirst:  %s\nsecond: %s", again, again2)
	}
}

// TestJSONCleanIsEmptyArray pins that a clean run emits [] (not null),
// so downstream `jq length` style tooling never trips on null.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	tmpModule(t, map[string]string{"a.go": "package tmpmod\n\nfunc ok() {}\n"})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("want exit 0 on clean tree, got %d (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestDeterministicOutput runs the full suite twice over the same tree:
// the outputs must be byte-identical (diagnostics sort by file, line,
// column, analyzer).
func TestDeterministicOutput(t *testing.T) {
	tmpModule(t, map[string]string{
		"a.go": violationSrc,
		"b.go": `package tmpmod

import "os"

func eof(err error) bool { return err == os.ErrClosed }
`,
	})
	outputs := make([]string, 2)
	for i := range outputs {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-only=sentinelcmp", "./..."}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("run %d: want exit 1, got %d (stderr: %s)", i, code, stderr.String())
		}
		outputs[i] = stdout.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("two runs differ:\n--- first\n%s\n--- second\n%s", outputs[0], outputs[1])
	}
	// The sort contract: a.go's findings precede b.go's, in line order.
	lines := strings.Split(strings.TrimSpace(outputs[0]), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 findings, got %d:\n%s", len(lines), outputs[0])
	}
	if !strings.Contains(lines[0], "a.go") || !strings.Contains(lines[1], "a.go") || !strings.Contains(lines[2], "b.go") {
		t.Errorf("findings not sorted by file:\n%s", outputs[0])
	}
}

// TestFixRewritesAndRerunsClean drives -fix end to end through the CLI:
// the violations are rewritten in place and a second -fix pass is a
// no-op (idempotence), leaving a clean exit.
func TestFixRewritesAndRerunsClean(t *testing.T) {
	dir := tmpModule(t, map[string]string{"a.go": violationSrc})

	var stdout, stderr bytes.Buffer
	code := run([]string{"-only=sentinelcmp", "-fix", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("want exit 0 after fixing, got %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied 2 fix(es)") {
		t.Errorf("stderr does not report the applied fixes: %s", stderr.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "errors.Is(err, io.EOF)") {
		t.Errorf("file not rewritten:\n%s", fixed)
	}

	// Idempotence: nothing left to fix, nothing rewritten.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only=sentinelcmp", "-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix pass: want exit 0, got %d (stderr: %s)", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "applied") {
		t.Errorf("second -fix pass rewrote files: %s", stderr.String())
	}
}

// TestListNamesAllAnalyzers keeps -list in sync with the registry.
func TestListNamesAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("want exit 0, got %d", code)
	}
	for _, name := range []string{"rawdataflow", "budgetflow", "lockdiscipline", "walorder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %q:\n%s", name, stdout.String())
		}
	}
}
