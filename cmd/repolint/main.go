// Command repolint runs the repository's invariant-checking suite
// (internal/analysis) over go-style package patterns and exits non-zero
// on any finding. It is the mechanical enforcement of the determinism,
// sentinel-error, ctx-propagation, metric-naming, bounded-concurrency,
// and privacy-dataflow rules the benchmarks and the serving stack depend
// on; see docs/INVARIANTS.md.
//
// Usage:
//
//	repolint [-only determinism,boundedgo] [-list] [-suppressed] [-json] [-fix] [patterns...]
//
// Patterns default to ./... resolved against the enclosing module.
// Findings print as file:line:col: message (analyzer), sorted by
// position so the output is byte-deterministic. Suppressions use
// //lint:ignore <analyzer> <reason> on the offending line or the line
// above; -suppressed shows what they hide.
//
// -json emits the findings as a JSON array (file/line/col/analyzer/
// message/suppressed/fix) for tooling. -fix applies every suggested fix
// (gofmt-clean), then re-runs the analysis and reports what remains;
// running -fix on an already-fixed tree writes nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"singlingout/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire shape of one finding.
type jsonDiag struct {
	File       string                 `json:"file"`
	Line       int                    `json:"line"`
	Col        int                    `json:"col"`
	Analyzer   string                 `json:"analyzer"`
	Message    string                 `json:"message"`
	Suppressed bool                   `json:"suppressed,omitempty"`
	Fix        *analysis.SuggestedFix `json:"fix,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list available analyzers and exit")
	showSuppressed := fs.Bool("suppressed", false, "also print findings hidden by lint:ignore directives")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	applyFix := fs.Bool("fix", false, "apply suggested fixes, then re-run and report what remains")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		picked, err := pickAnalyzers(analyzers, *only)
		if err != nil {
			fmt.Fprintf(stderr, "repolint: %v\n", err)
			return 2
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	diags, npkgs, err := analyze(root, modPath, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}

	if *applyFix {
		fixed, nfixes, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "repolint: %v\n", err)
			return 2
		}
		var files []string
		for f := range fixed {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			if err := os.WriteFile(f, fixed[f], 0o644); err != nil {
				fmt.Fprintf(stderr, "repolint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "repolint: fixed %s\n", f)
		}
		if nfixes > 0 {
			fmt.Fprintf(stderr, "repolint: applied %d fix(es) to %d file(s); re-running\n", nfixes, len(files))
			// Re-analyze the rewritten tree: remaining findings (fixless
			// ones, or anything a fix could not settle) still gate.
			diags, npkgs, err = analyze(root, modPath, patterns, analyzers)
			if err != nil {
				fmt.Fprintf(stderr, "repolint: %v\n", err)
				return 2
			}
		}
	}

	if *asJSON {
		return emitJSON(stdout, stderr, diags, *showSuppressed)
	}

	findings, suppressed := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if *showSuppressed {
				fmt.Fprintf(stdout, "%s [suppressed]\n", d)
			}
			continue
		}
		findings++
		fmt.Fprintln(stdout, d)
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s) across %d package(s)\n", findings, npkgs)
		return 1
	}
	if suppressed > 0 && !*showSuppressed {
		fmt.Fprintf(stderr, "repolint: clean (%d suppressed by lint:ignore; rerun with -suppressed to view)\n", suppressed)
	}
	return 0
}

// analyze loads the patterns and runs the analyzers once.
func analyze(root, modPath string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, int, error) {
	pkgs, err := analysis.Load(root, modPath, patterns)
	if err != nil {
		return nil, 0, err
	}
	diags, err := analysis.RunAll(analyzers, pkgs)
	if err != nil {
		return nil, 0, err
	}
	return diags, len(pkgs), nil
}

// pickAnalyzers resolves a comma-separated -only list, erroring with the
// full set of valid names on any unknown one.
func pickAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	var picked []*analysis.Analyzer
	var valid []string
	for _, a := range all {
		valid = append(valid, a.Name)
		if want[a.Name] {
			picked = append(picked, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s) %s; valid analyzers: %s",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return picked, nil
}

// emitJSON prints the diagnostics as one JSON array. Suppressed findings
// are included only with -suppressed (marked), and the exit code follows
// the text mode: non-zero iff unsuppressed findings remain.
func emitJSON(stdout, stderr io.Writer, diags []analysis.Diagnostic, showSuppressed bool) int {
	out := []jsonDiag{} // non-nil: a clean run is [], not null
	findings := 0
	for _, d := range diags {
		if d.Suppressed && !showSuppressed {
			continue
		}
		if !d.Suppressed {
			findings++
		}
		out = append(out, jsonDiag{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Fix:        d.Fix,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	if findings > 0 {
		return 1
	}
	return 0
}
