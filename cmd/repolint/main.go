// Command repolint runs the repository's invariant-checking suite
// (internal/analysis) over go-style package patterns and exits non-zero
// on any finding. It is the mechanical enforcement of the determinism,
// sentinel-error, ctx-propagation, metric-naming, and bounded-concurrency
// rules the benchmarks depend on; see docs/INVARIANTS.md.
//
// Usage:
//
//	repolint [-only determinism,boundedgo] [-list] [-suppressed] [patterns...]
//
// Patterns default to ./... resolved against the enclosing module.
// Findings print as file:line:col: message (analyzer). Suppressions use
// //lint:ignore <analyzer> <reason> on the offending line or the line
// above; -suppressed shows what they hide.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"singlingout/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("repolint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list available analyzers and exit")
	showSuppressed := fs.Bool("suppressed", false, "also print findings hidden by lint:ignore directives")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "repolint: unknown analyzer %q (try -list)\n", name)
			return 2
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(root, modPath, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}

	findings, suppressed := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if *showSuppressed {
				fmt.Fprintf(stdout, "%s [suppressed]\n", d)
			}
			continue
		}
		findings++
		fmt.Fprintln(stdout, d)
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		return 1
	}
	if suppressed > 0 && !*showSuppressed {
		fmt.Fprintf(stderr, "repolint: clean (%d suppressed by lint:ignore; rerun with -suppressed to view)\n", suppressed)
	}
	return 0
}
