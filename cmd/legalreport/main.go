// Command legalreport runs the verdict-producing experiment suite and
// prints the legal-theorem report of Section 2.4: evidence-backed claims
// about whether k-anonymity, ℓ-diversity and differential privacy prevent
// GDPR singling out, and the comparison with the Article 29 Working
// Party's Opinion on Anonymisation Techniques.
//
// Usage:
//
//	legalreport [-seed 1] [-full]
//	            [-metrics out.jsonl] [-serve :8088] [-spans out.trace.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -metrics records a JSONL run journal; -serve exposes the live
// observability HTTP endpoint (Prometheus /metrics, /snapshot, /healthz,
// SSE /journal, /debug/pprof/) while the claims are gathered; -spans
// exports the worker pool's Chrome trace-event timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"singlingout/internal/experiments"
	"singlingout/internal/legal"
	"singlingout/internal/obs"
	"singlingout/internal/obs/serve"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "run publication-size experiments (slower)")
	tool := serve.AddToolFlags(flag.CommandLine, "legalreport")
	flag.Parse()

	if err := tool.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		os.Exit(1)
	}
	status := run(tool, *seed, *full)
	if err := tool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

func run(tool *serve.Tool, seed int64, full bool) int {
	tool.Emit(obs.Event{Phase: "run_start", Seed: seed, Quick: !full})
	tool.SetPhase("claims")
	start := time.Now()
	claims, comparison, err := experiments.LegalClaims(seed, !full)
	ev := obs.Event{
		Phase:   "experiment",
		ID:      "legalreport.claims",
		Seed:    seed,
		Quick:   !full,
		Seconds: time.Since(start).Seconds(),
	}
	if err != nil {
		ev.Error = err.Error()
		tool.Emit(ev)
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		return 1
	}
	ev.Sizes = map[string]int{"claims": len(claims)}
	tool.Emit(ev)
	if err := legal.Report(os.Stdout, claims, comparison); err != nil {
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		return 1
	}
	tool.Emit(obs.Event{
		Phase:   "run_end",
		Seed:    seed,
		Quick:   !full,
		Seconds: time.Since(start).Seconds(),
		Sizes:   map[string]int{"claims": len(claims)},
	})
	tool.SetPhase("done")
	return 0
}
