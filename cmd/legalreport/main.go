// Command legalreport runs the verdict-producing experiment suite and
// prints the legal-theorem report of Section 2.4: evidence-backed claims
// about whether k-anonymity, ℓ-diversity and differential privacy prevent
// GDPR singling out, and the comparison with the Article 29 Working
// Party's Opinion on Anonymisation Techniques.
//
// Usage:
//
//	legalreport [-seed 1] [-full]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
package main

import (
	"flag"
	"fmt"
	"os"

	"singlingout/internal/experiments"
	"singlingout/internal/legal"
	"singlingout/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "run publication-size experiments (slower)")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	claims, comparison, err := experiments.LegalClaims(*seed, !*full)
	if err != nil {
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		os.Exit(1)
	}
	if err := legal.Report(os.Stdout, claims, comparison); err != nil {
		fmt.Fprintf(os.Stderr, "legalreport: %v\n", err)
		os.Exit(1)
	}
}
