// Command reconstruct runs the database-reconstruction attacks: the
// Dinur–Nissim exhaustive and LP-decoding attacks (E01, E02), the
// census-style SAT reconstruction with registry re-identification (E11),
// and the Diffix-style LP reconstruction (E13).
//
// Usage:
//
//	reconstruct [-attack all|exhaustive|lp|census|diffix] [-seed 1] [-full] [-stats]
//	            [-stream] [-chunk N]
//	            [-remote http://host:port] [-remote-backend exact] [-analyst name]
//	            [-workers N] [-metrics out.jsonl] [-serve :8088] [-spans out.trace.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -stats appends an obs metrics footer (oracle queries, simplex pivots,
// SAT conflicts, ...) to every table.
//
// -stream runs the attacks anytime: answers are consumed -chunk queries
// at a time with an incremental re-decode after every chunk (LP warm
// starts; SAT learned clauses retained), each step appending one point to
// a convergence curve. With -serve the curve streams live over SSE at
// /converge (and as attack.converge journal events on /journal); the
// final table reports queries-to-X%-accuracy milestones, and the final
// reconstruction is byte-identical to the batch path. In-process -stream
// supports the lp and census attacks; with -remote it streams the
// E02-style sweep's workload against the live qserver.
//
// -remote points the LP-decoding attack at a running qserver instead of an
// in-process oracle: it dials the server, regenerates the ground truth
// locally from the advertised (seed, n, p), and runs the E02.remote sweep
// over the wire. -remote-backend selects the server oracle (exact,
// laplace, diffix) and -analyst the budget-accounting identity. Against
// the exact backend the table is byte-identical to the same sweep run
// in-process at the same seed.
//
// -metrics records a JSONL run journal (one event per attack); -serve
// exposes the live observability HTTP endpoint (Prometheus /metrics,
// /snapshot, /healthz, SSE /journal, /debug/pprof/) while the attacks run;
// -spans exports the worker pool's Chrome trace-event timeline. Combined
// with -remote, the qserver's server-side spans are fetched from its
// /trace endpoint after the sweep and merged into the same export as a
// second Perfetto process, interleaved with the client's lanes and
// filtered to this run's wire trace id.
//
// -workers sizes the worker pool the parallel harnesses fan out on
// (0 = GOMAXPROCS). Per-item randomness derives from (seed, item index),
// so tables are byte-identical at every worker count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
	"singlingout/internal/obs/serve"
	"singlingout/internal/query"
	"singlingout/internal/query/remote"
	"singlingout/internal/synth"
)

func main() {
	attack := flag.String("attack", "all", "attack to run: all, exhaustive, lp, census, diffix")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "run publication-size experiments (slower)")
	stats := flag.Bool("stats", false, "append an obs metrics footer to every table")
	workers := flag.Int("workers", 0, "worker-pool size for parallel attacks (0 = GOMAXPROCS); output is identical at any value")
	stream := flag.Bool("stream", false, "run the attack anytime: incremental decodes with a live convergence curve (lp/census attacks; also with -remote)")
	chunk := flag.Int("chunk", 32, "answers ingested per streaming step with -stream (<= 0 picks n/4)")
	remoteURL := flag.String("remote", "", "attack a running qserver at this base URL instead of in-process oracles")
	remoteBackend := flag.String("remote-backend", "exact", "qserver backend to attack: exact, laplace, diffix")
	analyst := flag.String("analyst", "", "budget-accounting identity sent to the qserver")
	tool := serve.AddToolFlags(flag.CommandLine, "reconstruct")
	flag.Parse()
	experiments.SetWorkers(*workers)

	if err := tool.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		os.Exit(1)
	}
	// ^C / SIGTERM cancels the context threaded through the attack
	// harnesses (and any in-flight remote batch), so an interrupted run
	// still flushes its journal and profiles below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	var status int
	switch {
	case *remoteURL != "":
		status = runRemote(ctx, tool, *remoteURL, *remoteBackend, *analyst, *seed, *full, *stats, *stream, *chunk)
	case *stream:
		status = runStream(ctx, tool, *attack, *seed, *full, *stats, *chunk)
	default:
		status = run(ctx, tool, *attack, *seed, *full, *stats)
	}
	stopSignals()
	if err := tool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

// runRemote mounts the LP-decoding sweep against a qserver: ground truth
// is regenerated locally from the server's advertised metadata, never
// transmitted. With stream it runs the anytime variant instead — the
// workload answered chunk queries at a time, the convergence curve
// streaming over /converge while the attack runs.
func runRemote(ctx context.Context, tool *serve.Tool, baseURL, backend, analyst string, seed int64, full, stats, stream bool, chunk int) int {
	o, err := remote.Dial(ctx, baseURL, remote.Options{Backend: backend, Analyst: analyst})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		return 1
	}
	meta := o.Meta()
	fmt.Fprintf(os.Stderr, "reconstruct: attacking %s backend %q (n=%d seed=%d budget=%d)\n",
		baseURL, backend, meta.N, meta.Seed, meta.Budget)
	id := "E02.remote"
	if stream {
		id = "E02.stream"
		announceConverge(tool)
	}
	tool.SetPhase(id)
	tool.Emit(obs.Event{
		Phase: "run_start",
		Seed:  seed,
		Quick: !full,
		Sizes: map[string]int{"experiments": 1, "n": meta.N},
	})
	truth := remote.Dataset(meta.Seed, meta.N, meta.P)
	reg := obs.Default()
	instrumented := stats || tool.Observing()
	if instrumented {
		wasEnabled := reg.Enabled()
		reg.SetEnabled(true)
		defer reg.SetEnabled(wasEnabled)
	}
	start := time.Now()
	before := reg.Snapshot()
	var tab *experiments.Table
	if stream {
		tab, _, err = experiments.E02StreamOverOracle(ctx, o, truth, seed, chunk, obs.DefaultCurves())
	} else {
		tab, err = experiments.E02OverOracle(ctx, o, truth, seed, !full)
	}
	ev := obs.Event{
		Phase:   "experiment",
		ID:      id,
		Seed:    seed,
		Quick:   !full,
		Seconds: time.Since(start).Seconds(),
	}
	if instrumented {
		delta := reg.Snapshot().Delta(before)
		if !delta.Empty() {
			ev.Metrics = &delta
		}
		if tab != nil && stats {
			tab.Metrics = delta
		}
	}
	if err != nil {
		ev.Error = err.Error()
		tool.Emit(ev)
		if errors.Is(err, query.ErrBudgetExhausted) {
			fmt.Fprintf(os.Stderr, "reconstruct: the server's query budget ran out mid-attack — the defense held: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		}
		return 1
	}
	tool.Emit(ev)
	if err := tab.Fprint(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		return 1
	}
	mergeServerTrace(ctx, tool, o, baseURL)
	tool.Emit(obs.Event{Phase: "run_end", Seed: seed, Quick: !full, Sizes: map[string]int{"experiments": 1}})
	tool.SetPhase("done")
	return 0
}

// mergeServerTrace folds the qserver's server-side spans into the local
// Chrome trace export (-spans): it fetches the server's /trace dump,
// keeps the spans stamped with this client's wire trace id, and merges
// them as a second Perfetto process lane next to the client's own. A
// server without the obs endpoint (or an older one) degrades to a
// client-only trace with a note, never a failed run.
func mergeServerTrace(ctx context.Context, tool *serve.Tool, o *remote.Oracle, baseURL string) {
	if !tool.SpanExport() {
		return
	}
	dump, err := o.FetchTrace(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: no server spans merged (%v); the trace will be client-only\n", err)
		return
	}
	kept := dump.Events[:0]
	for _, e := range dump.Events {
		if e.Args["trace"] == o.TraceID() {
			kept = append(kept, e)
		}
	}
	dump.Events = kept
	dump.Process = "qserver " + baseURL
	obs.DefaultTracer().AddProcess(dump)
	fmt.Fprintf(os.Stderr, "reconstruct: merged %d server spans (trace %s) into the span export\n",
		len(kept), o.TraceID())
}

func run(ctx context.Context, tool *serve.Tool, attack string, seed int64, full, stats bool) int {
	byName := map[string][]string{
		"exhaustive": {"E01"},
		"lp":         {"E02", "A01"},
		"census":     {"E11"},
		"diffix":     {"E13"},
		"all":        {"E01", "E02", "A01", "E11", "E13"},
	}
	ids, ok := byName[attack]
	if !ok {
		fmt.Fprintf(os.Stderr, "reconstruct: unknown attack %q\n", attack)
		return 1
	}
	tool.Emit(obs.Event{
		Phase: "run_start",
		Seed:  seed,
		Quick: !full,
		Sizes: map[string]int{"experiments": len(ids)},
	})
	runStart := time.Now()
	for _, id := range ids {
		tool.SetPhase(id)
		r, _ := experiments.ByID(id)
		start := time.Now()
		var tab *experiments.Table
		var delta obs.Snapshot
		var err error
		if stats || tool.Observing() {
			tab, delta, err = r.RunInstrumented(ctx, seed, !full)
		} else {
			tab, err = r.Run(ctx, seed, !full)
		}
		ev := obs.Event{
			Phase:   "experiment",
			ID:      id,
			Seed:    seed,
			Quick:   !full,
			Seconds: time.Since(start).Seconds(),
		}
		if !delta.Empty() {
			ev.Metrics = &delta
		}
		if err != nil {
			ev.Error = err.Error()
			tool.Emit(ev)
			fmt.Fprintf(os.Stderr, "reconstruct: %s: %v\n", id, err)
			return 1
		}
		tool.Emit(ev)
		if !stats {
			// The metrics footer stays opt-in via -stats even when a
			// journal forced the instrumented path.
			tab.Metrics = obs.Snapshot{}
		}
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
			return 1
		}
	}
	tool.Emit(obs.Event{
		Phase:   "run_end",
		Seed:    seed,
		Quick:   !full,
		Seconds: time.Since(runStart).Seconds(),
		Sizes:   map[string]int{"experiments": len(ids)},
	})
	tool.SetPhase("done")
	return 0
}

// announceConverge points the operator at the live curve endpoints when
// the observability server is up.
func announceConverge(tool *serve.Tool) {
	if addr := tool.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "reconstruct: live convergence curve at http://%s/converge (SSE with Accept: text/event-stream)\n", addr)
	}
}

// runStream runs the in-process attacks anytime: the LP decoder over an
// exact oracle and/or the census SAT pipeline, each re-solving
// incrementally and appending points to the default convergence curves
// (journal attack.converge events; /converge when serving). The final
// tables report queries-to-accuracy milestones; the reconstructions
// match the batch path bit for bit.
func runStream(ctx context.Context, tool *serve.Tool, attack string, seed int64, full, stats bool, chunk int) int {
	type step struct {
		id  string
		run func(context.Context) (*experiments.Table, error)
	}
	var steps []step
	if attack == "lp" || attack == "all" {
		steps = append(steps, step{"E02.stream", func(ctx context.Context) (*experiments.Table, error) {
			n := 48
			if full {
				n = 128
			}
			rng := rand.New(rand.NewSource(seed))
			x := synth.BinaryDataset(rng, n, 0.5)
			tab, _, err := experiments.E02StreamOverOracle(ctx, &query.Exact{X: x}, x, seed, chunk, obs.DefaultCurves())
			return tab, err
		}})
	}
	if attack == "census" || attack == "all" {
		steps = append(steps, step{"E11.stream", func(ctx context.Context) (*experiments.Table, error) {
			tab, _, err := experiments.E11StreamConverge(ctx, seed, !full, obs.DefaultCurves())
			return tab, err
		}})
	}
	if len(steps) == 0 {
		fmt.Fprintf(os.Stderr, "reconstruct: -stream supports the lp and census attacks (got -attack %q)\n", attack)
		return 1
	}
	announceConverge(tool)
	tool.Emit(obs.Event{
		Phase: "run_start",
		Seed:  seed,
		Quick: !full,
		Sizes: map[string]int{"experiments": len(steps)},
	})
	runStart := time.Now()
	reg := obs.Default()
	instrumented := stats || tool.Observing()
	if instrumented {
		wasEnabled := reg.Enabled()
		reg.SetEnabled(true)
		defer reg.SetEnabled(wasEnabled)
	}
	for _, st := range steps {
		tool.SetPhase(st.id)
		start := time.Now()
		before := reg.Snapshot()
		tab, err := st.run(ctx)
		ev := obs.Event{
			Phase:   "experiment",
			ID:      st.id,
			Seed:    seed,
			Quick:   !full,
			Seconds: time.Since(start).Seconds(),
		}
		if instrumented {
			delta := reg.Snapshot().Delta(before)
			if !delta.Empty() {
				ev.Metrics = &delta
			}
			if tab != nil && stats {
				tab.Metrics = delta
			}
		}
		if err != nil {
			ev.Error = err.Error()
			tool.Emit(ev)
			fmt.Fprintf(os.Stderr, "reconstruct: %s: %v\n", st.id, err)
			return 1
		}
		tool.Emit(ev)
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
			return 1
		}
	}
	tool.Emit(obs.Event{
		Phase:   "run_end",
		Seed:    seed,
		Quick:   !full,
		Seconds: time.Since(runStart).Seconds(),
		Sizes:   map[string]int{"experiments": len(steps)},
	})
	tool.SetPhase("done")
	return 0
}
