// Command reconstruct runs the database-reconstruction attacks: the
// Dinur–Nissim exhaustive and LP-decoding attacks (E01, E02), the
// census-style SAT reconstruction with registry re-identification (E11),
// and the Diffix-style LP reconstruction (E13).
//
// Usage:
//
//	reconstruct [-attack all|exhaustive|lp|census|diffix] [-seed 1] [-full] [-stats]
//	            [-workers N] [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -stats appends an obs metrics footer (oracle queries, simplex pivots,
// SAT conflicts, ...) to every table.
//
// -workers sizes the worker pool the parallel harnesses fan out on
// (0 = GOMAXPROCS). Per-item randomness derives from (seed, item index),
// so tables are byte-identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
)

func main() {
	attack := flag.String("attack", "all", "attack to run: all, exhaustive, lp, census, diffix")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "run publication-size experiments (slower)")
	stats := flag.Bool("stats", false, "append an obs metrics footer to every table")
	workers := flag.Int("workers", 0, "worker-pool size for parallel attacks (0 = GOMAXPROCS); output is identical at any value")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	experiments.SetWorkers(*workers)

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	byName := map[string][]string{
		"exhaustive": {"E01"},
		"lp":         {"E02", "A01"},
		"census":     {"E11"},
		"diffix":     {"E13"},
		"all":        {"E01", "E02", "A01", "E11", "E13"},
	}
	ids, ok := byName[*attack]
	if !ok {
		fmt.Fprintf(os.Stderr, "reconstruct: unknown attack %q\n", *attack)
		os.Exit(1)
	}
	for _, id := range ids {
		r, _ := experiments.ByID(id)
		var tab *experiments.Table
		var err error
		if *stats {
			tab, _, err = r.RunInstrumented(*seed, !*full)
		} else {
			tab, err = r.Run(*seed, !*full)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "reconstruct: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
			os.Exit(1)
		}
	}
}
