package main

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"singlingout/internal/obs"
	"singlingout/internal/query/remote"
)

// TestTwoRunStdoutInvariance pins the determinism contract: at
// -concurrency 1 the whole stdout — workload table and ledger summary —
// is byte-identical across runs (latency and throughput go to stderr
// precisely so this holds).
func TestTwoRunStdoutInvariance(t *testing.T) {
	args := []string{"-analysts", "3", "-requests", "8", "-batch", "4",
		"-pool", "32", "-budget", "20", "-concurrency", "1", "-seed", "7"}
	var out1, out2 bytes.Buffer
	if code := run(args, &out1, io.Discard); code != 0 {
		t.Fatalf("first run exited %d", code)
	}
	if code := run(args, &out2, io.Discard); code != 0 {
		t.Fatalf("second run exited %d", code)
	}
	if out1.Len() == 0 {
		t.Fatal("no stdout produced")
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("stdout differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", out1.String(), out2.String())
	}
	for _, want := range []string{"loadgen workload:", "ledger (budget=20", "replay ok"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out1.String())
		}
	}
}

// TestBudgetDenialsSurface checks an over-tight budget shows up as deny
// rows in the ledger summary rather than failing the run.
func TestBudgetDenialsSurface(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-analysts", "2", "-requests", "6", "-batch", "8",
		"-budget", "10", "-concurrency", "1", "-seed", "42"}
	if code := run(args, &out, io.Discard); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	// With budget 10 and 8-query batches every analyst overruns, so the
	// ledger summary must show deny-op cost and each net total must be
	// capped at the budget.
	lines := strings.Split(out.String(), "\n")
	ledgerAt := -1
	for i, line := range lines {
		if strings.HasPrefix(line, "ledger (budget=10") {
			ledgerAt = i
		}
	}
	if ledgerAt < 0 {
		t.Fatalf("no ledger summary:\n%s", out.String())
	}
	deniedTotal := 0
	for _, line := range lines[ledgerAt+2:] {
		fields := strings.Fields(line)
		if len(fields) != 5 {
			continue
		}
		var spent, refunded, denied, net int
		if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d %d", &spent, &refunded, &denied, &net); err != nil {
			t.Fatalf("unparseable ledger row %q: %v", line, err)
		}
		deniedTotal += denied
		if net > 10 {
			t.Errorf("analyst %s net %d exceeds budget 10", fields[0], net)
		}
	}
	if deniedTotal == 0 {
		t.Errorf("expected budget denials in:\n%s", out.String())
	}
}

// TestOverloadInjectionSheds drives a deliberately undersized sharded
// server (one active slot per shard, no waiting room, injected service
// time) with concurrent analysts: requests must be shed, the run must
// still exit 0 with a replay-clean ledger (shedding never corrupts
// budget accounting), and the bench summary must carry the shed/shards
// rows the CI gate requires.
func TestOverloadInjectionSheds(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "loadgen.jsonl")
	args := []string{"-analysts", "4", "-requests", "6", "-batch", "4",
		"-shards", "2", "-max-concurrent", "1", "-queue-depth", "-1",
		"-inject-delay", "10ms", "-concurrency", "4", "-metrics", journal}
	before := obs.Default().Snapshot()
	var out bytes.Buffer
	if code := run(args, &out, io.Discard); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	delta := obs.Default().Snapshot().Delta(before)
	if delta.Counters[remote.MetricShed] == 0 {
		t.Error("no requests shed under injected overload")
	}
	if !strings.Contains(out.String(), "replay ok") {
		t.Errorf("ledger did not replay cleanly under overload:\n%s", out.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("bench summary files = %v (err %v), want exactly one", matches, err)
	}
	sum, err := obs.ReadBenchFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range sum.Experiments {
		got[e.ID] = true
	}
	for _, id := range []string{"BENCH.qserver.shards", "BENCH.qserver.shed"} {
		if !got[id] {
			t.Errorf("bench summary missing row %s (have %v)", id, got)
		}
	}
}

// TestBenchRowsWritten checks -metrics produces a journal and a
// BENCH_<rev>.json summary carrying the BENCH.qserver.* rows the CI gate
// requires.
func TestBenchRowsWritten(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "loadgen.jsonl")
	args := []string{"-analysts", "2", "-requests", "4", "-batch", "4",
		"-metrics", journal}
	var out bytes.Buffer
	if code := run(args, &out, io.Discard); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("bench summary files = %v (err %v), want exactly one", matches, err)
	}
	sum, err := obs.ReadBenchFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range sum.Experiments {
		got[e.ID] = true
		if e.Error != "" {
			t.Errorf("row %s carries error %q", e.ID, e.Error)
		}
	}
	for _, id := range []string{"BENCH.qserver.load", "BENCH.qserver.p50", "BENCH.qserver.p99"} {
		if !got[id] {
			t.Errorf("bench summary missing row %s (have %v)", id, got)
		}
	}
}
