// Command loadgen drives a statistical-query workload against a qserver:
// N simulated analysts issue batched counting queries whose popularity
// follows a Zipf distribution over a shared query pool, with a tunable
// probability of adversarially repeating the previous batch verbatim (a
// cache-probing pattern — repeats are free under the server's answer
// cache, so a repeat-heavy analyst probes without spending budget).
//
// Usage:
//
//	loadgen [-url http://host:port] [-analysts 4] [-requests 16] [-batch 8]
//	        [-pool 64] [-zipf 1.3] [-repeat 0.25] [-backend exact]
//	        [-concurrency 1] [-seed 42] [-n 96] [-p 0.5] [-budget 0]
//	        [-shards 1] [-queue-depth 64] [-max-concurrent 16]
//	        [-inject-delay 0] [-metrics journal.jsonl]
//
// Without -url, loadgen starts an in-process qserver on a loopback
// listener (sized by -n/-p/-budget at -seed, partitioned by -shards with
// per-shard admission control from -queue-depth/-max-concurrent) and
// drives that, so a single command smoke-tests the whole service stack.
// -inject-delay adds artificial per-request service time to that server,
// which together with a small -max-concurrent and -queue-depth -1 (no
// waiting room) produces reproducible overload: shed requests surface in
// the qserver.shed counter, the BENCH.qserver.shed row, and — when a
// batch outlasts the client's retries — the workload table's shed column.
//
// The workload is precomputed deterministically from -seed (per-analyst
// RNGs derive from (seed, analyst index)), and stdout carries only
// deterministic results: the workload table and the server's privacy-loss
// ledger summary (fetched from /v1/ledger after the run, cross-checked
// with remote.ReplayLedger). At -concurrency 1 two runs with the same
// flags produce byte-identical stdout. Wall-clock results — throughput
// and exact-sample latency quantiles — go to stderr, and with -metrics
// also to a JSONL journal plus a BENCH_<rev>.json summary beside it
// (rows BENCH.qserver.load / BENCH.qserver.p50 / BENCH.qserver.p99,
// gated by `make ci` via benchdiff -require).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"singlingout/internal/obs"
	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/query/remote"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// request is one precomputed batch of one analyst's workload.
type request struct {
	queries [][]int
	repeat  bool // verbatim repeat of the previous batch (cache probe)
}

// analystRun is the outcome of one analyst's request sequence.
type analystRun struct {
	name      string
	requests  int
	queries   int
	repeats   int
	denied    int // batches refused with budget_exhausted
	shed      int // batches still overloaded after the client's retries
	latencies []time.Duration
	err       error
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "base URL of a running qserver (empty: start one in-process)")
	analysts := fs.Int("analysts", 4, "simulated analysts")
	requests := fs.Int("requests", 16, "requests per analyst")
	batch := fs.Int("batch", 8, "queries per request")
	pool := fs.Int("pool", 64, "distinct queries in the shared pool")
	zipfS := fs.Float64("zipf", 1.3, "Zipf exponent of query popularity (> 1)")
	repeat := fs.Float64("repeat", 0.25, "probability a request repeats the previous batch verbatim")
	backend := fs.String("backend", "exact", "server backend to query: exact, laplace, diffix")
	concurrency := fs.Int("concurrency", 1, "analysts running at once (1 = sequential, deterministic stdout)")
	seed := fs.Int64("seed", 42, "workload seed (and dataset seed for the in-process server)")
	n := fs.Int("n", 96, "in-process server: dataset size")
	p := fs.Float64("p", 0.5, "in-process server: Bernoulli parameter")
	budget := fs.Int("budget", 0, "in-process server: per-analyst fresh-query budget (0 = unlimited)")
	shards := fs.Int("shards", 1, "in-process server: cache/ledger partitions")
	queueDepth := fs.Int("queue-depth", 64, "in-process server: per-shard admission queue bound (-1 = no waiting room)")
	maxConcurrent := fs.Int("max-concurrent", 16, "in-process server: total active-request bound across shards")
	injectDelay := fs.Duration("inject-delay", 0, "in-process server: artificial per-request service time (overload testing)")
	metricsPath := fs.String("metrics", "", "write a JSONL journal here and a BENCH_<rev>.json summary beside it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *analysts < 1 || *requests < 1 || *batch < 1 || *pool < 2 || *zipfS <= 1 {
		fmt.Fprintln(stderr, "loadgen: need -analysts/-requests/-batch >= 1, -pool >= 2, -zipf > 1")
		return 2
	}
	if *concurrency < 1 || *concurrency > *analysts {
		*concurrency = *analysts
	}

	obs.Default().SetEnabled(true)
	var journal *obs.Journal
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
		defer f.Close()
		journal = obs.NewJournal(f)
	}

	ctx := context.Background()
	base := *url
	if base == "" {
		srv, err := remote.NewServer(remote.ServerConfig{
			N: *n, Seed: *seed, P: *p, Budget: *budget,
			Shards: *shards, QueueDepth: *queueDepth,
			MaxConcurrent: *maxConcurrent, Delay: *injectDelay,
		})
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
		hs := &http.Server{Handler: srv.Handler()}
		//lint:ignore boundedgo HTTP accept loop; its lifetime is bounded by Close below
		go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "loadgen: in-process qserver at %s (n=%d seed=%d budget=%d)\n", base, *n, *seed, *budget)
	}

	// Precompute every analyst's request sequence deterministically:
	// a shared query pool from (seed, 0), per-analyst draw RNGs from
	// (seed, analyst+1). Ranks are Zipf-distributed, so low-rank pool
	// entries are hot across analysts and the server's answer cache sees
	// a realistic skewed hit pattern.
	dialProbe, err := remote.Dial(ctx, base, remote.Options{Backend: *backend})
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	poolQueries := query.RandomSubsets(par.RNG(*seed, 0), dialProbe.N(), *pool)
	work := make([][]request, *analysts)
	runs := make([]analystRun, *analysts)
	for a := range work {
		rng := par.RNG(*seed, a+1)
		zipf := rand.NewZipf(rng, *zipfS, 1, uint64(*pool-1))
		seq := make([]request, *requests)
		for r := range seq {
			if r > 0 && rng.Float64() < *repeat {
				seq[r] = request{queries: seq[r-1].queries, repeat: true}
				continue
			}
			qs := make([][]int, *batch)
			for q := range qs {
				qs[q] = poolQueries[zipf.Uint64()]
			}
			seq[r] = request{queries: qs}
		}
		work[a] = seq
		runs[a] = analystRun{name: fmt.Sprintf("analyst%02d", a)}
	}

	if journal != nil {
		_ = journal.Emit(obs.Event{
			Phase: "run_start",
			Seed:  *seed,
			Sizes: map[string]int{
				"analysts": *analysts, "requests": *requests, "batch": *batch,
				"pool": *pool, "concurrency": *concurrency,
			},
		})
	}
	before := obs.Default().Snapshot()
	start := time.Now()

	// Drive the analysts, -concurrency at a time. Each analyst issues its
	// requests strictly in order (a later batch may depend on the cache
	// state its earlier ones created); refused batches are counted, not
	// fatal — an exhausted budget is the defense working.
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	for a := range work {
		wg.Add(1)
		sem <- struct{}{}
		//lint:ignore boundedgo fan-out is bounded by the -concurrency semaphore and joined below
		go func(a int) {
			defer wg.Done()
			defer func() { <-sem }()
			ar := &runs[a]
			o, err := remote.Dial(ctx, base, remote.Options{
				Backend: *backend, Analyst: ar.name, Journal: journal,
			})
			if err != nil {
				ar.err = err
				return
			}
			for _, req := range work[a] {
				t0 := time.Now()
				_, err := o.Answer(ctx, req.queries)
				ar.latencies = append(ar.latencies, time.Since(t0))
				ar.requests++
				ar.queries += len(req.queries)
				if req.repeat {
					ar.repeats++
				}
				if err != nil {
					if errors.Is(err, query.ErrBudgetExhausted) {
						ar.denied++
						continue
					}
					if errors.Is(err, query.ErrOverloaded) {
						// The server shed this batch past the client's retry
						// budget — under injected overload that is the system
						// working, not a failure.
						ar.shed++
						continue
					}
					ar.err = err
					return
				}
			}
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := false
	totalRequests, totalQueries := 0, 0
	var latencies []time.Duration
	for i := range runs {
		if runs[i].err != nil {
			fmt.Fprintf(stderr, "loadgen: %s: %v\n", runs[i].name, runs[i].err)
			failed = true
		}
		totalRequests += runs[i].requests
		totalQueries += runs[i].queries
		latencies = append(latencies, runs[i].latencies...)
	}

	// Wall-clock results to stderr and the journal: throughput plus
	// exact-sample latency quantiles (sorted samples, not histogram
	// estimates — loadgen holds every observation).
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := sampleQuantile(latencies, 0.50)
	p99 := sampleQuantile(latencies, 0.99)
	qps := float64(totalQueries) / elapsed.Seconds()
	// Server-side shed count over the run (meaningful for the in-process
	// server, which records into the same default registry).
	delta := obs.Default().Snapshot().Delta(before)
	shedTotal := int(delta.Counters[remote.MetricShed])
	fmt.Fprintf(stderr, "loadgen: %d requests (%d queries) in %.3fs — %.0f queries/s; latency p50=%s p99=%s; shed attempts=%d (%.2f per request)\n",
		totalRequests, totalQueries, elapsed.Seconds(), qps, p50, p99,
		shedTotal, float64(shedTotal)/float64(totalRequests))
	if journal != nil {
		load := obs.Event{
			Phase:   "experiment",
			ID:      "BENCH.qserver.load",
			Seed:    *seed,
			Seconds: elapsed.Seconds(),
			Sizes:   map[string]int{"requests": totalRequests, "queries": totalQueries},
		}
		if !delta.Empty() {
			load.Metrics = &delta
		}
		_ = journal.Emit(load)
		_ = journal.Emit(obs.Event{Phase: "experiment", ID: "BENCH.qserver.p50", Seed: *seed, Seconds: p50.Seconds()})
		_ = journal.Emit(obs.Event{Phase: "experiment", ID: "BENCH.qserver.p99", Seed: *seed, Seconds: p99.Seconds()})
		_ = journal.Emit(obs.Event{Phase: "experiment", ID: "BENCH.qserver.shards", Seed: *seed,
			Sizes: map[string]int{"shards": *shards}})
		_ = journal.Emit(obs.Event{Phase: "experiment", ID: "BENCH.qserver.shed", Seed: *seed,
			Sizes: map[string]int{"shed": shedTotal, "requests": totalRequests}})
		_ = journal.Emit(obs.Event{Phase: "run_end", Seed: *seed, Seconds: elapsed.Seconds()})
		if path, err := writeBench(*metricsPath); err != nil {
			fmt.Fprintf(stderr, "loadgen: bench summary: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(stderr, "loadgen: wrote %s\n", path)
		}
	}

	// Deterministic results to stdout: the workload table and the
	// server's ledger view of it.
	fmt.Fprintf(stdout, "loadgen workload: analysts=%d requests=%d batch=%d pool=%d zipf=%g repeat=%g backend=%s seed=%d\n",
		*analysts, *requests, *batch, *pool, *zipfS, *repeat, *backend, *seed)
	fmt.Fprintf(stdout, "%-10s %9s %9s %9s %9s %9s\n", "analyst", "requests", "queries", "repeats", "denied", "shed")
	for i := range runs {
		fmt.Fprintf(stdout, "%-10s %9d %9d %9d %9d %9d\n",
			runs[i].name, runs[i].requests, runs[i].queries, runs[i].repeats, runs[i].denied, runs[i].shed)
	}
	if err := printLedger(ctx, stdout, dialProbe, runs); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// printLedger fetches the server's privacy-loss ledger, verifies it
// replays to the served totals, and prints the per-analyst accounting.
func printLedger(ctx context.Context, w io.Writer, o *remote.Oracle, runs []analystRun) error {
	lr, err := o.FetchLedger(ctx, "")
	if err != nil {
		return err
	}
	totals, err := remote.ReplayLedger(lr.Entries)
	if err != nil {
		return fmt.Errorf("ledger replay: %w", err)
	}
	for analyst, want := range lr.Totals {
		if totals[analyst] != want {
			return fmt.Errorf("ledger replay: total[%s] = %d, server says %d", analyst, totals[analyst], want)
		}
	}
	type acct struct{ spent, refunded, denied, entries int }
	byAnalyst := map[string]*acct{}
	for _, e := range lr.Entries {
		a := byAnalyst[e.Analyst]
		if a == nil {
			a = &acct{}
			byAnalyst[e.Analyst] = a
		}
		a.entries++
		switch e.Op {
		case remote.LedgerSpend:
			a.spent += e.Cost
		case remote.LedgerRefund:
			a.refunded += e.Cost
		case remote.LedgerDeny:
			a.denied += e.Cost
		}
	}
	fmt.Fprintf(w, "ledger (budget=%d, %d entries, replay ok):\n", lr.Budget, len(lr.Entries))
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s\n", "analyst", "spent", "refunded", "denied", "net")
	for i := range runs {
		name := runs[i].name
		a := byAnalyst[name]
		if a == nil {
			a = &acct{}
		}
		fmt.Fprintf(w, "%-10s %9d %9d %9d %9d\n", name, a.spent, a.refunded, a.denied, totals[name])
	}
	return nil
}

// sampleQuantile returns the q-quantile of sorted samples (nearest-rank).
func sampleQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// writeBench folds the finished journal into a BENCH_<rev>.json summary
// written beside it.
func writeBench(journalPath string) (string, error) {
	f, err := os.Open(journalPath)
	if err != nil {
		return "", err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return "", err
	}
	sum := obs.SummarizeEvents(obs.GitRev("."), events)
	return sum.WriteFile(filepath.Dir(journalPath))
}
