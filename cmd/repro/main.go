// Command repro regenerates every experiment table in DESIGN.md's
// per-experiment index (E01–E16 and the ablations A01–A05). Its full-size
// output is what EXPERIMENTS.md archives.
//
// With -metrics it additionally records a structured JSONL run journal —
// one event per experiment with timing and the obs metric delta (oracle
// queries, simplex pivots, SAT conflicts, ...) — and writes a
// machine-readable BENCH_<rev>.json summary next to the journal.
//
// Usage:
//
//	repro [-seed 1] [-quick] [-id E02] [-metrics out.jsonl]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// Failing experiments no longer abort the run: every experiment is
// attempted, failures are reported together at the end, and the exit
// status is nonzero if any failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
)

// writeBench folds the finished journal back into a BENCH_<rev>.json
// summary written beside it.
func writeBench(journalPath string) (string, error) {
	f, err := os.Open(journalPath)
	if err != nil {
		return "", err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return "", err
	}
	sum := obs.SummarizeEvents(obs.GitRev("."), events)
	return sum.WriteFile(filepath.Dir(journalPath))
}

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "CI-size runs instead of publication sizes")
	id := flag.String("id", "", "run a single experiment id")
	metrics := flag.String("metrics", "", "write a JSONL run journal (and BENCH_<rev>.json beside it)")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	runners := experiments.All()
	if *id != "" {
		r, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", *id)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	var journal *obs.Journal
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		journal = obs.NewJournal(f)
		obs.Default().SetEnabled(true)
		if err := journal.Emit(obs.Event{
			Phase: "run_start",
			Seed:  *seed,
			Quick: *quick,
			Sizes: map[string]int{"experiments": len(runners)},
		}); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}

	emit := func(e obs.Event) {
		if journal == nil {
			return
		}
		if err := journal.Emit(e); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		}
	}

	// Attempt every experiment, collecting failures instead of aborting on
	// the first: a broken harness must not mask results from the others.
	var failures []string
	runStart := time.Now()
	for _, r := range runners {
		start := time.Now()
		var tab *experiments.Table
		var delta obs.Snapshot
		var err error
		if journal != nil {
			tab, delta, err = r.RunInstrumented(*seed, *quick)
		} else {
			tab, err = r.Run(*seed, *quick)
		}
		elapsed := time.Since(start)
		ev := obs.Event{
			Phase:   "experiment",
			ID:      r.ID,
			Seed:    *seed,
			Quick:   *quick,
			Seconds: elapsed.Seconds(),
		}
		if !delta.Empty() {
			ev.Metrics = &delta
		}
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", r.ID, err))
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.ID, err)
			ev.Error = err.Error()
			emit(ev)
			continue
		}
		ev.Sizes = map[string]int{"rows": len(tab.Rows)}
		emit(ev)
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %s]\n\n", r.ID, elapsed.Round(time.Millisecond))
	}
	emit(obs.Event{
		Phase:   "run_end",
		Seed:    *seed,
		Quick:   *quick,
		Seconds: time.Since(runStart).Seconds(),
		Sizes:   map[string]int{"experiments": len(runners), "failures": len(failures)},
	})

	if journal != nil {
		if path, err := writeBench(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		} else {
			fmt.Printf("  [journal %s, summary %s]\n", *metrics, path)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d of %d experiments failed:\n", len(failures), len(runners))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}
