// Command repro regenerates every experiment table in DESIGN.md's
// per-experiment index (E01–E16 and the ablations A01–A05). Its full-size
// output is what EXPERIMENTS.md archives.
//
// With -metrics it additionally records a structured JSONL run journal —
// one event per experiment with timing and the obs metric delta (oracle
// queries, simplex pivots, SAT conflicts, ...) — and writes a
// machine-readable BENCH_<rev>.json summary next to the journal.
//
// With -serve the same observability is live: an HTTP endpoint exposes
// Prometheus /metrics, the JSON /snapshot, /healthz (current experiment
// phase + uptime), an SSE /journal tail and the stdlib /debug/pprof/
// handlers while the run executes. With -spans the worker pool's per-item
// spans are exported as a Chrome trace-event JSON timeline (one lane per
// pool worker; load it at ui.perfetto.dev).
//
// Usage:
//
//	repro [-seed 1] [-quick] [-id E02] [-workers N] [-metrics out.jsonl]
//	      [-serve :8088] [-spans out.trace.json]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// -workers sizes the worker pool the parallel harnesses (E01, E02, E11,
// E13, E19) fan out on (0 = GOMAXPROCS). Per-item randomness derives from
// (seed, item index), so tables are byte-identical at every worker count.
// With -metrics, a sequential-vs-parallel census probe, a remote
// query-throughput probe (loopback qserver, batch=1 vs batch=256) and an
// LP-decoder probe (cold vs warm-started revised simplex) are also timed
// and land as BENCH.census / BENCH.remote / BENCH.lp rows in the
// BENCH_<rev>.json summary.
//
// Failing experiments no longer abort the run: every experiment is
// attempted, failures are reported together at the end, and the exit
// status is nonzero if any failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"singlingout/internal/census"
	"singlingout/internal/experiments"
	"singlingout/internal/obs"
	"singlingout/internal/obs/serve"
	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/query/remote"
	"singlingout/internal/recon"
	"singlingout/internal/synth"
)

// benchCensusProbe times the same census SAT reconstruction sequentially
// and on a GOMAXPROCS-sized pool, emitting one "experiment"-phase event
// per configuration so the sequential-vs-parallel comparison lands as
// BENCH.census rows in BENCH_<rev>.json. The reconstructions themselves
// are deterministic, so both rows describe identical work.
func benchCensusProbe(emit func(obs.Event), seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 300, ZIPs: 3, BlocksPerZIP: 12})
	if err != nil {
		return err
	}
	cfg := census.DefaultConfig()
	tables := census.Tabulate(pop, cfg)
	// Always give the parallel row a pool of at least 2 so the two BENCH
	// rows are distinct even on a single-CPU host (where the speedup is
	// expected to be ~1x).
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 2 {
		parWorkers = 2
	}
	for _, workers := range []int{1, parWorkers} {
		start := time.Now()
		if _, err := census.ReconstructAll(tables, cfg, 300000, workers); err != nil {
			return err
		}
		emit(obs.Event{
			Phase:   "experiment",
			ID:      fmt.Sprintf("BENCH.census.workers=%d", workers),
			Seed:    seed,
			Seconds: time.Since(start).Seconds(),
			Sizes:   map[string]int{"blocks": len(tables), "workers": workers},
		})
	}
	return nil
}

// benchRemoteProbe times raw statistical-query throughput over the wire:
// an in-process qserver (loopback HTTP, exact backend) answers the same
// workload once a query at a time and once in large batches, landing as
// BENCH.remote.batch=N rows in BENCH_<rev>.json. Each configuration uses
// its own analyst and its own query set, so neither the budget accounting
// nor the server's answer cache couples the two rows.
func benchRemoteProbe(emit func(obs.Event), seed int64) error {
	srv, err := remote.NewServer(remote.ServerConfig{N: 128, Seed: seed, P: 0.5})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	defer hs.Close()
	ctx := context.Background()
	const m = 512
	for i, batch := range []int{1, 256} {
		o, err := remote.Dial(ctx, "http://"+ln.Addr().String(), remote.Options{
			Analyst:  fmt.Sprintf("bench-batch-%d", batch),
			MaxBatch: batch,
		})
		if err != nil {
			return err
		}
		queries := query.RandomSubsets(par.RNG(seed, i), o.N(), m)
		start := time.Now()
		if _, err := o.Answer(ctx, queries); err != nil {
			return err
		}
		emit(obs.Event{
			Phase:   "experiment",
			ID:      fmt.Sprintf("BENCH.remote.batch=%d", batch),
			Seed:    seed,
			Seconds: time.Since(start).Seconds(),
			Sizes:   map[string]int{"queries": m, "batch": batch},
		})
	}
	return nil
}

// benchLPProbe times the LP-decoding workhorse directly: one
// reconstruction LP shape (n=64, m=4n random subset queries) decoded
// against six noise levels, once with a fresh decoder per solve (cold)
// and once through a single recon.Decoder that warm-starts every solve
// after the first from the previous optimal basis (warm) — the access
// pattern of the E02 harness. Both configurations decode identical answer
// vectors. The metric deltas put lp.pivots / lp.warm_starts in the
// BENCH.lp rows, so benchdiff gates the solver's pivot counts and the
// warm-start machinery alongside wall clock.
func benchLPProbe(emit func(obs.Event), seed int64) error {
	const n = 64
	rng := par.RNG(seed, 0)
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 4*n)
	alphas := []float64{0, 1, 2, 4, 8, 16}
	answerSets := make([][]float64, len(alphas))
	for ai, alpha := range alphas {
		ans := make([]float64, len(queries))
		for qi, q := range queries {
			s := 0.0
			for _, i := range q {
				s += float64(x[i])
			}
			ans[qi] = s + (rng.Float64()*2-1)*alpha
		}
		answerSets[ai] = ans
	}
	ctx := context.Background()
	for _, mode := range []string{"cold", "warm"} {
		var dec *recon.Decoder
		before := obs.Default().Snapshot()
		start := time.Now()
		for _, ans := range answerSets {
			if dec == nil || mode == "cold" {
				var err error
				dec, err = recon.NewDecoder(n, queries, recon.L1Slack)
				if err != nil {
					return err
				}
			}
			if _, _, err := dec.Decode(ctx, ans); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		delta := obs.Default().Snapshot().Delta(before)
		emit(obs.Event{
			Phase:   "experiment",
			ID:      "BENCH.lp." + mode,
			Seed:    seed,
			Seconds: elapsed.Seconds(),
			Sizes:   map[string]int{"n": n, "queries": 4 * n, "solves": len(alphas)},
			Metrics: &delta,
		})
	}
	return nil
}

// benchConvergeProbe measures the anytime LP attack's query efficiency:
// one streamed n=64, m=4n, chunk=16 reconstruction over an exact oracle,
// reporting the cumulative query count at which 50% and 90% accuracy
// were first reached as BENCH.converge.q50/q90 rows. The workload and
// oracle are deterministic per seed, so the converge.queries counter the
// rows carry is noise-free across hosts — benchdiff gates it
// lower-is-better (more queries for the same accuracy = weaker decoder)
// and ignores the rows' wall clock.
func benchConvergeProbe(emit func(obs.Event), seed int64) error {
	const n, chunk = 64, 16
	x := synth.BinaryDataset(par.RNG(seed, 1), n, 0.5)
	start := time.Now()
	_, res, err := experiments.E02StreamOverOracle(context.Background(), &query.Exact{X: x}, x, seed, chunk, obs.NewCurveSet())
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()
	for _, row := range []struct {
		id string
		th float64
	}{{"BENCH.converge.q50", 0.5}, {"BENCH.converge.q90", 0.9}} {
		q, ok := res.ToAccuracy[row.th]
		if !ok {
			return fmt.Errorf("accuracy %.0f%% never reached over %d queries", 100*row.th, res.Queries)
		}
		emit(obs.Event{
			Phase:   "experiment",
			ID:      row.id,
			Seed:    seed,
			Seconds: elapsed,
			Sizes:   map[string]int{"n": n, "queries": res.Queries, "chunk": chunk},
			Metrics: &obs.Snapshot{Counters: map[string]int64{obs.ConvergeCounter: int64(q)}},
		})
	}
	return nil
}

// writeBench folds the finished journal back into a BENCH_<rev>.json
// summary written beside it.
func writeBench(journalPath string) (string, error) {
	f, err := os.Open(journalPath)
	if err != nil {
		return "", err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return "", err
	}
	sum := obs.SummarizeEvents(obs.GitRev("."), events)
	return sum.WriteFile(filepath.Dir(journalPath))
}

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "CI-size runs instead of publication sizes")
	id := flag.String("id", "", "run a single experiment id")
	workers := flag.Int("workers", 0, "worker-pool size for parallel harnesses (0 = GOMAXPROCS); output is identical at any value")
	tool := serve.AddToolFlags(flag.CommandLine, "repro")
	flag.Parse()
	experiments.SetWorkers(*workers)

	if err := tool.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	// ^C / SIGTERM cancels the context threaded through every harness, so
	// an interrupted run still flushes its journal and profiles below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	status := run(ctx, tool, *seed, *quick, *id)
	stopSignals()
	// Close flushes profiles, the span timeline and the journal; losing any
	// of them is a failure even when the experiments succeeded.
	if err := tool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

func run(ctx context.Context, tool *serve.Tool, seed int64, quick bool, id string) int {
	runners := experiments.All()
	if id != "" {
		r, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", id)
			return 1
		}
		runners = []experiments.Runner{r}
	}

	tool.Emit(obs.Event{
		Phase: "run_start",
		Seed:  seed,
		Quick: quick,
		Sizes: map[string]int{"experiments": len(runners)},
	})

	// Attempt every experiment, collecting failures instead of aborting on
	// the first: a broken harness must not mask results from the others.
	var failures []string
	runStart := time.Now()
	for _, r := range runners {
		tool.SetPhase(r.ID)
		start := time.Now()
		var tab *experiments.Table
		var delta obs.Snapshot
		var err error
		if tool.Observing() {
			tab, delta, err = r.RunInstrumented(ctx, seed, quick)
		} else {
			tab, err = r.Run(ctx, seed, quick)
		}
		elapsed := time.Since(start)
		ev := obs.Event{
			Phase:   "experiment",
			ID:      r.ID,
			Seed:    seed,
			Quick:   quick,
			Seconds: elapsed.Seconds(),
		}
		if !delta.Empty() {
			ev.Metrics = &delta
		}
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", r.ID, err))
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.ID, err)
			ev.Error = err.Error()
			tool.Emit(ev)
			continue
		}
		ev.Sizes = map[string]int{"rows": len(tab.Rows)}
		tool.Emit(ev)
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		fmt.Printf("  [%s completed in %s]\n\n", r.ID, elapsed.Round(time.Millisecond))
	}
	if tool.Observing() {
		tool.SetPhase("bench_probe")
		if err := benchCensusProbe(tool.Emit, seed); err != nil {
			fmt.Fprintf(os.Stderr, "repro: bench probe: %v\n", err)
		}
		if err := benchRemoteProbe(tool.Emit, seed); err != nil {
			fmt.Fprintf(os.Stderr, "repro: remote bench probe: %v\n", err)
		}
		if err := benchLPProbe(tool.Emit, seed); err != nil {
			fmt.Fprintf(os.Stderr, "repro: lp bench probe: %v\n", err)
		}
		if err := benchConvergeProbe(tool.Emit, seed); err != nil {
			fmt.Fprintf(os.Stderr, "repro: converge bench probe: %v\n", err)
		}
	}
	tool.Emit(obs.Event{
		Phase:   "run_end",
		Seed:    seed,
		Quick:   quick,
		Seconds: time.Since(runStart).Seconds(),
		Sizes:   map[string]int{"experiments": len(runners), "failures": len(failures)},
	})
	tool.SetPhase("done")

	if path := tool.MetricsPath(); path != "" {
		if benchPath, err := writeBench(path); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		} else {
			fmt.Printf("  [journal %s, summary %s]\n", path, benchPath)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d of %d experiments failed:\n", len(failures), len(runners))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		return 1
	}
	return 0
}
