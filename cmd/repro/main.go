// Command repro regenerates every experiment table in DESIGN.md's
// per-experiment index (E01–E16 and the ablations A01–A05). Its full-size
// output is what EXPERIMENTS.md archives.
//
// Usage:
//
//	repro [-seed 1] [-quick] [-id E02]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"singlingout/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "CI-size runs instead of publication sizes")
	id := flag.String("id", "", "run a single experiment id")
	flag.Parse()

	runners := experiments.All()
	if *id != "" {
		r, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", *id)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %s]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
