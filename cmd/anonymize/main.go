// Command anonymize k-anonymizes population microdata (CSV in the synth
// population schema) with Mondrian or full-domain generalization, reports
// information-loss and diversity metrics, and optionally audits the
// release with the Theorem 2.10 predicate-singling-out attack.
//
// Usage:
//
//	anonymize -generate 5000 -out raw.csv          # make synthetic input
//	anonymize -in raw.csv -k 5 -alg mondrian -audit
//
// The shared observability flags (-metrics for a JSONL run journal,
// -serve for the live HTTP endpoint, -spans for the Chrome trace-event
// worker timeline) and the standard profiling flags (-cpuprofile,
// -memprofile, -trace) are also accepted.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
	"singlingout/internal/obs"
	"singlingout/internal/obs/serve"
	"singlingout/internal/pso"
	"singlingout/internal/synth"
)

type options struct {
	generate int
	in, out  string
	k        int
	alg      string
	qi       string
	lDiv     int
	audit    bool
	seed     int64
}

func main() {
	var o options
	flag.IntVar(&o.generate, "generate", 0, "generate a synthetic population of this size and exit")
	flag.StringVar(&o.in, "in", "", "input CSV (synth population schema)")
	flag.StringVar(&o.out, "out", "", "output CSV path (default stdout summary only)")
	flag.IntVar(&o.k, "k", 5, "anonymity parameter k")
	flag.StringVar(&o.alg, "alg", "mondrian", "anonymizer: mondrian or fulldomain")
	flag.StringVar(&o.qi, "qi", "zip,birthdate,sex", "comma-separated quasi-identifier attributes")
	flag.IntVar(&o.lDiv, "ldiv", 0, "require at least this ℓ-diversity of the disease attribute (mondrian only)")
	flag.BoolVar(&o.audit, "audit", false, "run the Theorem 2.10 PSO attack against the release")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	tool := serve.AddToolFlags(flag.CommandLine, "anonymize")
	flag.Parse()

	if err := tool.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "anonymize: %v\n", err)
		os.Exit(1)
	}
	status := 0
	if err := run(tool, o); err != nil {
		fmt.Fprintf(os.Stderr, "anonymize: %v\n", err)
		status = 1
	}
	if err := tool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "anonymize: %v\n", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

func run(tool *serve.Tool, o options) error {
	rng := rand.New(rand.NewSource(o.seed))
	cfg := synth.PopulationConfig{N: o.generate, ZIPs: 20, BlocksPerZIP: 10}
	tool.Emit(obs.Event{Phase: "run_start", Seed: o.seed})

	if o.generate > 0 {
		tool.SetPhase("generate")
		start := time.Now()
		pop, err := synth.Population(rng, cfg)
		if err != nil {
			return err
		}
		w := os.Stdout
		if o.out != "" {
			f, err := os.Create(o.out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := pop.WriteCSV(w); err != nil {
			return err
		}
		tool.Emit(obs.Event{
			Phase:   "experiment",
			ID:      "anonymize.generate",
			Seed:    o.seed,
			Seconds: time.Since(start).Seconds(),
			Sizes:   map[string]int{"rows": pop.Len()},
		})
		tool.Emit(obs.Event{Phase: "run_end", Seed: o.seed, Seconds: time.Since(start).Seconds()})
		tool.SetPhase("done")
		return nil
	}

	if o.in == "" {
		return fmt.Errorf("need -in CSV or -generate N (see -h)")
	}
	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	defer f.Close()
	// The CSV must match the synth population schema; infer the ZIP count
	// from the widest possible config (ReadCSV validates domains).
	schema := synth.PopulationSchema(synth.PopulationConfig{N: 1, ZIPs: 90000, BlocksPerZIP: 10})
	d, err := dataset.ReadCSV(f, schema)
	if err != nil {
		return err
	}

	var qi []int
	for _, name := range strings.Split(o.qi, ",") {
		i, ok := d.Schema.Index(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("unknown attribute %q", name)
		}
		qi = append(qi, i)
	}
	sens := d.Schema.MustIndex(synth.AttrDisease)

	runStart := time.Now()
	tool.SetPhase(o.alg)
	anonStart := time.Now()
	var rel *kanon.Release
	switch o.alg {
	case "mondrian":
		rel, err = kanon.Mondrian(d, qi, o.k, kanon.MondrianOptions{
			Policy:        kanon.RelaxedBalanced,
			MinLDiversity: o.lDiv,
			SensitiveAttr: sens,
		})
	case "fulldomain":
		hs := map[int]dataset.Hierarchy{}
		for _, a := range qi {
			attr := d.Schema.Attrs[a]
			switch attr.Name {
			case synth.AttrZIP:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, 10, 100, 1000, attr.Max-attr.Min+1)
			case synth.AttrBirthDate:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, 365, 3650, attr.Max-attr.Min+1)
			case synth.AttrAge:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, 5, 20, attr.Max-attr.Min+1)
			default:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, attr.Max-attr.Min+1)
			}
			if err != nil {
				return err
			}
		}
		rel, _, err = kanon.FullDomain(d, qi, o.k, kanon.FullDomainOptions{
			Hierarchies: hs,
			MaxSuppress: d.Len() / 20,
		})
	default:
		return fmt.Errorf("unknown algorithm %q", o.alg)
	}
	if err != nil {
		return err
	}
	tool.Emit(obs.Event{
		Phase:   "experiment",
		ID:      "anonymize." + o.alg,
		Seed:    o.seed,
		Seconds: time.Since(anonStart).Seconds(),
		Sizes: map[string]int{
			"records":    d.Len(),
			"classes":    len(rel.Classes),
			"suppressed": len(rel.Suppressed),
			"k":          o.k,
		},
	})

	fmt.Printf("release: %d classes, %d suppressed of %d records (k=%d, %s)\n",
		len(rel.Classes), len(rel.Suppressed), d.Len(), o.k, o.alg)
	fmt.Printf("  k-anonymous:      %v\n", rel.IsKAnonymous())
	fmt.Printf("  discernibility:   %d\n", kanon.Discernibility(rel, d.Len()))
	fmt.Printf("  avg class size:   %.2f×k\n", kanon.AvgClassSize(rel))
	fmt.Printf("  gen. info loss:   %.3f\n", kanon.GenILoss(rel))
	fmt.Printf("  ℓ-diversity:      %d\n", kanon.LDiversity(rel, d, sens))
	fmt.Printf("  t-closeness:      %.3f\n", kanon.TCloseness(rel, d, sens))

	if o.out != "" {
		g, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := kanon.WriteGeneralizedCSV(g, d, rel); err != nil {
			return err
		}
		fmt.Printf("wrote generalized release to %s\n", o.out)
	}

	if o.audit {
		tool.SetPhase("audit")
		auditStart := time.Now()
		sampler := synth.IndividualSampler(synth.PopulationConfig{N: 1, ZIPs: 90000, BlocksPerZIP: 10})
		att := pso.KAnonClass{Sample: sampler, WeightSamples: 2000}
		p, err := att.Attack(rng, rel, d.Len())
		if err != nil {
			return err
		}
		count := pso.IsolationCount(p, d)
		tool.Emit(obs.Event{
			Phase:   "experiment",
			ID:      "anonymize.audit",
			Seed:    o.seed,
			Seconds: time.Since(auditStart).Seconds(),
			Sizes:   map[string]int{"matches": count},
		})
		fmt.Printf("PSO audit (Theorem 2.10 attack): predicate %s\n", p.Describe())
		fmt.Printf("  matches %d record(s) in the raw data; isolation (singling out) %v\n", count, count == 1)
		fmt.Printf("  expected isolation probability ≈ 37%% per attempt\n")
	}
	tool.Emit(obs.Event{Phase: "run_end", Seed: o.seed, Seconds: time.Since(runStart).Seconds()})
	tool.SetPhase("done")
	return nil
}
