// Command anonymize k-anonymizes population microdata (CSV in the synth
// population schema) with Mondrian or full-domain generalization, reports
// information-loss and diversity metrics, and optionally audits the
// release with the Theorem 2.10 predicate-singling-out attack.
//
// Usage:
//
//	anonymize -generate 5000 -out raw.csv          # make synthetic input
//	anonymize -in raw.csv -k 5 -alg mondrian -audit
//
// The standard profiling flags (-cpuprofile, -memprofile, -trace) are
// also accepted.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
	"singlingout/internal/obs"
	"singlingout/internal/pso"
	"singlingout/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "anonymize: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	generate := flag.Int("generate", 0, "generate a synthetic population of this size and exit")
	in := flag.String("in", "", "input CSV (synth population schema)")
	out := flag.String("out", "", "output CSV path (default stdout summary only)")
	k := flag.Int("k", 5, "anonymity parameter k")
	alg := flag.String("alg", "mondrian", "anonymizer: mondrian or fulldomain")
	qiFlag := flag.String("qi", "zip,birthdate,sex", "comma-separated quasi-identifier attributes")
	lDiv := flag.Int("ldiv", 0, "require at least this ℓ-diversity of the disease attribute (mondrian only)")
	audit := flag.Bool("audit", false, "run the Theorem 2.10 PSO attack against the release")
	seed := flag.Int64("seed", 1, "random seed")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	rng := rand.New(rand.NewSource(*seed))
	cfg := synth.PopulationConfig{N: *generate, ZIPs: 20, BlocksPerZIP: 10}

	if *generate > 0 {
		pop, err := synth.Population(rng, cfg)
		if err != nil {
			return err
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return pop.WriteCSV(w)
	}

	if *in == "" {
		return fmt.Errorf("need -in CSV or -generate N (see -h)")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	// The CSV must match the synth population schema; infer the ZIP count
	// from the widest possible config (ReadCSV validates domains).
	schema := synth.PopulationSchema(synth.PopulationConfig{N: 1, ZIPs: 90000, BlocksPerZIP: 10})
	d, err := dataset.ReadCSV(f, schema)
	if err != nil {
		return err
	}

	var qi []int
	for _, name := range strings.Split(*qiFlag, ",") {
		i, ok := d.Schema.Index(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("unknown attribute %q", name)
		}
		qi = append(qi, i)
	}
	sens := d.Schema.MustIndex(synth.AttrDisease)

	var rel *kanon.Release
	switch *alg {
	case "mondrian":
		rel, err = kanon.Mondrian(d, qi, *k, kanon.MondrianOptions{
			Policy:        kanon.RelaxedBalanced,
			MinLDiversity: *lDiv,
			SensitiveAttr: sens,
		})
	case "fulldomain":
		hs := map[int]dataset.Hierarchy{}
		for _, a := range qi {
			attr := d.Schema.Attrs[a]
			switch attr.Name {
			case synth.AttrZIP:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, 10, 100, 1000, attr.Max-attr.Min+1)
			case synth.AttrBirthDate:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, 365, 3650, attr.Max-attr.Min+1)
			case synth.AttrAge:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, 5, 20, attr.Max-attr.Min+1)
			default:
				hs[a], err = dataset.NewIntRangeHierarchy(attr.Min, attr.Max, attr.Max-attr.Min+1)
			}
			if err != nil {
				return err
			}
		}
		rel, _, err = kanon.FullDomain(d, qi, *k, kanon.FullDomainOptions{
			Hierarchies: hs,
			MaxSuppress: d.Len() / 20,
		})
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}

	fmt.Printf("release: %d classes, %d suppressed of %d records (k=%d, %s)\n",
		len(rel.Classes), len(rel.Suppressed), d.Len(), *k, *alg)
	fmt.Printf("  k-anonymous:      %v\n", rel.IsKAnonymous())
	fmt.Printf("  discernibility:   %d\n", kanon.Discernibility(rel, d.Len()))
	fmt.Printf("  avg class size:   %.2f×k\n", kanon.AvgClassSize(rel))
	fmt.Printf("  gen. info loss:   %.3f\n", kanon.GenILoss(rel))
	fmt.Printf("  ℓ-diversity:      %d\n", kanon.LDiversity(rel, d, sens))
	fmt.Printf("  t-closeness:      %.3f\n", kanon.TCloseness(rel, d, sens))

	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := kanon.WriteGeneralizedCSV(g, d, rel); err != nil {
			return err
		}
		fmt.Printf("wrote generalized release to %s\n", *out)
	}

	if *audit {
		sampler := synth.IndividualSampler(synth.PopulationConfig{N: 1, ZIPs: 90000, BlocksPerZIP: 10})
		att := pso.KAnonClass{Sample: sampler, WeightSamples: 2000}
		p, err := att.Attack(rng, rel, d.Len())
		if err != nil {
			return err
		}
		count := pso.IsolationCount(p, d)
		fmt.Printf("PSO audit (Theorem 2.10 attack): predicate %s\n", p.Describe())
		fmt.Printf("  matches %d record(s) in the raw data; isolation (singling out) %v\n", count, count == 1)
		fmt.Printf("  expected isolation probability ≈ 37%% per attempt\n")
	}
	return nil
}
