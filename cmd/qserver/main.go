// Command qserver serves the networked statistical-query interface: a
// synthetic dataset behind the exact, sticky-Laplace and Diffix-style
// counting-query backends of internal/query/remote, with per-analyst
// budget accounting, an answer cache, bounded concurrent request
// handling, and the repository's live observability surface on the same
// listener.
//
// Usage:
//
//	qserver [-addr :8090] [-n 96] [-seed 42] [-p 0.5]
//	        [-eps 1] [-sd 1.5] [-threshold 8]
//	        [-budget 0] [-max-batch 4096] [-max-concurrent 16] [-workers 0]
//	        [-shards 1] [-queue-depth 64] [-wal ledger.wal] [-wal-sync]
//	        [-metrics journal.jsonl]
//
// -shards partitions the answer cache and privacy-loss ledger across
// independent locks; -queue-depth bounds each shard's admission queue
// (excess load is shed with a typed "overloaded" refusal). -wal makes
// the ledger durable: every spend/refund/deny is appended to the file
// before it takes effect, and a restart replays it — spent budget
// survives the restart.
//
// Endpoints:
//
//	GET  /v1/meta                dataset/backends/budget metadata
//	POST /v1/query/{backend}     answer a batch (backend: exact, laplace, diffix)
//	GET  /v1/ledger (or /ledger) append-only privacy-loss ledger (?analyst= filters)
//	GET  /metrics /snapshot /healthz /journal /trace /debug/pprof/   observability
//
// Attacks run against it with `reconstruct -remote http://host:port`; the
// dataset never leaves the server — evaluation harnesses regenerate it
// locally from the advertised (seed, n, p).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"singlingout/internal/obs"
	"singlingout/internal/obs/serve"
	"singlingout/internal/query/remote"
)

func main() {
	os.Exit(run(os.Args[1:], nil))
}

// run is main minus the process exit, with an optional ready callback
// receiving the bound address (tests use it to dial the server).
func run(args []string, ready func(addr string)) int {
	fs := flag.NewFlagSet("qserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address (:0 picks a port)")
	n := fs.Int("n", 96, "dataset size")
	seed := fs.Int64("seed", 42, "dataset + sticky-noise seed")
	p := fs.Float64("p", 0.5, "Bernoulli parameter of the protected bit")
	eps := fs.Float64("eps", 1, "laplace backend: per-query epsilon")
	sd := fs.Float64("sd", 1.5, "diffix backend: sticky noise standard deviation")
	threshold := fs.Int("threshold", 8, "diffix backend: low-count suppression bound")
	budget := fs.Int("budget", 0, "per-analyst fresh-query budget (0 = unlimited)")
	maxBatch := fs.Int("max-batch", 4096, "largest accepted query batch")
	maxConcurrent := fs.Int("max-concurrent", 16, "concurrent request bound")
	workers := fs.Int("workers", 0, "pool workers per fresh sub-batch (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "cache/ledger partitions (consistent hashing; answers are shard-count invariant)")
	queueDepth := fs.Int("queue-depth", 64, "per-shard admission queue bound (-1 = no waiting room)")
	walPath := fs.String("wal", "", "ledger write-ahead log file (durable budget accounting across restarts)")
	walSync := fs.Bool("wal-sync", false, "fsync the ledger WAL after every entry")
	metricsPath := fs.String("metrics", "", "write a JSONL journal (one event per query batch) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The whole service is one long observation; metrics and span tracing
	// are always on — /trace serves the collected server-side spans so a
	// remote client can merge them into its own Chrome trace export.
	obs.Default().SetEnabled(true)
	obs.DefaultTracer().SetEnabled(true)
	var journalFile *os.File
	journalSink := io.Writer(io.Discard) // SSE /journal still streams events
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qserver: %v\n", err)
			return 1
		}
		journalFile = f
		journalSink = f
		defer f.Close()
	}
	journal := obs.NewJournal(journalSink)

	rsrv, err := remote.NewServer(remote.ServerConfig{
		N: *n, Seed: *seed, P: *p,
		Eps: *eps, SD: *sd, Threshold: *threshold,
		Budget: *budget, MaxBatch: *maxBatch,
		MaxConcurrent: *maxConcurrent, Workers: *workers,
		Shards: *shards, QueueDepth: *queueDepth,
		WALPath: *walPath, WALSync: *walSync,
		Journal: journal,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qserver: %v\n", err)
		return 1
	}
	defer rsrv.Close()
	osrv := serve.New(obs.Default(), journal)
	osrv.SetPhase("serving")

	// One listener: the query API under /v1/ (plus the /ledger alias for
	// the privacy-loss ledger), the observability surface (Prometheus
	// /metrics, /snapshot, /healthz, SSE /journal, /trace, pprof) at /.
	mux := http.NewServeMux()
	mux.Handle("/v1/", rsrv.Handler())
	mux.Handle("/ledger", rsrv.Handler())
	mux.Handle("/", osrv.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qserver: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	meta := rsrv.Meta()
	fmt.Fprintf(os.Stderr, "qserver: dataset n=%d seed=%d p=%g; backends %v; budget=%d shards=%d wal=%q\n",
		meta.N, meta.Seed, meta.P, meta.Backends, meta.Budget, *shards, *walPath)
	fmt.Fprintf(os.Stderr, "qserver: query API at http://%s/v1/ — observability at http://%s/\n", bound, bound)
	_ = journal.Emit(obs.Event{
		Phase: "serve_start",
		Seed:  *seed,
		Sizes: map[string]int{"n": *n, "budget": *budget, "max_batch": *maxBatch, "max_concurrent": *maxConcurrent, "shards": *shards},
	})

	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if ready != nil {
		ready(bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	status := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "qserver: shutting down")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "qserver: %v\n", err)
			status = 1
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "qserver: shutdown: %v\n", err)
		status = 1
	}
	_ = journal.Emit(obs.Event{Phase: "serve_end", Seed: *seed})
	if journalFile != nil {
		if err := journalFile.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "qserver: journal: %v\n", err)
			status = 1
		}
	}
	return status
}
