package main

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"singlingout/internal/obs"
	"singlingout/internal/query/remote"
)

// TestServeRoundTrip boots the real qserver main loop on a random port,
// drives the query API and the observability surface over HTTP, then
// shuts it down with SIGTERM and checks the journal it wrote.
func TestServeRoundTrip(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-n", "24", "-seed", "7", "-budget", "50",
			"-metrics", journalPath,
		}, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	o, err := remote.Dial(ctx, base, remote.Options{Analyst: "t", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	meta := o.Meta()
	if meta.N != 24 || meta.Seed != 7 || meta.Budget != 50 {
		t.Fatalf("meta = %+v", meta)
	}
	answers, err := o.Answer(ctx, [][]int{{0, 1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	truth := remote.Dataset(7, 24, 0.5)
	if want := float64(truth[0] + truth[1] + truth[2]); answers[0] != want {
		t.Errorf("exact answer = %v, want %v", answers[0], want)
	}

	// The observability surface shares the listener.
	for _, path := range []string{"/healthz", "/metrics", "/snapshot"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s returned %s", path, resp.Status)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case status := <-done:
		if status != 0 {
			t.Fatalf("run exited %d", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}

	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	for _, e := range events {
		phases = append(phases, e.Phase)
	}
	joined := strings.Join(phases, ",")
	if !strings.Contains(joined, "serve_start") || !strings.Contains(joined, "query_batch") || !strings.Contains(joined, "serve_end") {
		t.Errorf("journal phases = %v, want serve_start/query_batch/serve_end", phases)
	}
}

// TestRestartResumesWAL boots qserver with a ledger WAL, spends budget,
// SIGTERMs it, boots a second process over the same WAL (sharded this
// time), and checks the spend survived — the full-process version of the
// restart-durability guarantee.
func TestRestartResumesWAL(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ledger.wal")
	boot := func(extra ...string) (string, chan int) {
		ready := make(chan string, 1)
		done := make(chan int, 1)
		args := append([]string{
			"-addr", "127.0.0.1:0", "-n", "24", "-seed", "7", "-budget", "10", "-wal", walPath,
		}, extra...)
		go func() { done <- run(args, func(addr string) { ready <- addr }) }()
		select {
		case addr := <-ready:
			return "http://" + addr, done
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
			return "", nil
		}
	}
	stop := func(done chan int) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case status := <-done:
			if status != 0 {
				t.Fatalf("run exited %d", status)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server never shut down")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	base, done := boot()
	o, err := remote.Dial(ctx, base, remote.Options{Analyst: "alice", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Answer(ctx, [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}}); err != nil {
		t.Fatal(err)
	}
	stop(done)

	base2, done2 := boot("-shards", "2")
	defer stop(done2)
	o2, err := remote.Dial(ctx, base2, remote.Options{Analyst: "alice", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := o2.FetchLedger(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if lr.Totals["alice"] != 7 {
		t.Fatalf("restarted server remembers %d spent, want 7", lr.Totals["alice"])
	}
	// 4 more fresh queries would exceed the budget of 10.
	if _, err := o2.Answer(ctx, [][]int{{7}, {8}, {9}, {10}}); err == nil {
		t.Fatal("over-budget batch should fail after restart — spent epsilon must survive")
	}
	if _, err := o2.Answer(ctx, [][]int{{7}, {8}, {9}}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if got := run([]string{"-n", "0"}, nil); got != 1 {
		t.Errorf("run with n=0 returned %d, want 1", got)
	}
	if got := run([]string{"-definitely-not-a-flag"}, nil); got != 2 {
		t.Errorf("run with a bad flag returned %d, want 2", got)
	}
}
