// Command psoctl runs the predicate-singling-out experiment suite (E04 –
// E10, E15, E16 and the PSO ablations) and prints the measured tables.
//
// Usage:
//
//	psoctl [-id E08] [-seed 1] [-full] [-list] [-stats]
//	       [-metrics out.jsonl] [-serve :8088] [-spans out.trace.json]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// Without -id it runs every PSO experiment; -full uses the publication
// sizes recorded in EXPERIMENTS.md instead of the quick CI sizes. -stats
// appends an obs metrics footer (trials, isolations, count queries, ...)
// to every table.
//
// -metrics records a JSONL run journal (one event per experiment); -serve
// exposes the live observability HTTP endpoint (Prometheus /metrics,
// /snapshot, /healthz, SSE /journal, /debug/pprof/) while the suite runs;
// -spans exports the worker pool's Chrome trace-event timeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
	"singlingout/internal/obs/serve"
)

var psoIDs = []string{"E04", "E05", "E06", "E07", "E08", "E09", "E10", "E15", "E16", "A02", "A03"}

func main() {
	id := flag.String("id", "", "single experiment id to run (default: the whole PSO suite)")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "run publication-size experiments (slower)")
	list := flag.Bool("list", false, "list the experiments in the PSO suite")
	stats := flag.Bool("stats", false, "append an obs metrics footer to every table")
	tool := serve.AddToolFlags(flag.CommandLine, "psoctl")
	flag.Parse()

	if *list {
		for _, eid := range psoIDs {
			r, _ := experiments.ByID(eid)
			fmt.Printf("%s  %s\n", r.ID, r.Desc)
		}
		return
	}

	if err := tool.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "psoctl: %v\n", err)
		os.Exit(1)
	}
	// ^C / SIGTERM cancels the context threaded through every harness, so
	// an interrupted run still flushes its journal and profiles below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	status := run(ctx, tool, *id, *seed, *full, *stats)
	stopSignals()
	if err := tool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "psoctl: %v\n", err)
		if status == 0 {
			status = 1
		}
	}
	os.Exit(status)
}

func run(ctx context.Context, tool *serve.Tool, id string, seed int64, full, stats bool) int {
	ids := psoIDs
	if id != "" {
		ids = []string{strings.ToUpper(id)}
	}
	tool.Emit(obs.Event{
		Phase: "run_start",
		Seed:  seed,
		Quick: !full,
		Sizes: map[string]int{"experiments": len(ids)},
	})
	runStart := time.Now()
	for _, eid := range ids {
		r, ok := experiments.ByID(eid)
		if !ok {
			fmt.Fprintf(os.Stderr, "psoctl: unknown experiment %q (try -list)\n", eid)
			return 1
		}
		tool.SetPhase(eid)
		start := time.Now()
		var tab *experiments.Table
		var delta obs.Snapshot
		var err error
		if stats || tool.Observing() {
			tab, delta, err = r.RunInstrumented(ctx, seed, !full)
		} else {
			tab, err = r.Run(ctx, seed, !full)
		}
		ev := obs.Event{
			Phase:   "experiment",
			ID:      eid,
			Seed:    seed,
			Quick:   !full,
			Seconds: time.Since(start).Seconds(),
		}
		if !delta.Empty() {
			ev.Metrics = &delta
		}
		if err != nil {
			ev.Error = err.Error()
			tool.Emit(ev)
			fmt.Fprintf(os.Stderr, "psoctl: %s: %v\n", eid, err)
			return 1
		}
		tool.Emit(ev)
		if !stats {
			// The metrics footer stays opt-in via -stats even when a
			// journal forced the instrumented path.
			tab.Metrics = obs.Snapshot{}
		}
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "psoctl: %v\n", err)
			return 1
		}
	}
	tool.Emit(obs.Event{
		Phase:   "run_end",
		Seed:    seed,
		Quick:   !full,
		Seconds: time.Since(runStart).Seconds(),
		Sizes:   map[string]int{"experiments": len(ids)},
	})
	tool.SetPhase("done")
	return 0
}
