// Command psoctl runs the predicate-singling-out experiment suite (E04 –
// E10, E15, E16 and the PSO ablations) and prints the measured tables.
//
// Usage:
//
//	psoctl [-id E08] [-seed 1] [-full] [-list] [-stats]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// Without -id it runs every PSO experiment; -full uses the publication
// sizes recorded in EXPERIMENTS.md instead of the quick CI sizes. -stats
// appends an obs metrics footer (trials, isolations, count queries, ...)
// to every table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"singlingout/internal/experiments"
	"singlingout/internal/obs"
)

var psoIDs = []string{"E04", "E05", "E06", "E07", "E08", "E09", "E10", "E15", "E16", "A02", "A03"}

func main() {
	id := flag.String("id", "", "single experiment id to run (default: the whole PSO suite)")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "run publication-size experiments (slower)")
	list := flag.Bool("list", false, "list the experiments in the PSO suite")
	stats := flag.Bool("stats", false, "append an obs metrics footer to every table")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "psoctl: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, eid := range psoIDs {
			r, _ := experiments.ByID(eid)
			fmt.Printf("%s  %s\n", r.ID, r.Desc)
		}
		return
	}
	ids := psoIDs
	if *id != "" {
		ids = []string{strings.ToUpper(*id)}
	}
	for _, eid := range ids {
		r, ok := experiments.ByID(eid)
		if !ok {
			fmt.Fprintf(os.Stderr, "psoctl: unknown experiment %q (try -list)\n", eid)
			os.Exit(1)
		}
		var tab *experiments.Table
		var err error
		if *stats {
			tab, _, err = r.RunInstrumented(*seed, !*full)
		} else {
			tab, err = r.Run(*seed, !*full)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "psoctl: %s: %v\n", eid, err)
			os.Exit(1)
		}
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "psoctl: %v\n", err)
			os.Exit(1)
		}
	}
}
