// Command benchdiff compares two BENCH_<rev>.json performance summaries
// (as written by cmd/repro -metrics) and prints a per-experiment delta
// table: wall-clock seconds plus every work counter that moved (oracle
// queries, simplex pivots, SAT conflicts, ...).
//
// Usage:
//
//	benchdiff [-gate pct] [-min seconds] [-require prefixes] BENCH_base.json BENCH_new.json
//
// With -gate, benchdiff exits nonzero when any experiment's wall-clock
// regressed by more than pct percent against the baseline (or ran clean in
// the baseline but errored in the new run). -min sets the baseline floor
// below which an experiment is too fast to gate on (timing noise).
// -require takes comma-separated id prefixes: any baseline row matching a
// prefix must also appear in the new summary, so probe rows (e.g.
// BENCH.remote.) cannot silently vanish from the trajectory. The Makefile
// ci target runs the gate against the committed BENCH_baseline.json so the
// repository's performance trajectory is enforced, not just recorded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"singlingout/internal/obs"
)

func main() {
	gate := flag.Float64("gate", -1, "exit nonzero when any experiment regresses by more than this percent (negative: report only)")
	min := flag.Float64("min", 0.05, "ignore regressions on experiments whose baseline wall-clock is below this many seconds")
	require := flag.String("require", "", "comma-separated id prefixes; baseline rows matching one must also exist in the new summary")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-gate pct] [-min seconds] [-require prefixes] BENCH_base.json BENCH_new.json\n")
		os.Exit(2)
	}

	base, err := obs.ReadBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := obs.ReadBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	diff := obs.DiffBench(base, cur)
	if err := diff.Fprint(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *require != "" {
		var prefixes []string
		for _, p := range strings.Split(*require, ",") {
			if p = strings.TrimSpace(p); p != "" {
				prefixes = append(prefixes, p)
			}
		}
		if missing := diff.MissingFromNew(prefixes); len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d required row(s) missing:\n", len(missing))
			for _, m := range missing {
				fmt.Fprintf(os.Stderr, "  %s\n", m)
			}
			os.Exit(1)
		}
	}
	if *gate < 0 {
		return
	}
	if violations := diff.Regressions(*gate, *min); len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond +%.1f%%:\n", len(violations), *gate)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("gate ok: no wall-clock regression beyond +%.1f%% (baseline floor %.2fs)\n", *gate, *min)
}
