package membership

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewModel(rng, 0, 0.1, 0.9); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewModel(rng, 5, 0.9, 0.1); err == nil {
		t.Error("lo >= hi should fail")
	}
	m, err := NewModel(rng, 100, 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Freqs {
		if f < 0.05 || f > 0.95 {
			t.Fatalf("frequency %v out of range", f)
		}
	}
}

func TestStudyReleasedMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model, _ := NewModel(rng, 50, 0.2, 0.8)
	study, err := NewStudy(rng, model, 200)
	if err != nil {
		t.Fatal(err)
	}
	for j, q := range study.Released {
		sum := 0
		for _, y := range study.Members {
			sum += int(y[j])
		}
		want := float64(sum) / 200
		if math.Abs(q-want) > 1e-12 {
			t.Fatalf("released[%d] = %v, want %v", j, q, want)
		}
	}
	if _, err := NewStudy(rng, model, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

// TestHomerAttackSucceedsOnExactAggregates: the paper's survey point —
// aggregate statistics leak membership.
func TestHomerAttackSucceedsOnExactAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model, _ := NewModel(rng, 2000, 0.05, 0.95) // many attributes, as with SNPs
	study, _ := NewStudy(rng, model, 100)
	auc := Experiment(rng, model, study, 100)
	if auc < 0.95 {
		t.Errorf("AUC = %v, want >= 0.95 with 2000 exact statistics", auc)
	}
}

// TestDPCollapsesMembershipInference: releasing the same aggregates with
// DP noise drives the attacker back to coin flipping.
func TestDPCollapsesMembershipInference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model, _ := NewModel(rng, 2000, 0.05, 0.95)
	study, _ := NewStudy(rng, model, 100)
	study.ReleaseDP(rng, 0.0005) // total budget m·eps = 1
	auc := Experiment(rng, model, study, 100)
	if auc > 0.65 {
		t.Errorf("AUC = %v under DP release, want <= 0.65", auc)
	}
}

func TestFewerAttributesWeakerAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	aucMany, aucFew := 0.0, 0.0
	const reps = 5
	for r := 0; r < reps; r++ {
		modelMany, _ := NewModel(rng, 1000, 0.05, 0.95)
		studyMany, _ := NewStudy(rng, modelMany, 200)
		aucMany += Experiment(rng, modelMany, studyMany, 200)
		modelFew, _ := NewModel(rng, 10, 0.05, 0.95)
		studyFew, _ := NewStudy(rng, modelFew, 200)
		aucFew += Experiment(rng, modelFew, studyFew, 200)
	}
	if aucFew >= aucMany {
		t.Errorf("few-attribute AUC %v should trail many-attribute AUC %v", aucFew/reps, aucMany/reps)
	}
}

func TestAUC(t *testing.T) {
	if got := AUC([]float64{2, 3}, []float64{0, 1}); got != 1 {
		t.Errorf("separable AUC = %v, want 1", got)
	}
	if got := AUC([]float64{0, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("anti-separable AUC = %v, want 0", got)
	}
	if got := AUC([]float64{1, 1}, []float64{1, 1}); got != 0.5 {
		t.Errorf("all-ties AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, []float64{1}); got != 0.5 {
		t.Errorf("empty AUC = %v, want 0.5", got)
	}
	// Interleaved: pos {1,3}, neg {0,2} → pairs won: (1>0), (3>0), (3>2) = 3/4.
	if got := AUC([]float64{1, 3}, []float64{0, 2}); got != 0.75 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestStatisticZeroMeanForOutsiders(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model, _ := NewModel(rng, 500, 0.2, 0.8)
	study, _ := NewStudy(rng, model, 50)
	sum := 0.0
	const outs = 3000
	for i := 0; i < outs; i++ {
		sum += Statistic(model.SampleIndividual(rng), model.Freqs, study.Released)
	}
	mean := sum / outs
	// Outsider statistics have zero mean (up to sampling noise).
	if math.Abs(mean) > 0.5 {
		t.Errorf("outsider mean statistic = %v, want ≈0", mean)
	}
	// Insider statistics have positive mean.
	sumIn := 0.0
	for _, y := range study.Members {
		sumIn += Statistic(y, model.Freqs, study.Released)
	}
	if sumIn/float64(len(study.Members)) <= mean {
		t.Error("insider mean should exceed outsider mean")
	}
}
