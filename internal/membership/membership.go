// Package membership implements Homer-style membership inference against
// released aggregate statistics ([26] in the paper, as refined by
// Sankararaman et al. and Dwork et al.): given published per-attribute
// frequencies of a study group, a reference population's frequencies, and
// a target individual's record, a linear test statistic reveals whether
// the target was in the study. The package also shows the defense the
// paper advocates: releasing the aggregates with differential privacy
// collapses the attacker's advantage.
package membership

import (
	"fmt"
	"math/rand"
	"sort"

	"singlingout/internal/dist"
)

// Model describes the attribute universe: M independent binary attributes
// with population frequencies Freqs (the attacker's reference panel).
type Model struct {
	Freqs []float64
}

// NewModel draws M attribute frequencies uniformly from [lo, hi].
func NewModel(rng *rand.Rand, m int, lo, hi float64) (*Model, error) {
	if m <= 0 || lo < 0 || hi > 1 || lo >= hi {
		return nil, fmt.Errorf("membership: invalid model parameters m=%d lo=%v hi=%v", m, lo, hi)
	}
	f := make([]float64, m)
	for j := range f {
		f[j] = lo + rng.Float64()*(hi-lo)
	}
	return &Model{Freqs: f}, nil
}

// SampleIndividual draws one individual's attribute vector.
func (m *Model) SampleIndividual(rng *rand.Rand) []int8 {
	y := make([]int8, len(m.Freqs))
	for j, p := range m.Freqs {
		if rng.Float64() < p {
			y[j] = 1
		}
	}
	return y
}

// Study is a sampled study group and its published aggregate.
type Study struct {
	Members [][]int8
	// Released is the published per-attribute mean; possibly noised.
	Released []float64
}

// NewStudy samples n individuals and publishes exact attribute means.
func NewStudy(rng *rand.Rand, model *Model, n int) (*Study, error) {
	if n <= 0 {
		return nil, fmt.Errorf("membership: study size %d", n)
	}
	s := &Study{Members: make([][]int8, n), Released: make([]float64, len(model.Freqs))}
	for i := range s.Members {
		s.Members[i] = model.SampleIndividual(rng)
		for j, b := range s.Members[i] {
			s.Released[j] += float64(b)
		}
	}
	for j := range s.Released {
		s.Released[j] /= float64(n)
	}
	return s, nil
}

// ReleaseDP replaces the published means with an ε-differentially private
// release: each mean gets Laplace noise of scale 1/(n·epsPerStat); under
// basic composition the whole release costs M·epsPerStat.
func (s *Study) ReleaseDP(rng *rand.Rand, epsPerStat float64) {
	n := float64(len(s.Members))
	for j := range s.Released {
		s.Released[j] += dist.Laplace(rng, 1/(n*epsPerStat))
	}
}

// Statistic is the linear membership test statistic
//
//	T(y) = Σ_j (y_j − p_j)·(q_j − p_j)
//
// where p is the reference frequency and q the released study frequency.
// In-study individuals have E[T] = Σ_j Var-ish positive drift; out-of-
// study individuals have E[T] = 0.
func Statistic(y []int8, reference, released []float64) float64 {
	t := 0.0
	for j := range y {
		t += (float64(y[j]) - reference[j]) * (released[j] - reference[j])
	}
	return t
}

// Experiment measures the attacker's power: it computes the statistic for
// all study members and for `outs` fresh non-members, and returns the
// empirical AUC (probability a random member scores above a random
// non-member; 0.5 = no information, 1.0 = perfect membership inference).
func Experiment(rng *rand.Rand, model *Model, study *Study, outs int) float64 {
	var inScores, outScores []float64
	for _, y := range study.Members {
		inScores = append(inScores, Statistic(y, model.Freqs, study.Released))
	}
	for i := 0; i < outs; i++ {
		y := model.SampleIndividual(rng)
		outScores = append(outScores, Statistic(y, model.Freqs, study.Released))
	}
	return AUC(inScores, outScores)
}

// AUC computes the Mann–Whitney AUC of positives over negatives.
func AUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return 0.5
	}
	// Rank-based computation: sort all, sum ranks of positives.
	type scored struct {
		v   float64
		pos bool
	}
	all := make([]scored, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, scored{v, true})
	}
	for _, v := range neg {
		all = append(all, scored{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Average ranks over ties.
	rankSum := 0.0
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	nPos, nNeg := float64(len(pos)), float64(len(neg))
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}
