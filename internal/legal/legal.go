// Package legal implements the paper's Section 2.4: turning measured
// predicate-singling-out results into rigorous, falsifiable statements —
// "legal theorems" — about whether a privacy technology satisfies the
// GDPR requirement of preventing singling out (Recital 26), and comparing
// those verdicts with the Article 29 Working Party's Opinion on
// Anonymisation Techniques (Section 2.4.3).
//
// The logical structure mirrors the paper's modeling choices exactly:
// security against predicate singling out (PSO) is deliberately weaker
// than the GDPR's notion, so
//
//   - failing to prevent PSO implies failing the GDPR requirement
//     (a negative legal theorem, like Legal Theorem 2.1), while
//   - preventing PSO is necessary but NOT sufficient — the verdict is
//     "further analysis needed", never "satisfies the GDPR".
package legal

import (
	"fmt"
	"io"
	"strings"

	"singlingout/internal/pso"
)

// Verdict is the outcome of evaluating a technology against the
// preventing-singling-out requirement.
type Verdict int

// Verdicts, ordered from best to worst.
const (
	// PreventsPSO: every attack in the evidence stayed at its trivial
	// baseline. Necessary but not sufficient for GDPR anonymization.
	PreventsPSO Verdict = iota
	// FailsPSO: at least one attack singled out with a negligible-weight
	// predicate significantly above baseline. By the paper's argument
	// this implies failure of the GDPR requirement.
	FailsPSO
	// Inconclusive: the evidence is empty or every attack errored.
	Inconclusive
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case PreventsPSO:
		return "prevents predicate singling out"
	case FailsPSO:
		return "FAILS to prevent predicate singling out"
	default:
		return "inconclusive"
	}
}

// GDPRConclusion renders the legal consequence of the verdict under the
// paper's weakened-requirement logic.
func (v Verdict) GDPRConclusion() string {
	switch v {
	case PreventsPSO:
		return "necessary condition met; further analysis needed for the GDPR anonymization standard"
	case FailsPSO:
		return "does NOT meet the GDPR standard for anonymization (singling out not prevented)"
	default:
		return "no determination possible"
	}
}

// Claim is one evidence-backed legal theorem.
type Claim struct {
	// Technology names the privacy measure evaluated (e.g. "k-anonymity
	// (Mondrian, k=5)").
	Technology string
	// Standard is the legal requirement evaluated against.
	Standard string
	// Verdict is the measured outcome.
	Verdict Verdict
	// Evidence holds the experiment results the verdict rests on.
	Evidence []pso.Result
	// Reasoning summarizes why the evidence supports the verdict.
	Reasoning string
}

// Evaluate derives the verdict for a technology from a suite of PSO
// experiment results. The quantifier matches Definition 2.4: the
// technology fails if ANY attacker succeeds (existential), and prevents
// PSO only if every attacker stayed at baseline.
func Evaluate(technology string, evidence []pso.Result) Claim {
	c := Claim{
		Technology: technology,
		Standard:   "GDPR Recital 26: prevention of singling out",
		Evidence:   evidence,
	}
	if len(evidence) == 0 {
		c.Verdict = Inconclusive
		c.Reasoning = "no experiments supplied"
		return c
	}
	usable := 0
	for _, r := range evidence {
		if r.AttackErrors == r.Trials {
			continue
		}
		usable++
		if !r.PreventsPSO() {
			c.Verdict = FailsPSO
			c.Reasoning = fmt.Sprintf(
				"attacker %q singled out in %.1f%% of trials with mean predicate weight %.3g (trivial baseline %.3g)",
				r.Attacker, 100*r.SuccessRate(), r.MeanNominalWeight, r.BaselineRate)
			return c
		}
	}
	if usable == 0 {
		c.Verdict = Inconclusive
		c.Reasoning = "every attack errored; no usable evidence"
		return c
	}
	c.Verdict = PreventsPSO
	c.Reasoning = fmt.Sprintf("all %d attacks stayed within the trivial-baseline band", usable)
	return c
}

// WorkingPartyRow is one row of the Section 2.4.3 comparison: the Article
// 29 Working Party's answer to "Is singling out still a risk?" for a
// technology, next to this library's measured verdict.
type WorkingPartyRow struct {
	Technology string
	// WPAnswer is the Working Party's published answer (Opinion 05/2014,
	// table on p. 24): "no" means they consider the risk eliminated.
	WPAnswer string
	// Measured is this library's verdict.
	Measured Verdict
	// Agrees reports whether the WP's answer is consistent with the
	// measured verdict ("no risk" is consistent only with PreventsPSO;
	// "may not"/"yes" is consistent with either).
	Agrees bool
}

// WorkingPartyAnswers records the published WP table entries for the
// technologies this library evaluates.
var WorkingPartyAnswers = map[string]string{
	"k-anonymity":          "no",      // WP: singling out no longer a risk
	"l-diversity":          "no",      // WP: singling out no longer a risk
	"t-closeness":          "no",      // WP: singling out no longer a risk
	"differential privacy": "may not", // WP: may not be a risk
}

// CompareWithWorkingParty builds the comparison table from measured
// verdicts keyed by the technology names in WorkingPartyAnswers.
func CompareWithWorkingParty(measured map[string]Verdict) []WorkingPartyRow {
	order := []string{"k-anonymity", "l-diversity", "t-closeness", "differential privacy"}
	var rows []WorkingPartyRow
	for _, tech := range order {
		v, ok := measured[tech]
		if !ok {
			continue
		}
		wp := WorkingPartyAnswers[tech]
		rows = append(rows, WorkingPartyRow{
			Technology: tech,
			WPAnswer:   wp,
			Measured:   v,
			// "no" (risk eliminated) conflicts with a measured failure;
			// hedged answers never conflict.
			Agrees: !(wp == "no" && v == FailsPSO),
		})
	}
	return rows
}

// Report renders claims and the Working Party comparison as a formatted
// text report (the output of cmd/legalreport).
func Report(w io.Writer, claims []Claim, comparison []WorkingPartyRow) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("LEGAL THEOREMS — measured verdicts on preventing singling out (GDPR Recital 26)\n"); err != nil {
		return err
	}
	if err := p("%s\n\n", strings.Repeat("=", 80)); err != nil {
		return err
	}
	for i, c := range claims {
		if err := p("Claim %d. %s — %s.\n", i+1, c.Technology, c.Verdict); err != nil {
			return err
		}
		if err := p("  Standard:   %s\n", c.Standard); err != nil {
			return err
		}
		if err := p("  Conclusion: %s\n", c.Verdict.GDPRConclusion()); err != nil {
			return err
		}
		if err := p("  Reasoning:  %s\n", c.Reasoning); err != nil {
			return err
		}
		for _, r := range c.Evidence {
			if err := p("    evidence: %s\n", r); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	if len(comparison) == 0 {
		return nil
	}
	if err := p("Comparison with Article 29 Working Party, Opinion 05/2014 (\"Is singling out still a risk?\")\n"); err != nil {
		return err
	}
	if err := p("%-22s %-10s %-45s %s\n", "technology", "WP answer", "measured verdict", "consistent?"); err != nil {
		return err
	}
	for _, row := range comparison {
		mark := "yes"
		if !row.Agrees {
			mark = "NO — the Working Party's assessment is contradicted"
		}
		if err := p("%-22s %-10s %-45s %s\n", row.Technology, row.WPAnswer, row.Measured, mark); err != nil {
			return err
		}
	}
	return nil
}
