package legal_test

import (
	"fmt"

	"singlingout/internal/legal"
	"singlingout/internal/pso"
)

// ExampleEvaluate turns measured PSO experiment results into a legal
// theorem in the paper's Section 2.4 style.
func ExampleEvaluate() {
	// A measured result: the attacker singled out in 37% of trials with
	// negligible-weight predicates against a trivial baseline of ~0.
	evidence := []pso.Result{{
		Mechanism:         "5-anonymity",
		Attacker:          "class ∧ 1/k′ refinement",
		Trials:            100,
		Successes:         37,
		Isolations:        37,
		MeanNominalWeight: 1e-6,
		BaselineRate:      0.0004,
	}}
	claim := legal.Evaluate("k-anonymity (k=5)", evidence)
	fmt.Println("verdict:", claim.Verdict)
	fmt.Println("conclusion:", claim.Verdict.GDPRConclusion())
	// Output:
	// verdict: FAILS to prevent predicate singling out
	// conclusion: does NOT meet the GDPR standard for anonymization (singling out not prevented)
}
