package legal

import (
	"bytes"
	"strings"
	"testing"

	"singlingout/internal/pso"
)

func passing() pso.Result {
	return pso.Result{
		Mechanism: "m", Attacker: "a",
		Trials: 100, Successes: 0, BaselineRate: 0.001, MeanNominalWeight: 1e-6,
	}
}

func failing() pso.Result {
	return pso.Result{
		Mechanism: "m", Attacker: "boost",
		Trials: 100, Successes: 37, Isolations: 40, BaselineRate: 0.001, MeanNominalWeight: 1e-6,
	}
}

func errored() pso.Result {
	return pso.Result{Mechanism: "m", Attacker: "broken", Trials: 10, AttackErrors: 10}
}

func TestEvaluateQuantifier(t *testing.T) {
	// All attacks at baseline → prevents.
	c := Evaluate("count mechanism", []pso.Result{passing(), passing()})
	if c.Verdict != PreventsPSO {
		t.Errorf("verdict = %v, want prevents", c.Verdict)
	}
	// One successful attack anywhere → fails (existential quantifier).
	c = Evaluate("k-anonymity", []pso.Result{passing(), failing()})
	if c.Verdict != FailsPSO {
		t.Errorf("verdict = %v, want fails", c.Verdict)
	}
	if !strings.Contains(c.Reasoning, "boost") {
		t.Errorf("reasoning should name the successful attacker: %q", c.Reasoning)
	}
	// No evidence → inconclusive.
	if Evaluate("x", nil).Verdict != Inconclusive {
		t.Error("empty evidence should be inconclusive")
	}
	// All attacks errored → inconclusive.
	if Evaluate("x", []pso.Result{errored()}).Verdict != Inconclusive {
		t.Error("all-errored evidence should be inconclusive")
	}
	// Errored attacks are skipped, not counted as passes.
	c = Evaluate("x", []pso.Result{errored(), failing()})
	if c.Verdict != FailsPSO {
		t.Errorf("verdict = %v, want fails despite errored companion", c.Verdict)
	}
}

func TestVerdictStringsAndConclusions(t *testing.T) {
	if PreventsPSO.String() == "" || FailsPSO.String() == "" || Inconclusive.String() == "" {
		t.Error("empty verdict strings")
	}
	if !strings.Contains(PreventsPSO.GDPRConclusion(), "necessary") {
		t.Error("prevents-conclusion must note necessity, not sufficiency")
	}
	if !strings.Contains(FailsPSO.GDPRConclusion(), "NOT") {
		t.Error("fails-conclusion must be a negative determination")
	}
	if Inconclusive.GDPRConclusion() == "" {
		t.Error("inconclusive conclusion empty")
	}
}

func TestCompareWithWorkingParty(t *testing.T) {
	measured := map[string]Verdict{
		"k-anonymity":          FailsPSO,
		"l-diversity":          FailsPSO,
		"t-closeness":          FailsPSO,
		"differential privacy": PreventsPSO,
	}
	rows := CompareWithWorkingParty(measured)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's §2.4.3 punchline: the WP's "no" for k-anonymity is
	// contradicted; their hedged "may not" for DP is consistent.
	for _, r := range rows {
		switch r.Technology {
		case "k-anonymity", "l-diversity", "t-closeness":
			if r.Agrees {
				t.Errorf("%s: WP 'no' should be contradicted", r.Technology)
			}
		case "differential privacy":
			if !r.Agrees {
				t.Error("differential privacy: 'may not' should be consistent")
			}
		}
	}
	// Technologies without measurements are omitted.
	rows = CompareWithWorkingParty(map[string]Verdict{"k-anonymity": FailsPSO})
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1", len(rows))
	}
}

func TestReportRenders(t *testing.T) {
	claims := []Claim{
		Evaluate("k-anonymity (Mondrian, k=5)", []pso.Result{failing()}),
		Evaluate("ε=0.1 Laplace counts", []pso.Result{passing()}),
	}
	comparison := CompareWithWorkingParty(map[string]Verdict{
		"k-anonymity":          FailsPSO,
		"differential privacy": PreventsPSO,
	})
	var buf bytes.Buffer
	if err := Report(&buf, claims, comparison); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"LEGAL THEOREMS",
		"k-anonymity (Mondrian, k=5)",
		"does NOT meet the GDPR standard",
		"further analysis needed",
		"Article 29 Working Party",
		"contradicted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Claims-only report (no comparison) also renders.
	buf.Reset()
	if err := Report(&buf, claims, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Working Party") {
		t.Error("comparison section should be absent")
	}
}

// failAfter is a writer that errors after a byte budget, exercising
// Report's error propagation.
type failAfter struct{ left int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errWrite
	}
	n := len(p)
	f.left -= n
	return n, nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "writer full" }

func TestReportPropagatesWriteErrors(t *testing.T) {
	claims := []Claim{Evaluate("tech", []pso.Result{failing()})}
	comparison := CompareWithWorkingParty(map[string]Verdict{"k-anonymity": FailsPSO})
	// Sweep failure points across the whole report to hit every branch.
	for budget := 0; budget < 700; budget += 25 {
		w := &failAfter{left: budget}
		if err := Report(w, claims, comparison); err == nil {
			// Large budgets legitimately succeed; verify by re-running
			// with unlimited budget and comparing length.
			w2 := &failAfter{left: 1 << 30}
			if err := Report(w2, claims, comparison); err != nil {
				t.Fatalf("unlimited budget failed: %v", err)
			}
			if budget < (1<<30)-w2.left {
				t.Errorf("budget %d should have failed (report needs %d bytes)", budget, (1<<30)-w2.left)
			}
		}
	}
}
