package pso

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
)

// Attacker is the adversary A of Definition 2.3/2.4: it observes the
// mechanism's released output and produces a predicate over raw records.
type Attacker interface {
	// Attack maps the released value to a predicate. n is the (public)
	// dataset size.
	Attack(rng *rand.Rand, released any, n int) (Predicate, error)
	// Describe renders the attacker for reports.
	Describe() string
}

// ErrWrongRelease is returned when an attacker receives a release shape it
// cannot use.
var ErrWrongRelease = errors.New("pso: attacker cannot use this release type")

// Baseline ignores the release entirely and guesses a random hash-prefix
// predicate of the given depth. Its success probability is the trivial
// bound n·2^-Depth·(1-2^-Depth)^(n-1) — negligible when 2^-Depth is; it
// is the control arm every experiment compares against.
type Baseline struct {
	Depth int
}

// Attack implements Attacker.
func (b Baseline) Attack(rng *rand.Rand, released any, n int) (Predicate, error) {
	if b.Depth <= 0 || b.Depth > 63 {
		return nil, fmt.Errorf("pso: Baseline depth %d outside [1,63]", b.Depth)
	}
	return HashPrefix{
		Seed:   rng.Uint64(),
		Depth:  b.Depth,
		Prefix: rng.Uint64() >> (64 - uint(b.Depth)),
	}, nil
}

// Describe implements Attacker.
func (b Baseline) Describe() string { return fmt.Sprintf("baseline (random depth-%d prefix)", b.Depth) }

// Birthday is the trivial attacker of the paper's worked example: it
// outputs an equality predicate on a fixed attribute with a random value
// of weight 1/Domain (e.g. "born Apr-30" with weight 1/365). It isolates
// with probability ≈ 37% when n ≈ Domain — which is why Definition 2.3 is
// unachievable and Definition 2.4 restricts to negligible-weight
// predicates: this predicate's weight is 1/n, far from negligible.
type Birthday struct {
	Attr   int
	Min    int64
	Domain int64
}

// Attack implements Attacker.
func (b Birthday) Attack(rng *rand.Rand, released any, n int) (Predicate, error) {
	if b.Domain <= 0 {
		return nil, fmt.Errorf("pso: Birthday domain must be positive")
	}
	return Equality{
		Attr:   b.Attr,
		Value:  b.Min + rng.Int63n(b.Domain),
		Weight: 1 / float64(b.Domain),
	}, nil
}

// Describe implements Attacker.
func (b Birthday) Describe() string {
	return fmt.Sprintf("birthday (random equality on attr %d, w=1/%d)", b.Attr, b.Domain)
}

// PrefixDescent is the composition attack of Theorem 2.8: against an
// adaptive count oracle it walks down a random hash-prefix tree, always
// stepping into a nonempty child, until exactly one record remains; it
// then keeps extending the prefix (staying on that record) until the
// predicate's nominal weight 2^-depth reaches TargetDepth. The total
// number of count queries is TargetDepth = ω(log n) — matching the
// theorem's ℓ.
//
// Against exact counts the walk succeeds with high probability (records
// are distinct under the hash); against ε-DP noisy counts the walk's
// branch decisions are corrupted and the attack collapses to baseline —
// the Theorem 2.9 phenomenon.
type PrefixDescent struct {
	TargetDepth int
	// BitsPerRound > 1 descends the tree multiple bits at a time,
	// querying 2^b − 1 of the 2^b children per round (the last child's
	// count is inferred from the parent). Fewer adaptive rounds, more
	// total queries — the descent-arity ablation. Zero or one means
	// binary descent.
	BitsPerRound int
}

// Queries returns the number of count queries one attack consumes.
func (a PrefixDescent) Queries() int {
	b := a.bits()
	rounds := (a.TargetDepth + b - 1) / b
	return rounds * ((1 << uint(b)) - 1)
}

func (a PrefixDescent) bits() int {
	if a.BitsPerRound <= 1 {
		return 1
	}
	return a.BitsPerRound
}

// Attack implements Attacker.
func (a PrefixDescent) Attack(rng *rand.Rand, released any, n int) (Predicate, error) {
	oracle, ok := released.(*CountOracle)
	if !ok {
		return nil, fmt.Errorf("%w: need *CountOracle, got %T", ErrWrongRelease, released)
	}
	if a.TargetDepth <= 0 || a.TargetDepth > 63 {
		return nil, fmt.Errorf("pso: PrefixDescent target depth %d outside [1,63]", a.TargetDepth)
	}
	seed := rng.Uint64()
	prefix := uint64(0)
	depth := 0
	parentCount := float64(n)
	b := a.bits()
	for depth < a.TargetDepth {
		step := b
		if depth+step > a.TargetDepth {
			step = a.TargetDepth - depth
		}
		fan := 1 << uint(step)
		// Query the first fan-1 children; infer the last from the parent.
		bestChild, bestCount := -1, 0.0
		remaining := parentCount
		for child := 0; child < fan; child++ {
			var c float64
			if child < fan-1 {
				p := HashPrefix{Seed: seed, Depth: depth + step, Prefix: prefix<<uint(step) | uint64(child)}
				var err error
				c, err = oracle.Count(p)
				if err != nil {
					return nil, fmt.Errorf("pso: prefix descent: %w", err)
				}
				remaining -= c
			} else {
				c = remaining
			}
			// Prefer the smallest nonempty child: it reaches count 1
			// sooner and stays on a single record once there.
			if c >= 0.5 && (bestChild < 0 || c < bestCount) {
				bestChild, bestCount = child, c
			}
		}
		if bestChild < 0 {
			// Noise wiped out every child; walk into an arbitrary one.
			bestChild, bestCount = 0, 0
		}
		prefix = prefix<<uint(step) | uint64(bestChild)
		parentCount = bestCount
		depth += step
	}
	return HashPrefix{Seed: seed, Depth: a.TargetDepth, Prefix: prefix}, nil
}

// Describe implements Attacker.
func (a PrefixDescent) Describe() string {
	return fmt.Sprintf("prefix descent (depth %d, %d-bit rounds, ℓ=%d counts)",
		a.TargetDepth, a.bits(), a.Queries())
}

// KAnonClass is the Theorem 2.10 attacker: from a k-anonymous release it
// picks an equivalence class, reads its size k′ off the release, and
// outputs box ∧ (fresh hash ≡ r mod k′) — a predicate of negligible
// nominal weight (the box weight divided by k′) that isolates with
// probability ≈ k′·(1/k′)(1−1/k′)^{k′−1} ≈ 37%.
type KAnonClass struct {
	// Sample draws fresh records from D for box-weight estimation.
	Sample func(*rand.Rand) dataset.Record
	// WeightSamples is the Monte Carlo budget per box (default 2000).
	WeightSamples int
}

// Attack implements Attacker.
func (a KAnonClass) Attack(rng *rand.Rand, released any, n int) (Predicate, error) {
	rel, ok := released.(*kanon.Release)
	if !ok {
		return nil, fmt.Errorf("%w: need *kanon.Release, got %T", ErrWrongRelease, released)
	}
	if len(rel.Classes) == 0 {
		return nil, errors.New("pso: release has no classes to attack")
	}
	ws := a.WeightSamples
	if ws <= 0 {
		ws = 2000
	}
	// The attacker is free to aim at the lightest-weight class: it scouts
	// a sample of classes with a cheap weight estimate and refines the
	// lightest with the full budget.
	ci := lightestClass(rng, rel, a.Sample, ws/8+50)
	box := NewClassBox(rng, rel, ci, a.Sample, ws, -1)
	kPrime := uint64(len(rel.Classes[ci].Rows))
	return And{Parts: []Predicate{
		box,
		HashMod{Seed: rng.Uint64(), M: kPrime, Residue: rng.Uint64() % kPrime},
	}}, nil
}

// Describe implements Attacker.
func (a KAnonClass) Describe() string { return "k-anon class ∧ 1/k′ hash refinement (Thm 2.10)" }

// lightestClass scouts up to 16 release classes and returns the index of
// the one whose box has the smallest estimated weight.
func lightestClass(rng *rand.Rand, rel *kanon.Release, sample func(*rand.Rand) dataset.Record, scoutSamples int) int {
	best, bestW := 0, math.Inf(1)
	candidates := len(rel.Classes)
	stride := 1
	if candidates > 16 {
		stride = candidates / 16
	}
	for ci := 0; ci < candidates; ci += stride {
		w := NewClassBox(rng, rel, ci, sample, scoutSamples, -1).Weight
		if w < bestW {
			best, bestW = ci, w
		}
	}
	return best
}

// Corner is the Cohen-style boosted attack ([12]) against
// generalization-based k-anonymity with data-dependent cell boundaries
// (Mondrian): the released interval endpoints are witnessed by actual
// records, so "box ∧ (attr = interval minimum)" isolates whenever exactly
// one class member attains the minimum — which is almost always, for a
// large-domain attribute with few ties. Success approaches 100%, far above
// the 37% of the unboosted attack.
type Corner struct {
	// Attr is the large-domain attribute (its position in the release QI
	// list is located automatically).
	Attr int
	// Sample and WeightSamples: as in KAnonClass.
	Sample        func(*rand.Rand) dataset.Record
	WeightSamples int
}

// Attack implements Attacker.
func (a Corner) Attack(rng *rand.Rand, released any, n int) (Predicate, error) {
	rel, ok := released.(*kanon.Release)
	if !ok {
		return nil, fmt.Errorf("%w: need *kanon.Release, got %T", ErrWrongRelease, released)
	}
	if len(rel.Classes) == 0 {
		return nil, errors.New("pso: release has no classes to attack")
	}
	qiPos := -1
	for j, attr := range rel.QI {
		if attr == a.Attr {
			qiPos = j
			break
		}
	}
	if qiPos < 0 {
		return nil, fmt.Errorf("pso: attribute %d is not a released quasi-identifier", a.Attr)
	}
	ws := a.WeightSamples
	if ws <= 0 {
		ws = 2000
	}
	ci := rng.Intn(len(rel.Classes))
	cell, ok := rel.Classes[ci].Cells[qiPos].(kanon.Interval)
	if !ok {
		return nil, fmt.Errorf("%w: corner attack needs interval cells (data-dependent bounds)", ErrWrongRelease)
	}
	// Build the box over the other attributes and replace the target
	// attribute's cell with equality at the released (witnessed) minimum.
	box := NewClassBox(rng, rel, ci, a.Sample, ws, qiPos)
	marginal := CellMarginal(rng, cell, a.Attr, a.Sample, ws)
	corner := Equality{
		Attr:  a.Attr,
		Value: cell.Lo,
		// Idealization: the cell's mass spread uniformly over its values.
		Weight: marginal / math.Max(1, float64(cell.Size())),
	}
	return And{Parts: []Predicate{box, corner}}, nil
}

// Describe implements Attacker.
func (a Corner) Describe() string {
	return fmt.Sprintf("Cohen-style corner attack on attr %d", a.Attr)
}
