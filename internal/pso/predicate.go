// Package pso implements the paper's primary contribution: the
// predicate-singling-out (PSO) framework of Section 2 (Definitions
// 2.1-2.4), the attacks and defenses of Theorems 2.5-2.10, and the
// experiment harness that measures whether a mechanism prevents predicate
// singling out.
//
// The cast of characters mirrors the paper exactly:
//
//   - a Distribution D over records, from which a dataset x ~ D^n is drawn
//     i.i.d.;
//   - a Mechanism M mapping the dataset to a released output;
//   - an Attacker A mapping the released output to a Predicate p;
//   - success means p isolates (Σ p(x_i) = 1, Definition 2.1) AND p has
//     weight w_D(p) at most the negligible-weight threshold τ
//     (Definition 2.4).
//
// Weight accounting. Experiments need w_D(p) for thresholds far below
// Monte Carlo resolution, so every predicate carries a *nominal* weight:
// an analytic value under the stated idealization (hash predicates behave
// as uniform 64-bit labels; box weights are measured against D by
// sampling at construction). The harness additionally Monte-Carlo
// estimates weights at feasible scales so the idealization is checkable;
// see DESIGN.md.
package pso

import (
	"fmt"
	"math"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
)

// Predicate is a {0,1}-valued function over raw records — the object an
// attacker must output (Section 2.1: "a collection of attributes is a
// predicate").
type Predicate interface {
	// Eval evaluates the predicate on a raw record.
	Eval(r dataset.Record) bool
	// NominalWeight is the predicate's weight w_D(p) under the package's
	// documented idealization.
	NominalWeight() float64
	// Describe renders the predicate for reports.
	Describe() string
}

// IsolationCount returns Σ_i p(x_i) over the dataset. The predicate
// isolates (Definition 2.1) exactly when this is 1.
func IsolationCount(p Predicate, d *dataset.Dataset) int {
	n := 0
	for _, r := range d.Rows {
		if p.Eval(r) {
			n++
		}
	}
	return n
}

// Isolates reports whether p isolates in d (Definition 2.1).
func Isolates(p Predicate, d *dataset.Dataset) bool {
	return IsolationCount(p, d) == 1
}

// EstimateWeight Monte-Carlo-estimates w_D(p) = Pr_{x~D}[p(x)=1] with the
// given number of samples.
func EstimateWeight(rng *rand.Rand, p Predicate, sample func(*rand.Rand) dataset.Record, samples int) float64 {
	if samples <= 0 {
		panic("pso: EstimateWeight needs positive sample count")
	}
	hits := 0
	for i := 0; i < samples; i++ {
		if p.Eval(sample(rng)) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// Equality is the trivial attacker's predicate from the paper's worked
// example: p(x) = 1 iff x[Attr] = Value (e.g. "birthday is Apr-30").
type Equality struct {
	Attr  int
	Value int64
	// Weight is the probability mass of Value under D, supplied by the
	// caller who knows the distribution (1/365 in the worked example).
	Weight float64
}

// Eval implements Predicate.
func (e Equality) Eval(r dataset.Record) bool { return r[e.Attr] == e.Value }

// NominalWeight implements Predicate.
func (e Equality) NominalWeight() float64 { return e.Weight }

// Describe implements Predicate.
func (e Equality) Describe() string {
	return fmt.Sprintf("attr[%d] == %d (w=%.3g)", e.Attr, e.Value, e.Weight)
}

// hashRecord hashes a record's cells with a seed (FNV-1a over the int64
// cells). Distinct records get independent-looking 64-bit labels; this is
// the package's stand-in for the Leftover-Hash-Lemma predicates used in
// Section 2.2 of the paper.
func hashRecord(seed uint64, r dataset.Record) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ (seed * prime)
	for _, v := range r {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			h ^= (u >> uint(8*b)) & 0xff
			h *= prime
		}
	}
	return h
}

// HashPrefix is a pseudorandom predicate: true iff the top Depth bits of
// the record's seeded hash equal Prefix. Its nominal weight is 2^-Depth
// (exact under the hash-uniformity idealization for records that are
// distinct as tuples).
type HashPrefix struct {
	Seed   uint64
	Depth  int
	Prefix uint64
}

// Eval implements Predicate.
func (h HashPrefix) Eval(r dataset.Record) bool {
	if h.Depth == 0 {
		return true
	}
	return hashRecord(h.Seed, r)>>(64-uint(h.Depth)) == h.Prefix
}

// NominalWeight implements Predicate.
func (h HashPrefix) NominalWeight() float64 { return math.Pow(2, -float64(h.Depth)) }

// Describe implements Predicate.
func (h HashPrefix) Describe() string {
	return fmt.Sprintf("hash(seed=%d) prefix %0*b (depth %d)", h.Seed, h.Depth, h.Prefix, h.Depth)
}

// HashMod is a pseudorandom predicate of weight ~1/m: true iff the
// record's seeded hash is ≡ Residue (mod M). It is the "predicate of
// weight 1/k'" refinement used in the Theorem 2.10 attack.
type HashMod struct {
	Seed    uint64
	M       uint64
	Residue uint64
}

// Eval implements Predicate.
func (h HashMod) Eval(r dataset.Record) bool {
	if h.M == 0 {
		return true
	}
	return hashRecord(h.Seed, r)%h.M == h.Residue
}

// NominalWeight implements Predicate.
func (h HashMod) NominalWeight() float64 {
	if h.M == 0 {
		return 1
	}
	return 1 / float64(h.M)
}

// Describe implements Predicate.
func (h HashMod) Describe() string {
	return fmt.Sprintf("hash(seed=%d) mod %d == %d", h.Seed, h.M, h.Residue)
}

// ClassBox is the predicate induced by a k-anonymity equivalence class
// (Theorem 2.10): true iff the record falls in every generalized cell of
// the class. Because the joint weight of a tight high-dimensional box is
// far below Monte Carlo resolution, the nominal weight is computed as the
// product of per-attribute marginal weights (each estimated by sampling) —
// exact when the box attributes are independent under D, which holds for
// the synthetic population when the quasi-identifier set avoids the
// derived age and zip attributes (see synth).
type ClassBox struct {
	QI     []int
	Cells  []kanon.ValueSet
	Weight float64 // product-of-marginals estimate of w_D(box)
}

// CellMarginal estimates Pr_{x~D}[cell contains x[attr]] by sampling.
func CellMarginal(rng *rand.Rand, cell kanon.ValueSet, attr int, sample func(*rand.Rand) dataset.Record, samples int) float64 {
	hits := 0
	for i := 0; i < samples; i++ {
		if cell.Contains(sample(rng)[attr]) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// NewClassBox builds the box predicate for a release class, estimating
// its nominal weight as the product of per-attribute marginals with the
// given per-attribute sample budget. If skipQIPos >= 0, that cell is left
// out of the box entirely (used by the corner attack, which replaces it
// with an equality).
func NewClassBox(rng *rand.Rand, rel *kanon.Release, classIdx int, sample func(*rand.Rand) dataset.Record, samples int, skipQIPos int) ClassBox {
	c := rel.Classes[classIdx]
	box := ClassBox{Weight: 1}
	for j, cell := range c.Cells {
		if j == skipQIPos {
			continue
		}
		box.QI = append(box.QI, rel.QI[j])
		box.Cells = append(box.Cells, cell)
		box.Weight *= CellMarginal(rng, cell, rel.QI[j], sample, samples)
	}
	return box
}

// Eval implements Predicate.
func (b ClassBox) Eval(r dataset.Record) bool {
	for j, cell := range b.Cells {
		if !cell.Contains(r[b.QI[j]]) {
			return false
		}
	}
	return true
}

// NominalWeight implements Predicate.
func (b ClassBox) NominalWeight() float64 { return b.Weight }

// Describe implements Predicate.
func (b ClassBox) Describe() string {
	s := "box{"
	for j, cell := range b.Cells {
		if j > 0 {
			s += ","
		}
		s += cell.Label()
	}
	return s + fmt.Sprintf("} (w≈%.3g)", b.Weight)
}

// And is the conjunction of predicates; its nominal weight is the product
// of the parts' weights (exact when the parts are independent under D,
// e.g. a data-derived box and a fresh-seed hash predicate) and in any case
// bounded by the minimum.
type And struct {
	Parts []Predicate
}

// Eval implements Predicate.
func (a And) Eval(r dataset.Record) bool {
	for _, p := range a.Parts {
		if !p.Eval(r) {
			return false
		}
	}
	return true
}

// NominalWeight implements Predicate. The product rule is the idealized
// independent-parts value; the minimum of the parts is always an upper
// bound, and the product never exceeds it.
func (a And) NominalWeight() float64 {
	w := 1.0
	for _, p := range a.Parts {
		w *= p.NominalWeight()
	}
	return w
}

// Describe implements Predicate.
func (a And) Describe() string {
	s := ""
	for i, p := range a.Parts {
		if i > 0 {
			s += " ∧ "
		}
		s += p.Describe()
	}
	return s
}
