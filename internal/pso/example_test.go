package pso_test

import (
	"fmt"
	"math/rand"

	"singlingout/internal/pso"
)

// ExampleRun plays the predicate-singling-out game of Definition 2.4: the
// birthday attacker against an exact count mechanism. The attacker
// isolates often (the paper's 37%) but its predicates are far too heavy
// to count as predicate singling out.
func ExampleRun() {
	rng := rand.New(rand.NewSource(1))
	cfg := pso.BirthdayConfig(1e-6, 2000)
	mech := pso.Count{Q: pso.Equality{Attr: 0, Value: 0, Weight: 1.0 / pso.BirthdayDomain}}
	att := pso.Birthday{Attr: 0, Min: 0, Domain: pso.BirthdayDomain}
	res, err := pso.Run(rng, cfg, mech, att)
	if err != nil {
		panic(err)
	}
	fmt.Printf("isolates ≈37%%: %v\n", res.IsolationRate() > 0.3 && res.IsolationRate() < 0.45)
	fmt.Printf("predicate singling out: %d successes\n", res.Successes)
	fmt.Printf("mechanism prevents PSO: %v\n", res.PreventsPSO())
	// Output:
	// isolates ≈37%: true
	// predicate singling out: 0 successes
	// mechanism prevents PSO: true
}
