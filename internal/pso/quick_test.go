package pso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"singlingout/internal/dataset"
)

// TestHashPredicatePropertiesQuick: hash predicates are deterministic,
// their nominal weights lie in (0,1], and conjunction weight never
// exceeds any part's weight.
func TestHashPredicatePropertiesQuick(t *testing.T) {
	f := func(seed uint64, depthRaw uint8, m uint64, cells [4]int64) bool {
		depth := int(depthRaw%63) + 1
		r := dataset.Record(cells[:])
		hp := HashPrefix{Seed: seed, Depth: depth, Prefix: 0}
		if hp.Eval(r) != hp.Eval(r) {
			return false
		}
		if w := hp.NominalWeight(); w <= 0 || w > 1 {
			return false
		}
		hm := HashMod{Seed: seed, M: m%100 + 1, Residue: 0}
		if hm.Eval(r) != hm.Eval(r) {
			return false
		}
		and := And{Parts: []Predicate{hp, hm}}
		if and.Eval(r) && (!hp.Eval(r) || !hm.Eval(r)) {
			return false
		}
		w := and.NominalWeight()
		return w <= hp.NominalWeight()+1e-15 && w <= hm.NominalWeight()+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIsolationCountBoundsQuick: 0 <= IsolationCount <= n, and Isolates
// agrees with count == 1.
func TestIsolationCountBoundsQuick(t *testing.T) {
	schema := BirthdaySchema()
	f := func(seed int64, nRaw uint8, value uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 50)
		d := dataset.New(schema)
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Record{rng.Int63n(BirthdayDomain)})
		}
		p := Equality{Attr: 0, Value: int64(value % BirthdayDomain)}
		c := IsolationCount(p, d)
		if c < 0 || c > n {
			return false
		}
		return Isolates(p, d) == (c == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHashPrefixPartitionQuick: at a fixed depth, every record matches
// exactly one prefix — the property the descent attack relies on.
func TestHashPrefixPartitionQuick(t *testing.T) {
	f := func(seed uint64, cells [3]int64, depthRaw uint8) bool {
		depth := int(depthRaw%10) + 1
		r := dataset.Record(cells[:])
		matches := 0
		for prefix := uint64(0); prefix < 1<<uint(depth); prefix++ {
			if (HashPrefix{Seed: seed, Depth: depth, Prefix: prefix}).Eval(r) {
				matches++
			}
		}
		return matches == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
