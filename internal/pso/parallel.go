package pso

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"singlingout/internal/dataset"
	"singlingout/internal/dist"
)

// RunParallel plays the same game as Run with trials distributed over a
// worker pool. Each trial derives its own random source from the base
// seed and the trial index, so the aggregate result is deterministic in
// the seed and independent of the worker count (unlike Run, which threads
// one source through all trials — the two functions therefore produce
// different, but individually reproducible, streams).
//
// workers <= 0 selects GOMAXPROCS.
func RunParallel(seed int64, cfg Config, m Mechanism, a Attacker, workers int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	type trialOutcome struct {
		nominal  float64
		measured float64
		checked  bool
		isolated bool
		light    bool
		errored  bool
		err      error
	}
	outcomes := make([]trialOutcome, cfg.Trials)
	var wg sync.WaitGroup
	// Buffered so that workers exiting early (on mechanism failure) can
	// never block the producer.
	next := make(chan int, cfg.Trials)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range next {
				// Per-trial source: deterministic in (seed, trial) and
				// independent of scheduling.
				rng := rand.New(rand.NewSource(seed ^ int64(uint64(trial)*0x9e3779b97f4a7c15)))
				o := &outcomes[trial]
				d := dataset.New(cfg.Schema)
				for i := 0; i < cfg.N; i++ {
					d.MustAppend(cfg.Sample(rng))
				}
				released, err := m.Release(rng, d)
				if err != nil {
					o.err = fmt.Errorf("pso: mechanism failed: %w", err)
					return
				}
				p, err := a.Attack(rng, released, cfg.N)
				if err != nil {
					o.errored = true
					continue
				}
				o.nominal = p.NominalWeight()
				if cfg.WeightCheckSamples > 0 {
					o.measured = EstimateWeight(rng, p, cfg.Sample, cfg.WeightCheckSamples)
					o.checked = true
				}
				if Isolates(p, d) {
					o.isolated = true
					o.light = o.nominal <= cfg.Tau
				}
			}
		}()
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		next <- trial
	}
	close(next)
	wg.Wait()

	res := Result{Mechanism: m.Describe(), Attacker: a.Describe(), Trials: cfg.Trials}
	var sumNominal, sumMeasured float64
	measured := 0
	for _, o := range outcomes {
		if o.err != nil {
			return Result{}, o.err
		}
		if o.errored {
			res.AttackErrors++
			continue
		}
		sumNominal += o.nominal
		if o.checked {
			sumMeasured += o.measured
			measured++
		}
		if o.isolated {
			res.Isolations++
			if o.light {
				res.Successes++
			} else {
				res.HeavyIsolations++
			}
		}
	}
	if n := cfg.Trials - res.AttackErrors; n > 0 {
		res.MeanNominalWeight = sumNominal / float64(n)
	}
	if measured > 0 {
		res.MeanMeasuredWeight = sumMeasured / float64(measured)
	}
	res.BaselineRate = dist.IsolationProb(cfg.N, res.MeanNominalWeight)
	return res, nil
}
