package pso

import (
	"fmt"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dist"
	"singlingout/internal/par"
)

// RunParallel plays the same game as Run with trials distributed over the
// shared par worker pool. Each trial derives its own random source from
// the base seed and the trial index (par.SeedFor), so the aggregate result
// is deterministic in the seed and independent of the worker count (unlike
// Run, which threads one source through all trials — the two functions
// therefore produce different, but individually reproducible, streams).
//
// A mechanism failure cancels the remaining trials and is reported as the
// run's error; the error returned is that of the lowest failing trial
// index, so it too is deterministic at any worker count. Attack failures
// are per-trial outcomes (counted in Result.AttackErrors), exactly as in
// Run.
//
// workers <= 0 selects GOMAXPROCS.
func RunParallel(seed int64, cfg Config, m Mechanism, a Attacker, workers int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	type trialOutcome struct {
		nominal  float64
		measured float64
		checked  bool
		isolated bool
		light    bool
		errored  bool
	}
	outcomes := make([]trialOutcome, cfg.Trials)
	err := par.ForEach(workers, cfg.Trials, func(trial int) error {
		mTrials.Add(1)
		sp := mTrialNS.Span()
		defer sp.End()
		// Per-trial source: deterministic in (seed, trial) and independent
		// of scheduling.
		rng := rand.New(rand.NewSource(par.SeedFor(seed, trial)))
		o := &outcomes[trial]
		d := dataset.New(cfg.Schema)
		for i := 0; i < cfg.N; i++ {
			d.MustAppend(cfg.Sample(rng))
		}
		released, err := m.Release(rng, d)
		if err != nil {
			// Returning the error (rather than stashing it in the outcome)
			// hands cancellation to the pool: remaining trials are not
			// started, and the run fails deterministically.
			return fmt.Errorf("pso: mechanism failed: %w", err)
		}
		p, err := a.Attack(rng, released, cfg.N)
		if err != nil {
			o.errored = true
			mAttackErrors.Add(1)
			return nil
		}
		o.nominal = p.NominalWeight()
		if cfg.WeightCheckSamples > 0 {
			o.measured = EstimateWeight(rng, p, cfg.Sample, cfg.WeightCheckSamples)
			o.checked = true
		}
		if Isolates(p, d) {
			o.isolated = true
			mIsolations.Add(1)
			o.light = o.nominal <= cfg.Tau
			if o.light {
				mSuccesses.Add(1)
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{Mechanism: m.Describe(), Attacker: a.Describe(), Trials: cfg.Trials}
	var sumNominal, sumMeasured float64
	measured := 0
	for _, o := range outcomes {
		if o.errored {
			res.AttackErrors++
			continue
		}
		sumNominal += o.nominal
		if o.checked {
			sumMeasured += o.measured
			measured++
		}
		if o.isolated {
			res.Isolations++
			if o.light {
				res.Successes++
			} else {
				res.HeavyIsolations++
			}
		}
	}
	if n := cfg.Trials - res.AttackErrors; n > 0 {
		res.MeanNominalWeight = sumNominal / float64(n)
	}
	if measured > 0 {
		res.MeanMeasuredWeight = sumMeasured / float64(measured)
	}
	res.BaselineRate = dist.IsolationProb(cfg.N, res.MeanNominalWeight)
	return res, nil
}
