package pso

import (
	"math"
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
	"singlingout/internal/synth"
)

func TestEqualityPredicate(t *testing.T) {
	p := Equality{Attr: 0, Value: 7, Weight: 0.1}
	if !p.Eval(dataset.Record{7}) || p.Eval(dataset.Record{8}) {
		t.Error("Equality evaluation wrong")
	}
	if p.NominalWeight() != 0.1 {
		t.Error("Equality weight wrong")
	}
	if p.Describe() == "" {
		t.Error("Describe empty")
	}
}

func TestIsolationCount(t *testing.T) {
	d := dataset.New(BirthdaySchema())
	for _, v := range []int64{3, 5, 5, 9} {
		d.MustAppend(dataset.Record{v})
	}
	if got := IsolationCount(Equality{Attr: 0, Value: 5}, d); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if !Isolates(Equality{Attr: 0, Value: 3}, d) {
		t.Error("value 3 should isolate")
	}
	if Isolates(Equality{Attr: 0, Value: 5}, d) || Isolates(Equality{Attr: 0, Value: 4}, d) {
		t.Error("5 (twice) and 4 (absent) should not isolate")
	}
}

func TestHashPrefixWeightAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := HashPrefix{Seed: 42, Depth: 3, Prefix: 5}
	if p.NominalWeight() != 0.125 {
		t.Errorf("weight = %v, want 1/8", p.NominalWeight())
	}
	r := dataset.Record{123, 456}
	if p.Eval(r) != p.Eval(r) {
		t.Error("hash predicate must be deterministic")
	}
	// Empirical weight over random records should match 2^-depth.
	sample := func(rng *rand.Rand) dataset.Record {
		return dataset.Record{rng.Int63(), rng.Int63()}
	}
	w := EstimateWeight(rng, p, sample, 200000)
	if math.Abs(w-0.125) > 0.01 {
		t.Errorf("empirical weight = %v, want ~0.125", w)
	}
	if (HashPrefix{Depth: 0}).NominalWeight() != 1 {
		t.Error("depth-0 prefix weight should be 1")
	}
	if !(HashPrefix{Depth: 0}).Eval(r) {
		t.Error("depth-0 prefix matches everything")
	}
}

func TestHashModWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := HashMod{Seed: 7, M: 5, Residue: 2}
	if p.NominalWeight() != 0.2 {
		t.Errorf("weight = %v, want 0.2", p.NominalWeight())
	}
	sample := func(rng *rand.Rand) dataset.Record {
		return dataset.Record{rng.Int63()}
	}
	w := EstimateWeight(rng, p, sample, 200000)
	if math.Abs(w-0.2) > 0.01 {
		t.Errorf("empirical weight = %v, want ~0.2", w)
	}
	degenerate := HashMod{M: 0}
	if degenerate.NominalWeight() != 1 || !degenerate.Eval(dataset.Record{1}) {
		t.Error("M=0 should be the always-true predicate")
	}
}

func TestAndPredicate(t *testing.T) {
	a := And{Parts: []Predicate{
		Equality{Attr: 0, Value: 1, Weight: 0.5},
		Equality{Attr: 1, Value: 2, Weight: 0.25},
	}}
	if !a.Eval(dataset.Record{1, 2}) || a.Eval(dataset.Record{1, 3}) {
		t.Error("And evaluation wrong")
	}
	if a.NominalWeight() != 0.125 {
		t.Errorf("And weight = %v, want product 0.125", a.NominalWeight())
	}
	if a.Describe() == "" {
		t.Error("Describe empty")
	}
}

func TestEstimateWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateWeight(rand.New(rand.NewSource(1)), Equality{}, nil, 0)
}

func TestConfigValidate(t *testing.T) {
	good := BirthdayConfig(1e-6, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{N: 10, Sample: good.Sample, Tau: 0, Trials: 1},
		{N: 10, Sample: good.Sample, Tau: 0.1, Trials: 0},
		{N: 10, Sample: nil, Tau: 0.1, Trials: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

// TestBirthdayWorkedExample reproduces the paper's ≈37% calculation: the
// trivial attacker isolates with probability far from negligible — but its
// predicate is heavy, so it never counts as predicate singling out.
func TestBirthdayWorkedExample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := BirthdayConfig(1e-6, 800)
	mech := Count{Q: Equality{Attr: 0, Value: 0, Weight: 1.0 / BirthdayDomain}}
	res, err := Run(rng, cfg, mech, Birthday{Attr: 0, Min: 0, Domain: BirthdayDomain})
	if err != nil {
		t.Fatal(err)
	}
	iso := res.IsolationRate()
	if math.Abs(iso-0.37) > 0.06 {
		t.Errorf("isolation rate = %v, want ≈0.37", iso)
	}
	if res.Successes != 0 {
		t.Errorf("PSO successes = %d, want 0 (predicate weight 1/365 is not negligible)", res.Successes)
	}
	if res.HeavyIsolations != res.Isolations {
		t.Errorf("all isolations should be heavy: %d vs %d", res.HeavyIsolations, res.Isolations)
	}
	if !res.PreventsPSO() {
		t.Error("count mechanism should be judged PSO-secure against the birthday attacker")
	}
}

// TestCountMechanismPSOSecure is the Theorem 2.5 experiment: no attacker in
// our suite singles out given only an exact count.
func TestCountMechanismPSOSecure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := BirthdayConfig(1.0/(1<<20), 500)
	mech := Count{Q: Equality{Attr: 0, Value: 100, Weight: 1.0 / BirthdayDomain}}
	res, err := Run(rng, cfg, mech, Baseline{Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PreventsPSO() {
		t.Errorf("count mechanism should prevent PSO: %+v", res)
	}
	if res.SuccessRate() > 0.01 {
		t.Errorf("baseline success = %v, want ≈0", res.SuccessRate())
	}
}

// TestPostProcessingPreservesPSOSecurity is the Theorem 2.6 experiment.
func TestPostProcessingPreservesPSOSecurity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := BirthdayConfig(1.0/(1<<20), 300)
	mech := PostProcess{
		Inner: Count{Q: Equality{Attr: 0, Value: 100, Weight: 1.0 / BirthdayDomain}},
		F:     func(y any) any { return y.(int) * 1000 },
		Name:  "scale-by-1000",
	}
	res, err := Run(rng, cfg, mech, Baseline{Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PreventsPSO() {
		t.Errorf("post-processed count should prevent PSO: %+v", res)
	}
}

// TestPrefixDescentDefeatsComposedCounts is the Theorem 2.8 experiment:
// ℓ = ω(log n) exact count queries single out with high probability using
// a predicate of negligible nominal weight 2^-40.
func TestPrefixDescentDefeatsComposedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	cfg := Config{
		N:      500,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    math.Pow(2, -30),
		Trials: 60,
	}
	mech := InteractiveCounts{Limit: 40}
	res, err := Run(rng, cfg, mech, PrefixDescent{TargetDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 0.9 {
		t.Errorf("composition attack success = %v, want >= 0.9: %+v", res.SuccessRate(), res)
	}
	if res.PreventsPSO() {
		t.Error("composed exact counts must NOT be judged PSO-secure")
	}
}

// TestDPDefeatsPrefixDescent is the Theorem 2.9 experiment: the same
// attack against ε-DP noisy counts collapses to the baseline.
func TestDPDefeatsPrefixDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	cfg := Config{
		N:      500,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    math.Pow(2, -30),
		Trials: 60,
	}
	mech := InteractiveCounts{Limit: 40, Eps: 0.1}
	res, err := Run(rng, cfg, mech, PrefixDescent{TargetDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() > 0.05 {
		t.Errorf("attack against DP counts = %v, want ≈0: %+v", res.SuccessRate(), res)
	}
	if !res.PreventsPSO() {
		t.Error("DP counts should be judged PSO-secure")
	}
}

func surveyPSOConfig(trials int) (Config, synth.SurveyConfig) {
	scfg := synth.SurveyConfig{Questions: 40, Skew: 0.8}
	return Config{
		N:      600,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    1e-4,
		Trials: trials,
	}, scfg
}

func surveyQI(schema *dataset.Schema) []int {
	qi := make([]int, len(schema.Attrs))
	for i := range qi {
		qi[i] = i
	}
	return qi
}

// TestKAnonPSOAttack is the Theorem 2.10 experiment: k-anonymity admits
// predicate singling out with probability ≈ 37%.
func TestKAnonPSOAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg, scfg := surveyPSOConfig(60)
	mech := KAnonymity{QI: surveyQI(cfg.Schema), K: 5, Algorithm: UseMondrian}
	att := KAnonClass{Sample: synth.SurveySampler(scfg), WeightSamples: 1500}
	res, err := Run(rng, cfg, mech, att)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 0.2 || res.SuccessRate() > 0.55 {
		t.Errorf("k-anon PSO success = %v, want ≈0.37: %+v", res.SuccessRate(), res)
	}
	if res.PreventsPSO() {
		t.Error("k-anonymity must NOT be judged PSO-secure")
	}
}

// TestCornerAttackApproaches100 is the Cohen-style boost ([12]): against
// data-dependent generalization the corner predicate isolates almost
// always.
func TestCornerAttackApproaches100(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg, scfg := surveyPSOConfig(60)
	mech := KAnonymity{QI: surveyQI(cfg.Schema), K: 5, Algorithm: UseMondrian}
	att := Corner{Attr: 0, Sample: synth.SurveySampler(scfg), WeightSamples: 1500}
	res, err := Run(rng, cfg, mech, att)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 0.85 {
		t.Errorf("corner attack success = %v, want ≈1: %+v", res.SuccessRate(), res)
	}
}

func TestAttackerErrorsAreCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := BirthdayConfig(1e-6, 5)
	// PrefixDescent needs a *CountOracle but gets an int.
	mech := Count{Q: Equality{Attr: 0, Value: 1, Weight: 1.0 / BirthdayDomain}}
	res, err := Run(rng, cfg, mech, PrefixDescent{TargetDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackErrors != 5 {
		t.Errorf("AttackErrors = %d, want 5", res.AttackErrors)
	}
}

func TestCountOracleLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := dataset.New(BirthdaySchema())
	d.MustAppend(dataset.Record{1})
	y, err := InteractiveCounts{Limit: 2}.Release(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	o := y.(*CountOracle)
	if o.N() != 1 {
		t.Errorf("N = %d", o.N())
	}
	p := Equality{Attr: 0, Value: 1}
	if c, err := o.Count(p); err != nil || c != 1 {
		t.Errorf("count = %v, %v", c, err)
	}
	if _, err := o.Count(p); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Count(p); err == nil {
		t.Error("limit should be enforced")
	}
	if o.Used() != 2 {
		t.Errorf("Used = %d", o.Used())
	}
	if _, err := (InteractiveCounts{}).Release(rng, d); err == nil {
		t.Error("zero limit should be rejected at release")
	}
}

func TestLaplaceHistogramMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := dataset.New(BirthdaySchema())
	for i := 0; i < 100; i++ {
		d.MustAppend(dataset.Record{int64(i % BirthdayDomain)})
	}
	y, err := LaplaceHistogram{Attr: 0, Buckets: 10, Eps: 1}.Release(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	h := y.([]float64)
	if len(h) != 10 {
		t.Fatalf("buckets = %d", len(h))
	}
	if _, err := (LaplaceHistogram{Attr: 0, Buckets: 0, Eps: 1}).Release(rng, d); err == nil {
		t.Error("zero buckets should fail")
	}
}

func TestBaselineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if _, err := (Baseline{Depth: 0}).Attack(rng, nil, 10); err == nil {
		t.Error("depth 0 should fail")
	}
	if _, err := (Baseline{Depth: 64}).Attack(rng, nil, 10); err == nil {
		t.Error("depth 64 should fail")
	}
	if _, err := (Birthday{Domain: 0}).Attack(rng, nil, 10); err == nil {
		t.Error("zero domain should fail")
	}
	if _, err := (PrefixDescent{TargetDepth: 0}).Attack(rng, &CountOracle{}, 10); err == nil {
		t.Error("zero target depth should fail")
	}
}

func TestKAnonClassAttackerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := KAnonClass{Sample: BirthdaySampler()}
	if _, err := a.Attack(rng, 42, 10); err == nil {
		t.Error("wrong release type should fail")
	}
	empty := &kanon.Release{K: 5}
	if _, err := a.Attack(rng, empty, 10); err == nil {
		t.Error("empty release should fail")
	}
	c := Corner{Attr: 3, Sample: BirthdaySampler()}
	if _, err := c.Attack(rng, 42, 10); err == nil {
		t.Error("wrong release type should fail")
	}
	if _, err := c.Attack(rng, empty, 10); err == nil {
		t.Error("empty release should fail")
	}
}

func TestCornerNeedsQIAttr(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rel := &kanon.Release{
		K:       2,
		QI:      []int{1},
		Classes: []kanon.Class{{Cells: []kanon.ValueSet{kanon.Interval{Lo: 0, Hi: 5}}, Rows: []int{0, 1}}},
	}
	c := Corner{Attr: 0, Sample: BirthdaySampler(), WeightSamples: 10}
	if _, err := c.Attack(rng, rel, 2); err == nil {
		t.Error("attr outside QI should fail")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Mechanism: "m", Attacker: "a", Trials: 10, Successes: 3, Isolations: 4, BaselineRate: 0.01}
	if r.String() == "" {
		t.Error("empty report row")
	}
	if r.SuccessRate() != 0.3 || r.IsolationRate() != 0.4 {
		t.Error("rates wrong")
	}
	var zero Result
	if zero.SuccessRate() != 0 || zero.IsolationRate() != 0 {
		t.Error("zero-trial rates should be 0")
	}
}

func TestMechanismDescriptions(t *testing.T) {
	q := Equality{Attr: 0, Value: 1, Weight: 0.1}
	for _, m := range []Mechanism{
		Count{Q: q},
		NoisyCount{Q: q, Eps: 1},
		PostProcess{Inner: Count{Q: q}, Name: "f"},
		InteractiveCounts{Limit: 3},
		InteractiveCounts{Limit: 3, Eps: 1},
		KAnonymity{K: 5},
		KAnonymity{K: 5, Algorithm: UseFullDomain},
		LaplaceHistogram{Eps: 1, Buckets: 4},
	} {
		if m.Describe() == "" {
			t.Errorf("%T: empty description", m)
		}
	}
	for _, a := range []Attacker{
		Baseline{Depth: 10}, Birthday{Domain: 365}, PrefixDescent{TargetDepth: 10},
		KAnonClass{}, Corner{},
	} {
		if a.Describe() == "" {
			t.Errorf("%T: empty description", a)
		}
	}
}

func TestNoisyCountMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := dataset.New(BirthdaySchema())
	for i := 0; i < 50; i++ {
		d.MustAppend(dataset.Record{int64(i)})
	}
	y, err := NoisyCount{Q: Equality{Attr: 0, Value: 1}, Eps: 1}.Release(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	if v := y.(float64); math.Abs(v-1) > 15 {
		t.Errorf("noisy count = %v wildly off", v)
	}
}

func TestKAnonymityMechanismFullDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	scfg := synth.SurveyConfig{Questions: 3, Skew: 0.7}
	d := dataset.New(synth.SurveySchema(scfg))
	sample := synth.SurveySampler(scfg)
	for i := 0; i < 200; i++ {
		d.MustAppend(sample(rng))
	}
	h, err := dataset.NewIntRangeHierarchy(0, synth.SurveyRegDateDomain-1, 1<<10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	binH, err := dataset.NewIntRangeHierarchy(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mech := KAnonymity{
		QI:          []int{0, 1, 2, 3},
		K:           5,
		Algorithm:   UseFullDomain,
		Hierarchies: map[int]dataset.Hierarchy{0: h, 1: binH, 2: binH, 3: binH},
		MaxSuppress: 40,
	}
	y, err := mech.Release(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	rel := y.(*kanon.Release)
	if !rel.IsKAnonymous() {
		t.Error("full-domain release not k-anonymous")
	}
	if _, err := (KAnonymity{Algorithm: Anonymizer(9)}).Release(rng, d); err == nil {
		t.Error("unknown anonymizer should fail")
	}
}

func TestIsolationProbMatchesBaselineRate(t *testing.T) {
	// The harness's baseline column must equal the closed form used in E5.
	// Hash predicates need a high-min-entropy domain (the paper's caveat
	// about the data distribution), so this uses survey records, which are
	// distinct with overwhelming probability.
	rng := rand.New(rand.NewSource(18))
	scfg := synth.SurveyConfig{Questions: 4, Skew: 0.7}
	cfg := Config{
		N:      365,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    1.0 / 365,
		Trials: 1500,
	}
	mech := Count{Q: Equality{Attr: 0, Value: 1, Weight: 1.0 / synth.SurveyRegDateDomain}}
	res, err := Run(rng, cfg, mech, Baseline{Depth: 9}) // 2^-9 ≈ 1/512, weight ≤ τ=1/365
	if err != nil {
		t.Fatal(err)
	}
	// Successes should be near IsolationProb(365, 2^-9) ≈ 0.35.
	want := 365.0 * math.Pow(2, -9) * math.Pow(1-math.Pow(2, -9), 364)
	if math.Abs(res.SuccessRate()-want) > 0.05 {
		t.Errorf("baseline attacker success = %v, closed form %v", res.SuccessRate(), want)
	}
	if math.Abs(res.BaselineRate-want) > 0.01 {
		t.Errorf("reported baseline %v should match closed form %v", res.BaselineRate, want)
	}
}

// TestKAnonClassAttackerOnFullDomainRelease: the class attack is agnostic
// to cell representation, so it also runs against full-domain releases
// whose cells are hierarchy groups.
func TestKAnonClassAttackerOnFullDomainRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	scfg := synth.SurveyConfig{Questions: 10, Skew: 0.8}
	schema := synth.SurveySchema(scfg)
	sample := synth.SurveySampler(scfg)
	d := dataset.New(schema)
	for i := 0; i < 300; i++ {
		d.MustAppend(sample(rng))
	}
	regH, err := dataset.NewIntRangeHierarchy(0, synth.SurveyRegDateDomain-1, 1<<8, 1<<14, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	binH, err := dataset.NewIntRangeHierarchy(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := map[int]dataset.Hierarchy{0: regH}
	qi := []int{0}
	for q := 1; q <= scfg.Questions; q++ {
		hs[q] = binH
		qi = append(qi, q)
	}
	mech := KAnonymity{QI: qi, K: 5, Algorithm: UseFullDomain, Hierarchies: hs, MaxSuppress: 60}
	y, err := mech.Release(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	att := KAnonClass{Sample: sample, WeightSamples: 800}
	p, err := att.Attack(rng, y, d.Len())
	if err != nil {
		t.Fatal(err)
	}
	if p.NominalWeight() <= 0 || p.NominalWeight() > 1 {
		t.Errorf("weight = %v", p.NominalWeight())
	}
	// The corner attack, in contrast, requires data-dependent interval
	// cells and must refuse a full-domain release.
	corner := Corner{Attr: 0, Sample: sample, WeightSamples: 100}
	if _, err := corner.Attack(rng, y, d.Len()); err == nil {
		t.Error("corner attack should reject hierarchy-group cells")
	}
}
