package pso

import (
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

func BenchmarkIsolationCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scfg := synth.SurveyConfig{Questions: 40, Skew: 0.8}
	d := dataset.New(synth.SurveySchema(scfg))
	sample := synth.SurveySampler(scfg)
	for i := 0; i < 1000; i++ {
		d.MustAppend(sample(rng))
	}
	p := HashPrefix{Seed: 7, Depth: 20, Prefix: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsolationCount(p, d)
	}
}

func BenchmarkHashPrefixEval(b *testing.B) {
	r := dataset.Record{10234, 40000, 55, 1, 2, 0, 4, 133}
	p := HashPrefix{Seed: 7, Depth: 30, Prefix: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(r)
	}
}

func BenchmarkPrefixDescentTrial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	cfg := Config{
		N:      500,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    1e-9,
		Trials: 1,
	}
	att := PrefixDescent{TargetDepth: 40}
	mech := InteractiveCounts{Limit: att.Queries()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(rng, cfg, mech, att); err != nil {
			b.Fatal(err)
		}
	}
}
