package pso

import (
	"math/rand"

	"singlingout/internal/dataset"
)

// This file packages the paper's Section 2.2 worked example: a dataset of
// n = 365 birthdays drawn uniformly from {Jan-1, ..., Dec-31}, against
// which a trivial fixed-date predicate isolates with probability ≈ 37%.

// BirthdayDomain is the number of days in the worked example's domain.
const BirthdayDomain = 365

// BirthdaySchema returns the one-attribute schema of the worked example.
func BirthdaySchema() *dataset.Schema {
	return dataset.MustSchema(dataset.Attribute{
		Name: "birthday", Kind: dataset.Int, Min: 0, Max: BirthdayDomain - 1,
	})
}

// BirthdaySampler draws single uniform birthdays — the distribution D of
// the worked example.
func BirthdaySampler() func(*rand.Rand) dataset.Record {
	return func(rng *rand.Rand) dataset.Record {
		return dataset.Record{rng.Int63n(BirthdayDomain)}
	}
}

// BirthdayConfig returns the worked example's experiment configuration:
// n = 365 uniform birthdays with threshold τ.
func BirthdayConfig(tau float64, trials int) Config {
	return Config{
		N:      BirthdayDomain,
		Schema: BirthdaySchema(),
		Sample: BirthdaySampler(),
		Tau:    tau,
		Trials: trials,
	}
}
