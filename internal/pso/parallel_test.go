package pso

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

func TestRunParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := BirthdayConfig(1e-6, 200)
	mech := Count{Q: Equality{Attr: 0, Value: 0, Weight: 1.0 / BirthdayDomain}}
	att := Birthday{Attr: 0, Min: 0, Domain: BirthdayDomain}
	var results []Result
	for _, workers := range []int{1, 4, 0 /* GOMAXPROCS */} {
		res, err := RunParallel(9, cfg, mech, att, workers)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Successes != results[0].Successes ||
			results[i].Isolations != results[0].Isolations ||
			results[i].MeanNominalWeight != results[0].MeanNominalWeight {
			t.Errorf("worker count changed results: %+v vs %+v", results[i], results[0])
		}
	}
	// And the birthday behaviour matches the sequential harness.
	iso := results[0].IsolationRate()
	if iso < 0.30 || iso > 0.45 {
		t.Errorf("parallel isolation rate = %v, want ≈0.37", iso)
	}
}

func TestRunParallelMatchesRunOnAttackSemantics(t *testing.T) {
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	cfg := Config{
		N:      300,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    1.0 / (1 << 30),
		Trials: 20,
	}
	att := PrefixDescent{TargetDepth: 40}
	res, err := RunParallel(3, cfg, InteractiveCounts{Limit: att.Queries()}, att, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 0.9 {
		t.Errorf("parallel composition attack success = %v, want ≈1", res.SuccessRate())
	}
}

func TestRunParallelValidatesAndPropagates(t *testing.T) {
	if _, err := RunParallel(1, Config{}, Count{}, Baseline{Depth: 5}, 2); err == nil {
		t.Error("invalid config should fail")
	}
	// Mechanism failure propagates.
	cfg := BirthdayConfig(1e-6, 4)
	if _, err := RunParallel(1, cfg, InteractiveCounts{Limit: 0}, Baseline{Depth: 5}, 2); err == nil {
		t.Error("mechanism error should propagate")
	}
	// Attacker errors are counted, not fatal.
	res, err := RunParallel(1, cfg, Count{Q: Equality{Attr: 0, Value: 1}}, PrefixDescent{TargetDepth: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackErrors != 4 {
		t.Errorf("AttackErrors = %d, want 4", res.AttackErrors)
	}
}

// failingMechanism fails Release calls by global call number (1-based):
// every call from FailFrom onward, or exactly the FailFrom-th when Once is
// set. It reproduces the worker-death regression: a mechanism error used
// to `return` out of a pool worker goroutine, killing that worker for the
// rest of the run while the survivors kept burning CPU on a run that was
// already doomed.
type failingMechanism struct {
	Calls    *atomic.Int64
	FailFrom int64
	Once     bool
}

func (f failingMechanism) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	n := f.Calls.Add(1)
	if n == f.FailFrom || (!f.Once && n > f.FailFrom) {
		return nil, errors.New("mechanism backend unavailable")
	}
	return 0, nil
}

func (f failingMechanism) Describe() string { return "failing mechanism" }

// TestRunParallelMechanismFailureCancelsPromptly is the regression test
// for the worker-death bug: a single early mechanism failure with
// workers > 1 must shut the run down cleanly instead of draining every
// queued trial through the surviving workers. Before the fix the one
// failing trial killed its worker, the error sat unreported until the end,
// and the other workers released all ~2000 remaining trials.
func TestRunParallelMechanismFailureCancelsPromptly(t *testing.T) {
	cfg := BirthdayConfig(1e-6, 2000)
	var calls atomic.Int64
	mech := failingMechanism{Calls: &calls, FailFrom: 1, Once: true}
	_, err := RunParallel(11, cfg, mech, Birthday{Attr: 0, Min: 0, Domain: BirthdayDomain}, 4)
	if err == nil {
		t.Fatal("mechanism failure must fail the run")
	}
	if got := calls.Load(); got > int64(cfg.Trials)/10 {
		t.Errorf("%d of %d trials released after a first-trial mechanism failure; remaining trials were not cancelled", got, cfg.Trials)
	}
}

// TestRunParallelMechanismFailureDeterministic asserts the reported error
// is the lowest failing trial's at every worker count — the determinism
// half of the shutdown contract.
func TestRunParallelMechanismFailureDeterministic(t *testing.T) {
	cfg := BirthdayConfig(1e-6, 64)
	var want error
	for _, workers := range []int{1, 2, 4, 8} {
		var calls atomic.Int64
		// Every trial fails, so the lowest failing index is trial 0.
		mech := failingMechanism{Calls: &calls, FailFrom: 1}
		_, err := RunParallel(11, cfg, mech, Birthday{Attr: 0, Min: 0, Domain: BirthdayDomain}, workers)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if want == nil {
			want = err
		} else if err.Error() != want.Error() {
			t.Errorf("workers=%d: error %q differs from workers=1 error %q", workers, err, want)
		}
	}
}

func TestRunParallelWeightCheck(t *testing.T) {
	cfg := BirthdayConfig(1e-6, 10)
	cfg.WeightCheckSamples = 2000
	res, err := RunParallel(5, cfg, Count{Q: Equality{Attr: 0, Value: 0}}, Birthday{Attr: 0, Min: 0, Domain: BirthdayDomain}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Measured weight should agree with the nominal 1/365 within MC noise.
	if res.MeanMeasuredWeight < 0.001 || res.MeanMeasuredWeight > 0.006 {
		t.Errorf("measured weight = %v, want ≈1/365", res.MeanMeasuredWeight)
	}
}
