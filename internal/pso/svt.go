package pso

import (
	"errors"
	"fmt"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dp"
)

// This file wires the Sparse Vector Technique into the PSO framework: an
// interactive mechanism that answers adaptive THRESHOLD queries ("does at
// least one record satisfy p?") under a fixed total privacy budget. It is
// the natural defense for the exact regime Theorem 2.8 attacks — long
// adaptive query sequences — and the experiments show it blocks the
// descent attack at bounded ε.

// ThresholdOracle is the released value of SVTCounts: a handle answering
// adaptive "count ≥ 1?" queries through dp.SparseVector.
type ThresholdOracle struct {
	d   *dataset.Dataset
	sv  *dp.SparseVector
	lim int
	n   int
}

// AtLeastOne answers whether at least one record satisfies p, noised per
// the sparse vector technique. It returns dp.ErrBudgetSpent once the
// positive-answer allowance is exhausted and ErrQueryLimit after lim
// total queries.
func (o *ThresholdOracle) AtLeastOne(p Predicate) (bool, error) {
	if o.lim <= 0 {
		return false, ErrQueryLimit
	}
	o.lim--
	return o.sv.Above(int64(IsolationCount(p, o.d)))
}

// N returns the dataset size.
func (o *ThresholdOracle) N() int { return o.n }

// SVTCounts is the sparse-vector-protected interactive mechanism: up to
// Limit adaptive threshold queries with at most MaxPositive positive
// answers, all under total privacy budget Eps.
type SVTCounts struct {
	Limit       int
	MaxPositive int
	Eps         float64
}

// Release implements Mechanism; the released value is *ThresholdOracle.
func (m SVTCounts) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	if m.Limit <= 0 {
		return nil, fmt.Errorf("pso: SVTCounts needs a positive query limit")
	}
	sv, err := dp.NewSparseVector(rng, m.Eps, 0.5, m.MaxPositive)
	if err != nil {
		return nil, fmt.Errorf("pso: %w", err)
	}
	return &ThresholdOracle{d: d, sv: sv, lim: m.Limit, n: d.Len()}, nil
}

// Describe implements Mechanism.
func (m SVTCounts) Describe() string {
	return fmt.Sprintf("SVT ε=%g: %d threshold queries, %d positives", m.Eps, m.Limit, m.MaxPositive)
}

// PrefixDescentSVT adapts the Theorem 2.8 descent to a threshold oracle:
// at each level it asks "is the left child nonempty?" and walks into a
// nonempty child. Against exact threshold answers this works exactly like
// the counting version; against the sparse vector it collapses, because
// the per-answer noise scales with the positive-answer allowance the long
// walk requires.
type PrefixDescentSVT struct {
	TargetDepth int
}

// Attack implements Attacker.
func (a PrefixDescentSVT) Attack(rng *rand.Rand, released any, n int) (Predicate, error) {
	oracle, ok := released.(*ThresholdOracle)
	if !ok {
		return nil, fmt.Errorf("%w: need *ThresholdOracle, got %T", ErrWrongRelease, released)
	}
	if a.TargetDepth <= 0 || a.TargetDepth > 63 {
		return nil, fmt.Errorf("pso: PrefixDescentSVT target depth %d outside [1,63]", a.TargetDepth)
	}
	seed := rng.Uint64()
	prefix := uint64(0)
	for depth := 1; depth <= a.TargetDepth; depth++ {
		left := HashPrefix{Seed: seed, Depth: depth, Prefix: prefix << 1}
		nonEmpty, err := oracle.AtLeastOne(left)
		if errors.Is(err, dp.ErrBudgetSpent) {
			// Allowance gone: finish the walk blindly.
			remaining := a.TargetDepth - depth + 1
			prefix = prefix<<uint(remaining) | (rng.Uint64() & (1<<uint(remaining) - 1))
			return HashPrefix{Seed: seed, Depth: a.TargetDepth, Prefix: prefix}, nil
		}
		if err != nil {
			return nil, fmt.Errorf("pso: svt descent: %w", err)
		}
		if nonEmpty {
			prefix = prefix << 1
		} else {
			prefix = prefix<<1 | 1
		}
	}
	return HashPrefix{Seed: seed, Depth: a.TargetDepth, Prefix: prefix}, nil
}

// Describe implements Attacker.
func (a PrefixDescentSVT) Describe() string {
	return fmt.Sprintf("prefix descent via threshold queries (depth %d)", a.TargetDepth)
}
