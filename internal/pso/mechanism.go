package pso

import (
	"errors"
	"fmt"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dp"
	"singlingout/internal/kanon"
	"singlingout/internal/obs"
	"singlingout/internal/query"
)

// Adaptive predicate-count queries are counting queries like everything
// else the attacks consume, so CountOracle accounts them under
// query.MetricQueries as well as its own name.
var (
	mCountQueries  = obs.Default().Counter("pso.count_queries")
	mOracleQueries = obs.Default().Counter(query.MetricQueries)
	mQueryDenied   = obs.Default().Counter(query.MetricBudgetDenied)
)

// Mechanism is the anonymization mechanism M: X^n → Y of Section 2.2. The
// released value is intentionally untyped: attacks type-switch on the
// release shapes they understand.
type Mechanism interface {
	// Release computes the published output on the dataset.
	Release(rng *rand.Rand, d *dataset.Dataset) (any, error)
	// Describe renders the mechanism for reports.
	Describe() string
}

// Count is the exact counting mechanism M#q of Theorem 2.5: it releases
// Σ_i q(x_i) for a fixed predicate q.
type Count struct {
	Q Predicate
}

// Release implements Mechanism.
func (c Count) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	return IsolationCount(c.Q, d), nil
}

// Describe implements Mechanism.
func (c Count) Describe() string { return fmt.Sprintf("M#q exact count of [%s]", c.Q.Describe()) }

// NoisyCount releases a count with Laplace(1/Eps) noise — the
// ε-differentially private counterpart (Theorem 1.3).
type NoisyCount struct {
	Q   Predicate
	Eps float64
}

// Release implements Mechanism.
func (c NoisyCount) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	return dp.LaplaceCount(rng, int64(IsolationCount(c.Q, d)), c.Eps), nil
}

// Describe implements Mechanism.
func (c NoisyCount) Describe() string {
	return fmt.Sprintf("ε=%g Laplace count of [%s]", c.Eps, c.Q.Describe())
}

// PostProcess wraps a mechanism with an arbitrary data-independent
// post-processing function — the setting of Theorem 2.6.
type PostProcess struct {
	Inner Mechanism
	F     func(any) any
	Name  string
}

// Release implements Mechanism.
func (p PostProcess) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	y, err := p.Inner.Release(rng, d)
	if err != nil {
		return nil, err
	}
	return p.F(y), nil
}

// Describe implements Mechanism.
func (p PostProcess) Describe() string {
	return fmt.Sprintf("%s ∘ (%s)", p.Name, p.Inner.Describe())
}

// ErrQueryLimit is returned by CountOracle.Count once the query allowance
// is spent.
var ErrQueryLimit = errors.New("pso: count-query limit reached")

// CountOracle is the released value of InteractiveCounts: a handle the
// attacker may use to issue up to Limit adaptive predicate-count queries.
// It models the composed mechanism (M#q1(x), ..., M#qℓ(x)) of Theorem 2.8
// with the query list chosen adaptively.
type CountOracle struct {
	d     *dataset.Dataset
	rng   *rand.Rand
	noise func(rng *rand.Rand, trueCount int) float64
	limit int
	used  int
}

// Count answers one predicate-count query.
func (o *CountOracle) Count(p Predicate) (float64, error) {
	if o.used >= o.limit {
		mQueryDenied.Add(1)
		return 0, ErrQueryLimit
	}
	o.used++
	mCountQueries.Add(1)
	mOracleQueries.Add(1)
	c := IsolationCount(p, o.d)
	if o.noise == nil {
		return float64(c), nil
	}
	return o.noise(o.rng, c), nil
}

// Used returns the number of queries spent.
func (o *CountOracle) Used() int { return o.used }

// N returns the dataset size.
func (o *CountOracle) N() int { return o.d.Len() }

// InteractiveCounts is the composition of ℓ = Limit count mechanisms
// (Theorem 2.8). With Eps = 0 each count is exact (each individual count
// mechanism is PSO-secure by Theorem 2.5); with Eps > 0 every answer is
// Laplace-noised with per-query privacy loss Eps (Theorem 2.9's regime
// under composition).
type InteractiveCounts struct {
	Limit int
	Eps   float64 // 0 = exact counts
}

// Release implements Mechanism.
func (m InteractiveCounts) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	if m.Limit <= 0 {
		return nil, fmt.Errorf("pso: InteractiveCounts needs a positive limit")
	}
	o := &CountOracle{d: d, rng: rng, limit: m.Limit}
	if m.Eps > 0 {
		eps := m.Eps
		o.noise = func(rng *rand.Rand, c int) float64 {
			return dp.LaplaceCount(rng, int64(c), eps)
		}
	}
	return o, nil
}

// Describe implements Mechanism.
func (m InteractiveCounts) Describe() string {
	if m.Eps > 0 {
		return fmt.Sprintf("%d adaptive ε=%g Laplace counts", m.Limit, m.Eps)
	}
	return fmt.Sprintf("%d adaptive exact counts", m.Limit)
}

// Anonymizer selects which k-anonymizer a KAnonymity mechanism runs.
type Anonymizer int

// KAnonymity anonymizer algorithms.
const (
	// UseMondrian runs Mondrian multidimensional partitioning.
	UseMondrian Anonymizer = iota
	// UseFullDomain runs Datafly-style full-domain generalization; the
	// mechanism's Hierarchies must be set.
	UseFullDomain
)

// KAnonymity releases a k-anonymized version of the dataset (the
// technology interrogated by Theorem 2.10).
type KAnonymity struct {
	QI        []int
	K         int
	Algorithm Anonymizer
	Mondrian  kanon.MondrianOptions
	// Hierarchies is required for UseFullDomain.
	Hierarchies map[int]dataset.Hierarchy
	// MaxSuppress is the full-domain suppression allowance.
	MaxSuppress int
}

// Release implements Mechanism; the released value is *kanon.Release.
func (m KAnonymity) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	switch m.Algorithm {
	case UseMondrian:
		return kanon.Mondrian(d, m.QI, m.K, m.Mondrian)
	case UseFullDomain:
		rel, _, err := kanon.FullDomain(d, m.QI, m.K, kanon.FullDomainOptions{
			Hierarchies: m.Hierarchies,
			MaxSuppress: m.MaxSuppress,
		})
		return rel, err
	default:
		return nil, fmt.Errorf("pso: unknown anonymizer %d", m.Algorithm)
	}
}

// Describe implements Mechanism.
func (m KAnonymity) Describe() string {
	alg := "Mondrian"
	if m.Algorithm == UseFullDomain {
		alg = "full-domain"
	}
	return fmt.Sprintf("%d-anonymity (%s) over %d QIs", m.K, alg, len(m.QI))
}

// LaplaceHistogram releases an ε-DP histogram of a single attribute — a
// richer DP mechanism for the Theorem 2.9 experiments than a lone count.
type LaplaceHistogram struct {
	Attr    int
	Buckets int
	Eps     float64
}

// Release implements Mechanism; the released value is []float64.
func (m LaplaceHistogram) Release(rng *rand.Rand, d *dataset.Dataset) (any, error) {
	if m.Buckets <= 0 {
		return nil, fmt.Errorf("pso: LaplaceHistogram needs positive bucket count")
	}
	attr := d.Schema.Attrs[m.Attr]
	lo, size := attr.Min, attr.DomainSize()
	counts := make([]int64, m.Buckets)
	for _, r := range d.Rows {
		b := int((r[m.Attr] - lo) * int64(m.Buckets) / size)
		if b >= m.Buckets {
			b = m.Buckets - 1
		}
		counts[b]++
	}
	return dp.Histogram(rng, counts, m.Eps), nil
}

// Describe implements Mechanism.
func (m LaplaceHistogram) Describe() string {
	return fmt.Sprintf("ε=%g Laplace histogram of attr %d (%d buckets)", m.Eps, m.Attr, m.Buckets)
}
