package pso

import (
	"fmt"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dist"
	"singlingout/internal/obs"
)

// Metrics recorded into obs.Default() by the PSO game harness.
var (
	mTrials       = obs.Default().Counter("pso.trials")
	mIsolations   = obs.Default().Counter("pso.isolations")
	mSuccesses    = obs.Default().Counter("pso.successes")
	mAttackErrors = obs.Default().Counter("pso.attack_errors")
	mTrialNS      = obs.Default().Histogram("pso.trial_ns")
)

// Config describes one PSO security experiment (the game of Definition
// 2.4): datasets of size N drawn i.i.d. from Sample, predicates judged
// against the negligible-weight threshold Tau.
type Config struct {
	// N is the dataset size.
	N int
	// Schema is the record schema of sampled records.
	Schema *dataset.Schema
	// Sample draws one record from the distribution D.
	Sample func(*rand.Rand) dataset.Record
	// Tau is the concrete negligible-weight threshold τ: a trial counts as
	// a PSO success only if the output predicate's nominal weight is ≤ Tau.
	Tau float64
	// Trials is the number of independent repetitions.
	Trials int
	// WeightCheckSamples, when positive, additionally Monte-Carlo
	// estimates each output predicate's weight with this many samples so
	// the nominal weights can be audited.
	WeightCheckSamples int
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("pso: config N = %d", c.N)
	case c.Sample == nil:
		return fmt.Errorf("pso: config needs a sampler")
	case !(c.Tau > 0 && c.Tau < 1):
		return fmt.Errorf("pso: config Tau = %v outside (0,1)", c.Tau)
	case c.Trials <= 0:
		return fmt.Errorf("pso: config Trials = %d", c.Trials)
	}
	return nil
}

// Result aggregates a PSO experiment.
type Result struct {
	Mechanism string
	Attacker  string
	Trials    int
	// Successes counts trials where the predicate isolated AND had
	// nominal weight ≤ τ — predicate singling out per Definition 2.4.
	Successes int
	// Isolations counts trials where the predicate isolated, regardless
	// of weight (Definition 2.1 alone).
	Isolations int
	// HeavyIsolations counts isolations by predicates heavier than τ
	// (e.g. the Birthday attacker's 1/n-weight predicates).
	HeavyIsolations int
	// AttackErrors counts trials whose attack could not produce a
	// predicate (treated as failures).
	AttackErrors int
	// MeanNominalWeight averages the nominal weights of output predicates.
	MeanNominalWeight float64
	// MeanMeasuredWeight averages Monte Carlo weight estimates (present
	// only when WeightCheckSamples > 0).
	MeanMeasuredWeight float64
	// BaselineRate is the apples-to-apples trivial success rate: the
	// probability n·w̄·(1-w̄)^(n-1) that a release-independent predicate of
	// the attacker's own mean nominal weight w̄ isolates. An attack only
	// demonstrates predicate singling out by beating this rate.
	BaselineRate float64
}

// SuccessRate returns the PSO success frequency.
func (r Result) SuccessRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Trials)
}

// IsolationRate returns the frequency of isolation irrespective of weight.
func (r Result) IsolationRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Isolations) / float64(r.Trials)
}

// PreventsPSO applies the experiment's decision rule: the mechanism is
// judged to prevent predicate singling out if the attacker's PSO success
// rate does not significantly exceed the trivial baseline at the same
// predicate weight (factor-5 margin plus a three-sigma sampling band plus
// an absolute 1% floor).
func (r Result) PreventsPSO() bool {
	sigma := 3 * sqrtf(r.BaselineRate*(1-r.BaselineRate)/float64(max(1, r.Trials)))
	return r.SuccessRate() <= 5*r.BaselineRate+sigma+0.01
}

func sqrtf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton iterations suffice for a tolerance diagnostic.
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the result as a one-line report row.
func (r Result) String() string {
	return fmt.Sprintf("%-38s vs %-44s PSO %5.1f%%  isolate %5.1f%%  heavy %4d  baseline %.2g",
		r.Mechanism, r.Attacker, 100*r.SuccessRate(), 100*r.IsolationRate(), r.HeavyIsolations, r.BaselineRate)
}

// Run plays the PSO game Trials times: draw x ~ D^n, release y = M(x),
// attack p = A(y), and score isolation and weight.
func Run(rng *rand.Rand, cfg Config, m Mechanism, a Attacker) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{
		Mechanism: m.Describe(),
		Attacker:  a.Describe(),
		Trials:    cfg.Trials,
	}
	var sumNominal, sumMeasured float64
	measured := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		mTrials.Add(1)
		sp := mTrialNS.Span()
		d := dataset.New(cfg.Schema)
		for i := 0; i < cfg.N; i++ {
			d.MustAppend(cfg.Sample(rng))
		}
		released, err := m.Release(rng, d)
		if err != nil {
			sp.End()
			return Result{}, fmt.Errorf("pso: mechanism failed: %w", err)
		}
		p, err := a.Attack(rng, released, cfg.N)
		if err != nil {
			res.AttackErrors++
			mAttackErrors.Add(1)
			sp.End()
			continue
		}
		w := p.NominalWeight()
		sumNominal += w
		if cfg.WeightCheckSamples > 0 {
			sumMeasured += EstimateWeight(rng, p, cfg.Sample, cfg.WeightCheckSamples)
			measured++
		}
		if Isolates(p, d) {
			res.Isolations++
			mIsolations.Add(1)
			if w <= cfg.Tau {
				res.Successes++
				mSuccesses.Add(1)
			} else {
				res.HeavyIsolations++
			}
		}
		sp.End()
	}
	if n := cfg.Trials - res.AttackErrors; n > 0 {
		res.MeanNominalWeight = sumNominal / float64(n)
	}
	if measured > 0 {
		res.MeanMeasuredWeight = sumMeasured / float64(measured)
	}
	res.BaselineRate = dist.IsolationProb(cfg.N, res.MeanNominalWeight)
	return res, nil
}
