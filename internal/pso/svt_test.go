package pso

import (
	"math"
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

func svtConfig(trials int) Config {
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	return Config{
		N:      500,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    math.Pow(2, -30),
		Trials: trials,
	}
}

// TestSVTBlocksDescent: the sparse-vector mechanism answers the same
// ω(log n) adaptive threshold queries the composition attack needs, yet
// the attack collapses to baseline at bounded total epsilon.
func TestSVTBlocksDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := svtConfig(40)
	mech := SVTCounts{Limit: 80, MaxPositive: 45, Eps: 1}
	res, err := Run(rng, cfg, mech, PrefixDescentSVT{TargetDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() > 0.05 {
		t.Errorf("SVT descent success = %v, want ≈0: %+v", res.SuccessRate(), res)
	}
	if !res.PreventsPSO() {
		t.Error("SVT mechanism should be judged PSO-secure")
	}
}

// TestExactThresholdOracleIsAttackable: the control arm — the same
// threshold interface with effectively exact answers (huge epsilon) is
// defeated by the descent, confirming the SVT noise (not the interface)
// provides the protection.
func TestExactThresholdOracleIsAttackable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := svtConfig(40)
	mech := SVTCounts{Limit: 80, MaxPositive: 45, Eps: 1e6}
	res, err := Run(rng, cfg, mech, PrefixDescentSVT{TargetDepth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 0.8 {
		t.Errorf("near-exact threshold descent success = %v, want high: %+v", res.SuccessRate(), res)
	}
}

func TestSVTCountsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.New(BirthdaySchema())
	d.MustAppend(dataset.Record{1})
	if _, err := (SVTCounts{Limit: 0, MaxPositive: 1, Eps: 1}).Release(rng, d); err == nil {
		t.Error("zero limit should fail")
	}
	if _, err := (SVTCounts{Limit: 5, MaxPositive: 0, Eps: 1}).Release(rng, d); err == nil {
		t.Error("zero allowance should fail")
	}
	if (SVTCounts{Limit: 5, MaxPositive: 1, Eps: 1}).Describe() == "" {
		t.Error("empty description")
	}
	if (PrefixDescentSVT{TargetDepth: 5}).Describe() == "" {
		t.Error("empty description")
	}
}

func TestPrefixDescentSVTErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := (PrefixDescentSVT{TargetDepth: 10}).Attack(rng, 42, 10); err == nil {
		t.Error("wrong release type should fail")
	}
	d := dataset.New(BirthdaySchema())
	d.MustAppend(dataset.Record{1})
	y, err := (SVTCounts{Limit: 5, MaxPositive: 1, Eps: 1}).Release(rng, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (PrefixDescentSVT{TargetDepth: 0}).Attack(rng, y, 1); err == nil {
		t.Error("zero depth should fail")
	}
	// Query limit: depth 10 needs 10 queries but limit is 5 and the
	// allowance may run out first; either way no hard failure beyond the
	// documented errors.
	o := y.(*ThresholdOracle)
	if o.N() != 1 {
		t.Errorf("N = %d", o.N())
	}
	used := 0
	for {
		_, err := o.AtLeastOne(Equality{Attr: 0, Value: 1})
		if err != nil {
			break
		}
		used++
		if used > 10 {
			t.Fatal("oracle never enforced a limit")
		}
	}
}
