package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateLimitsConcurrency(t *testing.T) {
	const limit, workers, perW = 3, 10, 50
	g := NewGate(limit)
	var inside, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := g.Enter(context.Background()); err != nil {
					t.Errorf("Enter: %v", err)
					return
				}
				now := inside.Add(1)
				for {
					p := peak.Load()
					if now <= p || peak.CompareAndSwap(p, now) {
						break
					}
				}
				inside.Add(-1)
				g.Leave()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent holders, limit %d", p, limit)
	}
	if g.InUse() != 0 {
		t.Errorf("InUse = %d after all left", g.InUse())
	}
	if g.Limit() != limit {
		t.Errorf("Limit = %d", g.Limit())
	}
}

func TestGateEnterHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Enter on a full gate = %v, want DeadlineExceeded", err)
	}
	g.Leave()
	// The abandoned wait must not have leaked a slot.
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("Enter after Leave: %v", err)
	}
	g.Leave()
}

func TestGatePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewGate(0) should panic")
			}
		}()
		NewGate(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Leave without Enter should panic")
			}
		}()
		NewGate(1).Leave()
	}()
}
