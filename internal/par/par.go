// Package par is the repository's deterministic fan-out engine. The
// paper's quantitative core is a pile of independent solves — one SAT
// instance per census block (E11), one LP decode per (n, α) grid point
// (E02/E13), one trial per PSO game (E08–E10) — and par runs such piles on
// a bounded worker pool while keeping every result bit-for-bit
// independent of the worker count.
//
// The determinism contract has two halves:
//
//   - Randomness: work items never share a random stream. Each item
//     derives its own source from (seed, index) via SeedFor, so the values
//     an item draws depend only on the seed and its index, never on which
//     worker ran it or in what order.
//   - Errors: ForEach dispenses indices in increasing order and stops
//     dispensing after the first failure, so every index below the lowest
//     failing one is guaranteed to have run. ForEach reports the error of
//     the lowest failing index — a deterministic choice even though the
//     set of higher indices that happened to run is not.
//
// Together: same seed ⇒ same results (and same error) at any worker
// count.
package par

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"singlingout/internal/obs"
)

// Metrics recorded into obs.Default() by the pool. par.items counts work
// items executed, par.item_errors counts items whose fn returned an error,
// par.cancelled counts items skipped by first-error cancellation, and
// par.item_ns times individual items.
var (
	mItems     = obs.Default().Counter("par.items")
	mErrors    = obs.Default().Counter("par.item_errors")
	mCancelled = obs.Default().Counter("par.cancelled")
	mItemNS    = obs.Default().Histogram("par.item_ns")
	mWorkers   = obs.Default().Gauge("par.workers")
)

// Workers resolves a requested worker count against n work items:
// requested <= 0 selects GOMAXPROCS, and the result never exceeds n (no
// point spinning up idle goroutines).
func Workers(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// SeedFor derives an independent per-item seed from a base seed and a work
// item index (a golden-ratio multiplicative mix). Two items of the same
// run never share a seed, and the derivation depends only on (seed,
// index), which is what makes pooled results independent of scheduling.
func SeedFor(seed int64, index int) int64 {
	return seed ^ int64(uint64(index)*0x9e3779b97f4a7c15)
}

// RNG returns a fresh rand.Rand seeded with SeedFor(seed, index) — the
// standard per-item source for pooled work.
func RNG(seed int64, index int) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(seed, index)))
}

// ForEach runs fn(i) for every i in [0, n) on a bounded worker pool and
// waits for completion. Indices are dispensed in increasing order; after
// any fn returns an error, no further indices are started (items already
// started run to completion). ForEach returns the error of the lowest
// failing index, which is deterministic for deterministic fn regardless
// of worker count or scheduling (see the package comment).
//
// fn must be safe to call from multiple goroutines; writes to shared state
// should go to per-index slots (e.g. results[i]). workers <= 0 selects
// GOMAXPROCS.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	mWorkers.Set(float64(workers))
	// When the default tracer is enabled (cmd -spans), the whole fan-out
	// becomes a hierarchy of Chrome trace events: one parent span for the
	// ForEach call on the main lane, one timeline lane per pool worker, and
	// one child event per item executed on that worker's lane.
	tr := obs.DefaultTracer()
	pool := obs.TraceSpan{}
	if tr.Enabled() {
		pool = tr.Begin(fmt.Sprintf("par.ForEach n=%d workers=%d", n, workers), "par", obs.MainLane, obs.NoSpan)
		defer pool.End()
	}
	if workers == 1 {
		lane := workerLane(tr, pool, 0)
		// Inline fast path: no goroutines, same dispense order and
		// first-error semantics as the pooled path.
		for i := 0; i < n; i++ {
			if err := runItem(tr, lane, pool.ID(), i, fn); err != nil {
				mCancelled.Add(int64(n - i - 1))
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lane := workerLane(tr, pool, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The failure check precedes the claim, and every claimed index
			// runs. Indices are claimed in increasing order, so when the
			// lowest deterministically-failing index k is claimed, every
			// index below it was claimed earlier and therefore also runs —
			// which is what makes "error of the lowest failing index"
			// well-defined at any worker count.
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runItem(tr, lane, pool.ID(), i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if claimed := int(next.Load()); claimed < n {
		mCancelled.Add(int64(n - claimed))
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workerLane allocates the trace lane for worker w of a pool. Pools are
// disambiguated by the parent span's id so two ForEach calls never merge
// their workers into one timeline row.
func workerLane(tr *obs.Tracer, pool obs.TraceSpan, w int) int {
	if !tr.Enabled() {
		return obs.MainLane
	}
	return tr.NewLane(fmt.Sprintf("pool %d worker %d", pool.ID(), w))
}

// runItem executes one work item with span/counter/trace accounting. lane
// and parent attribute the item's trace event to its worker's timeline row
// and its ForEach parent span.
func runItem(tr *obs.Tracer, lane int, parent obs.SpanID, i int, fn func(int) error) error {
	var ts obs.TraceSpan
	if tr.Enabled() {
		ts = tr.Begin("item "+strconv.Itoa(i), "par.item", lane, parent)
	}
	sp := mItemNS.Span()
	err := fn(i)
	sp.End()
	ts.End()
	mItems.Add(1)
	if err != nil {
		mErrors.Add(1)
	}
	return err
}
