package par

import (
	"context"
	"fmt"

	"singlingout/internal/obs"
)

// Gate metrics recorded into obs.Default(). par.gate_waits counts Enter
// calls that had to block for a slot, par.gate_inflight gauges the slots
// currently held.
var (
	mGateWaits    = obs.Default().Counter("par.gate_waits")
	mGateInflight = obs.Default().Gauge("par.gate_inflight")
)

// Gate is a context-aware concurrency limiter: at most `limit` holders are
// inside at once, and waiting for a slot is abandoned when the caller's
// context ends. The query service uses one Gate to bound concurrent
// request handling on top of the worker pool; anything serving
// long-running work over a network wants the same shape — bounded
// in-flight work, cancellable waits.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a Gate admitting at most limit concurrent holders.
// limit < 1 panics: a gate nobody can enter is a configuration error, not
// a degenerate case to serve.
func NewGate(limit int) *Gate {
	if limit < 1 {
		panic(fmt.Sprintf("par: NewGate(%d): limit must be positive", limit))
	}
	return &Gate{slots: make(chan struct{}, limit)}
}

// Enter blocks until a slot is free or ctx ends, returning ctx.Err() in
// the latter case. On success the caller must Leave() exactly once.
func (g *Gate) Enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		mGateInflight.Set(float64(len(g.slots)))
		return nil
	default:
	}
	mGateWaits.Add(1)
	select {
	case g.slots <- struct{}{}:
		mGateInflight.Set(float64(len(g.slots)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave releases a slot acquired by Enter. Leaving without a matching
// Enter panics (it would silently raise the limit).
func (g *Gate) Leave() {
	select {
	case <-g.slots:
		mGateInflight.Set(float64(len(g.slots)))
	default:
		panic("par: Gate.Leave without Enter")
	}
}

// Limit reports the gate's capacity.
func (g *Gate) Limit() int { return cap(g.slots) }

// InUse reports the slots currently held (a snapshot; concurrent callers
// may change it immediately).
func (g *Gate) InUse() int { return len(g.slots) }
