package par_test

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"singlingout/internal/obs"
	"singlingout/internal/par"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		n := 100
		counts := make([]atomic.Int64, n)
		if err := par.ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachResultsIndependentOfWorkerCount(t *testing.T) {
	// Each item draws from its own (seed, index) source; the assembled
	// output must be identical at every worker count.
	run := func(workers int) []float64 {
		out := make([]float64, 64)
		if err := par.ForEach(workers, len(out), func(i int) error {
			rng := par.RNG(42, i)
			out[i] = rng.Float64() + rng.Float64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 0} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachReturnsLowestFailingIndexError(t *testing.T) {
	// Indices 23 and 61 deterministically fail; the reported error must be
	// index 23's at every worker count, and every index below 23 must have
	// run.
	for _, workers := range []int{1, 2, 8} {
		var ran [64]atomic.Bool
		err := par.ForEach(workers, 64, func(i int) error {
			ran[i].Store(true)
			if i == 23 || i == 61 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 23 failed" {
			t.Fatalf("workers=%d: err = %v, want item 23's error", workers, err)
		}
		for i := 0; i <= 23; i++ {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: index %d below the failing index never ran", workers, i)
			}
		}
	}
}

func TestForEachCancelsPromptly(t *testing.T) {
	// After the first failure no further items are started: with the
	// failing item among the first dispensed, the number of executed items
	// stays near the worker count, not near n.
	const n = 10000
	var executed atomic.Int64
	err := par.ForEach(4, n, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return errors.New("doomed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := executed.Load(); got > n/10 {
		t.Errorf("executed %d of %d items after first-item failure; cancellation not prompt", got, n)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := par.ForEach(4, 0, func(int) error { called = true; return nil }); err != nil || called {
		t.Errorf("n=0: err=%v called=%v", err, called)
	}
	if err := par.ForEach(4, -3, func(int) error { called = true; return nil }); err != nil || called {
		t.Errorf("n<0: err=%v called=%v", err, called)
	}
}

func TestWorkers(t *testing.T) {
	if got := par.Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := par.Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := par.Workers(2, 100); got != 2 {
		t.Errorf("Workers(2, 100) = %d, want 2", got)
	}
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := par.SeedFor(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SeedFor(7, %d) == SeedFor(7, %d)", i, prev)
		}
		seen[s] = i
	}
}

// TestConcurrentJournalEmit drives obs.Journal.Emit from pool workers —
// the cmd/repro -metrics pattern — and checks the journal stays a valid
// one-event-per-line JSONL stream under -race.
func TestConcurrentJournalEmit(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	const n = 200
	if err := par.ForEach(8, n, func(i int) error {
		return j.Emit(obs.Event{Phase: "experiment", ID: fmt.Sprintf("item-%d", i), Seed: int64(i)})
	}); err != nil {
		t.Fatal(err)
	}
	if j.Events() != n {
		t.Fatalf("journal recorded %d events, want %d", j.Events(), n)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("journal stream corrupted by concurrent emits: %v", err)
	}
	if len(events) != n {
		t.Fatalf("parsed %d events, want %d", len(events), n)
	}
}

// TestForEachObsIntegration checks the pool's own work accounting.
func TestForEachObsIntegration(t *testing.T) {
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)
	before := reg.Snapshot()
	if err := par.ForEach(2, 50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	delta := reg.Snapshot().Delta(before)
	if got := delta.Counters["par.items"]; got != 50 {
		t.Errorf("par.items delta = %d, want 50", got)
	}
	if got := delta.Histograms["par.item_ns"].Count; got != 50 {
		t.Errorf("par.item_ns count delta = %d, want 50", got)
	}
}

// TestForEachTraceWorkerLanes pins the -spans contract: with the default
// tracer enabled, a pooled ForEach exports one parent span on the main
// lane, one named timeline lane per pool worker, and one child event per
// item whose parent arg is the ForEach span's id.
func TestForEachTraceWorkerLanes(t *testing.T) {
	tr := obs.DefaultTracer()
	tr.Reset()
	tr.SetEnabled(true)
	defer func() {
		tr.SetEnabled(false)
		tr.Reset()
	}()

	const workers, n = 4, 32
	if err := par.ForEach(workers, n, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tr.SetEnabled(false)

	workerLanes := map[int]string{}
	for tid, name := range tr.Lanes() {
		if tid != obs.MainLane {
			workerLanes[tid] = name
		}
	}
	if len(workerLanes) != workers {
		t.Fatalf("worker lanes = %v, want %d lanes", workerLanes, workers)
	}

	var pool *obs.TraceEvent
	items := 0
	for _, e := range tr.Events() {
		e := e
		switch e.Cat {
		case "par":
			if pool != nil {
				t.Fatal("more than one pool span recorded")
			}
			if e.TID != obs.MainLane {
				t.Errorf("pool span on lane %d, want main lane", e.TID)
			}
			pool = &e
		case "par.item":
			items++
			if _, ok := workerLanes[e.TID]; !ok {
				t.Errorf("item %q on unknown lane %d", e.Name, e.TID)
			}
		}
	}
	if pool == nil {
		t.Fatal("no par.ForEach parent span recorded")
	}
	if items != n {
		t.Errorf("item events = %d, want %d", items, n)
	}
	poolID := pool.Args["id"]
	for _, e := range tr.Events() {
		if e.Cat == "par.item" && e.Args["parent"] != poolID {
			t.Errorf("item %q parent = %v, want pool id %v", e.Name, e.Args["parent"], poolID)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"thread_name"`)) {
		t.Error("Chrome trace export missing traceEvents/thread_name metadata")
	}
}
