// Package dist provides the probability distributions and probability
// utilities used throughout the library: Laplace and two-sided geometric
// noise for differential privacy, Zipf and binomial samplers for workload
// generation, and closed forms for the isolation probabilities analyzed in
// Section 2.2 of the paper.
//
// All samplers take an explicit *rand.Rand so that every experiment in the
// repository is reproducible bit-for-bit from its seed.
package dist

import (
	"math"
	"math/rand"
)

// Laplace samples from the Laplace distribution with mean 0 and scale b.
// The density is f(x) = exp(-|x|/b) / (2b). It panics if b <= 0.
func Laplace(rng *rand.Rand, b float64) float64 {
	if b <= 0 {
		panic("dist: Laplace scale must be positive")
	}
	// Inverse CDF: u uniform in (-1/2, 1/2), x = -b * sgn(u) * ln(1-2|u|).
	u := rng.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// TwoSidedGeometric samples the discrete analogue of the Laplace
// distribution: Pr[X=k] ∝ alpha^|k| with alpha = exp(-eps) for integer k.
// It is the standard integer-valued noise for eps-differentially private
// counting. It panics if eps <= 0.
func TwoSidedGeometric(rng *rand.Rand, eps float64) int64 {
	if eps <= 0 {
		panic("dist: TwoSidedGeometric eps must be positive")
	}
	alpha := math.Exp(-eps)
	// Sample magnitude from a geometric, sign uniformly, and handle the
	// double-counting of zero by rejection.
	for {
		mag := geometric(rng, 1-alpha) // Pr[mag=k] = (1-alpha) alpha^k, k >= 0
		if mag == 0 {
			// Zero is produced by both signs; accept with probability 1/2
			// so that Pr[X=0] has the correct relative mass.
			if rng.Float64() < 0.5 {
				return 0
			}
			continue
		}
		if rng.Float64() < 0.5 {
			return -mag
		}
		return mag
	}
}

// geometric samples k >= 0 with Pr[k] = p (1-p)^k.
func geometric(rng *rand.Rand, p float64) int64 {
	if p >= 1 {
		return 0
	}
	u := rng.Float64()
	// Inverse CDF of the geometric distribution.
	return int64(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Binomial samples the number of successes among n independent trials with
// success probability p. It uses direct simulation, which is adequate for
// the experiment sizes in this repository.
func Binomial(rng *rand.Rand, n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}

// Zipf holds a precomputed Zipf(s) distribution over ranks 1..N, used to
// model long-tailed item popularity (e.g. movie ratings in the synthetic
// Netflix-style workload).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution with exponent s > 0 over n ranks.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("dist: NewZipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample returns a rank in [0, n) with Zipf-distributed probability
// (rank 0 is the most popular).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// IsolationProb is the closed form from Section 2.2 of the paper: the
// probability that a predicate of weight w, chosen independently of the
// data, evaluates to 1 on exactly one of n i.i.d. records:
//
//	n·w·(1-w)^(n-1)
//
// Its maximum over w is attained near w = 1/n where it is approximately
// 1/e ≈ 37%.
func IsolationProb(n int, w float64) float64 {
	if n <= 0 || w < 0 || w > 1 {
		return 0
	}
	return float64(n) * w * math.Pow(1-w, float64(n-1))
}

// IsolationProbApprox is the paper's approximation n·w·e^{-n·w}.
func IsolationProbApprox(n int, w float64) float64 {
	nw := float64(n) * w
	return nw * math.Exp(-nw)
}

// NegligibleThreshold returns the weight threshold 2^-lambda used by the
// experiments as the concrete stand-in for "negligible in n". The
// experiments sweep lambda alongside n to expose the asymptotic behaviour.
func NegligibleThreshold(lambda int) float64 {
	return math.Pow(2, -float64(lambda))
}

// LaplaceCDF evaluates the CDF of the Laplace(b) distribution at x.
func LaplaceCDF(x, b float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/b)
	}
	return 1 - 0.5*math.Exp(-x/b)
}

// LaplaceTail returns Pr[|X| > t] for X ~ Laplace(b).
func LaplaceTail(t, b float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-t / b)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than two
// values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using nearest-rank on
// a sorted copy. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	insertionSort(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
