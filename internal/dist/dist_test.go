package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	b := 2.5
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := Laplace(rng, b)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(b).
	if math.Abs(meanAbs-b) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want ~%v", meanAbs, b)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	Laplace(rand.New(rand.NewSource(1)), 0)
}

func TestTwoSidedGeometricSymmetryAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	eps := 0.5
	var sum, sumAbs float64
	zeros := 0
	for i := 0; i < n; i++ {
		x := TwoSidedGeometric(rng, eps)
		sum += float64(x)
		sumAbs += math.Abs(float64(x))
		if x == 0 {
			zeros++
		}
	}
	if m := sum / n; math.Abs(m) > 0.05 {
		t.Errorf("two-sided geometric mean = %v, want ~0", m)
	}
	// Pr[X=0] = (1-alpha)/(1+alpha) with alpha = e^-eps.
	alpha := math.Exp(-eps)
	wantZero := (1 - alpha) / (1 + alpha)
	gotZero := float64(zeros) / n
	if math.Abs(gotZero-wantZero) > 0.01 {
		t.Errorf("Pr[X=0] = %v, want ~%v", gotZero, wantZero)
	}
	_ = sumAbs
}

func TestTwoSidedGeometricDPRatio(t *testing.T) {
	// The noised count k + X should satisfy the eps-DP constraint between
	// neighbouring true counts k and k+1: probability masses at each output
	// differ by at most a factor e^eps.
	rng := rand.New(rand.NewSource(3))
	eps := 1.0
	const n = 400000
	hist0 := map[int64]int{}
	hist1 := map[int64]int{}
	for i := 0; i < n; i++ {
		hist0[10+TwoSidedGeometric(rng, eps)]++
		hist1[11+TwoSidedGeometric(rng, eps)]++
	}
	bound := math.Exp(eps) * 1.15 // slack for sampling error
	for v, c0 := range hist0 {
		c1 := hist1[v]
		if c0 < 500 || c1 < 500 {
			continue // skip noisy tails
		}
		r := float64(c0) / float64(c1)
		if r > bound || 1/r > bound {
			t.Errorf("output %d: ratio %v exceeds e^eps=%v", v, r, math.Exp(eps))
		}
	}
}

func TestBinomialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += Binomial(rng, 100, 0.3)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-30) > 0.5 {
		t.Errorf("binomial mean = %v, want ~30", mean)
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	z := NewZipf(50, 1.1)
	sum := 0.0
	for i := 0; i < 50; i++ {
		p := z.Prob(i)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %v, want positive", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(0) <= z.Prob(49) {
		t.Errorf("Zipf should be decreasing: p0=%v p49=%v", z.Prob(0), z.Prob(49))
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipf(10, 1.0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for i := 0; i < 10; i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: freq %v, want ~%v", i, got, want)
		}
	}
}

func TestIsolationProbPeak(t *testing.T) {
	// The paper's worked example: n=365, w=1/365 gives ≈37%.
	p := IsolationProb(365, 1.0/365)
	if math.Abs(p-0.3689) > 0.001 {
		t.Errorf("IsolationProb(365, 1/365) = %v, want ≈0.369", p)
	}
}

func TestIsolationProbMatchesApprox(t *testing.T) {
	// For large n the exact form and n·w·e^{-n·w} agree.
	for _, n := range []int{100, 1000, 10000} {
		for _, w := range []float64{0.1 / float64(n), 1 / float64(n), 5 / float64(n)} {
			exact := IsolationProb(n, w)
			approx := IsolationProbApprox(n, w)
			if math.Abs(exact-approx) > 0.02 {
				t.Errorf("n=%d w=%v: exact %v approx %v", n, w, exact, approx)
			}
		}
	}
}

func TestIsolationProbProperties(t *testing.T) {
	// Property: IsolationProb is a probability, and equals the binomial
	// pmf Pr[Bin(n,w)=1].
	f := func(nRaw uint8, wRaw float64) bool {
		n := int(nRaw%200) + 1
		w := math.Mod(math.Abs(wRaw), 1)
		p := IsolationProb(n, w)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsolationProbEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, w := 100, 0.01
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		ones := 0
		for j := 0; j < n; j++ {
			if rng.Float64() < w {
				ones++
			}
		}
		if ones == 1 {
			hits++
		}
	}
	got := float64(hits) / trials
	want := IsolationProb(n, w)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical isolation %v, closed form %v", got, want)
	}
}

func TestNegligibleThreshold(t *testing.T) {
	if NegligibleThreshold(10) != 1.0/1024 {
		t.Errorf("NegligibleThreshold(10) = %v", NegligibleThreshold(10))
	}
	if NegligibleThreshold(0) != 1 {
		t.Errorf("NegligibleThreshold(0) = %v", NegligibleThreshold(0))
	}
}

func TestLaplaceCDFAndTail(t *testing.T) {
	if got := LaplaceCDF(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LaplaceCDF(0,1) = %v, want 0.5", got)
	}
	// Tail + CDF consistency: Pr[|X|>t] = 2(1-CDF(t)) for t>0.
	for _, tt := range []float64{0.5, 1, 2, 5} {
		tail := LaplaceTail(tt, 1)
		want := 2 * (1 - LaplaceCDF(tt, 1))
		if math.Abs(tail-want) > 1e-12 {
			t.Errorf("LaplaceTail(%v,1) = %v, want %v", tt, tail, want)
		}
	}
	if LaplaceTail(-1, 1) != 1 {
		t.Errorf("LaplaceTail should be 1 for non-positive t")
	}
}

func TestLaplaceEmpiricalCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	b := 1.0
	count := 0
	for i := 0; i < n; i++ {
		if Laplace(rng, b) <= 1.0 {
			count++
		}
	}
	got := float64(count) / n
	want := LaplaceCDF(1.0, b)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical CDF(1) = %v, want %v", got, want)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("Mean = %v, want 3", m)
	}
	if s := Stddev(xs); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(2.5)", s)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("min = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("max = %v, want 5", q)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}
