package recon

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"singlingout/internal/query"
	"singlingout/internal/synth"
)

var ctx = context.Background()

func TestHammingError(t *testing.T) {
	if got := HammingError([]int64{1, 0, 1, 0}, []int64{1, 1, 1, 1}); got != 0.5 {
		t.Errorf("HammingError = %v, want 0.5", got)
	}
	if got := HammingError(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	HammingError([]int64{1}, []int64{1, 0})
}

func TestExhaustiveExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 12
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 100)
	got, err := Exhaustive(ctx, &query.Exact{X: x}, queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e > 0.01 {
		t.Errorf("exact-oracle reconstruction error = %v, want ~0", e)
	}
}

func TestExhaustiveBoundedNoise(t *testing.T) {
	// Theorem 1.1(i): with small error the exhaustive attack reconstructs
	// all but O(alpha) entries.
	rng := rand.New(rand.NewSource(2))
	n := 14
	x := synth.BinaryDataset(rng, n, 0.5)
	alpha := 1.0
	queries := query.RandomSubsets(rng, n, 150)
	o := &query.BoundedNoise{X: x, Alpha: alpha, Rng: rng}
	got, err := Exhaustive(ctx, o, queries, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e > 0.25 {
		t.Errorf("reconstruction error = %v, want small", e)
	}
}

func TestExhaustiveRejectsLargeN(t *testing.T) {
	x := make([]int64, 30)
	if _, err := Exhaustive(ctx, &query.Exact{X: x}, nil, 0); err == nil {
		t.Error("n > 24 should fail")
	}
}

func TestExhaustiveBadQuery(t *testing.T) {
	x := []int64{1, 0}
	if _, err := Exhaustive(ctx, &query.Exact{X: x}, [][]int{{5}}, 0); err == nil {
		t.Error("out-of-range query should fail")
	}
}

func TestExhaustiveNoConsistentCandidate(t *testing.T) {
	// An oracle whose answers are impossible (negative) admits no
	// consistent candidate at alpha=0.1.
	o := &lyingOracle{n: 4}
	_, err := Exhaustive(ctx, o, [][]int{{0}, {1}}, 0.1)
	if err == nil {
		t.Error("expected no-candidate error")
	}
}

type lyingOracle struct{ n int }

func (l *lyingOracle) Answer(_ context.Context, queries [][]int) ([]float64, error) {
	out := make([]float64, len(queries))
	for i := range out {
		out[i] = -5
	}
	return out, nil
}
func (l *lyingOracle) N() int { return l.n }

func TestExhaustivePropagatesOracleError(t *testing.T) {
	x := []int64{1, 0, 1}
	b := &query.Budgeted{Inner: &query.Exact{X: x}, Limit: 1}
	if _, err := Exhaustive(ctx, b, [][]int{{0}, {1}}, 0); err == nil {
		t.Error("budget exhaustion should propagate")
	}
}

func TestLPDecodeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 32
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 4*n)
	got, frac, err := LPDecode(ctx, &query.Exact{X: x}, queries, L1Slack)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e > 0.02 {
		t.Errorf("LP reconstruction error vs exact oracle = %v", e)
	}
	if len(frac) != n {
		t.Fatalf("frac len = %d", len(frac))
	}
	for i, v := range frac {
		if v < -1e-6 || v > 1+1e-6 {
			t.Errorf("frac[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestLPDecodeSmallNoiseReconstructs(t *testing.T) {
	// Theorem 1.1(ii): error α = O(√n)/const with 4n random queries
	// reconstructs all but a few percent of entries.
	rng := rand.New(rand.NewSource(4))
	n := 64
	x := synth.BinaryDataset(rng, n, 0.5)
	alpha := 0.25 * math.Sqrt(float64(n)) // = 2
	queries := query.RandomSubsets(rng, n, 4*n)
	o := &query.BoundedNoise{X: x, Alpha: alpha, Rng: rng}
	got, _, err := LPDecode(ctx, o, queries, L1Slack)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e > 0.10 {
		t.Errorf("LP reconstruction error = %v, want <= 0.10 at alpha=%v", e, alpha)
	}
}

func TestLPDecodeLargeNoiseFails(t *testing.T) {
	// The "fundamental law" flip side: with error ~n/3 the answers carry
	// little information and reconstruction should approach coin-flipping.
	rng := rand.New(rand.NewSource(5))
	n := 48
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 4*n)
	o := &query.BoundedNoise{X: x, Alpha: float64(n) / 3, Rng: rng}
	got, _, err := LPDecode(ctx, o, queries, L1Slack)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e < 0.15 {
		t.Errorf("reconstruction error = %v under huge noise; defense should hold", e)
	}
}

func TestLPDecodeChebyshev(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 32
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 4*n)
	o := &query.BoundedNoise{X: x, Alpha: 1.0, Rng: rng}
	got, _, err := LPDecode(ctx, o, queries, Chebyshev)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e > 0.15 {
		t.Errorf("Chebyshev reconstruction error = %v", e)
	}
}

func TestLPDecodeErrors(t *testing.T) {
	x := []int64{1, 0}
	if _, _, err := LPDecode(ctx, &query.Exact{X: x}, nil, L1Slack); err == nil {
		t.Error("no queries should fail")
	}
	if _, _, err := LPDecode(ctx, &query.Exact{X: x}, [][]int{{0}}, LPObjective(99)); err == nil {
		t.Error("unknown objective should fail")
	}
	b := &query.Budgeted{Inner: &query.Exact{X: x}, Limit: 0}
	if _, _, err := LPDecode(ctx, b, [][]int{{0}}, L1Slack); err == nil {
		t.Error("oracle error should propagate")
	}
}

func TestRound(t *testing.T) {
	got := Round([]float64{0, 0.49, 0.5, 0.51, 1})
	want := []int64{0, 0, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Round[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLPDecodeAgainstLaplaceOracle(t *testing.T) {
	// With a large privacy budget per query (eps high → little noise) the
	// attack succeeds; this is the "overly accurate answers" regime.
	rng := rand.New(rand.NewSource(7))
	n := 48
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 4*n)
	o := &query.Laplace{X: x, Eps: 5, Rng: rng}
	got, _, err := LPDecode(ctx, o, queries, L1Slack)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, got); e > 0.10 {
		t.Errorf("high-eps Laplace reconstruction error = %v", e)
	}
}

// TestDuplicateIndexQueryConsistency is the regression test for the
// attacker/oracle disagreement on duplicated query indices: the oracle's
// trueSum counted index 0 twice in {0,0,1} while Exhaustive's bitmask (and
// LPDecode's coefficient rows) collapsed it to one — the two sides
// answered different questions. Both paths now reject the query, and with
// the same verdict: it is not a subset of [n].
func TestDuplicateIndexQueryConsistency(t *testing.T) {
	x := []int64{1, 1, 0, 1}
	dup := [][]int{{0, 0, 1}}
	// Oracle path rejects.
	if _, err := query.AnswerOne(ctx, &query.Exact{X: x}, dup[0]); err == nil {
		t.Error("oracle should reject a duplicate-index query")
	}
	// Attacker paths reject the same query (before ever reaching an
	// oracle that might have answered it with double-counting), and say
	// why — the old behaviour was a misleading "no consistent candidate"
	// from Exhaustive and a silently wrong reconstruction from LPDecode.
	if _, err := Exhaustive(ctx, &lyingOracle{n: 4}, dup, 0); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Exhaustive should reject a duplicate-index query as such, got %v", err)
	}
	if _, _, err := LPDecode(ctx, &lyingOracle{n: 4}, dup, L1Slack); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("LPDecode should reject a duplicate-index query as such, got %v", err)
	}
}
