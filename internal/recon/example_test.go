package recon_test

import (
	"context"
	"fmt"
	"math/rand"

	"singlingout/internal/query"
	"singlingout/internal/recon"
	"singlingout/internal/synth"
)

// ExampleLPDecode mounts the polynomial-time Dinur–Nissim attack against
// a mechanism answering subset-sum queries with bounded noise.
func ExampleLPDecode() {
	rng := rand.New(rand.NewSource(1))
	n := 48
	secret := synth.BinaryDataset(rng, n, 0.5)

	// The "protected" interface: answers within ±2 of the truth.
	oracle := &query.BoundedNoise{X: secret, Alpha: 2, Rng: rng}

	queries := query.RandomSubsets(rng, n, 4*n)
	reconstructed, _, err := recon.LPDecode(context.Background(), oracle, queries, recon.L1Slack)
	if err != nil {
		panic(err)
	}
	errFrac := recon.HammingError(secret, reconstructed)
	fmt.Printf("blatantly non-private (error < 5%%): %v\n", errFrac < 0.05)
	// Output: blatantly non-private (error < 5%): true
}
