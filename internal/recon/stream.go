package recon

import (
	"context"
	"errors"
	"fmt"

	"singlingout/internal/lp"
	"singlingout/internal/obs"
	"singlingout/internal/query"
)

// mStreamPushes counts incremental answer chunks decoded by streaming
// sessions (each push is one warm-started LP re-solve).
var mStreamPushes = obs.Default().Counter("recon.stream_pushes")

// mColdRestarts counts warm-started solves that exhausted the simplex
// iteration budget and were retried cold. The L1 decoding LPs are
// massively dual degenerate; a warm basis several chunks stale can strand
// the dual simplex on a degenerate plateau where even its Bland backstop
// grinds, and the cold two-phase path (whose ε-perturbation breaks the
// degeneracy) is then the reliable route. A nonzero value is a
// performance signal, never a correctness one.
var mColdRestarts = obs.Default().Counter("recon.stream_cold_restarts")

// StreamDecoder is the anytime form of LP decoding: a session over the
// Decoder's fixed query workload that ingests answers incrementally —
// chunk by chunk, as a live oracle produces them — and re-decodes after
// every chunk, so an attacker watches the reconstruction sharpen with
// each answered query instead of waiting for the full batch.
//
// The trick that makes each step cheap is that answering more queries
// never changes the LP's constraint MATRIX, only its right-hand side.
// Stream rewrites each unanswered query's two answer rows to
//
//	Σ_{i∈q} x_i - e <= n   and   -Σ_{i∈q} x_i - e <= 0
//
// which no x ∈ [0,1]^n can violate even with e = 0 — the rows are inert
// and price to nothing — and Push tightens them to (a, -a) as answers
// arrive. The matrix (and hence the lp.Basis structure signature) is
// identical at every step, so each re-solve warm-starts from the
// previous optimum via the dual simplex: the newly tightened rows are
// the only violated ones.
//
// After the final push the LP is exactly the batch decoding LP, so the
// finished stream reproduces the batch result (Decoder.Decode is itself
// a thin wrapper that streams the whole answer vector in one push). A
// StreamDecoder borrows its Decoder — run one session at a time and do
// not interleave Decode calls with an active session.
type StreamDecoder struct {
	d        *Decoder
	answered int
}

// Stream starts a streaming session over the decoder's workload: every
// query is reset to unanswered (inert constraint rows) and the session
// ingests answers in order via Push or PushOracle.
func (d *Decoder) Stream() *StreamDecoder {
	for qi := range d.queries {
		d.cons[2*qi].RHS = float64(d.n)
		d.cons[2*qi+1].RHS = 0
	}
	return &StreamDecoder{d: d}
}

// Answered returns how many of the workload's queries have been answered.
func (sd *StreamDecoder) Answered() int { return sd.answered }

// Remaining returns how many queries are still unanswered.
func (sd *StreamDecoder) Remaining() int { return len(sd.d.queries) - sd.answered }

// Push ingests the answers to the next len(answers) queries of the
// workload (in workload order) and re-decodes, warm-starting from the
// previous step's simplex basis. It returns the rounded reconstruction
// and the fractional LP solution fitted to the answers seen so far.
func (sd *StreamDecoder) Push(ctx context.Context, answers []float64) ([]int64, []float64, error) {
	if len(answers) == 0 {
		return nil, nil, fmt.Errorf("recon: stream push of 0 answers")
	}
	if got := sd.answered + len(answers); got > len(sd.d.queries) {
		return nil, nil, fmt.Errorf("recon: stream push overruns workload: %d answers for %d unanswered queries", len(answers), sd.Remaining())
	}
	for i, a := range answers {
		qi := sd.answered + i
		sd.d.cons[2*qi].RHS = a
		sd.d.cons[2*qi+1].RHS = -a
	}
	sd.answered += len(answers)
	mStreamPushes.Add(1)
	return sd.d.solve(ctx)
}

// PushOracle asks the oracle the next k unanswered queries of the
// workload (all remaining when k <= 0 or k exceeds them) as one batch
// and pushes the answers. It returns the step's reconstruction, the
// fractional solution, and the number of queries actually answered.
func (sd *StreamDecoder) PushOracle(ctx context.Context, o query.Oracle, k int) ([]int64, []float64, int, error) {
	if o.N() != sd.d.n {
		return nil, nil, 0, fmt.Errorf("recon: oracle has n = %d, decoder built for %d", o.N(), sd.d.n)
	}
	if rem := sd.Remaining(); k <= 0 || k > rem {
		k = rem
	}
	if k == 0 {
		return nil, nil, 0, fmt.Errorf("recon: stream push on a finished workload")
	}
	answers, err := o.Answer(ctx, sd.d.queries[sd.answered:sd.answered+k])
	if err != nil {
		return nil, nil, 0, fmt.Errorf("recon: oracle failed: %w", err)
	}
	got, frac, err := sd.Push(ctx, answers)
	return got, frac, k, err
}

// solve runs the decoding LP over the decoder's current RHS state,
// warm-starting from (and then retaining) the simplex basis. A warm
// solve that runs out of simplex iterations is retried cold — see
// mColdRestarts.
func (d *Decoder) solve(ctx context.Context) ([]int64, []float64, error) {
	prob := &lp.Problem{NumVars: d.nv, Objective: d.obj, Constraints: d.cons}
	sol, err := lp.Revised(ctx, prob, d.basis)
	if err != nil && d.basis != nil && errors.Is(err, lp.ErrIterationLimit) {
		mColdRestarts.Add(1)
		d.basis = nil
		sol, err = lp.Revised(ctx, prob, nil)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("recon: LP solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("recon: LP status %v", sol.Status)
	}
	d.basis = sol.Basis
	frac := make([]float64, d.n)
	copy(frac, sol.X[:d.n])
	return Round(frac), frac, nil
}
