// Package recon_test (external) lets the averaging tests exercise the
// attack against the diffix package, which itself imports recon.
package recon_test

import (
	"context"
	"math/rand"
	"testing"

	"singlingout/internal/diffix"
	"singlingout/internal/query"
	"singlingout/internal/recon"
	"singlingout/internal/synth"
)

var ctx = context.Background()

func TestAveragingDefeatsFreshNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := synth.BinaryDataset(rng, 40, 0.5)
	// Laplace noise with per-query eps=0.5 and NO budget: 200 repeats
	// average the noise away.
	o := &query.Laplace{X: x, Eps: 0.5, Rng: rng}
	got, err := recon.AveragingAttack(ctx, o, 200)
	if err != nil {
		t.Fatal(err)
	}
	if e := recon.HammingError(x, got); e > 0.05 {
		t.Errorf("averaging error = %v, want ~0 (this is why budgets exist)", e)
	}
}

func TestAveragingBlockedByBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := synth.BinaryDataset(rng, 40, 0.5)
	o := &query.Budgeted{Inner: &query.Laplace{X: x, Eps: 0.5, Rng: rng}, Limit: 100}
	if _, err := recon.AveragingAttack(ctx, o, 200); err == nil {
		t.Error("budget should block the averaging attack")
	}
}

func TestAveragingBlockedByStickyNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 60
	x := synth.BinaryDataset(rng, n, 0.5)
	// Sticky noise with SD comfortably above 1/2: repeating the query
	// returns the same wrong answer, so averaging gains nothing.
	c := &diffix.Cloak{X: x, SD: 2, Threshold: 0, Seed: 9}
	got, err := recon.AveragingAttack(ctx, c, 200)
	if err != nil {
		t.Fatal(err)
	}
	if e := recon.HammingError(x, got); e < 0.10 {
		t.Errorf("averaging against sticky noise error = %v; expected it to stay high", e)
	}
}

func TestAveragingValidation(t *testing.T) {
	if _, err := recon.AveragingAttack(ctx, &query.Exact{X: []int64{1}}, 0); err == nil {
		t.Error("zero repeats should fail")
	}
}
