// Package recon implements the Dinur–Nissim database reconstruction
// attacks of Theorem 1.1: the exhaustive-search attack that works against
// any mechanism with o(n) error given enough subset queries, and the
// polynomial-time linear-programming decoding attack that defeats error up
// to o(√n). Both are written against the query.Oracle interface, so the
// same attack code runs against exact, bounded-error, Laplace-noised and
// budgeted mechanisms.
package recon

import (
	"context"
	"fmt"
	"math"

	"singlingout/internal/lp"
	"singlingout/internal/obs"
	"singlingout/internal/query"
)

// Metrics recorded into obs.Default() by the attack harnesses.
// recon.exhaustive_candidates counts candidate databases tested against the
// collected answers — the 2^n cost of the Theorem 1.1(i) attack.
var (
	mExhaustive = obs.Default().Counter("recon.exhaustive_runs")
	mCandidates = obs.Default().Counter("recon.exhaustive_candidates")
	mLPDecodes  = obs.Default().Counter("recon.lp_decodes")
)

// HammingError returns the fraction of positions where the reconstruction
// disagrees with the truth. A mechanism is "blatantly non-private" when an
// attacker achieves error below 5% (the paper's figure).
func HammingError(truth, recon []int64) float64 {
	if len(truth) != len(recon) {
		panic("recon: HammingError on mismatched lengths")
	}
	if len(truth) == 0 {
		return 0
	}
	wrong := 0
	for i := range truth {
		if truth[i] != recon[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(truth))
}

// Exhaustive mounts the Theorem 1.1(i)-style attack: it submits the whole
// workload as one oracle batch and searches all 2^n candidate databases
// for one consistent with every answer to within alpha, returning the
// first such candidate. It requires n <= 24.
//
// The theorem's guarantee: if the oracle's error is at most alpha on every
// query, the true database is itself consistent, and any consistent
// candidate can disagree with the truth only on O(alpha) entries.
func Exhaustive(ctx context.Context, o query.Oracle, queries [][]int, alpha float64) ([]int64, error) {
	n := o.N()
	if n > 24 {
		return nil, fmt.Errorf("recon: exhaustive attack limited to n <= 24, got %d", n)
	}
	masks := make([]uint32, len(queries))
	for qi, q := range queries {
		// The bitmask candidate evaluation below collapses a repeated index
		// to one membership bit, while an oracle summing naively would count
		// it twice — so the attacker enforces the same well-formedness
		// contract the oracle does, and both sides reject such a query
		// instead of silently disagreeing about what it means.
		if err := query.ValidateQuery(n, q); err != nil {
			return nil, fmt.Errorf("recon: %w", err)
		}
		var m uint32
		for _, i := range q {
			m |= 1 << uint(i)
		}
		masks[qi] = m
	}
	answers, err := o.Answer(ctx, queries)
	if err != nil {
		return nil, fmt.Errorf("recon: oracle failed: %w", err)
	}
	if len(answers) != len(queries) {
		return nil, fmt.Errorf("recon: oracle returned %d answers for %d queries", len(answers), len(queries))
	}
	mExhaustive.Add(1)
	tested := int64(0)
	defer func() { mCandidates.Add(tested) }()
	for cand := uint32(0); cand < 1<<uint(n); cand++ {
		tested++
		ok := true
		for qi := range masks {
			s := float64(popcount32(cand & masks[qi]))
			if math.Abs(s-answers[qi]) > alpha+1e-9 {
				ok = false
				break
			}
		}
		if ok {
			x := make([]int64, n)
			for i := 0; i < n; i++ {
				if cand&(1<<uint(i)) != 0 {
					x[i] = 1
				}
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("recon: no candidate consistent within alpha = %v", alpha)
}

func popcount32(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// LPObjective selects the LP-decoding objective (an ablation axis).
type LPObjective int

// LP decoding objectives.
const (
	// L1Slack minimizes the sum of per-query violations (the formulation
	// of Dwork–McSherry–Talwar LP decoding).
	L1Slack LPObjective = iota
	// Chebyshev minimizes the single largest violation.
	Chebyshev
)

// Decoder is the batched LP-decoding entry point: it fixes a query set
// once and decodes any number of answer vectors against it. The decoding
// LP's constraint matrix depends only on the queries — the answers enter
// only through the RHS — so the Decoder keeps the revised simplex basis
// of its previous decode and warm-starts the next one from it. A Decoder
// is not safe for concurrent use; each goroutine builds its own.
type Decoder struct {
	n         int
	queries   [][]int
	objective LPObjective
	nv        int
	obj       []float64
	cons      []lp.Constraint // RHS of the first 2·len(queries) rows rewritten per decode
	basis     *lp.Basis
}

// NewDecoder validates the query set and precomputes the decoding LP's
// constraint matrix for databases of size n.
func NewDecoder(n int, queries [][]int, objective LPObjective) (*Decoder, error) {
	m := len(queries)
	if m == 0 {
		return nil, fmt.Errorf("recon: no queries")
	}
	for _, q := range queries {
		// Same well-formedness contract as Exhaustive: the constraint rows
		// below assign one coefficient per index, collapsing duplicates an
		// oracle might have counted twice.
		if err := query.ValidateQuery(n, q); err != nil {
			return nil, fmt.Errorf("recon: %w", err)
		}
	}
	var nv int
	switch objective {
	case L1Slack:
		nv = n + m // x_0..x_{n-1}, e_0..e_{m-1}
	case Chebyshev:
		nv = n + 1 // x_0..x_{n-1}, t
	default:
		return nil, fmt.Errorf("recon: unknown objective %d", objective)
	}
	d := &Decoder{n: n, queries: queries, objective: objective, nv: nv}
	d.obj = make([]float64, nv)
	for j := n; j < nv; j++ {
		d.obj[j] = 1
	}
	d.cons = make([]lp.Constraint, 0, 2*m+n)
	slackCol := func(qi int) int {
		if objective == L1Slack {
			return n + qi
		}
		return n
	}
	for qi, q := range queries {
		// Σ_{i∈q} x_i - e <= a   and   -Σ_{i∈q} x_i - e <= -a; the RHS pair
		// (a, -a) is filled in by Decode.
		up := make([]float64, nv)
		lo := make([]float64, nv)
		for _, i := range q {
			up[i] = 1
			lo[i] = -1
		}
		up[slackCol(qi)] = -1
		lo[slackCol(qi)] = -1
		d.cons = append(d.cons,
			lp.Constraint{Coeffs: up, Rel: lp.LE},
			lp.Constraint{Coeffs: lo, Rel: lp.LE},
		)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		row[i] = 1
		d.cons = append(d.cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 1})
	}
	return d, nil
}

// Decode fits a fractional database to one answer vector for the
// Decoder's query set and rounds it, warm-starting from the basis of the
// previous decode when one exists. It is the batch wrapper over the
// streaming path: one Stream session pushing the whole answer vector at
// once (see StreamDecoder for the incremental, anytime form).
func (d *Decoder) Decode(ctx context.Context, answers []float64) ([]int64, []float64, error) {
	if len(answers) != len(d.queries) {
		return nil, nil, fmt.Errorf("recon: %d answers for %d queries", len(answers), len(d.queries))
	}
	mLPDecodes.Add(1)
	return d.Stream().Push(ctx, answers)
}

// DecodeOracle asks the oracle the Decoder's query set as one batch and
// decodes the answers.
func (d *Decoder) DecodeOracle(ctx context.Context, o query.Oracle) ([]int64, []float64, error) {
	if o.N() != d.n {
		return nil, nil, fmt.Errorf("recon: oracle has n = %d, decoder built for %d", o.N(), d.n)
	}
	answers, err := o.Answer(ctx, d.queries)
	if err != nil {
		return nil, nil, fmt.Errorf("recon: oracle failed: %w", err)
	}
	return d.Decode(ctx, answers)
}

// LPDecode mounts the polynomial-time attack of Theorem 1.1(ii): it asks
// the oracle the given queries as one batch and solves a linear program
// fitting a fractional database x ∈ [0,1]^n to the answers, then rounds.
// It returns the rounded reconstruction and the fractional LP solution.
// For repeated decodes over one query set, use a Decoder — it reuses the
// simplex basis across solves.
func LPDecode(ctx context.Context, o query.Oracle, queries [][]int, objective LPObjective) ([]int64, []float64, error) {
	d, err := NewDecoder(o.N(), queries, objective)
	if err != nil {
		return nil, nil, err
	}
	return d.DecodeOracle(ctx, o)
}

// Round converts a fractional database to binary by thresholding at 1/2.
func Round(frac []float64) []int64 {
	out := make([]int64, len(frac))
	for i, v := range frac {
		if v >= 0.5 {
			out[i] = 1
		}
	}
	return out
}
