package recon

import (
	"context"
	"fmt"

	"singlingout/internal/query"
)

// AveragingAttack is the most elementary reconstruction attack: ask each
// singleton query {i} repeatedly and average the answers. Against a
// mechanism with fresh unbiased noise (e.g. the Laplace oracle with a
// fixed per-query epsilon and no budget), the average converges to the
// true bit — which is exactly why real systems must limit queries,
// account for budget across queries (dp.Accountant), or make noise sticky
// (diffix.Cloak and query.StickyLaplace, where this attack collects the
// same answer forever). The repeats for one index are submitted as one
// batch, so a budgeted oracle that cannot cover them refuses the batch
// whole.
func AveragingAttack(ctx context.Context, o query.Oracle, repeats int) ([]int64, error) {
	if repeats <= 0 {
		return nil, fmt.Errorf("recon: averaging attack needs positive repeats")
	}
	n := o.N()
	out := make([]int64, n)
	batch := make([][]int, repeats)
	for i := 0; i < n; i++ {
		for r := range batch {
			batch[r] = []int{i}
		}
		answers, err := o.Answer(ctx, batch)
		if err != nil {
			return nil, fmt.Errorf("recon: averaging attack: %w", err)
		}
		sum := 0.0
		for _, a := range answers {
			sum += a
		}
		if sum/float64(repeats) >= 0.5 {
			out[i] = 1
		}
	}
	return out, nil
}
