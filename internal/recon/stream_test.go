package recon

import (
	"math/rand"
	"testing"

	"singlingout/internal/query"
	"singlingout/internal/synth"
)

// buildWorkload builds a dataset, oracle, exact answers, and decoder for
// the streaming tests: n=24, m=4n random subset queries.
func buildWorkload(t *testing.T, seed int64) ([]int64, *query.Exact, []float64, *Decoder) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 24
	x := synth.BinaryDataset(rng, n, 0.5)
	queries := query.RandomSubsets(rng, n, 4*n)
	o := &query.Exact{X: x}
	answers, err := o.Answer(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(n, queries, L1Slack)
	if err != nil {
		t.Fatal(err)
	}
	return x, o, answers, dec
}

func TestStreamMatchesBatchDecode(t *testing.T) {
	x, _, answers, dec := buildWorkload(t, 7)
	batchGot, batchFrac, err := dec.Decode(ctx, answers)
	if err != nil {
		t.Fatal(err)
	}
	if e := HammingError(x, batchGot); e > 0.05 {
		t.Fatalf("batch reconstruction error = %v, want ~0", e)
	}

	// The finished stream must reproduce the batch decode bit-for-bit, at
	// any chunking — including uneven final chunks.
	for _, chunk := range []int{1, 7, 24, 96} {
		sd := dec.Stream()
		var got []int64
		var frac []float64
		for sd.Remaining() > 0 {
			k := chunk
			if rem := sd.Remaining(); k > rem {
				k = rem
			}
			got, frac, err = sd.Push(ctx, answers[sd.Answered():sd.Answered()+k])
			if err != nil {
				t.Fatalf("chunk %d at %d answered: %v", chunk, sd.Answered(), err)
			}
		}
		if sd.Answered() != len(answers) || sd.Remaining() != 0 {
			t.Fatalf("chunk %d: answered %d remaining %d", chunk, sd.Answered(), sd.Remaining())
		}
		for i := range got {
			if got[i] != batchGot[i] {
				t.Errorf("chunk %d: streamed bit %d = %d, batch %d", chunk, i, got[i], batchGot[i])
			}
		}
		// The fractional interiors may sit on different (equally optimal)
		// vertices of the degenerate LP, but only within the solver's
		// documented ~1e-5 numerical slack.
		for i := range frac {
			if d := frac[i] - batchFrac[i]; d > 1e-5 || d < -1e-5 {
				t.Errorf("chunk %d: streamed frac %d = %v, batch %v", chunk, i, frac[i], batchFrac[i])
			}
		}
	}

	// The decoder is reusable for plain batch decoding after a stream.
	again, _, err := dec.Decode(ctx, answers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != batchGot[i] {
			t.Fatalf("post-stream batch decode diverged at bit %d", i)
		}
	}
}

func TestStreamAccuracyReachesExact(t *testing.T) {
	x, o, _, dec := buildWorkload(t, 11)
	sd := dec.Stream()
	var last float64
	for sd.Remaining() > 0 {
		got, _, _, err := sd.PushOracle(ctx, o, 16)
		if err != nil {
			t.Fatal(err)
		}
		last = 1 - HammingError(x, got)
	}
	if last < 0.999 {
		t.Errorf("final streamed accuracy = %v, want 1.0 against an exact oracle", last)
	}
}

func TestStreamPushErrors(t *testing.T) {
	_, o, answers, dec := buildWorkload(t, 3)
	sd := dec.Stream()
	if _, _, err := sd.Push(ctx, nil); err == nil {
		t.Error("empty push should fail")
	}
	if _, _, err := sd.Push(ctx, append([]float64(nil), make([]float64, len(answers)+1)...)); err == nil {
		t.Error("overrunning push should fail")
	}
	if _, _, err := sd.Push(ctx, answers); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sd.PushOracle(ctx, o, 8); err == nil {
		t.Error("push on a finished workload should fail")
	}
	wrong := &query.Exact{X: make([]int64, o.N()+1)}
	if _, _, _, err := dec.Stream().PushOracle(ctx, wrong, 8); err == nil {
		t.Error("oracle size mismatch should fail")
	}
}

func TestStreamPushOracleChunking(t *testing.T) {
	_, o, _, dec := buildWorkload(t, 5)
	sd := dec.Stream()
	if _, _, k, err := sd.PushOracle(ctx, o, 10); err != nil || k != 10 {
		t.Fatalf("k = %d, err = %v, want 10", k, err)
	}
	// k <= 0 answers everything remaining.
	if _, _, k, err := sd.PushOracle(ctx, o, 0); err != nil || k != sd.Answered()-10 || sd.Remaining() != 0 {
		t.Fatalf("k = %d, err = %v, remaining = %d, want the rest in one push", k, err, sd.Remaining())
	}
}
