// Package dataset defines the record and dataset model shared by every
// subsystem in the repository: anonymizers, query mechanisms, attackers and
// the predicate-singling-out framework all operate on dataset.Dataset.
//
// A record is a fixed-width vector of int64 cells, one per schema attribute.
// Categorical attributes store an index into the attribute's Categories
// slice; integer attributes store the value directly. Keeping every cell an
// int64 makes predicates, generalization and linkage pure integer logic.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind enumerates the attribute types supported by the schema.
type Kind int

const (
	// Int is an integer-valued attribute with an inclusive [Min, Max] domain.
	Int Kind = iota
	// Categorical is a finite enumerated attribute; cells index Categories.
	Categorical
)

// Attribute describes one column of a dataset.
type Attribute struct {
	Name string
	Kind Kind

	// Min and Max bound the domain of an Int attribute (inclusive).
	Min, Max int64

	// Categories enumerates the values of a Categorical attribute.
	Categories []string

	// QuasiIdentifier marks attributes an attacker may observe in public
	// auxiliary data (ZIP code, birth date, sex, ...).
	QuasiIdentifier bool

	// Sensitive marks attributes whose values anonymization must protect
	// (disease, salary, ...).
	Sensitive bool
}

// DomainSize returns the number of distinct values the attribute can take.
func (a *Attribute) DomainSize() int64 {
	if a.Kind == Categorical {
		return int64(len(a.Categories))
	}
	return a.Max - a.Min + 1
}

// ValueString renders a cell of this attribute for display or CSV export.
func (a *Attribute) ValueString(v int64) string {
	if a.Kind == Categorical {
		if v < 0 || v >= int64(len(a.Categories)) {
			return fmt.Sprintf("<invalid:%d>", v)
		}
		return a.Categories[v]
	}
	return strconv.FormatInt(v, 10)
}

// Parse converts a textual value into a cell for this attribute.
func (a *Attribute) Parse(s string) (int64, error) {
	if a.Kind == Categorical {
		for i, c := range a.Categories {
			if c == s {
				return int64(i), nil
			}
		}
		return 0, fmt.Errorf("dataset: attribute %q has no category %q", a.Name, s)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("dataset: attribute %q: %w", a.Name, err)
	}
	if v < a.Min || v > a.Max {
		return 0, fmt.Errorf("dataset: attribute %q: value %d outside [%d,%d]", a.Name, v, a.Min, a.Max)
	}
	return v, nil
}

// Schema is an ordered list of attributes with name-based lookup.
type Schema struct {
	Attrs  []Attribute
	byName map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and non-empty.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{Attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		if a.Kind == Categorical && len(a.Categories) == 0 {
			return nil, fmt.Errorf("dataset: categorical attribute %q has no categories", a.Name)
		}
		if a.Kind == Int && a.Min > a.Max {
			return nil, fmt.Errorf("dataset: attribute %q has empty domain [%d,%d]", a.Name, a.Min, a.Max)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas in tests and generators.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndex returns the position of the named attribute, panicking if the
// attribute does not exist. Use for attribute names fixed at compile time.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("dataset: no attribute %q", name))
	}
	return i
}

// QuasiIdentifiers returns the indices of all quasi-identifier attributes.
func (s *Schema) QuasiIdentifiers() []int {
	var qi []int
	for i, a := range s.Attrs {
		if a.QuasiIdentifier {
			qi = append(qi, i)
		}
	}
	return qi
}

// Record is one individual's row: one int64 cell per schema attribute.
type Record []int64

// Clone returns a copy of the record.
func (r Record) Clone() Record {
	c := make(Record, len(r))
	copy(c, r)
	return c
}

// Equal reports whether two records agree on every cell.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// EqualOn reports whether two records agree on the given attribute indices.
func (r Record) EqualOn(o Record, idx []int) bool {
	for _, i := range idx {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// Key renders the projection of the record onto the given attribute indices
// as a map key.
func (r Record) Key(idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&b, "%d|", r[i])
	}
	return b.String()
}

// Dataset couples a schema with a set of records.
type Dataset struct {
	Schema *Schema
	Rows   []Record
}

// New returns an empty dataset over the given schema.
func New(schema *Schema) *Dataset {
	return &Dataset{Schema: schema}
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Rows) }

// Append adds a record after validating its width against the schema.
func (d *Dataset) Append(r Record) error {
	if len(r) != len(d.Schema.Attrs) {
		return fmt.Errorf("dataset: record width %d != schema width %d", len(r), len(d.Schema.Attrs))
	}
	d.Rows = append(d.Rows, r)
	return nil
}

// MustAppend is Append that panics on error.
func (d *Dataset) MustAppend(r Record) {
	if err := d.Append(r); err != nil {
		panic(err)
	}
}

// Clone deep-copies the dataset (the schema is shared; schemas are
// immutable after construction).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Schema: d.Schema, Rows: make([]Record, len(d.Rows))}
	for i, r := range d.Rows {
		c.Rows[i] = r.Clone()
	}
	return c
}

// Project returns a new dataset containing only the given attribute
// indices, with a schema restricted accordingly.
func (d *Dataset) Project(idx []int) *Dataset {
	attrs := make([]Attribute, len(idx))
	for j, i := range idx {
		attrs[j] = d.Schema.Attrs[i]
	}
	out := &Dataset{Schema: MustSchema(attrs...), Rows: make([]Record, len(d.Rows))}
	for ri, r := range d.Rows {
		row := make(Record, len(idx))
		for j, i := range idx {
			row[j] = r[i]
		}
		out.Rows[ri] = row
	}
	return out
}

// Count returns the number of records satisfying pred.
func (d *Dataset) Count(pred func(Record) bool) int {
	n := 0
	for _, r := range d.Rows {
		if pred(r) {
			n++
		}
	}
	return n
}

// WriteCSV writes the dataset with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.Schema.Attrs))
	for i, a := range d.Schema.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(header))
	for _, r := range d.Rows {
		for i := range r {
			row[i] = d.Schema.Attrs[i].ValueString(r[i])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads records matching the schema from CSV data with a header
// row. The header must list exactly the schema's attribute names in order.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != len(schema.Attrs) {
		return nil, fmt.Errorf("dataset: header width %d != schema width %d", len(header), len(schema.Attrs))
	}
	for i, name := range header {
		if name != schema.Attrs[i].Name {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, name, schema.Attrs[i].Name)
		}
	}
	d := New(schema)
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row: %w", err)
		}
		row := make(Record, len(rec))
		for i, cell := range rec {
			v, err := schema.Attrs[i].Parse(cell)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}
