package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures CSV ingestion never panics and that anything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("zip,age\n12345,30\n")
	f.Add("zip,age\n99999,120\n10000,0\n")
	f.Add("zip,age\n")
	f.Add("")
	f.Add("zip,age\nxx,yy\n")
	f.Add("zip\n1\n")
	schema := MustSchema(
		Attribute{Name: "zip", Kind: Int, Min: 10000, Max: 99999},
		Attribute{Name: "age", Kind: Int, Min: 0, Max: 120},
	)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf, schema)
		if err != nil {
			t.Fatalf("serialized dataset failed to parse: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip changed length: %d != %d", back.Len(), d.Len())
		}
		for i := range d.Rows {
			if !d.Rows[i].Equal(back.Rows[i]) {
				t.Fatalf("round trip changed row %d", i)
			}
		}
	})
}
