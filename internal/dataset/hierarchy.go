package dataset

import (
	"fmt"
)

// Hierarchy describes a value-generalization hierarchy for one attribute,
// in the style used by full-domain generalization k-anonymizers (Samarati,
// Sweeney, Datafly). Level 0 is the raw value; higher levels are coarser.
// At the top level every value maps to a single group ("*").
type Hierarchy interface {
	// Levels returns the number of generalization levels, including the
	// identity level 0. Levels() >= 1.
	Levels() int
	// GroupOf maps a raw cell value to its group id at the given level.
	// Level 0 is the identity mapping.
	GroupOf(v int64, level int) int64
	// Label renders a group id at a level for display.
	Label(group int64, level int) string
	// GroupSize returns how many raw domain values map to the given group
	// at the given level. It is the denominator of generalization-induced
	// predicate weights.
	GroupSize(group int64, level int) int64
}

// IntRangeHierarchy generalizes an integer attribute by snapping values to
// aligned intervals of increasing width. Widths[l] is the interval width at
// level l+1 (level 0 is raw). The final width should cover the whole
// domain, producing the fully suppressed "*" level.
type IntRangeHierarchy struct {
	Min, Max int64
	Widths   []int64
}

// NewIntRangeHierarchy validates and builds an integer range hierarchy.
// Widths must be strictly increasing and positive.
func NewIntRangeHierarchy(min, max int64, widths ...int64) (*IntRangeHierarchy, error) {
	if min > max {
		return nil, fmt.Errorf("dataset: empty domain [%d,%d]", min, max)
	}
	prev := int64(1)
	for i, w := range widths {
		if w <= prev {
			return nil, fmt.Errorf("dataset: hierarchy widths must be strictly increasing; width %d at index %d", w, i)
		}
		prev = w
	}
	return &IntRangeHierarchy{Min: min, Max: max, Widths: widths}, nil
}

// Levels implements Hierarchy.
func (h *IntRangeHierarchy) Levels() int { return len(h.Widths) + 1 }

func (h *IntRangeHierarchy) width(level int) int64 {
	if level == 0 {
		return 1
	}
	return h.Widths[level-1]
}

// GroupOf implements Hierarchy.
func (h *IntRangeHierarchy) GroupOf(v int64, level int) int64 {
	return (v - h.Min) / h.width(level)
}

// Bounds returns the inclusive raw-value interval covered by a group at a
// level, clipped to the attribute domain.
func (h *IntRangeHierarchy) Bounds(group int64, level int) (lo, hi int64) {
	w := h.width(level)
	lo = h.Min + group*w
	hi = lo + w - 1
	if hi > h.Max {
		hi = h.Max
	}
	return lo, hi
}

// Label implements Hierarchy.
func (h *IntRangeHierarchy) Label(group int64, level int) string {
	lo, hi := h.Bounds(group, level)
	if lo == h.Min && hi == h.Max {
		return "*"
	}
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// GroupSize implements Hierarchy.
func (h *IntRangeHierarchy) GroupSize(group int64, level int) int64 {
	lo, hi := h.Bounds(group, level)
	return hi - lo + 1
}

// TreeHierarchy generalizes a categorical attribute along a tree given as a
// fixed-length path of group names for every category, leaf first. All
// paths must have the same length. For example, a disease hierarchy:
//
//	COVID  -> PULM -> *
//	CF     -> PULM -> *
//	Flu    -> PULM -> *
//	Crohn  -> GI   -> *
//
// (three levels: raw, organ system, suppressed).
type TreeHierarchy struct {
	levels []map[string]int64 // group name -> id per level >= 1
	names  [][]string         // group id -> name per level >= 1
	groups [][]int64          // category -> group id per level >= 1
	sizes  [][]int64          // group id -> #categories per level >= 1
	nCats  int
}

// NewTreeHierarchy builds a tree hierarchy. paths[i] is the generalization
// path of category i, excluding the raw value itself; paths[i][l] is the
// group name of category i at level l+1.
func NewTreeHierarchy(paths [][]string) (*TreeHierarchy, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dataset: tree hierarchy needs at least one category")
	}
	depth := len(paths[0])
	if depth == 0 {
		return nil, fmt.Errorf("dataset: tree hierarchy paths must be non-empty")
	}
	h := &TreeHierarchy{nCats: len(paths)}
	h.levels = make([]map[string]int64, depth)
	h.names = make([][]string, depth)
	h.groups = make([][]int64, depth)
	h.sizes = make([][]int64, depth)
	for l := 0; l < depth; l++ {
		h.levels[l] = map[string]int64{}
		h.groups[l] = make([]int64, len(paths))
	}
	for ci, path := range paths {
		if len(path) != depth {
			return nil, fmt.Errorf("dataset: category %d path depth %d, want %d", ci, len(path), depth)
		}
		for l, name := range path {
			id, ok := h.levels[l][name]
			if !ok {
				id = int64(len(h.names[l]))
				h.levels[l][name] = id
				h.names[l] = append(h.names[l], name)
				h.sizes[l] = append(h.sizes[l], 0)
			}
			h.groups[l][ci] = id
			h.sizes[l][id]++
		}
	}
	return h, nil
}

// MustTreeHierarchy is NewTreeHierarchy that panics on error.
func MustTreeHierarchy(paths [][]string) *TreeHierarchy {
	h, err := NewTreeHierarchy(paths)
	if err != nil {
		panic(err)
	}
	return h
}

// Levels implements Hierarchy.
func (h *TreeHierarchy) Levels() int { return len(h.groups) + 1 }

// GroupOf implements Hierarchy.
func (h *TreeHierarchy) GroupOf(v int64, level int) int64 {
	if level == 0 {
		return v
	}
	return h.groups[level-1][v]
}

// Label implements Hierarchy.
func (h *TreeHierarchy) Label(group int64, level int) string {
	if level == 0 {
		return fmt.Sprintf("cat#%d", group)
	}
	return h.names[level-1][group]
}

// GroupSize implements Hierarchy.
func (h *TreeHierarchy) GroupSize(group int64, level int) int64 {
	if level == 0 {
		return 1
	}
	return h.sizes[level-1][group]
}
