package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func toySchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "zip", Kind: Int, Min: 10000, Max: 99999, QuasiIdentifier: true},
		Attribute{Name: "age", Kind: Int, Min: 0, Max: 120, QuasiIdentifier: true},
		Attribute{Name: "sex", Kind: Categorical, Categories: []string{"F", "M"}, QuasiIdentifier: true},
		Attribute{Name: "disease", Kind: Categorical, Categories: []string{"COVID", "CF", "Asthma"}, Sensitive: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsBadInput(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"empty name", []Attribute{{Name: ""}}},
		{"duplicate", []Attribute{{Name: "a", Kind: Int, Max: 1}, {Name: "a", Kind: Int, Max: 1}}},
		{"no categories", []Attribute{{Name: "c", Kind: Categorical}}},
		{"empty domain", []Attribute{{Name: "i", Kind: Int, Min: 5, Max: 4}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.attrs...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaLookup(t *testing.T) {
	s := toySchema(t)
	if i, ok := s.Index("sex"); !ok || i != 2 {
		t.Errorf("Index(sex) = %d,%v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) should be absent")
	}
	if got := s.MustIndex("age"); got != 1 {
		t.Errorf("MustIndex(age) = %d", got)
	}
	qi := s.QuasiIdentifiers()
	if len(qi) != 3 || qi[0] != 0 || qi[2] != 2 {
		t.Errorf("QuasiIdentifiers = %v", qi)
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	toySchema(t).MustIndex("ghost")
}

func TestAttributeParseAndRender(t *testing.T) {
	s := toySchema(t)
	sex := &s.Attrs[2]
	v, err := sex.Parse("M")
	if err != nil || v != 1 {
		t.Errorf("Parse(M) = %d, %v", v, err)
	}
	if _, err := sex.Parse("X"); err == nil {
		t.Error("Parse(X) should fail")
	}
	if sex.ValueString(0) != "F" {
		t.Errorf("ValueString(0) = %q", sex.ValueString(0))
	}
	if !strings.Contains(sex.ValueString(9), "invalid") {
		t.Errorf("ValueString(9) = %q, want invalid marker", sex.ValueString(9))
	}
	age := &s.Attrs[1]
	if _, err := age.Parse("130"); err == nil {
		t.Error("out-of-domain parse should fail")
	}
	if _, err := age.Parse("abc"); err == nil {
		t.Error("non-numeric parse should fail")
	}
	if age.DomainSize() != 121 {
		t.Errorf("age domain size = %d", age.DomainSize())
	}
	if sex.DomainSize() != 2 {
		t.Errorf("sex domain size = %d", sex.DomainSize())
	}
}

func TestRecordOps(t *testing.T) {
	r := Record{1, 2, 3}
	c := r.Clone()
	c[0] = 9
	if r[0] != 1 {
		t.Error("Clone should not share storage")
	}
	if !r.Equal(Record{1, 2, 3}) {
		t.Error("Equal should hold")
	}
	if r.Equal(Record{1, 2}) || r.Equal(Record{1, 2, 4}) {
		t.Error("Equal should fail on mismatch")
	}
	if !r.EqualOn(Record{1, 9, 3}, []int{0, 2}) {
		t.Error("EqualOn(0,2) should hold")
	}
	if r.EqualOn(Record{1, 9, 3}, []int{1}) {
		t.Error("EqualOn(1) should fail")
	}
	if r.Key([]int{0, 2}) != "1|3|" {
		t.Errorf("Key = %q", r.Key([]int{0, 2}))
	}
}

func TestDatasetAppendAndCount(t *testing.T) {
	d := New(toySchema(t))
	if err := d.Append(Record{23456, 55, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{1, 2}); err == nil {
		t.Error("short record should be rejected")
	}
	d.MustAppend(Record{12345, 30, 1, 1})
	d.MustAppend(Record{12346, 33, 0, 2})
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	females := d.Count(func(r Record) bool { return r[2] == 0 })
	if females != 2 {
		t.Errorf("Count females = %d", females)
	}
}

func TestDatasetCloneIsDeep(t *testing.T) {
	d := New(toySchema(t))
	d.MustAppend(Record{23456, 55, 0, 0})
	c := d.Clone()
	c.Rows[0][1] = 99
	if d.Rows[0][1] != 55 {
		t.Error("Clone should deep-copy rows")
	}
}

func TestProject(t *testing.T) {
	d := New(toySchema(t))
	d.MustAppend(Record{23456, 55, 0, 0})
	d.MustAppend(Record{12345, 30, 1, 1})
	p := d.Project([]int{1, 2})
	if len(p.Schema.Attrs) != 2 || p.Schema.Attrs[0].Name != "age" {
		t.Fatalf("projected schema wrong: %+v", p.Schema.Attrs)
	}
	if !p.Rows[1].Equal(Record{30, 1}) {
		t.Errorf("projected row = %v", p.Rows[1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New(toySchema(t))
	d.MustAppend(Record{23456, 55, 0, 0})
	d.MustAppend(Record{12345, 30, 1, 1})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Rows[0].Equal(d.Rows[0]) || !back.Rows[1].Equal(d.Rows[1]) {
		t.Errorf("round trip mismatch: %v", back.Rows)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := toySchema(t)
	if _, err := ReadCSV(strings.NewReader("a,b\n"), s); err == nil {
		t.Error("wrong header width should fail")
	}
	if _, err := ReadCSV(strings.NewReader("zip,age,sex,illness\n"), s); err == nil {
		t.Error("wrong header name should fail")
	}
	if _, err := ReadCSV(strings.NewReader("zip,age,sex,disease\n23456,55,F,PLAGUE\n"), s); err == nil {
		t.Error("unknown category should fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), s); err == nil {
		t.Error("empty input should fail on header")
	}
}

func TestIntRangeHierarchy(t *testing.T) {
	h, err := NewIntRangeHierarchy(0, 120, 10, 40, 121)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 4 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.GroupOf(55, 0) != 55 {
		t.Error("level 0 must be identity")
	}
	if h.GroupOf(55, 1) != 5 {
		t.Errorf("GroupOf(55,1) = %d", h.GroupOf(55, 1))
	}
	if got := h.Label(5, 1); got != "50-59" {
		t.Errorf("Label(5,1) = %q", got)
	}
	if got := h.Label(0, 3); got != "*" {
		t.Errorf("top label = %q", got)
	}
	if got := h.GroupSize(5, 1); got != 10 {
		t.Errorf("GroupSize(5,1) = %d", got)
	}
	// Clipped group at the top of the domain.
	if got := h.GroupSize(12, 1); got != 1 { // values {120}
		t.Errorf("GroupSize(12,1) = %d", got)
	}
	if got := h.Label(12, 1); got != "120" {
		t.Errorf("Label(12,1) = %q", got)
	}
}

func TestIntRangeHierarchyRejectsBadWidths(t *testing.T) {
	if _, err := NewIntRangeHierarchy(0, 10, 5, 5); err == nil {
		t.Error("non-increasing widths should fail")
	}
	if _, err := NewIntRangeHierarchy(10, 0); err == nil {
		t.Error("empty domain should fail")
	}
}

func TestIntRangeHierarchyGroupConsistency(t *testing.T) {
	h, _ := NewIntRangeHierarchy(0, 999, 10, 100, 1000)
	f := func(raw uint16, lvlRaw uint8) bool {
		v := int64(raw) % 1000
		lvl := int(lvlRaw) % h.Levels()
		g := h.GroupOf(v, lvl)
		lo, hi := h.Bounds(g, lvl)
		return lo <= v && v <= hi && h.GroupSize(g, lvl) == hi-lo+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeHierarchy(t *testing.T) {
	h := MustTreeHierarchy([][]string{
		{"PULM", "*"}, // COVID
		{"PULM", "*"}, // CF
		{"PULM", "*"}, // Asthma
		{"GI", "*"},   // Crohn
	})
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.GroupOf(2, 0) != 2 {
		t.Error("level 0 identity")
	}
	if h.GroupOf(0, 1) != h.GroupOf(2, 1) {
		t.Error("COVID and Asthma should share level-1 group")
	}
	if h.GroupOf(0, 1) == h.GroupOf(3, 1) {
		t.Error("COVID and Crohn should differ at level 1")
	}
	if h.GroupOf(0, 2) != h.GroupOf(3, 2) {
		t.Error("all categories share the top group")
	}
	if h.Label(h.GroupOf(3, 1), 1) != "GI" {
		t.Errorf("label = %q", h.Label(h.GroupOf(3, 1), 1))
	}
	if h.GroupSize(h.GroupOf(0, 1), 1) != 3 {
		t.Errorf("PULM size = %d", h.GroupSize(h.GroupOf(0, 1), 1))
	}
	if h.GroupSize(0, 0) != 1 {
		t.Error("leaf groups have size 1")
	}
}

func TestTreeHierarchyErrors(t *testing.T) {
	if _, err := NewTreeHierarchy(nil); err == nil {
		t.Error("empty hierarchy should fail")
	}
	if _, err := NewTreeHierarchy([][]string{{}}); err == nil {
		t.Error("zero-depth paths should fail")
	}
	if _, err := NewTreeHierarchy([][]string{{"A", "*"}, {"B"}}); err == nil {
		t.Error("ragged paths should fail")
	}
}
