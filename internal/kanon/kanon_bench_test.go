package kanon

import (
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

func benchMondrian(b *testing.B, n, k int) {
	rng := rand.New(rand.NewSource(1))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 10, BlocksPerZIP: 10})
	if err != nil {
		b.Fatal(err)
	}
	qi := []int{
		pop.Schema.MustIndex(synth.AttrZIP),
		pop.Schema.MustIndex(synth.AttrBirthDate),
		pop.Schema.MustIndex(synth.AttrSex),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := Mondrian(pop, qi, k, MondrianOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !rel.IsKAnonymous() {
			b.Fatal("not k-anonymous")
		}
	}
}

func BenchmarkMondrian2kK5(b *testing.B)   { benchMondrian(b, 2000, 5) }
func BenchmarkMondrian10kK10(b *testing.B) { benchMondrian(b, 10000, 10) }

func BenchmarkFullDomain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 2000, ZIPs: 8, BlocksPerZIP: 4})
	if err != nil {
		b.Fatal(err)
	}
	zipI := pop.Schema.MustIndex(synth.AttrZIP)
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	zipH, err := dataset.NewIntRangeHierarchy(10000, 10007, 2, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	ageH, err := dataset.NewIntRangeHierarchy(0, 110, 5, 20, 111)
	if err != nil {
		b.Fatal(err)
	}
	opts := FullDomainOptions{
		Hierarchies: map[int]dataset.Hierarchy{zipI: zipH, ageI: ageH},
		MaxSuppress: 100,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FullDomain(pop, []int{zipI, ageI}, 25, opts); err != nil {
			b.Fatal(err)
		}
	}
}
