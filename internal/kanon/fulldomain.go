package kanon

import (
	"fmt"
	"sort"

	"singlingout/internal/dataset"
)

// FullDomainOptions configures the Datafly-style full-domain anonymizer.
type FullDomainOptions struct {
	// Hierarchies maps each quasi-identifier attribute index to its value
	// generalization hierarchy. Every QI must have one.
	Hierarchies map[int]dataset.Hierarchy
	// MaxSuppress is the largest number of rows that may be suppressed
	// instead of generalizing further (Datafly's suppression allowance).
	MaxSuppress int
}

// FullDomain k-anonymizes by full-domain generalization: every value of an
// attribute is generalized to the same hierarchy level, and the attribute
// with the most distinct values is generalized first (Sweeney's Datafly
// heuristic). Rows left in undersized groups are suppressed if the
// allowance permits; otherwise generalization continues.
//
// Unlike Mondrian, the resulting class cells are hierarchy groups, so a
// class can cover a non-contiguous set of raw values (e.g. all pulmonary
// diseases).
func FullDomain(d *dataset.Dataset, qi []int, k int, opts FullDomainOptions) (*Release, []int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("kanon: k = %d, want >= 1", k)
	}
	if len(qi) == 0 {
		return nil, nil, fmt.Errorf("kanon: no quasi-identifiers given")
	}
	levels := make([]int, len(qi))
	hs := make([]dataset.Hierarchy, len(qi))
	for j, a := range qi {
		h, ok := opts.Hierarchies[a]
		if !ok {
			return nil, nil, fmt.Errorf("kanon: no hierarchy for attribute %d (%s)", a, d.Schema.Attrs[a].Name)
		}
		hs[j] = h
	}
	for {
		groups := groupByLevels(d, qi, hs, levels)
		small := 0
		for _, rows := range groups {
			if len(rows) < k {
				small += len(rows)
			}
		}
		if small <= opts.MaxSuppress {
			rel := buildRelease(d, qi, k, hs, levels, groups)
			return rel, append([]int(nil), levels...), nil
		}
		// Generalize the QI with the most distinct current groups, if any
		// can still be generalized.
		bestJ, bestDistinct := -1, -1
		for j := range qi {
			if levels[j]+1 >= hs[j].Levels() {
				continue
			}
			distinct := countDistinct(d, qi[j], hs[j], levels[j])
			if distinct > bestDistinct {
				bestJ, bestDistinct = j, distinct
			}
		}
		if bestJ < 0 {
			// Fully generalized and still undersized groups: suppress them
			// regardless of the allowance (nothing else remains).
			rel := buildRelease(d, qi, k, hs, levels, groups)
			return rel, append([]int(nil), levels...), nil
		}
		levels[bestJ]++
	}
}

func countDistinct(d *dataset.Dataset, attr int, h dataset.Hierarchy, level int) int {
	seen := map[int64]bool{}
	for _, r := range d.Rows {
		seen[h.GroupOf(r[attr], level)] = true
	}
	return len(seen)
}

func groupByLevels(d *dataset.Dataset, qi []int, hs []dataset.Hierarchy, levels []int) map[string][]int {
	groups := map[string][]int{}
	for i, r := range d.Rows {
		key := ""
		for j, a := range qi {
			key += fmt.Sprintf("%d|", hs[j].GroupOf(r[a], levels[j]))
		}
		groups[key] = append(groups[key], i)
	}
	return groups
}

func buildRelease(d *dataset.Dataset, qi []int, k int, hs []dataset.Hierarchy, levels []int, groups map[string][]int) *Release {
	rel := &Release{Schema: d.Schema, QI: qi, K: k}
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic class order
	for _, key := range keys {
		rows := groups[key]
		if len(rows) < k {
			rel.Suppressed = append(rel.Suppressed, rows...)
			continue
		}
		cells := make([]ValueSet, len(qi))
		first := d.Rows[rows[0]]
		for j, a := range qi {
			cells[j] = HierarchyGroup{H: hs[j], Level: levels[j], Group: hs[j].GroupOf(first[a], levels[j])}
		}
		cl := Class{Cells: cells, Rows: append([]int(nil), rows...)}
		sort.Ints(cl.Rows)
		rel.Classes = append(rel.Classes, cl)
	}
	sort.Ints(rel.Suppressed)
	return rel
}
