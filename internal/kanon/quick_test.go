package kanon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"singlingout/internal/dataset"
)

// TestMondrianInvariantsQuick property-tests the anonymizer on random
// small datasets: every release must be a k-anonymous partition whose
// class cells cover their members.
func TestMondrianInvariantsQuick(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "a", Kind: dataset.Int, Min: 0, Max: 63},
		dataset.Attribute{Name: "b", Kind: dataset.Int, Min: 0, Max: 15},
		dataset.Attribute{Name: "c", Kind: dataset.Int, Min: 0, Max: 3},
	)
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		k := int(kRaw%8) + 1
		d := dataset.New(schema)
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Record{rng.Int63n(64), rng.Int63n(16), rng.Int63n(4)})
		}
		rel, err := Mondrian(d, []int{0, 1, 2}, k, MondrianOptions{Policy: RelaxedBalanced})
		if err != nil {
			return false
		}
		if !rel.IsKAnonymous() {
			return false
		}
		seen := make([]int, n)
		for _, c := range rel.Classes {
			for _, r := range c.Rows {
				seen[r]++
				if !c.Matches(d.Rows[r], rel.QI) {
					return false
				}
			}
		}
		for _, r := range rel.Suppressed {
			seen[r]++
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMetricsBoundsQuick: info-loss metrics stay within their documented
// ranges on random releases.
func TestMetricsBoundsQuick(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "a", Kind: dataset.Int, Min: 0, Max: 99},
		dataset.Attribute{Name: "s", Kind: dataset.Int, Min: 0, Max: 5},
	)
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 2
		d := dataset.New(schema)
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Record{rng.Int63n(100), rng.Int63n(6)})
		}
		rel, err := Mondrian(d, []int{0}, 2, MondrianOptions{})
		if err != nil {
			return false
		}
		loss := GenILoss(rel)
		if loss < 0 || loss > 1 {
			return false
		}
		tc := TCloseness(rel, d, 1)
		if tc < 0 || tc > 1 {
			return false
		}
		if Discernibility(rel, n) < 0 {
			return false
		}
		ld := LDiversity(rel, d, 1)
		return ld >= 0 && ld <= 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
