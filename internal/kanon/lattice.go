package kanon

import (
	"fmt"

	"singlingout/internal/dataset"
)

// This file implements exhaustive full-domain lattice search in the style
// of Samarati/Incognito: instead of Datafly's greedy "generalize the most
// diverse attribute" heuristic, it enumerates every vector of hierarchy
// levels, keeps those that achieve k-anonymity within the suppression
// allowance, and returns the one minimizing an information-loss metric.
// The paper notes optimal k-anonymization is NP-hard [30]; exhaustive
// lattice search is exponential only in the number of quasi-identifiers,
// which is small in practice.

// LossMetric scores candidate releases during lattice search.
type LossMetric int

// Lattice-search objectives.
const (
	// MinimizeGenILoss picks the release with the least generalized
	// information loss.
	MinimizeGenILoss LossMetric = iota
	// MinimizeDiscernibility picks the release with the least
	// discernibility cost.
	MinimizeDiscernibility
)

// OptimalFullDomain exhaustively searches the generalization lattice and
// returns the loss-minimal k-anonymous release, the chosen levels, and
// the number of lattice nodes evaluated. It fails if no level vector
// meets the requirement within the suppression allowance.
func OptimalFullDomain(d *dataset.Dataset, qi []int, k int, opts FullDomainOptions, metric LossMetric) (*Release, []int, int, error) {
	if k < 1 {
		return nil, nil, 0, fmt.Errorf("kanon: k = %d, want >= 1", k)
	}
	if len(qi) == 0 {
		return nil, nil, 0, fmt.Errorf("kanon: no quasi-identifiers given")
	}
	hs := make([]dataset.Hierarchy, len(qi))
	maxLevels := make([]int, len(qi))
	latticeSize := 1
	for j, a := range qi {
		h, ok := opts.Hierarchies[a]
		if !ok {
			return nil, nil, 0, fmt.Errorf("kanon: no hierarchy for attribute %d (%s)", a, d.Schema.Attrs[a].Name)
		}
		hs[j] = h
		maxLevels[j] = h.Levels()
		latticeSize *= h.Levels()
	}
	const latticeCap = 100000
	if latticeSize > latticeCap {
		return nil, nil, 0, fmt.Errorf("kanon: lattice of %d nodes exceeds cap %d; use FullDomain (greedy) instead", latticeSize, latticeCap)
	}

	levels := make([]int, len(qi))
	var best *Release
	var bestLevels []int
	bestLoss := 0.0
	evaluated := 0
	for {
		evaluated++
		groups := groupByLevels(d, qi, hs, levels)
		small := 0
		for _, rows := range groups {
			if len(rows) < k {
				small += len(rows)
			}
		}
		if small <= opts.MaxSuppress {
			rel := buildRelease(d, qi, k, hs, levels, groups)
			var loss float64
			switch metric {
			case MinimizeDiscernibility:
				loss = float64(Discernibility(rel, d.Len()))
			default:
				loss = GenILoss(rel)
			}
			if best == nil || loss < bestLoss {
				best, bestLoss = rel, loss
				bestLevels = append([]int(nil), levels...)
			}
		}
		// Advance the mixed-radix level vector.
		j := 0
		for j < len(levels) {
			levels[j]++
			if levels[j] < maxLevels[j] {
				break
			}
			levels[j] = 0
			j++
		}
		if j == len(levels) {
			break
		}
	}
	if best == nil {
		return nil, nil, evaluated, fmt.Errorf("kanon: no lattice node achieves %d-anonymity within %d suppressions", k, opts.MaxSuppress)
	}
	return best, bestLevels, evaluated, nil
}
