package kanon

import (
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

// paperToy builds the 4-record example from Section 1.1 of the paper.
func paperToy(t *testing.T) *dataset.Dataset {
	t.Helper()
	s := dataset.MustSchema(
		dataset.Attribute{Name: "zip", Kind: dataset.Int, Min: 10000, Max: 99999, QuasiIdentifier: true},
		dataset.Attribute{Name: "age", Kind: dataset.Int, Min: 0, Max: 120, QuasiIdentifier: true},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Categories: []string{"F", "M"}, QuasiIdentifier: true},
		dataset.Attribute{Name: "disease", Kind: dataset.Categorical, Categories: []string{"COVID", "CF", "Asthma"}, Sensitive: true},
	)
	d := dataset.New(s)
	d.MustAppend(dataset.Record{23456, 55, 0, 0})
	d.MustAppend(dataset.Record{23456, 42, 0, 0})
	d.MustAppend(dataset.Record{12345, 30, 1, 1})
	d.MustAppend(dataset.Record{12346, 33, 0, 2})
	return d
}

func checkReleaseInvariants(t *testing.T, rel *Release, d *dataset.Dataset) {
	t.Helper()
	if !rel.IsKAnonymous() {
		t.Fatalf("release is not %d-anonymous", rel.K)
	}
	// Every row appears exactly once across classes + suppressed.
	seen := make([]int, d.Len())
	for _, c := range rel.Classes {
		for _, r := range c.Rows {
			seen[r]++
		}
		// Class cells must cover each member's raw values.
		for _, r := range c.Rows {
			if !c.Matches(d.Rows[r], rel.QI) {
				t.Fatalf("class does not cover its own member %d", r)
			}
		}
	}
	for _, r := range rel.Suppressed {
		seen[r]++
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("row %d appears %d times in release", i, n)
		}
	}
}

func TestMondrianToyExample(t *testing.T) {
	d := paperToy(t)
	qi := d.Schema.QuasiIdentifiers()
	rel, err := Mondrian(d, qi, 2, MondrianOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkReleaseInvariants(t, rel, d)
	if len(rel.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(rel.Classes))
	}
	if len(rel.Suppressed) != 0 {
		t.Errorf("suppressed = %v, want none", rel.Suppressed)
	}
	// The two COVID females must share a class (as in the paper's x').
	ci0, ci1 := rel.ClassOf(0), rel.ClassOf(1)
	if ci0 != ci1 {
		t.Errorf("rows 0 and 1 in different classes (%d, %d)", ci0, ci1)
	}
}

func TestMondrianRejectsBadInput(t *testing.T) {
	d := paperToy(t)
	if _, err := Mondrian(d, nil, 2, MondrianOptions{}); err == nil {
		t.Error("empty QI should fail")
	}
	if _, err := Mondrian(d, []int{0}, 0, MondrianOptions{}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Mondrian(d, []int{99}, 2, MondrianOptions{}); err == nil {
		t.Error("bad attribute index should fail")
	}
}

func TestMondrianTinyDatasetSuppressed(t *testing.T) {
	d := paperToy(t)
	rel, err := Mondrian(d, d.Schema.QuasiIdentifiers(), 10, MondrianOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Classes) != 0 || len(rel.Suppressed) != 4 {
		t.Errorf("want full suppression, got %d classes %d suppressed", len(rel.Classes), len(rel.Suppressed))
	}
}

func TestMondrianOnPopulationSweepK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 2000, ZIPs: 8, BlocksPerZIP: 4})
	qi := []int{
		pop.Schema.MustIndex(synth.AttrZIP),
		pop.Schema.MustIndex(synth.AttrAge),
		pop.Schema.MustIndex(synth.AttrSex),
	}
	var prevClasses int
	for i, k := range []int{2, 5, 10, 50} {
		rel, err := Mondrian(pop, qi, k, MondrianOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkReleaseInvariants(t, rel, pop)
		if i > 0 && len(rel.Classes) > prevClasses {
			t.Errorf("k=%d produced more classes (%d) than smaller k (%d)", k, len(rel.Classes), prevClasses)
		}
		prevClasses = len(rel.Classes)
	}
}

func TestMondrianRelaxedBeatsStrictOnInfoLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 1000, ZIPs: 6, BlocksPerZIP: 3})
	qi := []int{pop.Schema.MustIndex(synth.AttrZIP), pop.Schema.MustIndex(synth.AttrAge)}
	strict, err := Mondrian(pop, qi, 7, MondrianOptions{Policy: StrictMedian})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Mondrian(pop, qi, 7, MondrianOptions{Policy: RelaxedBalanced})
	if err != nil {
		t.Fatal(err)
	}
	checkReleaseInvariants(t, strict, pop)
	checkReleaseInvariants(t, relaxed, pop)
	if len(relaxed.Classes) < len(strict.Classes) {
		t.Errorf("relaxed (%d classes) should split at least as finely as strict (%d)",
			len(relaxed.Classes), len(strict.Classes))
	}
}

func TestMondrianLDiversityEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 1500, ZIPs: 5, BlocksPerZIP: 3})
	qi := []int{pop.Schema.MustIndex(synth.AttrZIP), pop.Schema.MustIndex(synth.AttrAge)}
	sens := pop.Schema.MustIndex(synth.AttrDisease)
	rel, err := Mondrian(pop, qi, 4, MondrianOptions{MinLDiversity: 3, SensitiveAttr: sens})
	if err != nil {
		t.Fatal(err)
	}
	checkReleaseInvariants(t, rel, pop)
	if got := LDiversity(rel, pop, sens); got < 3 {
		t.Errorf("ℓ-diversity = %d, want >= 3", got)
	}
}

func TestFullDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 1000, ZIPs: 4, BlocksPerZIP: 2})
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	zipI := pop.Schema.MustIndex(synth.AttrZIP)
	ageH, err := dataset.NewIntRangeHierarchy(0, 110, 10, 40, 111)
	if err != nil {
		t.Fatal(err)
	}
	zipH, err := dataset.NewIntRangeHierarchy(10000, 10003, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rel, levels, err := FullDomain(pop, []int{zipI, ageI}, 25, FullDomainOptions{
		Hierarchies: map[int]dataset.Hierarchy{zipI: zipH, ageI: ageH},
		MaxSuppress: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReleaseInvariants(t, rel, pop)
	if len(levels) != 2 {
		t.Fatalf("levels = %v", levels)
	}
	if len(rel.Suppressed) > 20 {
		t.Errorf("suppressed %d > allowance 20", len(rel.Suppressed))
	}
	// Full-domain property: all classes share the same cell granularity
	// per attribute (same hierarchy level); verify via Size consistency
	// per level group count.
	for _, c := range rel.Classes {
		for j := range c.Cells {
			g, ok := c.Cells[j].(HierarchyGroup)
			if !ok {
				t.Fatal("full-domain cells must be hierarchy groups")
			}
			if g.Level != levels[j] {
				t.Errorf("cell level %d != release level %d", g.Level, levels[j])
			}
		}
	}
}

func TestFullDomainNeedsHierarchies(t *testing.T) {
	d := paperToy(t)
	_, _, err := FullDomain(d, []int{0}, 2, FullDomainOptions{})
	if err == nil {
		t.Error("missing hierarchy should fail")
	}
	if _, _, err := FullDomain(d, nil, 2, FullDomainOptions{}); err == nil {
		t.Error("empty QI should fail")
	}
	if _, _, err := FullDomain(d, []int{0}, 0, FullDomainOptions{}); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestFullDomainExhaustedHierarchySuppresses(t *testing.T) {
	// Two lonely records with a flat hierarchy cannot reach k=3; they must
	// be suppressed even with MaxSuppress 0.
	s := dataset.MustSchema(dataset.Attribute{Name: "a", Kind: dataset.Int, Min: 0, Max: 9})
	d := dataset.New(s)
	d.MustAppend(dataset.Record{1})
	d.MustAppend(dataset.Record{2})
	h, _ := dataset.NewIntRangeHierarchy(0, 9, 10)
	rel, _, err := FullDomain(d, []int{0}, 3, FullDomainOptions{
		Hierarchies: map[int]dataset.Hierarchy{0: h},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Suppressed) != 2 || len(rel.Classes) != 0 {
		t.Errorf("want all rows suppressed, got %d classes %d suppressed", len(rel.Classes), len(rel.Suppressed))
	}
}

func TestMetricsOnToy(t *testing.T) {
	d := paperToy(t)
	rel, _ := Mondrian(d, d.Schema.QuasiIdentifiers(), 2, MondrianOptions{})
	if got := Discernibility(rel, d.Len()); got != 8 { // two classes of 2: 4+4
		t.Errorf("Discernibility = %d, want 8", got)
	}
	if got := AvgClassSize(rel); got != 1.0 {
		t.Errorf("AvgClassSize = %v, want 1.0", got)
	}
	loss := GenILoss(rel)
	if loss <= 0 || loss >= 1 {
		t.Errorf("GenILoss = %v, want in (0,1)", loss)
	}
	// Suppression dominates the metrics.
	relSup, _ := Mondrian(d, d.Schema.QuasiIdentifiers(), 10, MondrianOptions{})
	if got := Discernibility(relSup, d.Len()); got != 16 {
		t.Errorf("suppressed Discernibility = %d, want 16", got)
	}
	if got := GenILoss(relSup); got != 1 {
		t.Errorf("suppressed GenILoss = %v, want 1", got)
	}
	if got := AvgClassSize(relSup); got != 0 {
		t.Errorf("AvgClassSize with no classes = %v, want 0", got)
	}
}

func TestLDiversityAndTCloseness(t *testing.T) {
	d := paperToy(t)
	rel, _ := Mondrian(d, d.Schema.QuasiIdentifiers(), 2, MondrianOptions{})
	sens := d.Schema.MustIndex("disease")
	// Class {0,1} has only COVID → ℓ = 1.
	if got := LDiversity(rel, d, sens); got != 1 {
		t.Errorf("LDiversity = %d, want 1", got)
	}
	tc := TCloseness(rel, d, sens)
	// Global: COVID 1/2, CF 1/4, Asthma 1/4. Class {0,1}: COVID 1.
	// TV distance = (|1-1/2| + 1/4 + 1/4)/2 = 1/2.
	if tc < 0.49 || tc > 0.51 {
		t.Errorf("TCloseness = %v, want 0.5", tc)
	}
}

func TestIntersectionAttackSinglesOut(t *testing.T) {
	// Two 2-anonymous releases over the same data with different QI
	// subsets can isolate individuals (k-anonymity fails to compose).
	s := dataset.MustSchema(
		dataset.Attribute{Name: "a", Kind: dataset.Int, Min: 0, Max: 9},
		dataset.Attribute{Name: "b", Kind: dataset.Int, Min: 0, Max: 9},
	)
	d := dataset.New(s)
	// Rows laid out so that splitting on a vs b yields crossing classes.
	d.MustAppend(dataset.Record{0, 0})
	d.MustAppend(dataset.Record{0, 9})
	d.MustAppend(dataset.Record{9, 0})
	d.MustAppend(dataset.Record{9, 9})
	relA, err := Mondrian(d, []int{0}, 2, MondrianOptions{})
	if err != nil {
		t.Fatal(err)
	}
	relB, err := Mondrian(d, []int{1}, 2, MondrianOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkReleaseInvariants(t, relA, d)
	checkReleaseInvariants(t, relB, d)
	cands := IntersectionAttack(relA, relB, d)
	for i, n := range cands {
		if n != 1 {
			t.Errorf("row %d candidates = %d, want 1 (singled out)", i, n)
		}
	}
}

func TestIntersectionAttackSuppressedRows(t *testing.T) {
	d := paperToy(t)
	relA, _ := Mondrian(d, d.Schema.QuasiIdentifiers(), 2, MondrianOptions{})
	relSup, _ := Mondrian(d, d.Schema.QuasiIdentifiers(), 10, MondrianOptions{})
	cands := IntersectionAttack(relA, relSup, d)
	for i, n := range cands {
		if n != 0 {
			t.Errorf("row %d candidates = %d, want 0 for suppressed release", i, n)
		}
	}
}

func TestClassOf(t *testing.T) {
	d := paperToy(t)
	rel, _ := Mondrian(d, d.Schema.QuasiIdentifiers(), 2, MondrianOptions{})
	for i := 0; i < d.Len(); i++ {
		ci := rel.ClassOf(i)
		if ci < 0 {
			t.Fatalf("row %d not in any class", i)
		}
	}
	if rel.ClassOf(99) != -1 {
		t.Error("unknown row should return -1")
	}
}

func TestValueSetLabels(t *testing.T) {
	iv := Interval{Lo: 3, Hi: 3}
	if iv.Label() != "3" || iv.Size() != 1 || !iv.Contains(3) || iv.Contains(4) {
		t.Errorf("Interval point semantics broken: %+v", iv)
	}
	iv = Interval{Lo: 1, Hi: 4}
	if iv.Label() != "1-4" || iv.Size() != 4 {
		t.Errorf("Interval range semantics broken: %+v", iv)
	}
	h := synth.DiseaseHierarchy()
	g := HierarchyGroup{H: h, Level: 1, Group: h.GroupOf(0, 1)}
	if g.Label() != "PULM" || g.Size() != 5 || !g.Contains(4) || g.Contains(11) {
		t.Errorf("HierarchyGroup semantics broken: %+v", g)
	}
}
