package kanon

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

func latticeFixture(t *testing.T) (*dataset.Dataset, []int, FullDomainOptions) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 800, ZIPs: 4, BlocksPerZIP: 2})
	if err != nil {
		t.Fatal(err)
	}
	zipI := pop.Schema.MustIndex(synth.AttrZIP)
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	sexI := pop.Schema.MustIndex(synth.AttrSex)
	zipH, err := dataset.NewIntRangeHierarchy(10000, 10003, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ageH, err := dataset.NewIntRangeHierarchy(0, 110, 5, 20, 111)
	if err != nil {
		t.Fatal(err)
	}
	sexH, err := dataset.NewIntRangeHierarchy(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := FullDomainOptions{
		Hierarchies: map[int]dataset.Hierarchy{zipI: zipH, ageI: ageH, sexI: sexH},
		MaxSuppress: 40,
	}
	return pop, []int{zipI, ageI, sexI}, opts
}

func TestOptimalFullDomainBeatsGreedy(t *testing.T) {
	pop, qi, opts := latticeFixture(t)
	greedy, _, err := FullDomain(pop, qi, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	optimal, levels, evaluated, err := OptimalFullDomain(pop, qi, 20, opts, MinimizeGenILoss)
	if err != nil {
		t.Fatal(err)
	}
	checkReleaseInvariants(t, optimal, pop)
	if len(levels) != len(qi) {
		t.Fatalf("levels = %v", levels)
	}
	if evaluated != 3*4*2 { // lattice size: zip 3 levels × age 4 × sex 2
		t.Errorf("evaluated %d nodes, want 24", evaluated)
	}
	if GenILoss(optimal) > GenILoss(greedy)+1e-12 {
		t.Errorf("optimal loss %v should not exceed greedy loss %v",
			GenILoss(optimal), GenILoss(greedy))
	}
}

func TestOptimalFullDomainDiscernibility(t *testing.T) {
	pop, qi, opts := latticeFixture(t)
	byLoss, _, _, err := OptimalFullDomain(pop, qi, 10, opts, MinimizeGenILoss)
	if err != nil {
		t.Fatal(err)
	}
	byDisc, _, _, err := OptimalFullDomain(pop, qi, 10, opts, MinimizeDiscernibility)
	if err != nil {
		t.Fatal(err)
	}
	if Discernibility(byDisc, pop.Len()) > Discernibility(byLoss, pop.Len()) {
		t.Errorf("discernibility-optimal (%d) should not exceed loss-optimal (%d)",
			Discernibility(byDisc, pop.Len()), Discernibility(byLoss, pop.Len()))
	}
}

func TestOptimalFullDomainErrors(t *testing.T) {
	pop, qi, opts := latticeFixture(t)
	if _, _, _, err := OptimalFullDomain(pop, qi, 0, opts, MinimizeGenILoss); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, _, err := OptimalFullDomain(pop, nil, 5, opts, MinimizeGenILoss); err == nil {
		t.Error("empty QI should fail")
	}
	diseaseI := pop.Schema.MustIndex(synth.AttrDisease)
	if _, _, _, err := OptimalFullDomain(pop, []int{qi[0], diseaseI}, 5, FullDomainOptions{
		Hierarchies: map[int]dataset.Hierarchy{qi[0]: opts.Hierarchies[qi[0]]},
	}, MinimizeGenILoss); err == nil {
		t.Error("missing hierarchy should fail")
	}
	// Impossible requirement: k larger than the dataset with no allowance.
	if _, _, _, err := OptimalFullDomain(pop, qi, pop.Len()+1, FullDomainOptions{
		Hierarchies: opts.Hierarchies,
	}, MinimizeGenILoss); err == nil {
		t.Error("unachievable k should fail")
	}
}

func TestWriteGeneralizedCSV(t *testing.T) {
	pop, qi, _ := latticeFixture(t)
	rel, err := Mondrian(pop, qi, 5, MondrianOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGeneralizedCSV(&buf, pop, rel); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	released := 0
	for _, c := range rel.Classes {
		released += len(c.Rows)
	}
	if len(lines) != released+1 {
		t.Fatalf("lines = %d, want header + %d rows", len(lines), released)
	}
	if !strings.HasPrefix(lines[0], "zip,birthdate,age,sex") {
		t.Errorf("header = %q", lines[0])
	}
	// QI cells must be generalized labels, which for multi-value intervals
	// contain a dash; the age column (a QI in this fixture) should show
	// generalization on at least some rows.
	dashes := 0
	for _, l := range lines[1:] {
		if strings.Contains(strings.Split(l, ",")[2], "-") {
			dashes++
		}
	}
	if dashes == 0 {
		t.Error("no generalized age cells in output")
	}
	// Schema mismatch rejected.
	other := dataset.New(dataset.MustSchema(dataset.Attribute{Name: "x", Kind: dataset.Int, Max: 1}))
	if err := WriteGeneralizedCSV(&buf, other, rel); err == nil {
		t.Error("schema mismatch should fail")
	}
}
