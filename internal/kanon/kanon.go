// Package kanon implements the k-anonymity framework of Section 1.1 of the
// paper: anonymization by suppression and generalization of
// quasi-identifiers so that every released record is identical to at least
// k-1 others. Two anonymizers are provided — Mondrian multidimensional
// partitioning and Datafly-style full-domain generalization over value
// hierarchies — together with ℓ-diversity and t-closeness checks,
// information-loss metrics, and the composition (intersection) attack the
// paper cites as a k-anonymity failure mode.
//
// Releases are represented as equivalence classes over the original rows;
// each class carries, per quasi-identifier, the set of raw values it
// covers. That value-set view is exactly what the predicate-singling-out
// attack of Theorem 2.10 consumes: each class induces a predicate on raw
// records whose weight the attacker can bound.
package kanon

import (
	"fmt"
	"sort"

	"singlingout/internal/dataset"
)

// ValueSet is the set of raw values a generalized cell covers.
type ValueSet interface {
	// Contains reports whether the raw value is covered.
	Contains(v int64) bool
	// Size returns the number of raw domain values covered.
	Size() int64
	// Label renders the generalized cell.
	Label() string
}

// Interval is a contiguous inclusive range of raw values (Mondrian cells).
type Interval struct {
	Lo, Hi int64
}

// Contains implements ValueSet.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// Size implements ValueSet.
func (iv Interval) Size() int64 { return iv.Hi - iv.Lo + 1 }

// Label implements ValueSet.
func (iv Interval) Label() string {
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("%d", iv.Lo)
	}
	return fmt.Sprintf("%d-%d", iv.Lo, iv.Hi)
}

// HierarchyGroup is a generalization-hierarchy cell (full-domain cells).
type HierarchyGroup struct {
	H     dataset.Hierarchy
	Level int
	Group int64
}

// Contains implements ValueSet.
func (g HierarchyGroup) Contains(v int64) bool { return g.H.GroupOf(v, g.Level) == g.Group }

// Size implements ValueSet.
func (g HierarchyGroup) Size() int64 { return g.H.GroupSize(g.Group, g.Level) }

// Label implements ValueSet.
func (g HierarchyGroup) Label() string { return g.H.Label(g.Group, g.Level) }

// Class is one equivalence class of a release: the covered value sets per
// quasi-identifier, and the original row indices it contains.
type Class struct {
	Cells []ValueSet // aligned with Release.QI
	Rows  []int
}

// Matches reports whether a raw record falls inside the class's cells.
func (c *Class) Matches(r dataset.Record, qi []int) bool {
	for j, cell := range c.Cells {
		if !cell.Contains(r[qi[j]]) {
			return false
		}
	}
	return true
}

// Release is the output of a k-anonymizer.
type Release struct {
	Schema *dataset.Schema
	// QI lists the generalized attribute indices, aligned with class cells.
	QI []int
	// K is the anonymity parameter the release was built for.
	K int
	// Classes are the equivalence classes (each of size >= K).
	Classes []Class
	// Suppressed lists rows removed entirely from the release.
	Suppressed []int
}

// IsKAnonymous verifies the syntactic k-anonymity property: every class
// has at least k rows.
func (r *Release) IsKAnonymous() bool {
	for _, c := range r.Classes {
		if len(c.Rows) < r.K {
			return false
		}
	}
	return true
}

// ClassOf returns the index of the class containing the given original row,
// or -1 if the row was suppressed.
func (r *Release) ClassOf(row int) int {
	for ci := range r.Classes {
		for _, x := range r.Classes[ci].Rows {
			if x == row {
				return ci
			}
		}
	}
	return -1
}

// SplitPolicy selects the Mondrian variant.
type SplitPolicy int

// Mondrian split policies.
const (
	// StrictMedian splits at the median and requires both sides >= k
	// (strict multidimensional partitioning; LeFevre et al.).
	StrictMedian SplitPolicy = iota
	// RelaxedBalanced allows shifting the cut away from the median to
	// salvage splits the strict policy rejects, yielding smaller classes
	// (less information loss) at the same k.
	RelaxedBalanced
)

// MondrianOptions configures the Mondrian anonymizer.
type MondrianOptions struct {
	Policy SplitPolicy
	// MinLDiversity, when > 1, additionally requires every class to
	// contain at least this many distinct values of SensitiveAttr.
	MinLDiversity int
	SensitiveAttr int
}

// Mondrian k-anonymizes the dataset over the given quasi-identifiers using
// multidimensional partitioning. All attributes are treated as ordered
// (categorical attributes by category index), the standard Mondrian
// relaxation.
func Mondrian(d *dataset.Dataset, qi []int, k int, opts MondrianOptions) (*Release, error) {
	if k < 1 {
		return nil, fmt.Errorf("kanon: k = %d, want >= 1", k)
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("kanon: no quasi-identifiers given")
	}
	for _, a := range qi {
		if a < 0 || a >= len(d.Schema.Attrs) {
			return nil, fmt.Errorf("kanon: quasi-identifier index %d out of range", a)
		}
	}
	if d.Len() < k {
		// Everything must be suppressed.
		rel := &Release{Schema: d.Schema, QI: qi, K: k}
		for i := range d.Rows {
			rel.Suppressed = append(rel.Suppressed, i)
		}
		return rel, nil
	}
	rel := &Release{Schema: d.Schema, QI: qi, K: k}
	rows := make([]int, d.Len())
	for i := range rows {
		rows[i] = i
	}
	m := &mondrian{d: d, qi: qi, k: k, opts: opts, rel: rel}
	m.partition(rows)
	return rel, nil
}

type mondrian struct {
	d    *dataset.Dataset
	qi   []int
	k    int
	opts MondrianOptions
	rel  *Release
}

// diversityOK reports whether a row set meets the configured ℓ-diversity.
func (m *mondrian) diversityOK(rows []int) bool {
	if m.opts.MinLDiversity <= 1 {
		return true
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[m.d.Rows[r][m.opts.SensitiveAttr]] = true
		if len(seen) >= m.opts.MinLDiversity {
			return true
		}
	}
	return false
}

func (m *mondrian) partition(rows []int) {
	// Try dimensions in decreasing order of normalized range.
	type dim struct {
		attr   int // position within qi
		spread float64
	}
	dims := make([]dim, len(m.qi))
	for j, a := range m.qi {
		lo, hi := m.minMax(rows, a)
		size := float64(m.d.Schema.Attrs[a].DomainSize())
		dims[j] = dim{attr: j, spread: float64(hi-lo) / size}
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].spread > dims[j].spread })
	for _, dm := range dims {
		if dm.spread == 0 {
			break // no dimension with any spread remains
		}
		left, right, ok := m.trySplit(rows, m.qi[dm.attr])
		if !ok {
			continue
		}
		m.partition(left)
		m.partition(right)
		return
	}
	// No allowed split: emit the class.
	m.emit(rows)
}

func (m *mondrian) minMax(rows []int, attr int) (int64, int64) {
	lo, hi := m.d.Rows[rows[0]][attr], m.d.Rows[rows[0]][attr]
	for _, r := range rows[1:] {
		v := m.d.Rows[r][attr]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// trySplit attempts to cut rows along attr so that both halves have >= k
// rows (and meet diversity). Values equal to the cut go left.
func (m *mondrian) trySplit(rows []int, attr int) (left, right []int, ok bool) {
	sorted := make([]int, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool {
		return m.d.Rows[sorted[i]][attr] < m.d.Rows[sorted[j]][attr]
	})
	tryCut := func(cut int64) ([]int, []int, bool) {
		var l, r []int
		for _, x := range sorted {
			if m.d.Rows[x][attr] <= cut {
				l = append(l, x)
			} else {
				r = append(r, x)
			}
		}
		if len(l) < m.k || len(r) < m.k || !m.diversityOK(l) || !m.diversityOK(r) {
			return nil, nil, false
		}
		return l, r, true
	}
	// Lower median: with an even row count this is the largest cut that
	// keeps the left half at half the rows, so balanced splits succeed.
	median := m.d.Rows[sorted[(len(sorted)-1)/2]][attr]
	if l, r, ok := tryCut(median); ok {
		return l, r, true
	}
	if m.opts.Policy == RelaxedBalanced {
		// Scan candidate cuts outward from the median value.
		values := distinctSorted(m.d, sorted, attr)
		for _, cut := range values {
			if cut == median {
				continue
			}
			if l, r, ok := tryCut(cut); ok {
				return l, r, true
			}
		}
	}
	return nil, nil, false
}

func distinctSorted(d *dataset.Dataset, rows []int, attr int) []int64 {
	seen := map[int64]bool{}
	var vs []int64
	for _, r := range rows {
		v := d.Rows[r][attr]
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

func (m *mondrian) emit(rows []int) {
	if !m.diversityOK(rows) {
		// The class cannot meet the diversity requirement no matter how it
		// is generalized; suppress its rows.
		m.rel.Suppressed = append(m.rel.Suppressed, rows...)
		sort.Ints(m.rel.Suppressed)
		return
	}
	cells := make([]ValueSet, len(m.qi))
	for j, a := range m.qi {
		lo, hi := m.minMax(rows, a)
		cells[j] = Interval{Lo: lo, Hi: hi}
	}
	class := Class{Cells: cells, Rows: append([]int(nil), rows...)}
	sort.Ints(class.Rows)
	m.rel.Classes = append(m.rel.Classes, class)
}
