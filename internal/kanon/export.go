package kanon

import (
	"encoding/csv"
	"fmt"
	"io"

	"singlingout/internal/dataset"
)

// WriteGeneralizedCSV renders the release as CSV in the shape a data
// publisher would ship: one row per released record, quasi-identifier
// cells replaced by their generalized labels, all other attributes
// verbatim, suppressed rows omitted. The header matches the source
// schema.
func WriteGeneralizedCSV(w io.Writer, d *dataset.Dataset, rel *Release) error {
	if d.Schema != rel.Schema {
		return fmt.Errorf("kanon: release schema does not match dataset")
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(d.Schema.Attrs))
	for i, a := range d.Schema.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("kanon: write header: %w", err)
	}
	qiPos := make(map[int]int, len(rel.QI))
	for j, a := range rel.QI {
		qiPos[a] = j
	}
	cells := make([]string, len(header))
	for _, class := range rel.Classes {
		for _, row := range class.Rows {
			for i := range d.Schema.Attrs {
				if j, isQI := qiPos[i]; isQI {
					cells[i] = class.Cells[j].Label()
				} else {
					cells[i] = d.Schema.Attrs[i].ValueString(d.Rows[row][i])
				}
			}
			if err := cw.Write(cells); err != nil {
				return fmt.Errorf("kanon: write row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("kanon: flush: %w", err)
	}
	return nil
}
