package kanon_test

import (
	"fmt"

	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
)

// ExampleMondrian anonymizes the paper's Section 1.1 toy table with k=2.
func ExampleMondrian() {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "zip", Kind: dataset.Int, Min: 10000, Max: 99999},
		dataset.Attribute{Name: "age", Kind: dataset.Int, Min: 0, Max: 120},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Categories: []string{"F", "M"}},
	)
	d := dataset.New(schema)
	d.MustAppend(dataset.Record{23456, 55, 0})
	d.MustAppend(dataset.Record{23456, 42, 0})
	d.MustAppend(dataset.Record{12345, 30, 1})
	d.MustAppend(dataset.Record{12346, 33, 0})

	rel, err := kanon.Mondrian(d, []int{0, 1, 2}, 2, kanon.MondrianOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("2-anonymous:", rel.IsKAnonymous())
	for _, c := range rel.Classes {
		fmt.Printf("class of %d: zip=%s age=%s sex=%s\n",
			len(c.Rows), c.Cells[0].Label(), c.Cells[1].Label(), c.Cells[2].Label())
	}
	// Output:
	// 2-anonymous: true
	// class of 2: zip=12345-12346 age=30-33 sex=0-1
	// class of 2: zip=23456 age=42-55 sex=0
}
