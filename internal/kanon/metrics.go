package kanon

import (
	"math"

	"singlingout/internal/dataset"
)

// This file provides the standard utility and privacy diagnostics for
// k-anonymized releases: information-loss metrics used to compare
// anonymizers, and the ℓ-diversity / t-closeness checks of the k-anonymity
// variants the paper's Theorem 2.10 also covers.

// Discernibility is the discernibility metric C_DM: each row in a class of
// size s costs s, and each suppressed row costs the dataset size. Lower is
// better.
func Discernibility(r *Release, datasetSize int) int64 {
	var cost int64
	for _, c := range r.Classes {
		s := int64(len(c.Rows))
		cost += s * s
	}
	cost += int64(len(r.Suppressed)) * int64(datasetSize)
	return cost
}

// AvgClassSize returns the normalized average equivalence-class size
// C_AVG = (records released / classes) / k; 1.0 is ideal.
func AvgClassSize(r *Release) float64 {
	if len(r.Classes) == 0 || r.K == 0 {
		return 0
	}
	released := 0
	for _, c := range r.Classes {
		released += len(c.Rows)
	}
	return float64(released) / float64(len(r.Classes)) / float64(r.K)
}

// GenILoss is the generalized information loss of Iyengar: per cell, the
// fraction of the attribute domain the generalized cell covers, averaged
// over all released cells. Suppressed rows count as fully generalized
// (loss 1 per QI cell). Range [0,1]; lower is better.
func GenILoss(r *Release) float64 {
	if len(r.QI) == 0 {
		return 0
	}
	var total float64
	var cells int
	for _, c := range r.Classes {
		for j, cell := range c.Cells {
			attr := &r.Schema.Attrs[r.QI[j]]
			dom := attr.DomainSize()
			var loss float64
			if dom > 1 {
				loss = float64(cell.Size()-1) / float64(dom-1)
			}
			total += loss * float64(len(c.Rows))
			cells += len(c.Rows)
		}
	}
	total += float64(len(r.Suppressed) * len(r.QI))
	cells += len(r.Suppressed) * len(r.QI)
	if cells == 0 {
		return 0
	}
	return total / float64(cells)
}

// LDiversity returns the smallest number of distinct sensitive values in
// any class (the release's ℓ). A release with no classes has ℓ = 0.
func LDiversity(r *Release, d *dataset.Dataset, sensitiveAttr int) int {
	minDiv := 0
	for ci, c := range r.Classes {
		seen := map[int64]bool{}
		for _, row := range c.Rows {
			seen[d.Rows[row][sensitiveAttr]] = true
		}
		if ci == 0 || len(seen) < minDiv {
			minDiv = len(seen)
		}
	}
	return minDiv
}

// TCloseness returns the largest total-variation distance between any
// class's sensitive-value distribution and the overall distribution. (The
// original definition uses Earth Mover's Distance; for unordered
// categorical sensitive attributes EMD with uniform ground distance equals
// total variation, which is what we compute.)
func TCloseness(r *Release, d *dataset.Dataset, sensitiveAttr int) float64 {
	if d.Len() == 0 {
		return 0
	}
	global := map[int64]float64{}
	for _, row := range d.Rows {
		global[row[sensitiveAttr]]++
	}
	for k := range global {
		global[k] /= float64(d.Len())
	}
	worst := 0.0
	for _, c := range r.Classes {
		local := map[int64]float64{}
		for _, row := range c.Rows {
			local[d.Rows[row][sensitiveAttr]]++
		}
		for k := range local {
			local[k] /= float64(len(c.Rows))
		}
		tv := 0.0
		for k, g := range global {
			tv += math.Abs(local[k] - g)
		}
		for k, l := range local {
			if _, ok := global[k]; !ok {
				tv += l
			}
		}
		tv /= 2
		if tv > worst {
			worst = tv
		}
	}
	return worst
}

// IntersectionAttack mounts the composition attack of Ganta, Kasivis-
// wanathan and Smith ([23] in the paper): given two k-anonymous releases
// of the same population, an attacker who knows a target's raw
// quasi-identifiers intersects the matching classes of both releases. It
// returns, for each row of d, the number of candidate rows surviving the
// intersection (1 means the individual is singled out even though each
// release alone is k-anonymous). Suppressed rows get candidate count 0.
func IntersectionAttack(r1, r2 *Release, d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	// Precompute class membership per row for both releases.
	c1 := classIndex(r1, d.Len())
	c2 := classIndex(r2, d.Len())
	for i := range d.Rows {
		if c1[i] < 0 || c2[i] < 0 {
			out[i] = 0
			continue
		}
		rows1 := r1.Classes[c1[i]].Rows
		in2 := map[int]bool{}
		for _, x := range r2.Classes[c2[i]].Rows {
			in2[x] = true
		}
		n := 0
		for _, x := range rows1 {
			if in2[x] {
				n++
			}
		}
		out[i] = n
	}
	return out
}

func classIndex(r *Release, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for ci, c := range r.Classes {
		for _, row := range c.Rows {
			idx[row] = ci
		}
	}
	return idx
}
