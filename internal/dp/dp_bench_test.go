package dp

import (
	"math/rand"
	"testing"
)

func BenchmarkLaplaceCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		LaplaceCount(rng, 100, 1.0)
	}
}

func BenchmarkGeometricCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		GeometricCount(rng, 100, 1.0)
	}
}

func BenchmarkRandomizedResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		RandomizedResponse(rng, i%2 == 0, 1.0)
	}
}

func BenchmarkHistogram1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int64, 1000)
	for i := range counts {
		counts[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Histogram(rng, counts, 1.0)
	}
}

func BenchmarkExponential100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exponential(rng, scores, 1.0, 1.0)
	}
}
