package dp

import (
	"fmt"
	"math/rand"

	"singlingout/internal/dist"
)

// SparseVector implements the Sparse Vector Technique (AboveThreshold):
// it answers an adaptive stream of threshold queries "is this count above
// T?" and consumes privacy budget only for the (at most C) positive
// answers, rather than for every query. It is the classic way to support
// very long interactive query sequences — exactly the regime where the
// paper's Theorem 2.8 composition attack defeats exact counts — at a
// bounded total privacy cost.
type SparseVector struct {
	rng       *rand.Rand
	eps       float64
	threshold float64
	noisyT    float64
	remaining int
	exhausted bool
}

// NewSparseVector creates an AboveThreshold instance with total privacy
// budget eps, public threshold T, and an allowance of maxPositive
// above-threshold answers. The standard split devotes eps/2 to the
// threshold and eps/2 across positive answers.
func NewSparseVector(rng *rand.Rand, eps, threshold float64, maxPositive int) (*SparseVector, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("dp: sparse vector needs positive epsilon, got %v", eps)
	}
	if maxPositive <= 0 {
		return nil, fmt.Errorf("dp: sparse vector needs a positive answer allowance, got %d", maxPositive)
	}
	sv := &SparseVector{
		rng:       rng,
		eps:       eps,
		threshold: threshold,
		remaining: maxPositive,
	}
	sv.noisyT = threshold + dist.Laplace(rng, 2/eps)
	return sv, nil
}

// ErrBudgetSpent is returned by Above once the positive-answer allowance
// is exhausted.
var ErrBudgetSpent = fmt.Errorf("dp: sparse vector allowance exhausted")

// Above answers one sensitivity-1 threshold query: it returns whether the
// noisy count exceeds the noisy threshold. After a positive answer the
// threshold is re-noised; after maxPositive positives the mechanism stops
// answering.
func (sv *SparseVector) Above(trueCount int64) (bool, error) {
	if sv.exhausted {
		return false, ErrBudgetSpent
	}
	c := float64(sv.remaining)
	noisy := float64(trueCount) + dist.Laplace(sv.rng, 4*c/sv.eps)
	if noisy < sv.noisyT {
		return false, nil
	}
	sv.remaining--
	if sv.remaining == 0 {
		sv.exhausted = true
	} else {
		sv.noisyT = sv.threshold + dist.Laplace(sv.rng, 2/sv.eps)
	}
	return true, nil
}

// Remaining returns how many positive answers the allowance still admits.
func (sv *SparseVector) Remaining() int { return sv.remaining }
