package dp

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSparseVectorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSparseVector(rng, 0, 10, 1); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := NewSparseVector(rng, 1, 10, 0); err == nil {
		t.Error("maxPositive=0 should fail")
	}
}

func TestSparseVectorSeparatesFarCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 2000
	correct := 0
	for i := 0; i < trials; i++ {
		sv, err := NewSparseVector(rng, 4, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Far below threshold: should answer false.
		below, err := sv.Above(10)
		if err != nil {
			t.Fatal(err)
		}
		if !below {
			correct++
		}
	}
	if frac := float64(correct) / trials; frac < 0.95 {
		t.Errorf("far-below accuracy = %v, want >= 0.95", frac)
	}
	correct = 0
	for i := 0; i < trials; i++ {
		sv, _ := NewSparseVector(rng, 4, 50, 1)
		above, err := sv.Above(90)
		if err != nil {
			t.Fatal(err)
		}
		if above {
			correct++
		}
	}
	if frac := float64(correct) / trials; frac < 0.95 {
		t.Errorf("far-above accuracy = %v, want >= 0.95", frac)
	}
}

func TestSparseVectorAllowance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sv, _ := NewSparseVector(rng, 8, 10, 2)
	positives := 0
	for i := 0; i < 1000 && positives < 2; i++ {
		above, err := sv.Above(1000) // far above: almost surely positive
		if err != nil {
			t.Fatal(err)
		}
		if above {
			positives++
		}
	}
	if positives != 2 {
		t.Fatalf("positives = %d, want 2", positives)
	}
	if sv.Remaining() != 0 {
		t.Errorf("Remaining = %d", sv.Remaining())
	}
	if _, err := sv.Above(1000); !errors.Is(err, ErrBudgetSpent) {
		t.Errorf("want allowance exhaustion, got %v", err)
	}
}

func TestSparseVectorManyNegativesFree(t *testing.T) {
	// The point of SVT: unlimited below-threshold answers under one
	// allowance.
	rng := rand.New(rand.NewSource(4))
	sv, _ := NewSparseVector(rng, 2, 100, 1)
	for i := 0; i < 5000; i++ {
		if _, err := sv.Above(5); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if sv.Remaining() != 1 && sv.Remaining() != 0 {
		t.Errorf("Remaining = %d", sv.Remaining())
	}
}
