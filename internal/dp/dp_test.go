package dp

import (
	"math"
	"math/rand"
	"testing"
)

func TestLaplaceCountAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eps := 1.0
	const trials = 50000
	var sumErr, sumAbsErr float64
	for i := 0; i < trials; i++ {
		out := LaplaceCount(rng, 100, eps)
		sumErr += out - 100
		sumAbsErr += math.Abs(out - 100)
	}
	if m := sumErr / trials; math.Abs(m) > 0.05 {
		t.Errorf("bias = %v, want ~0", m)
	}
	if m := sumAbsErr / trials; math.Abs(m-1/eps) > 0.05 {
		t.Errorf("mean abs error = %v, want ~%v", m, 1/eps)
	}
}

func TestLaplaceCountEpsilonBound(t *testing.T) {
	// Empirical privacy loss of the Laplace mechanism must not exceed eps.
	rng := rand.New(rand.NewSource(2))
	eps := 0.8
	got := EmpiricalEpsilon(rng,
		func(r *rand.Rand) float64 { return LaplaceCount(r, 50, eps) },
		func(r *rand.Rand) float64 { return LaplaceCount(r, 51, eps) },
		200000, 0.5)
	if got > eps*1.2 {
		t.Errorf("empirical epsilon %v exceeds advertised %v", got, eps)
	}
	if got < eps*0.3 {
		t.Errorf("empirical epsilon %v implausibly small (harness broken?)", got)
	}
}

func TestPanicsOnBadEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []func(){
		func() { LaplaceCount(rng, 1, 0) },
		func() { LaplaceCount(rng, 1, math.Inf(1)) },
		func() { GeometricCount(rng, 1, -1) },
		func() { RandomizedResponse(rng, true, 0) },
		func() { Histogram(rng, []int64{1}, 0) },
		func() { NewAccountant(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLaplaceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Zero sensitivity passes through exactly.
	if got := LaplaceSum(rng, 42, 5, 5, 1); got != 42 {
		t.Errorf("zero-sensitivity sum = %v", got)
	}
	const trials = 50000
	var sumAbs float64
	for i := 0; i < trials; i++ {
		sumAbs += math.Abs(LaplaceSum(rng, 0, 0, 10, 2) - 0)
	}
	// scale = 10/2 = 5 → E|noise| = 5.
	if m := sumAbs / trials; math.Abs(m-5) > 0.2 {
		t.Errorf("mean abs noise = %v, want ~5", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("hi < lo should panic")
		}
	}()
	LaplaceSum(rng, 0, 1, 0, 1)
}

func TestGeometricCountIsInteger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		sum += float64(GeometricCount(rng, 20, 1.0))
	}
	if m := sum / trials; math.Abs(m-20) > 0.1 {
		t.Errorf("mean = %v, want ~20", m)
	}
}

func TestRandomizedResponseDebias(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	eps := 1.0
	trueFrac := 0.3
	const n = 200000
	ones := 0
	for i := 0; i < n; i++ {
		bit := rng.Float64() < trueFrac
		if RandomizedResponse(rng, bit, eps) {
			ones++
		}
	}
	est := RandomizedResponseEstimate(float64(ones)/n, eps)
	if math.Abs(est-trueFrac) > 0.01 {
		t.Errorf("debiased estimate = %v, want ~%v", est, trueFrac)
	}
}

func TestHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := []int64{10, 0, 500}
	out := Histogram(rng, counts, 2.0)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for i, c := range counts {
		if math.Abs(out[i]-float64(c)) > 10 {
			t.Errorf("bucket %d: %v too far from %d", i, out[i], c)
		}
	}
}

func TestExponentialPrefersHighScores(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scores := []float64{0, 0, 10, 0}
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[Exponential(rng, scores, 1.0, 1.0)]++
	}
	if counts[2] < 9000 {
		t.Errorf("high-score candidate chosen %d/10000 times", counts[2])
	}
	// With tiny epsilon the choice approaches uniform.
	counts = make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[Exponential(rng, scores, 0.001, 1.0)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("eps→0 candidate %d chosen %d/40000 times, want ~10000", i, c)
		}
	}
}

func TestExponentialPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i, f := range []func(){
		func() { Exponential(rng, nil, 1, 1) },
		func() { Exponential(rng, []float64{1}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if a.Spent() != 1.0 || math.Abs(a.Remaining()) > 1e-12 {
		t.Errorf("spent=%v remaining=%v", a.Spent(), a.Remaining())
	}
	if err := a.Spend(0.01); err == nil {
		t.Error("overspend should fail")
	}
	if a.Spent() != 1.0 {
		t.Error("failed spend must not debit")
	}
}

func TestAdvancedCompositionBeatsBasic(t *testing.T) {
	eps, k, delta := 0.1, 100, 1e-6
	adv := AdvancedComposition(eps, k, delta)
	basic := eps * float64(k)
	if adv >= basic {
		t.Errorf("advanced %v should beat basic %v for small eps", adv, basic)
	}
	if adv <= 0 {
		t.Errorf("advanced composition = %v, want positive", adv)
	}
	if AdvancedComposition(eps, 0, delta) != 0 {
		t.Error("k=0 should cost 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad delta should panic")
		}
	}()
	AdvancedComposition(eps, 1, 0)
}

func TestEmpiricalEpsilonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EmpiricalEpsilon(rand.New(rand.NewSource(1)), nil, nil, 0, 1)
}

func TestGaussianCount(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	eps, delta := 0.5, 1e-5
	sigma := math.Sqrt(2*math.Log(1.25/delta)) / eps
	const trials = 100000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		d := GaussianCount(rng, 100, eps, delta) - 100
		sum += d
		sumSq += d * d
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("bias = %v", mean)
	}
	if math.Abs(sd-sigma)/sigma > 0.03 {
		t.Errorf("sd = %v, want ~%v", sd, sigma)
	}
	for i, f := range []func(){
		func() { GaussianCount(rng, 1, 2, delta) }, // eps > 1
		func() { GaussianCount(rng, 1, 0.5, 0) },   // delta = 0
		func() { GaussianCount(rng, 1, 0.5, 1) },   // delta = 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGaussianVsLaplaceSingleRelease(t *testing.T) {
	// For a single release at matched eps, pure-eps Laplace noise is more
	// accurate than (eps, delta)-Gaussian — the delta relaxation only pays
	// off under composition. Check the mean-absolute-error ordering.
	rng := rand.New(rand.NewSource(21))
	eps, delta := 1.0, 1e-6
	const trials = 100000
	var absL, absG float64
	for i := 0; i < trials; i++ {
		absL += math.Abs(LaplaceCount(rng, 0, eps))
		absG += math.Abs(GaussianCount(rng, 0, eps, delta))
	}
	if absL >= absG {
		t.Errorf("single-release Laplace should beat Gaussian: L=%v G=%v", absL/trials, absG/trials)
	}
}
