package dp_test

import (
	"fmt"
	"math/rand"

	"singlingout/internal/dp"
)

// ExampleLaplaceCount releases a count under ε-differential privacy and
// tracks the budget with an accountant.
func ExampleLaplaceCount() {
	rng := rand.New(rand.NewSource(1))
	acct := dp.NewAccountant(1.0)

	trueCount := int64(1234)
	for _, eps := range []float64{0.25, 0.25, 0.5} {
		if err := acct.Spend(eps); err != nil {
			panic(err)
		}
		_ = dp.LaplaceCount(rng, trueCount, eps)
	}
	fmt.Printf("budget spent: %.2f, remaining: %.2f\n", acct.Spent(), acct.Remaining())
	// A fourth release would exceed the budget:
	fmt.Println("overspend rejected:", acct.Spend(0.1) != nil)
	// Output:
	// budget spent: 1.00, remaining: 0.00
	// overspend rejected: true
}

// ExampleRandomizedResponseEstimate shows local differential privacy:
// individual answers are randomized, yet the population fraction is
// recoverable.
func ExampleRandomizedResponseEstimate() {
	rng := rand.New(rand.NewSource(2))
	eps := 1.0
	trueFraction := 0.25
	n := 200000
	ones := 0
	for i := 0; i < n; i++ {
		truth := rng.Float64() < trueFraction
		if dp.RandomizedResponse(rng, truth, eps) {
			ones++
		}
	}
	est := dp.RandomizedResponseEstimate(float64(ones)/float64(n), eps)
	fmt.Printf("estimate within 0.01 of truth: %v\n", est > 0.24 && est < 0.26)
	// Output: estimate within 0.01 of truth: true
}
