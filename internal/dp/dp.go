// Package dp is a self-contained differential privacy library implementing
// Definition 1.2 and Theorem 1.3 of the paper: the Laplace mechanism for
// counting, its integer-valued geometric analogue, randomized response,
// noisy histograms, the exponential mechanism, and composition accounting.
//
// Every mechanism takes an explicit *rand.Rand for reproducibility and an
// epsilon > 0; mechanisms panic on non-positive epsilon (a programmer
// error, not a data condition).
package dp

import (
	"fmt"
	"math"
	"math/rand"

	"singlingout/internal/dist"
)

// validEps panics unless eps is a usable privacy-loss parameter.
func validEps(eps float64) {
	if !(eps > 0) || math.IsInf(eps, 1) {
		panic(fmt.Sprintf("dp: epsilon must be positive and finite, got %v", eps))
	}
}

// LaplaceCount releases a count with Laplace(1/eps) noise — the mechanism
// of Theorem 1.3. Counts have sensitivity 1, so the release is eps-DP.
func LaplaceCount(rng *rand.Rand, trueCount int64, eps float64) float64 {
	validEps(eps)
	return float64(trueCount) + dist.Laplace(rng, 1/eps)
}

// LaplaceSum releases a bounded-magnitude sum: each record contributes a
// value in [lo, hi], so the sensitivity is hi-lo and the noise scale is
// (hi-lo)/eps.
func LaplaceSum(rng *rand.Rand, trueSum, lo, hi, eps float64) float64 {
	validEps(eps)
	if hi < lo {
		panic("dp: LaplaceSum needs hi >= lo")
	}
	sens := hi - lo
	if sens == 0 {
		return trueSum
	}
	return trueSum + dist.Laplace(rng, sens/eps)
}

// GeometricCount releases an integer count with two-sided geometric noise;
// the discrete analogue of the Laplace mechanism, also eps-DP for
// sensitivity-1 counts.
func GeometricCount(rng *rand.Rand, trueCount int64, eps float64) int64 {
	validEps(eps)
	return trueCount + dist.TwoSidedGeometric(rng, eps)
}

// RandomizedResponse flips the input bit with probability 1/(1+e^eps),
// giving an eps-DP release of a single bit (Warner's classic design).
func RandomizedResponse(rng *rand.Rand, bit bool, eps float64) bool {
	validEps(eps)
	pKeep := math.Exp(eps) / (1 + math.Exp(eps))
	if rng.Float64() < pKeep {
		return bit
	}
	return !bit
}

// RandomizedResponseEstimate debiases the mean of k randomized-response
// bits: given the observed fraction of 1s, it returns an unbiased estimate
// of the true fraction.
func RandomizedResponseEstimate(observedFraction, eps float64) float64 {
	validEps(eps)
	p := math.Exp(eps) / (1 + math.Exp(eps))
	return (observedFraction - (1 - p)) / (2*p - 1)
}

// Histogram releases a vector of disjoint-bucket counts with Laplace(1/eps)
// noise per bucket. Because a single record changes exactly one bucket by
// one, the whole histogram release is eps-DP.
func Histogram(rng *rand.Rand, counts []int64, eps float64) []float64 {
	validEps(eps)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) + dist.Laplace(rng, 1/eps)
	}
	return out
}

// Exponential runs the exponential mechanism: it selects index i with
// probability proportional to exp(eps·score[i]/(2·sensitivity)), an eps-DP
// selection when scores have the stated sensitivity.
func Exponential(rng *rand.Rand, scores []float64, eps, sensitivity float64) int {
	validEps(eps)
	if len(scores) == 0 {
		panic("dp: Exponential needs at least one candidate")
	}
	if sensitivity <= 0 {
		panic("dp: Exponential needs positive sensitivity")
	}
	// Shift by the max score for numerical stability.
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	weights := make([]float64, len(scores))
	total := 0.0
	for i, s := range scores {
		w := math.Exp(eps * (s - maxS) / (2 * sensitivity))
		weights[i] = w
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(scores) - 1
}

// Accountant tracks cumulative privacy loss under basic composition: the
// epsilons of sequential releases add. It is the bookkeeping device behind
// the "privacy budget" language of Section 1.1.
type Accountant struct {
	budget float64
	spent  float64
}

// NewAccountant creates an accountant with the given total budget.
func NewAccountant(budget float64) *Accountant {
	validEps(budget)
	return &Accountant{budget: budget}
}

// Spend debits eps from the budget, reporting an error (and debiting
// nothing) if the budget would be exceeded.
func (a *Accountant) Spend(eps float64) error {
	validEps(eps)
	if a.spent+eps > a.budget+1e-12 {
		return fmt.Errorf("dp: budget exceeded: spent %.4g + %.4g > %.4g", a.spent, eps, a.budget)
	}
	a.spent += eps
	return nil
}

// Spent returns the cumulative privacy loss so far.
func (a *Accountant) Spent() float64 { return a.spent }

// Remaining returns the unspent budget.
func (a *Accountant) Remaining() float64 { return a.budget - a.spent }

// AdvancedComposition returns the total epsilon of k adaptive eps-DP
// releases under (eps', delta)-advanced composition:
//
//	eps' = eps·sqrt(2k·ln(1/delta)) + k·eps·(e^eps - 1)
//
// (Dwork–Rothblum–Vadhan). For small eps and moderate k it is far below
// the basic k·eps bound.
func AdvancedComposition(eps float64, k int, delta float64) float64 {
	validEps(eps)
	if k <= 0 {
		return 0
	}
	if !(delta > 0 && delta < 1) {
		panic("dp: AdvancedComposition needs delta in (0,1)")
	}
	kf := float64(k)
	return eps*math.Sqrt(2*kf*math.Log(1/delta)) + kf*eps*(math.Expm1(eps))
}

// EmpiricalEpsilon estimates the realized privacy loss of a real-valued
// mechanism between two neighbouring inputs by histogramming trials of
// each and taking the max log-ratio over well-populated bins. It is a
// diagnostic (a lower bound on the true epsilon), used by the E3 harness
// to check the Laplace mechanism against its advertised guarantee.
func EmpiricalEpsilon(rng *rand.Rand, mech func(*rand.Rand) float64, mechNeighbor func(*rand.Rand) float64, trials int, binWidth float64) float64 {
	if trials <= 0 || binWidth <= 0 {
		panic("dp: EmpiricalEpsilon needs positive trials and bin width")
	}
	h0 := map[int64]int{}
	h1 := map[int64]int{}
	for i := 0; i < trials; i++ {
		h0[int64(math.Floor(mech(rng)/binWidth))]++
		h1[int64(math.Floor(mechNeighbor(rng)/binWidth))]++
	}
	// Ignore sparsely populated bins: the log-ratio noise of a bin pair
	// is ~sqrt(2/minCount), so scaling the floor with the trial budget
	// keeps the estimator's noise floor well below typical epsilons.
	minCount := trials / 200
	if minCount < 100 {
		minCount = 100
	}
	worst := 0.0
	for bin, c0 := range h0 {
		c1 := h1[bin]
		if c0 < minCount || c1 < minCount {
			continue
		}
		r := math.Abs(math.Log(float64(c0) / float64(c1)))
		if r > worst {
			worst = r
		}
	}
	return worst
}

// GaussianCount releases a count with Gaussian noise calibrated for
// (eps, delta)-differential privacy using the analytic calibration
// sigma = sqrt(2·ln(1.25/delta)) / eps (valid for eps <= 1). Gaussian
// noise composes more gracefully than Laplace over many releases, at the
// price of the delta failure probability.
func GaussianCount(rng *rand.Rand, trueCount int64, eps, delta float64) float64 {
	validEps(eps)
	if eps > 1 {
		panic(fmt.Sprintf("dp: GaussianCount calibration requires eps <= 1, got %v", eps))
	}
	if !(delta > 0 && delta < 1) {
		panic(fmt.Sprintf("dp: GaussianCount needs delta in (0,1), got %v", delta))
	}
	sigma := math.Sqrt(2*math.Log(1.25/delta)) / eps
	return float64(trueCount) + rng.NormFloat64()*sigma
}
