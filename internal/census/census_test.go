package census

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"singlingout/internal/synth"
)

var ctx = context.Background()

func TestCellIDRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	f := func(sexRaw, buckRaw, raceRaw, ethRaw uint8) bool {
		tu := Tuple{
			Sex:       int(sexRaw) % 2,
			AgeBucket: int(buckRaw) % cfg.Buckets(),
			Race:      int(raceRaw) % 6,
			Ethnicity: int(ethRaw) % 2,
		}
		id := cfg.cellID(tu)
		return id >= 0 && id < cfg.numCells() && cfg.cellTuple(id) == tu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTabulateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 500, ZIPs: 3, BlocksPerZIP: 10})
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)
	total := 0
	for _, bt := range tables {
		total += bt.Total
		sexAgeSum, raceEtSum, sexRcSum := 0, 0, 0
		for _, c := range bt.SexAge {
			sexAgeSum += c
		}
		for _, c := range bt.RaceEt {
			raceEtSum += c
		}
		for _, c := range bt.SexRc {
			sexRcSum += c
		}
		if sexAgeSum != bt.Total || raceEtSum != bt.Total || sexRcSum != bt.Total {
			t.Fatalf("block %d: marginals %d/%d/%d != total %d", bt.Block, sexAgeSum, raceEtSum, sexRcSum, bt.Total)
		}
	}
	if total != pop.Len() {
		t.Errorf("tabulated %d persons, want %d", total, pop.Len())
	}
}

func TestReconstructSingletonBlockIsExact(t *testing.T) {
	cfg := DefaultConfig()
	truth := Tuple{Sex: 1, AgeBucket: 3, Race: 2, Ethnicity: 0}
	bt := BlockTables{
		Block: 7, Total: 1,
		SexAge: map[[2]int]int{{1, 3}: 1},
		RaceEt: map[[2]int]int{{2, 0}: 1},
		SexRc:  map[[2]int]int{{1, 2}: 1},
	}
	res, err := ReconstructBlock(bt, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || !res.Unique {
		t.Fatalf("singleton block should be solved uniquely: %+v", res)
	}
	if len(res.Tuples) != 1 || res.Tuples[0] != truth {
		t.Errorf("reconstructed %+v, want %+v", res.Tuples, truth)
	}
}

func TestReconstructEmptyBlock(t *testing.T) {
	res, err := ReconstructBlock(BlockTables{Block: 1}, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || !res.Unique || len(res.Tuples) != 0 {
		t.Errorf("empty block: %+v", res)
	}
}

func TestMultisetIntersection(t *testing.T) {
	a := []Tuple{{Sex: 1}, {Sex: 1}, {Sex: 0}}
	b := []Tuple{{Sex: 1}, {Sex: 0}, {Sex: 0}}
	if got := MultisetIntersection(a, b); got != 2 {
		t.Errorf("intersection = %d, want 2", got)
	}
	if got := MultisetIntersection(nil, b); got != 0 {
		t.Errorf("empty intersection = %d", got)
	}
}

func TestReconstructPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 150, ZIPs: 3, BlocksPerZIP: 12})
	cfg := DefaultConfig()
	results, sum, err := Reconstruct(pop, cfg, 200000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Blocks == 0 || sum.Persons != 150 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.Solved != sum.Blocks {
		t.Errorf("solved %d of %d blocks", sum.Solved, sum.Blocks)
	}
	// The published tables strongly constrain small blocks: a large share
	// of records must be reconstructed exactly (the paper reports 46%
	// exact for the full 2010 data with far richer tables).
	if sum.ExactFraction < 0.5 {
		t.Errorf("exact fraction = %v, want >= 0.5", sum.ExactFraction)
	}
	truth := TrueTuples(pop, cfg)
	for _, r := range results {
		if !r.Solved {
			continue
		}
		// Reconstruction must reproduce the published tables exactly.
		want := truth[r.Block]
		if len(r.Tuples) != len(want) {
			t.Fatalf("block %d: %d tuples, want %d", r.Block, len(r.Tuples), len(want))
		}
		recTables := tablesFromTuples(r.Block, r.Tuples)
		origTables := tablesFromTuples(r.Block, want)
		if !tablesEqual(recTables, origTables) {
			t.Fatalf("block %d: reconstructed tables differ from published", r.Block)
		}
		// Uniqueness implies exactness: the true assignment is always a
		// model, so a unique model must be the truth.
		if r.Unique && r.Exact != r.Size {
			t.Errorf("block %d unique but only %d/%d exact", r.Block, r.Exact, r.Size)
		}
	}
}

func tablesFromTuples(block int64, ts []Tuple) BlockTables {
	bt := BlockTables{Block: block, SexAge: map[[2]int]int{}, RaceEt: map[[2]int]int{}, SexRc: map[[2]int]int{}}
	for _, t := range ts {
		bt.Total++
		bt.SexAge[[2]int{t.Sex, t.AgeBucket}]++
		bt.RaceEt[[2]int{t.Race, t.Ethnicity}]++
		bt.SexRc[[2]int{t.Sex, t.Race}]++
	}
	return bt
}

func tablesEqual(a, b BlockTables) bool {
	if a.Total != b.Total || len(a.SexAge) != len(b.SexAge) || len(a.RaceEt) != len(b.RaceEt) || len(a.SexRc) != len(b.SexRc) {
		return false
	}
	for k, v := range a.SexAge {
		if b.SexAge[k] != v {
			return false
		}
	}
	for k, v := range a.RaceEt {
		if b.RaceEt[k] != v {
			return false
		}
	}
	for k, v := range a.SexRc {
		if b.SexRc[k] != v {
			return false
		}
	}
	return true
}

func TestLinkageReIdentifies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 120, ZIPs: 3, BlocksPerZIP: 15})
	cfg := DefaultConfig()
	results, _, err := Reconstruct(pop, cfg, 200000, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := synth.Registry(rng, pop, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sum := Linkage(pop, reg, results, cfg)
	if sum.Persons == 0 {
		t.Fatal("no persons linked")
	}
	if sum.Confirmed > sum.Putative || sum.Putative > sum.Persons {
		t.Fatalf("inconsistent linkage summary %+v", sum)
	}
	// With full registry coverage and small blocks, a sizable share of
	// the population should be putatively re-identified and a nontrivial
	// share confirmed (the paper reports 17% confirmed at national scale).
	if sum.PutativeRate() < 0.3 {
		t.Errorf("putative rate = %v, want >= 0.3: %+v", sum.PutativeRate(), sum)
	}
	if sum.ConfirmedRate() <= 0.05 {
		t.Errorf("confirmed rate = %v, want > 0.05: %+v", sum.ConfirmedRate(), sum)
	}
	// Lower registry coverage must not increase re-identification.
	regHalf, _ := synth.Registry(rng, pop, 0.3)
	sumHalf := Linkage(pop, regHalf, results, cfg)
	if sumHalf.Putative > sum.Putative {
		t.Errorf("lower coverage produced more putative matches: %d > %d", sumHalf.Putative, sum.Putative)
	}
	var zero LinkageSummary
	if zero.PutativeRate() != 0 || zero.ConfirmedRate() != 0 {
		t.Error("zero summary rates should be 0")
	}
}

func TestReconstructBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 60, ZIPs: 1, BlocksPerZIP: 2})
	// A conflict budget of 1 should leave large blocks unsolved (but not
	// error).
	_, sum, err := Reconstruct(pop, DefaultConfig(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Solved == sum.Blocks {
		t.Skip("blocks solved without conflicts; budget test not applicable at this seed")
	}
}

func TestSummaryBySize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 200, ZIPs: 3, BlocksPerZIP: 15})
	results, _, err := Reconstruct(pop, DefaultConfig(), 200000, 0)
	if err != nil {
		t.Fatal(err)
	}
	buckets := SummaryBySize(results)
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	totalBlocks, totalPersons := 0, 0
	for _, b := range buckets {
		totalBlocks += b.Blocks
		totalPersons += b.Persons
		if f := b.ExactFraction(); f < 0 || f > 1 {
			t.Errorf("bucket %d-%d exact fraction %v", b.Lo, b.Hi, f)
		}
	}
	if totalBlocks == 0 || totalPersons != 200 {
		t.Errorf("blocks=%d persons=%d", totalBlocks, totalPersons)
	}
	// Small blocks must not be less exactly reconstructed than the largest
	// bucket (the census finding).
	if buckets[0].Persons > 0 && buckets[3].Persons > 0 &&
		buckets[0].ExactFraction() < buckets[3].ExactFraction() {
		t.Errorf("tiny blocks (%.2f) should be at least as exposed as big ones (%.2f)",
			buckets[0].ExactFraction(), buckets[3].ExactFraction())
	}
	var zero SizeBucket
	if zero.ExactFraction() != 0 {
		t.Error("zero bucket fraction should be 0")
	}
}

// TestReconstructBlockStreamMatchesBatch pins the streaming contract: the
// per-cell incremental path reports monotone steps with cumulative solver
// statistics and lands on exactly the batch result.
func TestReconstructBlockStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 40, ZIPs: 1, BlocksPerZIP: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)
	truth := TrueTuples(pop, cfg)
	cellsPerBlock := 2*cfg.Buckets() + 12 + 12

	for _, bt := range tables {
		batch, err := ReconstructBlock(bt, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		var steps []StreamStep
		streamed, err := ReconstructBlockStream(bt, cfg, 0, truth[bt.Block], func(st StreamStep) {
			steps = append(steps, st)
		})
		if err != nil {
			t.Fatal(err)
		}

		if len(steps) != cellsPerBlock {
			t.Fatalf("block %d: %d steps, want one per cell (%d)", bt.Block, len(steps), cellsPerBlock)
		}
		last := steps[len(steps)-1]
		for i, st := range steps {
			if st.Block != bt.Block || st.Size != bt.Total {
				t.Fatalf("step %d = %+v, want block %d size %d", i, st, bt.Block, bt.Total)
			}
			if st.Queries != i+1 {
				t.Errorf("step %d queries = %d, want %d (monotone, one cell per step)", i, st.Queries, i+1)
			}
			if i > 0 {
				prev := steps[i-1].Stats
				if st.Stats.Decisions < prev.Decisions || st.Stats.Conflicts < prev.Conflicts {
					t.Errorf("step %d solver stats went backwards: %+v then %+v", i, prev, st.Stats)
				}
			}
		}
		// The final step has consumed every cell (the symmetry chains and
		// uniqueness check come after, so its Exact may score a different
		// equally-consistent model than the returned one).
		if !last.Solved {
			t.Fatalf("block %d: final step unsolved", bt.Block)
		}
		if last.Exact < 0 || last.Exact > bt.Total {
			t.Errorf("block %d: final step exact = %d out of [0, %d]", bt.Block, last.Exact, bt.Total)
		}

		// Solved/Unique are properties of the constraint set, not of the
		// returned model: they must match the batch path. The streamed
		// tuples must tabulate to the published tables, and for uniquely
		// determined blocks they must equal the batch tuples exactly.
		if streamed.Solved != batch.Solved || streamed.Unique != batch.Unique || streamed.Size != batch.Size {
			t.Errorf("block %d: streamed %+v, batch %+v", bt.Block, streamed, batch)
		}
		if len(streamed.Tuples) != len(batch.Tuples) {
			t.Fatalf("block %d: streamed %d tuples, batch %d", bt.Block, len(streamed.Tuples), len(batch.Tuples))
		}
		checkTabulatesTo(t, bt, streamed.Tuples)
		if batch.Unique && MultisetIntersection(streamed.Tuples, batch.Tuples) != len(batch.Tuples) {
			t.Errorf("block %d: unique block, but streamed tuple multiset differs from batch", bt.Block)
		}
	}
}

// checkTabulatesTo verifies tuples are a consistent reconstruction: they
// reproduce the block's published marginal tables exactly.
func checkTabulatesTo(t *testing.T, bt BlockTables, tuples []Tuple) {
	t.Helper()
	sexAge := map[[2]int]int{}
	raceEt := map[[2]int]int{}
	sexRc := map[[2]int]int{}
	for _, tp := range tuples {
		sexAge[[2]int{tp.Sex, tp.AgeBucket}]++
		raceEt[[2]int{tp.Race, tp.Ethnicity}]++
		sexRc[[2]int{tp.Sex, tp.Race}]++
	}
	if len(tuples) != bt.Total {
		t.Errorf("block %d: %d tuples for total %d", bt.Block, len(tuples), bt.Total)
	}
	for name, got := range map[string]map[[2]int]int{"SexAge": sexAge, "RaceEt": raceEt, "SexRc": sexRc} {
		want := map[string]map[[2]int]int{"SexAge": bt.SexAge, "RaceEt": bt.RaceEt, "SexRc": bt.SexRc}[name]
		for k, v := range want {
			if got[k] != v {
				t.Errorf("block %d: %s[%v] = %d, want %d", bt.Block, name, k, got[k], v)
			}
		}
		for k, v := range got {
			if want[k] != v {
				t.Errorf("block %d: %s[%v] = %d not published", bt.Block, name, k, v)
			}
		}
	}
}

func TestReconstructAllStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 60, ZIPs: 2, BlocksPerZIP: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)
	truth := TrueTuples(pop, cfg)

	batch, err := ReconstructAll(tables, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	streamed, err := ReconstructAllStream(ctx, tables, truth, cfg, 0, func(StreamStep) { steps++ })
	if err != nil {
		t.Fatal(err)
	}
	cellsPerBlock := 2*cfg.Buckets() + 12 + 12
	nonEmpty := 0
	for _, bt := range tables {
		if bt.Total > 0 {
			nonEmpty++
		}
	}
	if steps != cellsPerBlock*nonEmpty {
		t.Errorf("steps = %d, want %d (%d cells over %d non-empty blocks)", steps, cellsPerBlock*nonEmpty, cellsPerBlock, nonEmpty)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d results, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		b, s := batch[i], streamed[i]
		if b.Block != s.Block || b.Solved != s.Solved || b.Unique != s.Unique {
			t.Errorf("block %d: streamed %+v, batch %+v", b.Block, s, b)
		}
		if s.Solved {
			checkTabulatesTo(t, tables[i], s.Tuples)
		}
		if b.Unique && (MultisetIntersection(b.Tuples, s.Tuples) != len(b.Tuples) || len(b.Tuples) != len(s.Tuples)) {
			t.Errorf("block %d: unique block, but tuple multisets differ", b.Block)
		}
	}
}

func TestReconstructAllStreamCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 30, ZIPs: 1, BlocksPerZIP: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ReconstructAllStream(cctx, Tabulate(pop, cfg), nil, cfg, 0, nil); err == nil {
		t.Error("cancelled context should fail")
	}
}
