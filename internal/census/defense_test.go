package census

import (
	"math/rand"
	"testing"

	"singlingout/internal/synth"
)

func TestSwapRecordsPreservesDemographics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 1000, ZIPs: 4, BlocksPerZIP: 10})
	swapped := SwapRecords(rng, pop, 0.3)
	blockI := pop.Schema.MustIndex(synth.AttrBlock)
	moved := 0
	for i := range pop.Rows {
		for a := range pop.Rows[i] {
			if a == blockI {
				continue
			}
			if swapped.Rows[i][a] != pop.Rows[i][a] {
				t.Fatalf("row %d attr %d changed (only block may move)", i, a)
			}
		}
		if swapped.Rows[i][blockI] != pop.Rows[i][blockI] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no record moved at 30% swap rate")
	}
	// The block-size multiset is preserved (pairwise exchange).
	orig := map[int64]int{}
	after := map[int64]int{}
	for i := range pop.Rows {
		orig[pop.Rows[i][blockI]]++
		after[swapped.Rows[i][blockI]]++
	}
	for b, c := range orig {
		if after[b] != c {
			t.Fatalf("block %d size changed: %d -> %d", b, c, after[b])
		}
	}
	// Zero rate is a no-op.
	same := SwapRecords(rng, pop, 0)
	for i := range pop.Rows {
		if !same.Rows[i].Equal(pop.Rows[i]) {
			t.Fatal("rate 0 must not move anything")
		}
	}
	// The original is never mutated.
	if &swapped.Rows[0][0] == &pop.Rows[0][0] {
		t.Fatal("SwapRecords must operate on a copy")
	}
}

func TestSwappingDegradesConfirmedReidentification(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 250, ZIPs: 3, BlocksPerZIP: 15})
	cfg := DefaultConfig()
	truth := TrueTuples(pop, cfg)
	reg, _ := synth.Registry(rng, pop, 0.8)

	raw, _, err := ReconstructTables(Tabulate(pop, cfg), truth, cfg, 300000, 0)
	if err != nil {
		t.Fatal(err)
	}
	rawLink := Linkage(pop, reg, raw, cfg)

	swapped := SwapRecords(rng, pop, 0.5)
	swpResults, swpSum, err := ReconstructTables(Tabulate(swapped, cfg), truth, cfg, 300000, 0)
	if err != nil {
		t.Fatal(err)
	}
	swpLink := Linkage(pop, reg, swpResults, cfg)

	// Swapped tables are still internally consistent: the attack solves
	// them all.
	if swpSum.Solved != swpSum.Blocks {
		t.Errorf("swapped tables: solved %d/%d", swpSum.Solved, swpSum.Blocks)
	}
	// But exactness against the TRUE population and confirmed
	// re-identification both degrade.
	if swpSum.ExactFraction >= rawLink.PutativeRate()+1 { // vacuous guard
		t.Fatal("unreachable")
	}
	if swpLink.ConfirmedRate() >= rawLink.ConfirmedRate() {
		t.Errorf("swapping should reduce confirmed re-identification: %v >= %v",
			swpLink.ConfirmedRate(), rawLink.ConfirmedRate())
	}
}

func TestNoisyTablesResistReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 250, ZIPs: 3, BlocksPerZIP: 12})
	cfg := DefaultConfig()
	truth := TrueTuples(pop, cfg)
	noisy := NoisyTables(rng, Tabulate(pop, cfg), 0.5)
	results, sum, err := ReconstructTables(noisy, truth, cfg, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != sum.Blocks {
		t.Fatalf("results/blocks mismatch")
	}
	// Most noisy blocks are jointly inconsistent (unsolvable), and what
	// remains reconstructs the truth far worse than the raw tables do.
	raw, rawSum, err := ReconstructTables(Tabulate(pop, cfg), truth, cfg, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = raw
	if sum.ExactFraction >= rawSum.ExactFraction {
		t.Errorf("DP tables should reduce exact reconstruction: %v >= %v",
			sum.ExactFraction, rawSum.ExactFraction)
	}
	if sum.Solved >= sum.Blocks {
		t.Errorf("expected some unsolvable noisy blocks: %d/%d solved", sum.Solved, sum.Blocks)
	}
}
