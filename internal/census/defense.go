package census

import (
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dp"
	"singlingout/internal/synth"
)

// This file implements the two disclosure-avoidance defenses of the
// census story: record swapping — the technique actually used for the
// 2010 tables, which the reconstruction attack defeated — and
// differentially private table noise, the post-2020 remedy the paper's
// narrative leads to.

// SwapRecords returns a copy of the population in which a `rate` fraction
// of records have exchanged census blocks pairwise (the household-swapping
// model: demographics stay with the person, geography is swapped between
// matched pairs). Tabulations of the swapped data protect the swapped
// individuals' true locations while leaving the tables internally
// consistent — which is exactly why reconstruction still succeeds against
// them.
func SwapRecords(rng *rand.Rand, pop *dataset.Dataset, rate float64) *dataset.Dataset {
	out := pop.Clone()
	blockI := pop.Schema.MustIndex(synth.AttrBlock)
	// Choose the swap set and pair consecutive picks.
	var picks []int
	for i := range out.Rows {
		if rng.Float64() < rate {
			picks = append(picks, i)
		}
	}
	for j := 0; j+1 < len(picks); j += 2 {
		a, b := picks[j], picks[j+1]
		out.Rows[a][blockI], out.Rows[b][blockI] = out.Rows[b][blockI], out.Rows[a][blockI]
	}
	return out
}

// NoisyTables applies ε-DP two-sided geometric noise to every published
// cell of every block table (each record affects one cell per table, so a
// per-table epsilon of eps/3 would make the whole release eps-DP; we
// report the per-cell epsilon directly). Noised cells below zero are
// clamped away, and the block total is re-derived from the noised
// sex×age table, mirroring how a DP tabulation system would post-process.
func NoisyTables(rng *rand.Rand, tables []BlockTables, eps float64) []BlockTables {
	out := make([]BlockTables, len(tables))
	noise := func(cells map[[2]int]int) map[[2]int]int {
		res := map[[2]int]int{}
		for k, v := range cells {
			n := int(dp.GeometricCount(rng, int64(v), eps))
			if n > 0 {
				res[k] = n
			}
		}
		return res
	}
	for i, bt := range tables {
		nb := BlockTables{Block: bt.Block}
		nb.SexAge = noise(bt.SexAge)
		nb.RaceEt = noise(bt.RaceEt)
		nb.SexRc = noise(bt.SexRc)
		for _, v := range nb.SexAge {
			nb.Total += v
		}
		out[i] = nb
	}
	return out
}

// ReconstructTables runs the SAT attack against an arbitrary set of
// published tables (possibly swapped or noised), scoring exactness
// against the supplied ground truth. Blocks whose tables are jointly
// unsatisfiable count as unsolved rather than erroring. Blocks are solved
// concurrently on a pool of `workers` goroutines (<= 0 selects
// GOMAXPROCS); solving is deterministic per block, so results and summary
// are identical at any worker count.
func ReconstructTables(tables []BlockTables, truth map[int64][]Tuple, cfg Config, maxConflictsPerBlock int64, workers int) ([]BlockResult, Summary, error) {
	results, err := ReconstructAll(tables, cfg, maxConflictsPerBlock, workers)
	if err != nil {
		return nil, Summary{}, err
	}
	var sum Summary
	for i := range results {
		r := &results[i]
		r.Exact = MultisetIntersection(truth[r.Block], r.Tuples)
		sum.Blocks++
		sum.Persons += len(truth[r.Block])
		if r.Solved {
			sum.Solved++
			sum.ExactRecords += r.Exact
		}
		if r.Unique {
			sum.Unique++
		}
	}
	if sum.Persons > 0 {
		sum.ExactFraction = float64(sum.ExactRecords) / float64(sum.Persons)
	}
	mBlocks.Add(int64(sum.Blocks))
	mBlocksSolved.Add(int64(sum.Solved))
	mBlocksUnique.Add(int64(sum.Unique))
	mPersons.Add(int64(sum.Persons))
	mExactRecords.Add(int64(sum.ExactRecords))
	mExactFraction.Set(sum.ExactFraction)
	return results, sum, nil
}
