package census

import (
	"math/rand"
	"runtime"
	"testing"

	"singlingout/internal/synth"
)

// BenchmarkCensusReconstructParallel measures the SAT reconstruction of a
// full tabulated population, sequentially and on the shared worker pool.
// The "speedup" metric on the parallel sub-benchmark is sequential ns/op
// divided by parallel ns/op; with GOMAXPROCS >= 4 the block solves are
// independent enough that it should exceed 2x.
func BenchmarkCensusReconstructParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pop, err := synth.Population(rng, synth.PopulationConfig{N: 400, ZIPs: 3, BlocksPerZIP: 16})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)

	run := func(b *testing.B, workers int) float64 {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReconstructAll(tables, cfg, 300000, workers); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}

	var seqNS float64
	b.Run("sequential", func(b *testing.B) {
		seqNS = run(b, 1)
	})
	b.Run("parallel", func(b *testing.B) {
		parNS := run(b, runtime.GOMAXPROCS(0))
		if seqNS > 0 && parNS > 0 {
			b.ReportMetric(seqNS/parNS, "speedup")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	})
}
