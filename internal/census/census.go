// Package census reproduces the database-reconstruction pipeline the paper
// describes for the 2010 US Decennial Census ([7], [24]): block-level
// statistical tables are published from microdata, an attacker encodes the
// tables as a SAT instance and reconstructs person-level records, and the
// reconstructed records are re-identified by linkage against an identified
// auxiliary registry (the "commercial database" of the paper's narrative).
//
// The published tables mirror the structure of the SF1 tables used in the
// real attack at reduced scale: per census block, joint counts of
// sex × age-bucket, race × ethnicity, and sex × race.
package census

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"singlingout/internal/dataset"
	"singlingout/internal/obs"
	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/sat"
	"singlingout/internal/synth"
)

// Metrics recorded into obs.Default() by the census pipeline. Each
// published table cell the attacker encodes is the answer to one counting
// query over the block's microdata, so its consumption is accounted under
// query.MetricQueries — the same name the oracle-based attacks use —
// keeping query counts comparable across pipelines.
var (
	mTableQueries  = obs.Default().Counter(query.MetricQueries)
	mCensusQueries = obs.Default().Counter("census.table_queries")
	mBlocks        = obs.Default().Counter("census.blocks")
	mBlocksSolved  = obs.Default().Counter("census.blocks_solved")
	mBlocksUnique  = obs.Default().Counter("census.blocks_unique")
	mPersons       = obs.Default().Counter("census.persons")
	mExactRecords  = obs.Default().Counter("census.exact_records")
	mExactFraction = obs.Default().Gauge("census.exact_fraction")
	mBlockNS       = obs.Default().Histogram("census.block_ns")
)

// ErrInconsistentTables is returned by ReconstructBlock when the supplied
// tables admit no microdata at all — the expected outcome for tables that
// were noised before publication.
var ErrInconsistentTables = errors.New("tables jointly unsatisfiable")

// Config controls tabulation granularity.
type Config struct {
	// AgeBucketWidth is the width in years of published age buckets
	// (default 10).
	AgeBucketWidth int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config { return Config{AgeBucketWidth: 10} }

func (c Config) bucketWidth() int {
	if c.AgeBucketWidth <= 0 {
		return 10
	}
	return c.AgeBucketWidth
}

// Buckets returns the number of age buckets.
func (c Config) Buckets() int { return (110 + c.bucketWidth()) / c.bucketWidth() }

// Tuple is one reconstructed (or true) person abstraction at table
// granularity.
type Tuple struct {
	Sex       int
	AgeBucket int
	Race      int
	Ethnicity int
}

// numCells returns the joint domain size.
func (c Config) numCells() int { return 2 * c.Buckets() * 6 * 2 }

// cellID flattens a tuple.
func (c Config) cellID(t Tuple) int {
	return ((t.Sex*c.Buckets()+t.AgeBucket)*6+t.Race)*2 + t.Ethnicity
}

// cellTuple unflattens a cell id.
func (c Config) cellTuple(id int) Tuple {
	t := Tuple{Ethnicity: id % 2}
	id /= 2
	t.Race = id % 6
	id /= 6
	t.AgeBucket = id % c.Buckets()
	t.Sex = id / c.Buckets()
	return t
}

// BlockTables is the published tabulation of one census block.
type BlockTables struct {
	Block  int64
	Total  int
	SexAge map[[2]int]int // (sex, ageBucket) -> count
	RaceEt map[[2]int]int // (race, ethnicity) -> count
	SexRc  map[[2]int]int // (sex, race) -> count
}

// TrueTuples extracts ground-truth tuples per block from the population.
func TrueTuples(pop *dataset.Dataset, cfg Config) map[int64][]Tuple {
	sexI := pop.Schema.MustIndex(synth.AttrSex)
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	raceI := pop.Schema.MustIndex(synth.AttrRace)
	ethI := pop.Schema.MustIndex(synth.AttrEthnicity)
	blockI := pop.Schema.MustIndex(synth.AttrBlock)
	out := map[int64][]Tuple{}
	for _, r := range pop.Rows {
		t := Tuple{
			Sex:       int(r[sexI]),
			AgeBucket: int(r[ageI]) / cfg.bucketWidth(),
			Race:      int(r[raceI]),
			Ethnicity: int(r[ethI]),
		}
		out[r[blockI]] = append(out[r[blockI]], t)
	}
	return out
}

// Tabulate publishes block tables for every inhabited block.
func Tabulate(pop *dataset.Dataset, cfg Config) []BlockTables {
	truth := TrueTuples(pop, cfg)
	blocks := make([]int64, 0, len(truth))
	for b := range truth {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	out := make([]BlockTables, 0, len(blocks))
	for _, b := range blocks {
		bt := BlockTables{
			Block:  b,
			SexAge: map[[2]int]int{},
			RaceEt: map[[2]int]int{},
			SexRc:  map[[2]int]int{},
		}
		for _, t := range truth[b] {
			bt.Total++
			bt.SexAge[[2]int{t.Sex, t.AgeBucket}]++
			bt.RaceEt[[2]int{t.Race, t.Ethnicity}]++
			bt.SexRc[[2]int{t.Sex, t.Race}]++
		}
		out = append(out, bt)
	}
	return out
}

// BlockResult is the outcome of reconstructing one block.
type BlockResult struct {
	Block int64
	Size  int
	// Solved reports whether any consistent assignment was found within
	// the conflict budget.
	Solved bool
	// Unique reports whether the consistent assignment was the only one
	// (checked by a second solver run with the first multiset blocked).
	Unique bool
	// Tuples is a reconstructed multiset of person abstractions.
	Tuples []Tuple
	// Exact is the size of the multiset intersection between Tuples and
	// the true block tuples (records reconstructed exactly).
	Exact int
}

// StreamStep is one intermediate solve of a streaming block
// reconstruction: the attacker has encoded Queries published table cells
// so far and re-solved the growing instance. When a consistent
// assignment exists within the per-call conflict budget, Solved is true
// and Exact scores it against the supplied truth (multiset
// intersection). Stats is the solver's cumulative cost for this block —
// decisions/restarts/conflicts accrued across every incremental call,
// learned clauses included — so convergence curves can plot accuracy
// against solver work, not just against queries.
type StreamStep struct {
	Block   int64
	Queries int
	Size    int
	Solved  bool
	Exact   int
	Stats   sat.Stats
}

// ReconstructBlock encodes the published tables of one block as CNF and
// solves for the person-level records. Symmetry between persons is broken
// with a lexicographic ordering chain, so each candidate multiset
// corresponds to exactly one model and uniqueness can be decided with a
// single extra solver call. It is the batch wrapper over
// ReconstructBlockStream with no step callback: one solve over the full
// instance.
func ReconstructBlock(bt BlockTables, cfg Config, maxConflicts int64) (BlockResult, error) {
	return ReconstructBlockStream(bt, cfg, maxConflicts, nil, nil)
}

// ReconstructBlockStream is the anytime form of ReconstructBlock: it adds
// the published count constraints one table cell at a time and, when
// onStep is non-nil, re-solves after each cell and reports the step — a
// convergence curve of reconstruction accuracy (scored against truth)
// versus table cells consumed. The solver instance persists across the
// incremental calls, so every re-solve keeps the learned clauses,
// activity scores and saved phases of the previous ones instead of
// restarting cold; MaxConflicts budgets each individual solver call.
//
// With a nil onStep no intermediate solves happen and the behavior —
// clause order, solver work, result — is exactly ReconstructBlock's. A
// mid-stream Unsat means the cells consumed so far are already jointly
// unsatisfiable; it surfaces as ErrInconsistentTables just like the
// batch path. A mid-stream Unknown (budget exhausted) reports the step
// with Solved false and continues.
func ReconstructBlockStream(bt BlockTables, cfg Config, maxConflicts int64, truth []Tuple, onStep func(StreamStep)) (BlockResult, error) {
	res := BlockResult{Block: bt.Block, Size: bt.Total}
	if bt.Total == 0 {
		res.Solved, res.Unique = true, true
		return res, nil
	}
	sp := mBlockNS.Span()
	defer sp.End()
	cells := cfg.numCells()
	s := sat.New()
	s.MaxConflicts = maxConflicts
	// x[p][c]: person p has joint cell c.
	x := make([][]int, bt.Total)
	for p := range x {
		x[p] = make([]int, cells)
		for c := range x[p] {
			x[p][c] = s.NewVar()
		}
		if err := s.AddClause(x[p]...); err != nil {
			return res, err
		}
		if err := s.AtMostK(x[p], 1); err != nil {
			return res, err
		}
	}
	queries := 0
	// step re-solves the instance as encoded so far and reports it. The
	// solver returns at decision level 0 after Unknown but at the final
	// decision level after Sat, so Backtrack reopens it for the next
	// cell's clauses — keeping everything learned.
	step := func() error {
		if onStep == nil {
			return nil
		}
		st := StreamStep{Block: bt.Block, Queries: queries, Size: bt.Total}
		switch s.Solve() {
		case sat.Unsat:
			return fmt.Errorf("census: block %d: %w", bt.Block, ErrInconsistentTables)
		case sat.Sat:
			st.Solved = true
			if truth != nil {
				st.Exact = MultisetIntersection(extractTuples(s, x, cfg), truth)
			}
			s.Backtrack()
		}
		st.Stats = s.Stats()
		onStep(st)
		return nil
	}
	// Published-count constraints. Each group is one published counting
	// query the attacker consumes.
	addGroup := func(members func(t Tuple) bool, count int) error {
		mTableQueries.Add(1)
		mCensusQueries.Add(1)
		queries++
		var vars []int
		for p := range x {
			for c := 0; c < cells; c++ {
				if members(cfg.cellTuple(c)) {
					vars = append(vars, x[p][c])
				}
			}
		}
		if count == 0 {
			for _, v := range vars {
				if err := s.AddClause(-v); err != nil {
					return err
				}
			}
			return step()
		}
		if err := s.ExactlyK(vars, count); err != nil {
			return err
		}
		return step()
	}
	for sex := 0; sex < 2; sex++ {
		for b := 0; b < cfg.Buckets(); b++ {
			sex, b := sex, b
			if err := addGroup(func(t Tuple) bool { return t.Sex == sex && t.AgeBucket == b }, bt.SexAge[[2]int{sex, b}]); err != nil {
				return res, err
			}
		}
	}
	for race := 0; race < 6; race++ {
		for eth := 0; eth < 2; eth++ {
			race, eth := race, eth
			if err := addGroup(func(t Tuple) bool { return t.Race == race && t.Ethnicity == eth }, bt.RaceEt[[2]int{race, eth}]); err != nil {
				return res, err
			}
		}
	}
	for sex := 0; sex < 2; sex++ {
		for race := 0; race < 6; race++ {
			sex, race := sex, race
			if err := addGroup(func(t Tuple) bool { return t.Sex == sex && t.Race == race }, bt.SexRc[[2]int{sex, race}]); err != nil {
				return res, err
			}
		}
	}
	// Symmetry breaking: cellid_p <= cellid_{p+1} via threshold chains.
	// t[p][c] ⇔ cellid_p >= c, for c in 1..cells-1.
	if bt.Total > 1 {
		thr := make([][]int, bt.Total)
		for p := range thr {
			thr[p] = make([]int, cells) // index c>=1 used
			for c := cells - 1; c >= 1; c-- {
				thr[p][c] = s.NewVar()
				// x[p][c] -> t[p][c]
				if err := s.AddClause(-x[p][c], thr[p][c]); err != nil {
					return res, err
				}
				if c+1 < cells {
					// t[p][c+1] -> t[p][c]
					if err := s.AddClause(-thr[p][c+1], thr[p][c]); err != nil {
						return res, err
					}
					// t[p][c] -> x[p][c] ∨ t[p][c+1]
					if err := s.AddClause(-thr[p][c], x[p][c], thr[p][c+1]); err != nil {
						return res, err
					}
				} else {
					// t[p][cells-1] -> x[p][cells-1]
					if err := s.AddClause(-thr[p][c], x[p][c]); err != nil {
						return res, err
					}
				}
			}
		}
		for p := 0; p+1 < bt.Total; p++ {
			for c := 1; c < cells; c++ {
				// cellid_p >= c -> cellid_{p+1} >= c.
				if err := s.AddClause(-thr[p][c], thr[p+1][c]); err != nil {
					return res, err
				}
			}
		}
	}
	switch s.Solve() {
	case sat.Unsat:
		// Unsatisfiable tables cannot arise from honest tabulation, but
		// do arise when callers feed noised tables (the DP defense).
		return res, fmt.Errorf("census: block %d: %w", bt.Block, ErrInconsistentTables)
	case sat.Unknown:
		return res, nil // budget exhausted; Solved stays false
	}
	res.Solved = true
	res.Tuples = extractTuples(s, x, cfg)
	// Uniqueness: block this model over the x variables and re-solve. With
	// lex ordering, any second model is a genuinely different multiset.
	var xs []int
	for _, row := range x {
		xs = append(xs, row...)
	}
	if err := s.BlockModel(xs); err != nil {
		return res, err
	}
	switch s.Solve() {
	case sat.Unsat:
		res.Unique = true
	case sat.Unknown:
		// Could not verify uniqueness within budget; leave Unique false.
	}
	return res, nil
}

func extractTuples(s *sat.Solver, x [][]int, cfg Config) []Tuple {
	out := make([]Tuple, 0, len(x))
	for _, row := range x {
		for c, v := range row {
			if s.Value(v) {
				out = append(out, cfg.cellTuple(c))
				break
			}
		}
	}
	return out
}

// MultisetIntersection returns the number of tuples shared between two
// multisets.
func MultisetIntersection(a, b []Tuple) int {
	count := map[Tuple]int{}
	for _, t := range a {
		count[t]++
	}
	n := 0
	for _, t := range b {
		if count[t] > 0 {
			count[t]--
			n++
		}
	}
	return n
}

// Summary aggregates a reconstruction run.
type Summary struct {
	Blocks        int
	Solved        int
	Unique        int
	Persons       int
	ExactRecords  int     // tuples reconstructed exactly (multiset match)
	ExactFraction float64 // ExactRecords / Persons
}

// ReconstructAll solves every block's SAT instance on a pool of `workers`
// goroutines (<= 0 selects GOMAXPROCS) and returns the results in table
// order. Each block is an independent instance and the solver is
// deterministic, so the results are identical at any worker count. Blocks
// whose tables are jointly unsatisfiable (the DP-noise defense) count as
// unsolved rather than erroring; any other solver error cancels the
// remaining blocks and is returned.
func ReconstructAll(tables []BlockTables, cfg Config, maxConflictsPerBlock int64, workers int) ([]BlockResult, error) {
	results := make([]BlockResult, len(tables))
	err := par.ForEach(workers, len(tables), func(i int) error {
		r, err := ReconstructBlock(tables[i], cfg, maxConflictsPerBlock)
		if errors.Is(err, ErrInconsistentTables) {
			r = BlockResult{Block: tables[i].Block, Size: tables[i].Total}
		} else if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ReconstructAllStream is the anytime form of ReconstructAll: it solves
// the blocks sequentially (a convergence curve is a cumulative series, so
// the streaming path is inherently ordered) with an intermediate solve
// after every published table cell, reporting each via onStep. truth maps
// block id to the true tuples (as from TrueTuples) so steps carry exact
// scores; blocks whose tables turn jointly unsatisfiable mid-stream count
// as unsolved, matching the batch path. ctx cancellation is checked
// between blocks.
func ReconstructAllStream(ctx context.Context, tables []BlockTables, truth map[int64][]Tuple, cfg Config, maxConflictsPerBlock int64, onStep func(StreamStep)) ([]BlockResult, error) {
	results := make([]BlockResult, len(tables))
	for i, bt := range tables {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("census: streaming reconstruction: %w", err)
		}
		r, err := ReconstructBlockStream(bt, cfg, maxConflictsPerBlock, truth[bt.Block], onStep)
		if errors.Is(err, ErrInconsistentTables) {
			r = BlockResult{Block: bt.Block, Size: bt.Total}
		} else if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// Reconstruct runs the attack over all blocks of honestly tabulated data
// and scores it against the ground truth, solving blocks concurrently on
// `workers` goroutines (<= 0 selects GOMAXPROCS).
func Reconstruct(pop *dataset.Dataset, cfg Config, maxConflictsPerBlock int64, workers int) ([]BlockResult, Summary, error) {
	return ReconstructTables(Tabulate(pop, cfg), TrueTuples(pop, cfg), cfg, maxConflictsPerBlock, workers)
}

// SizeBucket labels a block-size range in the vulnerability breakdown.
type SizeBucket struct {
	Lo, Hi int // inclusive block-size range
	Blocks int
	// Persons and ExactRecords accumulate over solved blocks in range.
	Persons      int
	ExactRecords int
	Unique       int
}

// ExactFraction returns the fraction of persons reconstructed exactly in
// this bucket.
func (b SizeBucket) ExactFraction() float64 {
	if b.Persons == 0 {
		return 0
	}
	return float64(b.ExactRecords) / float64(b.Persons)
}

// SummaryBySize breaks reconstruction quality down by block size — the
// Census Bureau's own finding was that small blocks are the most exposed.
func SummaryBySize(results []BlockResult) []SizeBucket {
	buckets := []SizeBucket{{Lo: 1, Hi: 2}, {Lo: 3, Hi: 5}, {Lo: 6, Hi: 9}, {Lo: 10, Hi: 1 << 30}}
	for _, r := range results {
		if r.Size == 0 {
			continue
		}
		for i := range buckets {
			if r.Size >= buckets[i].Lo && r.Size <= buckets[i].Hi {
				buckets[i].Blocks++
				if r.Solved {
					buckets[i].Persons += r.Size
					buckets[i].ExactRecords += r.Exact
				}
				if r.Unique {
					buckets[i].Unique++
				}
				break
			}
		}
	}
	return buckets
}
