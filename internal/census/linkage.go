package census

import (
	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

// LinkageSummary aggregates the re-identification step of the census
// attack: reconstructed records are matched against an identified registry
// on (block, sex, age bucket); a unique match is a putative
// re-identification, confirmed when the matched person's true record also
// agrees on the attributes the registry does not hold (race, ethnicity).
// These are the "putative" and "confirmed" categories of the Census
// Bureau's own assessment of the attack ([7]).
type LinkageSummary struct {
	// Persons is the number of reconstructed records attempted.
	Persons int
	// Putative counts unique (block, sex, age-bucket) registry matches.
	Putative int
	// Confirmed counts putative matches whose full reconstructed tuple
	// equals the matched person's ground truth.
	Confirmed int
}

// PutativeRate returns Putative / Persons.
func (l LinkageSummary) PutativeRate() float64 {
	if l.Persons == 0 {
		return 0
	}
	return float64(l.Putative) / float64(l.Persons)
}

// ConfirmedRate returns Confirmed / Persons.
func (l LinkageSummary) ConfirmedRate() float64 {
	if l.Persons == 0 {
		return 0
	}
	return float64(l.Confirmed) / float64(l.Persons)
}

// Linkage re-identifies reconstructed block records against the registry.
func Linkage(pop, reg *dataset.Dataset, results []BlockResult, cfg Config) LinkageSummary {
	pid := reg.Schema.MustIndex(synth.RegistryPersonID)
	rBd := reg.Schema.MustIndex(synth.AttrBirthDate)
	rSex := reg.Schema.MustIndex(synth.AttrSex)
	rBlock := reg.Schema.MustIndex(synth.AttrBlock)
	pSex := pop.Schema.MustIndex(synth.AttrSex)
	pAge := pop.Schema.MustIndex(synth.AttrAge)
	pRace := pop.Schema.MustIndex(synth.AttrRace)
	pEth := pop.Schema.MustIndex(synth.AttrEthnicity)

	// Index registry rows by (block, sex, ageBucket).
	type key struct {
		block int64
		sex   int
		buck  int
	}
	idx := map[key][]int64{}
	for _, row := range reg.Rows {
		age := int((synth.BirthDateMax - row[rBd]) / 365)
		k := key{block: row[rBlock], sex: int(row[rSex]), buck: age / cfg.bucketWidth()}
		idx[k] = append(idx[k], row[pid])
	}

	var sum LinkageSummary
	for _, br := range results {
		if !br.Solved {
			continue
		}
		for _, t := range br.Tuples {
			sum.Persons++
			cands := idx[key{block: br.Block, sex: t.Sex, buck: t.AgeBucket}]
			if len(cands) != 1 {
				continue
			}
			sum.Putative++
			person := pop.Rows[cands[0]]
			if int(person[pSex]) == t.Sex &&
				int(person[pAge])/cfg.bucketWidth() == t.AgeBucket &&
				int(person[pRace]) == t.Race &&
				int(person[pEth]) == t.Ethnicity {
				sum.Confirmed++
			}
		}
	}
	return sum
}
