package census

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"singlingout/internal/synth"
)

// TestReconstructAllWorkerCountInvariance checks the determinism contract
// end to end: block solving is deterministic per block, so the full result
// slice must be identical (order included) at any worker count.
func TestReconstructAllWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 200, ZIPs: 3, BlocksPerZIP: 10})
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)
	base, err := ReconstructAll(tables, cfg, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := ReconstructAll(tables, cfg, 200000, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

// TestReconstructAllConcurrentCalls exercises ReconstructAll itself being
// invoked from several goroutines at once (as the experiment harnesses may
// do), each with an internal pool. Meaningful under -race.
func TestReconstructAllConcurrentCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 120, ZIPs: 2, BlocksPerZIP: 8})
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	outs := make([][]BlockResult, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = ReconstructAll(tables, cfg, 200000, 4)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if errs[g] != nil {
			t.Fatalf("call %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(outs[0], outs[g]) {
			t.Fatalf("call %d returned different results", g)
		}
	}
}

// TestReconstructAllUnsatisfiableBlock verifies that a jointly
// unsatisfiable block is reported as unsolved rather than aborting the
// whole run — matching ReconstructTables' historical behavior now that
// blocks are solved on a pool.
func TestReconstructAllUnsatisfiableBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 80, ZIPs: 2, BlocksPerZIP: 6})
	cfg := DefaultConfig()
	tables := Tabulate(pop, cfg)
	// Corrupt one block: claim one more person in the sex×age table than
	// the race×ethnicity table accounts for.
	for k := range tables[0].SexAge {
		tables[0].SexAge[k]++
		tables[0].Total++
		break
	}
	results, err := ReconstructAll(tables, cfg, 200000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Solved {
		t.Error("corrupted block reported as solved")
	}
	if results[0].Block != tables[0].Block {
		t.Errorf("placeholder result has block %d, want %d", results[0].Block, tables[0].Block)
	}
	solved := 0
	for _, r := range results[1:] {
		if r.Solved {
			solved++
		}
	}
	if solved == 0 {
		t.Error("no other block solved; corruption should be local")
	}
}
