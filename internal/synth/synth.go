// Package synth generates the synthetic workloads that stand in for the
// paper's proprietary or protected data sources: a US-like population
// microdata file (for the GIC/Sweeney linkage and Census reconstruction
// experiments), a voter-registry style identified dataset (the auxiliary
// information in linkage attacks), and a sparse long-tailed ratings matrix
// (for the Netflix-style de-anonymization experiment).
//
// All generators are deterministic given their *rand.Rand.
package synth

import (
	"fmt"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dist"
)

// Attribute names used by the population schema. Callers resolve indices
// via Schema.MustIndex with these constants.
const (
	AttrZIP       = "zip"
	AttrBirthDate = "birthdate" // days since 1900-01-01
	AttrAge       = "age"
	AttrSex       = "sex"
	AttrRace      = "race"
	AttrEthnicity = "ethnicity"
	AttrDisease   = "disease"
	AttrBlock     = "block"
)

// Diseases is the categorical domain of the sensitive attribute, chosen so
// that a two-level tree hierarchy (organ system, then "*") exists.
var Diseases = []string{
	"COVID", "CF", "Asthma", "Flu", "TB", // PULM
	"Crohn", "IBS", "Ulcer", // GI
	"CAD", "Arrhythmia", "Hypertension", // CARD
	"Diabetes", "Thyroid", // ENDO
}

// DiseaseHierarchy returns the organ-system generalization hierarchy over
// Diseases (levels: raw, system, *).
func DiseaseHierarchy() *dataset.TreeHierarchy {
	return dataset.MustTreeHierarchy([][]string{
		{"PULM", "*"}, {"PULM", "*"}, {"PULM", "*"}, {"PULM", "*"}, {"PULM", "*"},
		{"GI", "*"}, {"GI", "*"}, {"GI", "*"},
		{"CARD", "*"}, {"CARD", "*"}, {"CARD", "*"},
		{"ENDO", "*"}, {"ENDO", "*"},
	})
}

// Races is the categorical domain of the race attribute, mirroring the six
// OMB categories used by the decennial census.
var Races = []string{"White", "Black", "AIAN", "Asian", "NHPI", "Other"}

// raceWeights approximate 2010 census proportions.
var raceWeights = []float64{0.72, 0.13, 0.01, 0.05, 0.002, 0.088}

// Sexes is the categorical domain of the sex attribute.
var Sexes = []string{"F", "M"}

// Ethnicities is the categorical domain of the ethnicity attribute.
var Ethnicities = []string{"NonHispanic", "Hispanic"}

// BirthDateMax is the largest encoded birth date (days since 1900-01-01)
// the generator produces; it corresponds to a 2010 census reference date.
const BirthDateMax = 40176 // ~110 years

// PopulationConfig controls the synthetic population generator.
type PopulationConfig struct {
	// N is the number of individuals.
	N int
	// ZIPs is the number of distinct ZIP codes; population is spread over
	// them with Zipf(1.05)-distributed sizes, mirroring the heavy skew of
	// real ZIP populations.
	ZIPs int
	// BlocksPerZIP is the number of census blocks within each ZIP.
	BlocksPerZIP int
}

// DefaultPopulation is a laptop-sized configuration used by examples.
func DefaultPopulation() PopulationConfig {
	return PopulationConfig{N: 20000, ZIPs: 20, BlocksPerZIP: 40}
}

// PopulationSchema returns the schema of the generated population.
func PopulationSchema(cfg PopulationConfig) *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: AttrZIP, Kind: dataset.Int, Min: 10000, Max: 10000 + int64(cfg.ZIPs) - 1, QuasiIdentifier: true},
		dataset.Attribute{Name: AttrBirthDate, Kind: dataset.Int, Min: 0, Max: BirthDateMax, QuasiIdentifier: true},
		dataset.Attribute{Name: AttrAge, Kind: dataset.Int, Min: 0, Max: 110, QuasiIdentifier: true},
		dataset.Attribute{Name: AttrSex, Kind: dataset.Categorical, Categories: Sexes, QuasiIdentifier: true},
		dataset.Attribute{Name: AttrRace, Kind: dataset.Categorical, Categories: Races},
		dataset.Attribute{Name: AttrEthnicity, Kind: dataset.Categorical, Categories: Ethnicities},
		dataset.Attribute{Name: AttrDisease, Kind: dataset.Categorical, Categories: Diseases, Sensitive: true},
		dataset.Attribute{Name: AttrBlock, Kind: dataset.Int, Min: 0, Max: int64(cfg.ZIPs*cfg.BlocksPerZIP) - 1},
	)
}

// Population generates cfg.N individuals sampled i.i.d. from the
// population distribution (the data-generation model of Section 2.2 of the
// paper). The row index of each record is that individual's identity: the
// registry generator and the linkage scorers use row indices as ground
// truth.
func Population(rng *rand.Rand, cfg PopulationConfig) (*dataset.Dataset, error) {
	if cfg.N <= 0 || cfg.ZIPs <= 0 || cfg.BlocksPerZIP <= 0 {
		return nil, fmt.Errorf("synth: invalid population config %+v", cfg)
	}
	sample := IndividualSampler(cfg)
	d := dataset.New(PopulationSchema(cfg))
	for i := 0; i < cfg.N; i++ {
		d.MustAppend(sample(rng))
	}
	return d, nil
}

// IndividualSampler returns a sampler drawing single records i.i.d. from
// the population distribution defined by cfg — the distribution D of the
// predicate-singling-out experiments. It panics on an invalid config.
func IndividualSampler(cfg PopulationConfig) func(*rand.Rand) dataset.Record {
	if cfg.ZIPs <= 0 || cfg.BlocksPerZIP <= 0 {
		panic(fmt.Sprintf("synth: invalid population config %+v", cfg))
	}
	zipZipf := dist.NewZipf(cfg.ZIPs, 1.05)
	return func(rng *rand.Rand) dataset.Record {
		zipIdx := zipZipf.Sample(rng)
		age := sampleAge(rng)
		// Birth date consistent with age at the 2010-04-01 reference date.
		birth := BirthDateMax - int64(age)*365 - int64(rng.Intn(365))
		if birth < 0 {
			birth = 0
		}
		return dataset.Record{
			10000 + int64(zipIdx),
			birth,
			int64(age),
			int64(rng.Intn(2)),
			int64(sampleWeighted(rng, raceWeights)),
			int64(boolToInt(rng.Float64() < 0.16)),
			int64(rng.Intn(len(Diseases))),
			int64(zipIdx*cfg.BlocksPerZIP + rng.Intn(cfg.BlocksPerZIP)),
		}
	}
}

// sampleAge draws an age from a piecewise-uniform pyramid that roughly
// matches the US age distribution.
func sampleAge(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.24: // 0-17
		return rng.Intn(18)
	case u < 0.50: // 18-39
		return 18 + rng.Intn(22)
	case u < 0.77: // 40-64
		return 40 + rng.Intn(25)
	case u < 0.95: // 65-84
		return 65 + rng.Intn(20)
	default: // 85-110
		return 85 + rng.Intn(26)
	}
}

func sampleWeighted(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RegistryPersonID is the name of the identity column in the registry.
const RegistryPersonID = "person_id"

// Registry builds an identified auxiliary dataset (in the style of the
// Cambridge voter registration used by Sweeney, or the commercial
// databases of the census re-identification narrative): for a coverage
// fraction of the population, it records the person's identity alongside
// their quasi-identifiers (ZIP, birth date, sex) and the census block
// their address geocodes to. The registry contains no sensitive
// attributes.
func Registry(rng *rand.Rand, pop *dataset.Dataset, coverage float64) (*dataset.Dataset, error) {
	if coverage < 0 || coverage > 1 {
		return nil, fmt.Errorf("synth: coverage %v outside [0,1]", coverage)
	}
	zipI := pop.Schema.MustIndex(AttrZIP)
	bdI := pop.Schema.MustIndex(AttrBirthDate)
	sexI := pop.Schema.MustIndex(AttrSex)
	blockI := pop.Schema.MustIndex(AttrBlock)
	schema := dataset.MustSchema(
		dataset.Attribute{Name: RegistryPersonID, Kind: dataset.Int, Min: 0, Max: int64(pop.Len()) - 1},
		pop.Schema.Attrs[zipI],
		pop.Schema.Attrs[bdI],
		pop.Schema.Attrs[sexI],
		pop.Schema.Attrs[blockI],
	)
	reg := dataset.New(schema)
	for i, r := range pop.Rows {
		if rng.Float64() >= coverage {
			continue
		}
		reg.MustAppend(dataset.Record{int64(i), r[zipI], r[bdI], r[sexI], r[blockI]})
	}
	return reg, nil
}

// Rating is one (movie, stars, day) triple in a user's viewing history.
type Rating struct {
	Movie int
	Stars int
	Day   int
}

// Ratings is a sparse user-by-movie matrix with long-tailed movie
// popularity, the workload for the Netflix-style de-anonymization
// experiment.
type Ratings struct {
	NumUsers  int
	NumMovies int
	ByUser    [][]Rating
}

// RatingsConfig controls the ratings generator.
type RatingsConfig struct {
	Users, Movies int
	// MeanRatings is the average number of ratings per user (geometric-ish
	// spread around it).
	MeanRatings int
	// Days is the span of rating timestamps.
	Days int
}

// GenerateRatings builds a synthetic ratings matrix. Movie choice follows
// Zipf(1.0) popularity; star ratings are biased positive like real rating
// data; timestamps are uniform.
func GenerateRatings(rng *rand.Rand, cfg RatingsConfig) (*Ratings, error) {
	if cfg.Users <= 0 || cfg.Movies <= 0 || cfg.MeanRatings <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("synth: invalid ratings config %+v", cfg)
	}
	z := dist.NewZipf(cfg.Movies, 1.0)
	r := &Ratings{NumUsers: cfg.Users, NumMovies: cfg.Movies, ByUser: make([][]Rating, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		k := 1 + rng.Intn(2*cfg.MeanRatings-1) // uniform 1..2*mean-1, mean ≈ MeanRatings
		seen := make(map[int]bool, k)
		for len(seen) < k && len(seen) < cfg.Movies {
			m := z.Sample(rng)
			if seen[m] {
				continue
			}
			seen[m] = true
			stars := 1 + sampleWeighted(rng, []float64{0.05, 0.10, 0.20, 0.35, 0.30})
			r.ByUser[u] = append(r.ByUser[u], Rating{Movie: m, Stars: stars, Day: rng.Intn(cfg.Days)})
		}
	}
	return r, nil
}

// BinaryDataset draws an n-bit dataset x ∈ {0,1}^n with i.i.d. Bernoulli(p)
// bits — the data model of the Dinur–Nissim reconstruction setting, where
// x_i = 1 means individual i has the sensitive trait.
func BinaryDataset(rng *rand.Rand, n int, p float64) []int64 {
	x := make([]int64, n)
	for i := range x {
		if rng.Float64() < p {
			x[i] = 1
		}
	}
	return x
}

// SurveyConfig controls the high-dimensional survey generator used by the
// predicate-singling-out experiments: the paper's Theorem 2.10 analysis
// notes that equivalence-class predicates have negligible weight because
// "a typical dataset would include many more attributes" — this generator
// provides those attributes, all mutually independent so that
// product-of-marginal weight accounting is exact.
type SurveyConfig struct {
	// Questions is the number of binary survey answers per respondent.
	Questions int
	// Skew is the probability of answer 0 on each question (e.g. 0.8).
	Skew float64
}

// SurveyRegDateDomain is the domain size of the survey's registration-date
// attribute (attribute 0), a large-domain value that is unique per
// respondent with high probability.
const SurveyRegDateDomain = 1 << 20

// SurveySchema returns the schema: attribute 0 is the registration date,
// attributes 1..Questions are the binary answers.
func SurveySchema(cfg SurveyConfig) *dataset.Schema {
	attrs := make([]dataset.Attribute, 0, cfg.Questions+1)
	attrs = append(attrs, dataset.Attribute{
		Name: "regdate", Kind: dataset.Int, Min: 0, Max: SurveyRegDateDomain - 1, QuasiIdentifier: true,
	})
	for q := 1; q <= cfg.Questions; q++ {
		attrs = append(attrs, dataset.Attribute{
			Name: fmt.Sprintf("q%02d", q), Kind: dataset.Int, Min: 0, Max: 1, QuasiIdentifier: true,
		})
	}
	return dataset.MustSchema(attrs...)
}

// SurveySampler draws one survey record i.i.d. from the survey
// distribution. It panics on an invalid config.
func SurveySampler(cfg SurveyConfig) func(*rand.Rand) dataset.Record {
	if cfg.Questions <= 0 || cfg.Skew <= 0 || cfg.Skew >= 1 {
		panic(fmt.Sprintf("synth: invalid survey config %+v", cfg))
	}
	return func(rng *rand.Rand) dataset.Record {
		rec := make(dataset.Record, cfg.Questions+1)
		rec[0] = rng.Int63n(SurveyRegDateDomain)
		for q := 1; q <= cfg.Questions; q++ {
			if rng.Float64() >= cfg.Skew {
				rec[q] = 1
			}
		}
		return rec
	}
}
