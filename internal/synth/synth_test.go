package synth

import (
	"math"
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
)

func TestPopulationShapeAndDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := PopulationConfig{N: 5000, ZIPs: 10, BlocksPerZIP: 5}
	pop, err := Population(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Len() != cfg.N {
		t.Fatalf("Len = %d", pop.Len())
	}
	zipI := pop.Schema.MustIndex(AttrZIP)
	ageI := pop.Schema.MustIndex(AttrAge)
	bdI := pop.Schema.MustIndex(AttrBirthDate)
	blockI := pop.Schema.MustIndex(AttrBlock)
	for _, r := range pop.Rows {
		if r[zipI] < 10000 || r[zipI] >= 10010 {
			t.Fatalf("zip out of range: %d", r[zipI])
		}
		if r[ageI] < 0 || r[ageI] > 110 {
			t.Fatalf("age out of range: %d", r[ageI])
		}
		if r[bdI] < 0 || r[bdI] > BirthDateMax {
			t.Fatalf("birthdate out of range: %d", r[bdI])
		}
		if r[blockI] < 0 || r[blockI] >= int64(cfg.ZIPs*cfg.BlocksPerZIP) {
			t.Fatalf("block out of range: %d", r[blockI])
		}
		// Block must belong to the record's ZIP.
		if r[blockI]/int64(cfg.BlocksPerZIP) != r[zipI]-10000 {
			t.Fatalf("block %d not in zip %d", r[blockI], r[zipI])
		}
		// Birth date must be consistent with age at the reference date.
		impliedAge := (int64(BirthDateMax) - r[bdI]) / 365
		if d := impliedAge - r[ageI]; d < 0 || d > 1 {
			t.Fatalf("birthdate %d inconsistent with age %d (implied %d)", r[bdI], r[ageI], impliedAge)
		}
	}
}

func TestPopulationRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []PopulationConfig{{}, {N: 10}, {N: 10, ZIPs: 2}} {
		if _, err := Population(rng, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestPopulationIsDeterministic(t *testing.T) {
	cfg := PopulationConfig{N: 200, ZIPs: 4, BlocksPerZIP: 3}
	a, _ := Population(rand.New(rand.NewSource(7)), cfg)
	b, _ := Population(rand.New(rand.NewSource(7)), cfg)
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatalf("row %d differs between identical seeds", i)
		}
	}
}

func TestPopulationZIPSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := PopulationConfig{N: 20000, ZIPs: 10, BlocksPerZIP: 2}
	pop, _ := Population(rng, cfg)
	zipI := pop.Schema.MustIndex(AttrZIP)
	counts := map[int64]int{}
	for _, r := range pop.Rows {
		counts[r[zipI]]++
	}
	if counts[10000] <= counts[10009]*2 {
		t.Errorf("expected Zipf skew: zip0=%d zip9=%d", counts[10000], counts[10009])
	}
}

func TestDiseaseHierarchyMatchesDiseases(t *testing.T) {
	h := DiseaseHierarchy()
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	// COVID (0) and TB (4) share PULM; Diabetes (11) is ENDO.
	if h.GroupOf(0, 1) != h.GroupOf(4, 1) {
		t.Error("COVID/TB should share a system")
	}
	if h.GroupOf(0, 1) == h.GroupOf(11, 1) {
		t.Error("COVID/Diabetes should not share a system")
	}
	if got := h.Label(h.GroupOf(11, 1), 1); got != "ENDO" {
		t.Errorf("Diabetes system = %q", got)
	}
	// Hierarchy covers exactly the disease list.
	total := int64(0)
	seen := map[int64]bool{}
	for i := range Diseases {
		g := h.GroupOf(int64(i), 1)
		if !seen[g] {
			seen[g] = true
			total += h.GroupSize(g, 1)
		}
	}
	if total != int64(len(Diseases)) {
		t.Errorf("hierarchy covers %d categories, want %d", total, len(Diseases))
	}
}

func TestRegistryCoverageAndTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, _ := Population(rng, PopulationConfig{N: 4000, ZIPs: 5, BlocksPerZIP: 2})
	reg, err := Registry(rng, pop, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(reg.Len()) / float64(pop.Len())
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("coverage = %v, want ~0.5", frac)
	}
	// Each registry row's QI values must equal the identified person's.
	pid := reg.Schema.MustIndex(RegistryPersonID)
	for _, attr := range []string{AttrZIP, AttrBirthDate, AttrSex, AttrBlock} {
		ri := reg.Schema.MustIndex(attr)
		pi := pop.Schema.MustIndex(attr)
		for _, row := range reg.Rows {
			person := pop.Rows[row[pid]]
			if row[ri] != person[pi] {
				t.Fatalf("registry %s mismatch for person %d", attr, row[pid])
			}
		}
	}
	if _, err := Registry(rng, pop, 1.5); err == nil {
		t.Error("coverage > 1 should be rejected")
	}
}

func TestGenerateRatings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := RatingsConfig{Users: 500, Movies: 200, MeanRatings: 20, Days: 1000}
	r, err := GenerateRatings(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumUsers != 500 || len(r.ByUser) != 500 {
		t.Fatalf("users = %d", len(r.ByUser))
	}
	total := 0
	movieCounts := make([]int, cfg.Movies)
	for _, rs := range r.ByUser {
		if len(rs) == 0 {
			t.Fatal("every user should have at least one rating")
		}
		seen := map[int]bool{}
		for _, one := range rs {
			if one.Movie < 0 || one.Movie >= cfg.Movies {
				t.Fatalf("movie out of range: %d", one.Movie)
			}
			if one.Stars < 1 || one.Stars > 5 {
				t.Fatalf("stars out of range: %d", one.Stars)
			}
			if one.Day < 0 || one.Day >= cfg.Days {
				t.Fatalf("day out of range: %d", one.Day)
			}
			if seen[one.Movie] {
				t.Fatal("duplicate movie for one user")
			}
			seen[one.Movie] = true
			movieCounts[one.Movie]++
		}
		total += len(rs)
	}
	mean := float64(total) / 500
	if math.Abs(mean-20) > 3 {
		t.Errorf("mean ratings per user = %v, want ~20", mean)
	}
	// Popularity long tail: top movie much more rated than median movie.
	if movieCounts[0] < 4*movieCounts[cfg.Movies/2] {
		t.Errorf("expected long tail: top=%d median=%d", movieCounts[0], movieCounts[cfg.Movies/2])
	}
	if _, err := GenerateRatings(rng, RatingsConfig{}); err == nil {
		t.Error("bad config should be rejected")
	}
}

func TestBinaryDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := BinaryDataset(rng, 10000, 0.3)
	ones := int64(0)
	for _, b := range x {
		if b != 0 && b != 1 {
			t.Fatalf("non-binary value %d", b)
		}
		ones += b
	}
	frac := float64(ones) / 10000
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("fraction of ones = %v, want ~0.3", frac)
	}
}

func TestPopulationSchemaQuasiIdentifiers(t *testing.T) {
	s := PopulationSchema(DefaultPopulation())
	qi := s.QuasiIdentifiers()
	want := map[string]bool{AttrZIP: true, AttrBirthDate: true, AttrAge: true, AttrSex: true}
	if len(qi) != len(want) {
		t.Fatalf("QI count = %d, want %d", len(qi), len(want))
	}
	for _, i := range qi {
		if !want[s.Attrs[i].Name] {
			t.Errorf("unexpected QI %q", s.Attrs[i].Name)
		}
	}
	var _ *dataset.Schema = s
}

func TestSurveySchemaShape(t *testing.T) {
	cfg := SurveyConfig{Questions: 12, Skew: 0.8}
	s := SurveySchema(cfg)
	if len(s.Attrs) != 13 {
		t.Fatalf("attrs = %d, want 13", len(s.Attrs))
	}
	if s.Attrs[0].Name != "regdate" || s.Attrs[0].Max != SurveyRegDateDomain-1 {
		t.Errorf("regdate attribute wrong: %+v", s.Attrs[0])
	}
	for q := 1; q <= 12; q++ {
		if s.Attrs[q].Min != 0 || s.Attrs[q].Max != 1 {
			t.Errorf("question %d domain wrong: %+v", q, s.Attrs[q])
		}
	}
}

func TestSurveySamplerSkewAndDomain(t *testing.T) {
	cfg := SurveyConfig{Questions: 6, Skew: 0.8}
	sample := SurveySampler(cfg)
	rng := rand.New(rand.NewSource(1))
	zeros := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r := sample(rng)
		if len(r) != 7 {
			t.Fatalf("record width %d", len(r))
		}
		if r[0] < 0 || r[0] >= SurveyRegDateDomain {
			t.Fatalf("regdate out of domain: %d", r[0])
		}
		for q := 1; q <= 6; q++ {
			if r[q] != 0 && r[q] != 1 {
				t.Fatalf("answer out of domain: %d", r[q])
			}
			if r[q] == 0 {
				zeros++
			}
		}
	}
	frac := float64(zeros) / float64(n*6)
	if math.Abs(frac-0.8) > 0.01 {
		t.Errorf("zero fraction = %v, want ~0.8", frac)
	}
}

func TestSurveySamplerDeterministic(t *testing.T) {
	cfg := SurveyConfig{Questions: 4, Skew: 0.7}
	a := SurveySampler(cfg)(rand.New(rand.NewSource(5)))
	b := SurveySampler(cfg)(rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Error("same seed should give identical records")
	}
}

func TestSurveySamplerPanicsOnBadConfig(t *testing.T) {
	for i, cfg := range []SurveyConfig{{}, {Questions: 5}, {Questions: 5, Skew: 1}, {Questions: 0, Skew: 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			SurveySampler(cfg)
		}()
	}
}

func TestIndividualSamplerPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IndividualSampler(PopulationConfig{})
}
