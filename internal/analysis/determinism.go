package analysis

import (
	"go/ast"
)

// deterministicPkgs names the attack/experiment packages whose outputs
// must be bit-for-bit reproducible from (seed, index) alone: the
// reconstruction tables they emit are the repository's evidence, and PRs
// 2 and 4 guarantee byte-identical results at any worker count, locally
// or over the wire. Any ambient entropy (wall clock, process-global rand)
// silently breaks that guarantee.
var deterministicPkgs = map[string]bool{
	"recon":       true,
	"census":      true,
	"pso":         true,
	"diffix":      true,
	"kanon":       true,
	"membership":  true,
	"synth":       true,
	"dist":        true,
	"experiments": true,
}

// randTopLevel lists the math/rand top-level functions that draw from the
// process-global source. Constructors (New, NewSource, NewZipf) are fine:
// the rule is that every stream must be derived from an injected seed,
// normally via par.RNG(seed, index).
var randTopLevel = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// clockFuncs are the time package's ambient clock reads.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Determinism forbids ambient entropy — wall-clock reads, the global
// math/rand source, and crypto/rand — inside the attack/experiment
// packages, where all randomness must flow from an injected *rand.Rand.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/Since/Until, global math/rand functions, and crypto/rand " +
		"in the attack/experiment packages; randomness must come from an injected *rand.Rand " +
		"(par.RNG) so tables are byte-identical at any worker count",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Name] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue // tests may time out, retry, and measure freely
		}
		timeName, hasTime := ImportName(f.AST, "time")
		randName, hasRand := ImportName(f.AST, "math/rand")
		for _, spec := range f.AST.Imports {
			if spec.Path.Value == `"crypto/rand"` {
				pass.Reportf(spec.Pos(), "crypto/rand in deterministic package %s: derive randomness from an injected *rand.Rand (par.RNG)", pass.Pkg.Name)
			}
		}
		if !hasTime && !hasRand {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case hasTime && id.Name == timeName && clockFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "time.%s in deterministic package %s: wall-clock reads make experiment output irreproducible; inject a value or move timing to the obs layer", sel.Sel.Name, pass.Pkg.Name)
			case hasRand && id.Name == randName && randTopLevel[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "global rand.%s in deterministic package %s: draws from the process-global source; use an injected *rand.Rand (par.RNG(seed, index))", sel.Sel.Name, pass.Pkg.Name)
			}
			return true
		})
	}
	return nil
}
