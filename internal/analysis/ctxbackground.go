package analysis

import (
	"go/ast"
)

// CtxBackground flags context.Background() / context.TODO() in library
// (non-main, non-test) code. Minting a fresh root context severs the
// caller's cancellation chain: a -serve or remote run can no longer
// cancel the work it started, which is exactly the bug repolint caught in
// the experiments harness (recon_exp.go pre-fix). Library code must
// accept and thread a caller-supplied ctx; main packages own the root and
// are exempt, as are tests.
var CtxBackground = &Analyzer{
	Name: "ctxbackground",
	Doc: "flag context.Background()/context.TODO() outside main packages and tests; " +
		"library code must thread the caller's ctx so cancellation propagates",
	Run: runCtxBackground,
}

func runCtxBackground(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		ctxName, ok := ImportName(f.AST, "context")
		if !ok {
			continue
		}
		// Track the enclosing function stack so the message can say
		// whether a ctx parameter is already in scope (use it) or the
		// function should grow one.
		var stack []ast.Node
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var which string
			switch {
			case isPkgSel(call.Fun, ctxName, "Background"):
				which = "context.Background()"
			case isPkgSel(call.Fun, ctxName, "TODO"):
				which = "context.TODO()"
			default:
				return true
			}
			if param, ok := ctxParamInScope(stack, ctxName); ok {
				var fix *SuggestedFix
				if param != "" {
					fix = &SuggestedFix{
						Message: "use the in-scope " + param + " instead of a fresh root context",
						Edits:   []TextEdit{pass.Edit(call.Pos(), call.End(), param)},
					}
				}
				pass.ReportfFix(call.Pos(), fix, "%s in package %s: a ctx parameter is in scope — thread it instead of severing cancellation", which, pass.Pkg.Name)
			} else {
				pass.Reportf(call.Pos(), "%s in package %s: the enclosing function should accept a context.Context from its caller", which, pass.Pkg.Name)
			}
			return true
		})
	}
	return nil
}

// ctxParamInScope reports whether an enclosing function declaration or
// literal on the stack takes a context.Context parameter, returning the
// innermost such parameter's name ("" when unnamed or blank, which
// still diagnoses but cannot auto-fix).
func ctxParamInScope(stack []ast.Node, ctxName string) (string, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch v := stack[i].(type) {
		case *ast.FuncDecl:
			ft = v.Type
		case *ast.FuncLit:
			ft = v.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if !isPkgSel(field.Type, ctxName, "Context") {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name, true
				}
			}
			return "", true
		}
	}
	return "", false
}
