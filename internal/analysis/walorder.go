package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WALOrder enforces write-ahead in the strict sense on the privacy-loss
// ledger: in any function that both appends to the WAL and applies an
// entry to the in-memory ledger state (l.entries / l.totals), every
// path to the apply must have completed a successful WAL append first.
// Reversing the order (or applying after a failed append) creates the
// one state the durability design forbids — budget moved in memory that
// a restart cannot replay, i.e. spent epsilon that silently un-spends.
//
// Per-path states over the CFG:
//
//   - unlogged: no WAL append on this path yet — an apply here is the
//     ordering violation;
//   - pending: an append whose error result has not been branched on —
//     an apply here may follow a failed disk write;
//   - failed: the append's error edge (`err != nil` true) — an apply
//     here definitely follows a failed write;
//   - logged: the append's success edge — applies are sanctioned;
//   - exempt: the wal is nil on this path (`l.wal != nil` false edge) —
//     an in-memory-only ledger has nothing to order against.
//
// An append whose error is discarded outright (ExprStmt or assigned to
// _) is reported at the call. Functions touching memory without any
// append in sight (ledger.seed replaying already-durable entries) are
// out of scope by construction.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc: "in-memory ledger applies (entries/totals) must be dominated by a successful " +
		"WAL append on every path — write-ahead, never write-behind",
	NeedsTypes: true,
	Wants:      wantsWALCode,
	Run:        runWALOrder,
}

func wantsWALCode(pkg *Package) bool {
	return pkg.Path == "singlingout/internal/query/remote" ||
		strings.HasPrefix(pkg.Path, "walorder")
}

// Path-state bits for the walorder analysis.
const (
	woUnlogged = 1 << iota
	woPending
	woFailed
	woLogged
	woExempt
)

func runWALOrder(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fb := range FuncBodies(f.AST, false) {
			checkWALOrder(pass, fb)
		}
	}
	return nil
}

func checkWALOrder(pass *Pass, fb FuncBody) {
	hasAppend, hasApply := false, false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWALAppend(pass, n) {
				hasAppend = true
			}
		case *ast.AssignStmt:
			if applyTarget(n) != "" {
				hasApply = true
			}
		}
		return true
	})
	if !hasAppend || !hasApply {
		return // nothing to order: memory-only (seed) or log-only functions
	}

	errObjs := collectAppendErrs(pass, fb.Body)
	g := NewCFG(fb.Body)
	in := make([]uint8, len(g.Blocks))
	in[g.Entry.Index] = woUnlogged
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := woTransferBlock(pass, blk, in[blk.Index], nil)
		for _, e := range blk.Succs {
			next := woRefine(pass, out, e, errObjs)
			if in[e.To.Index]|next != in[e.To.Index] {
				in[e.To.Index] |= next
				work = append(work, e.To)
			}
		}
	}
	for _, blk := range g.Blocks {
		if in[blk.Index] == 0 {
			continue
		}
		woTransferBlock(pass, blk, in[blk.Index], func(n ast.Node, state uint8, target string) {
			switch {
			case state&woUnlogged != 0:
				pass.Reportf(n.Pos(),
					"in-memory ledger apply to %s in %s is not preceded by a WAL append on every path: write-ahead means log first, apply second",
					target, fb.Name)
			case state&woFailed != 0:
				pass.Reportf(n.Pos(),
					"in-memory ledger apply to %s in %s is reachable from the WAL append's error branch: a failed disk write must leave the ledger unmoved",
					target, fb.Name)
			case state&woPending != 0:
				pass.Reportf(n.Pos(),
					"in-memory ledger apply to %s in %s before the WAL append's error is checked: the write may have failed",
					target, fb.Name)
			}
		})
	}
}

// woTransferBlock folds the block's nodes over the path-state set;
// report, when non-nil, receives each apply with the state in force.
func woTransferBlock(pass *Pass, blk *Block, state uint8, report func(ast.Node, uint8, string)) uint8 {
	for _, n := range blk.Nodes {
		// An apply is checked against the state BEFORE this node's calls
		// only if it precedes them textually; within one statement the
		// RHS (append call) evaluates before the assignment completes, so
		// process calls first for assignments whose RHS contains the
		// append, then the apply.
		appendErrDiscarded := false
		InspectHead(n, func(c ast.Node) bool {
			if _, ok := c.(*ast.FuncLit); ok {
				return false
			}
			call, ok := c.(*ast.CallExpr)
			if !ok || !isWALAppend(pass, call) {
				return true
			}
			if discardsError(n, call) {
				appendErrDiscarded = true
			}
			state = woPending
			return true
		})
		if appendErrDiscarded {
			if report != nil {
				// Find the call again for a precise position.
				ast.Inspect(n, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok && isWALAppend(pass, call) {
						pass.Reportf(call.Pos(),
							"WAL append error discarded: a failed write-ahead append must fail the budget movement, not vanish")
						return false
					}
					return true
				})
			}
			state = woLogged // avoid cascading reports at later applies
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if target := applyTarget(as); target != "" && report != nil {
				report(as, state, target)
			}
		}
	}
	return state
}

// woRefine narrows the state along condition edges: the append error
// check splits pending into logged/failed, and a wal nil check exempts
// the nil arm.
func woRefine(pass *Pass, state uint8, e Edge, errObjs map[types.Object]bool) uint8 {
	if e.Cond == nil {
		return state
	}
	cond, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.EQL && cond.Op != token.NEQ) {
		return state
	}
	x, isNil := nilCompare(cond)
	if !isNil {
		return state
	}
	// `err != nil` on a recorded append error: true edge → failed,
	// false edge → logged.
	if id, ok := ast.Unparen(x).(*ast.Ident); ok && state&woPending != 0 {
		if obj := objOfIdent(pass, id); obj != nil && errObjs[obj] {
			isNilEdge := (cond.Op == token.EQL) != e.Neg
			if isNilEdge {
				return state&^woPending | woLogged
			}
			return state&^woPending | woFailed
		}
	}
	// `l.wal != nil`: the nil edge runs memory-only, exempt from ordering.
	if sel, ok := ast.Unparen(x).(*ast.SelectorExpr); ok && sel.Sel.Name == "wal" {
		isNilEdge := (cond.Op == token.EQL) != e.Neg
		if isNilEdge && state&woUnlogged != 0 {
			return state&^woUnlogged | woExempt
		}
	}
	return state
}

// nilCompare returns the non-nil operand of a comparison against nil.
func nilCompare(cond *ast.BinaryExpr) (ast.Expr, bool) {
	if id, ok := ast.Unparen(cond.Y).(*ast.Ident); ok && id.Name == "nil" {
		return cond.X, true
	}
	if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && id.Name == "nil" {
		return cond.Y, true
	}
	return nil, false
}

// isWALAppend recognizes the WAL append call: method append on a
// wal-typed receiver (typed), or a selector ending `.wal.append` /
// receiver named wal (syntactic fallback for fixtures).
func isWALAppend(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "append" {
		return false
	}
	if fn := pass.CalleeFunc(call); fn != nil {
		return RecvNamed(fn) == "wal"
	}
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		return inner.Sel.Name == "wal"
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name == "wal"
	}
	return false
}

// applyTarget reports whether an assignment mutates the in-memory
// ledger state, returning the field name ("entries" or "totals").
func applyTarget(as *ast.AssignStmt) string {
	for _, lhs := range as.Lhs {
		x := lhs
		if ix, ok := x.(*ast.IndexExpr); ok {
			x = ix.X
		}
		if sel, ok := x.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "entries" || sel.Sel.Name == "totals" {
				return sel.Sel.Name
			}
		}
	}
	return ""
}

// collectAppendErrs records the error-result objects of WAL append
// assignments (`if err := l.wal.append(e); ...`, `err = w.append(e)`).
func collectAppendErrs(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isWALAppend(pass, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := objOfIdent(pass, id); obj != nil {
				objs[obj] = true
			}
		}
		return true
	})
	return objs
}

// discardsError reports whether the append call's error result is
// thrown away where it appears: a bare ExprStmt, or assignment to _.
func discardsError(context ast.Node, call *ast.CallExpr) bool {
	switch n := context.(type) {
	case *ast.ExprStmt:
		return n.X == call
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && n.Rhs[0] == call && len(n.Lhs) == 1 {
			id, ok := n.Lhs[0].(*ast.Ident)
			return ok && id.Name == "_"
		}
	}
	return false
}
