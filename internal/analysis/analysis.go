// Package analysis is the repository's invariant-checking suite: a
// minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus the repo-specific analyzers that cmd/repolint compiles into a
// multichecker. The module deliberately has no third-party dependencies,
// so the framework is built on the go/ast, go/parser, go/token and
// go/types standard packages only. Two analyzer styles coexist:
//
//   - syntactic walkers (import-resolved selector matching), enough for
//     the determinism/sentinel/ctx/naming/goroutine invariants; and
//   - dataflow analyzers, which request go/types information
//     (Analyzer.NeedsTypes), build an intra-procedural CFG per function
//     (cfg.go) and run a forward taint engine (taint.go) or a custom
//     fixpoint over it — the privacy invariants (raw microdata never
//     reaches the wire, budget spends always settle, WAL-append-before-
//     apply, shard lock discipline) are path properties that no AST walk
//     can express.
//
// Analyzers may attach a machine-applicable SuggestedFix to a
// Diagnostic; cmd/repolint -fix applies them (see fix.go).
//
// The enforced invariants — why each exists and how to suppress a false
// positive — are documented in docs/INVARIANTS.md. Suppression uses a
// staticcheck-style directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// NeedsTypes requests go/types information: before Run, the package
	// is type-checked (best effort — see typecheck.go) and Pass.TypesInfo
	// is populated. Syntactic analyzers leave this false and pay nothing.
	NeedsTypes bool

	// Wants, when non-nil, restricts the analyzer to packages it returns
	// true for. It is consulted before type-checking, so a scoped
	// dataflow analyzer only triggers type-checking where it runs.
	Wants func(*Package) bool
}

// SourceFile is one parsed file of a package under analysis.
type SourceFile struct {
	Path string // filesystem path, for diagnostics
	Test bool   // *_test.go, or member of an external _test package
	AST  *ast.File
	Src  []byte // raw source, for SuggestedFix edits
	// ignores maps a line number to the analyzer names a lint:ignore
	// directive on that line suppresses. A directive covers its own line
	// and the line immediately below it, so it works both trailing the
	// offending statement and on its own line above it.
	ignores map[int][]string
	// badDirectives records malformed lint:ignore comments (missing
	// analyzer list or reason); the driver reports them as findings.
	badDirectives []Diagnostic
}

// Package is one package (one directory) under analysis.
type Package struct {
	Name  string // package name, e.g. "experiments"
	Path  string // slash-separated import path, e.g. "singlingout/internal/experiments"
	Dir   string // directory the files were loaded from
	Files []*SourceFile
	Fset  *token.FileSet

	// Resolver maps an import path to the directory holding its source,
	// for type-checking module-local (or fixture-local) dependencies.
	// Load installs a module resolver; analysistest installs a
	// testdata/src resolver. nil = only stdlib imports resolve.
	Resolver func(importPath string) (dir string, ok bool)

	// Types and Info are populated on demand by EnsureTypes (typecheck.go)
	// for analyzers that declare NeedsTypes. Both may be partial: type
	// checking is tolerant, and analyzers must handle missing entries.
	Types   *types.Package
	Info    *types.Info
	checked bool
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool          // a lint:ignore directive covers this line
	Fix        *SuggestedFix // optional machine-applicable fix (repolint -fix)
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	// TypesInfo is the package's (possibly partial) go/types resolution;
	// nil unless the analyzer declared NeedsTypes. TypesPkg is the
	// checked package object.
	TypesInfo *types.Info
	TypesPkg  *types.Package
	diags     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a finding carrying a machine-applicable fix.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Edit builds a TextEdit replacing [pos, end) with newText, resolved to
// the byte offsets repolint -fix applies.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	start := p.Fset.Position(pos)
	stop := p.Fset.Position(end)
	return TextEdit{File: start.Filename, Start: start.Offset, End: stop.Offset, NewText: newText}
}

// SourceText returns the source bytes of [pos, end), e.g. an operand's
// exact spelling for use in a fix replacement. Empty when the range does
// not fall inside a loaded file.
func (p *Pass) SourceText(pos, end token.Pos) string {
	start := p.Fset.Position(pos)
	stop := p.Fset.Position(end)
	for _, f := range p.Pkg.Files {
		if f.Path == start.Filename && stop.Offset <= len(f.Src) && start.Offset <= stop.Offset {
			return string(f.Src[start.Offset:stop.Offset])
		}
	}
	return ""
}

// ImportName resolves the local name under which file f imports
// importPath: the explicit name for renamed imports, the path's base
// otherwise, and ok=false when the path is not imported (or is imported
// only for side effects).
func ImportName(f *ast.File, importPath string) (name string, ok bool) {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if spec.Name != nil {
			if spec.Name.Name == "_" || spec.Name.Name == "." {
				return "", false
			}
			return spec.Name.Name, true
		}
		return path.Base(p), true
	}
	return "", false
}

// isPkgSel reports whether e is the selector pkgName.sel where pkgName is
// a bare identifier (the usual package-qualified call shape).
func isPkgSel(e ast.Expr, pkgName, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	return ok && id.Name == pkgName
}

// ignoreDirective parses an "//lint:ignore a,b reason" comment. Like
// staticcheck, the directive must start the comment with no space after
// the slashes, so prose mentioning lint:ignore is not a directive.
// Returns ok=false for non-directives; a directive with a missing
// analyzer list or reason yields malformed=true.
func ignoreDirective(text string) (analyzers []string, ok, malformed bool) {
	rest, ok := strings.CutPrefix(text, "//lint:ignore")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, true, true // need both an analyzer list and a reason
	}
	for _, a := range strings.Split(fields[0], ",") {
		if a = strings.TrimSpace(a); a != "" {
			analyzers = append(analyzers, a)
		}
	}
	return analyzers, true, len(analyzers) == 0
}

// collectIgnores scans a parsed file's comments for lint:ignore
// directives, populating f.ignores and f.badDirectives.
func (f *SourceFile) collectIgnores(fset *token.FileSet) {
	f.ignores = map[int][]string{}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			names, ok, malformed := ignoreDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if malformed {
				f.badDirectives = append(f.badDirectives, Diagnostic{
					Analyzer: "repolint",
					Pos:      pos,
					Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
				})
				continue
			}
			f.ignores[pos.Line] = append(f.ignores[pos.Line], names...)
		}
	}
}

// suppressed reports whether a diagnostic from analyzer at line is
// covered by a directive on that line or the line above.
func (f *SourceFile) suppressed(analyzer string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, name := range f.ignores[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// Run applies one analyzer to one package and returns its diagnostics
// with suppression already resolved (suppressed findings are returned,
// flagged, so callers can count them). Analyzers scoped via Wants are
// skipped silently outside their scope; NeedsTypes analyzers get the
// package type-checked first (best effort).
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.Wants != nil && !a.Wants(pkg) {
		return nil, nil
	}
	if a.NeedsTypes {
		pkg.EnsureTypes()
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, TypesInfo: pkg.Info, TypesPkg: pkg.Types, diags: &diags}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
	}
	byFile := map[string]*SourceFile{}
	for _, f := range pkg.Files {
		byFile[f.Path] = f
	}
	for i := range diags {
		if f := byFile[diags[i].Pos.Filename]; f != nil && f.suppressed(a.Name, diags[i].Pos.Line) {
			diags[i].Suppressed = true
		}
	}
	return diags, nil
}

// RunAll applies every analyzer to every package, appends malformed
// lint:ignore directives as findings, and returns the result sorted by
// position.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
		for _, f := range pkg.Files {
			all = append(all, f.badDirectives...)
		}
	}
	SortDiagnostics(all)
	return all, nil
}

// SortDiagnostics orders findings by (file, line, column, analyzer) —
// the full tie-break makes repolint output byte-deterministic even when
// two analyzers fire on the same position.
func SortDiagnostics(all []Diagnostic) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		if all[i].Pos.Line != all[j].Pos.Line {
			return all[i].Pos.Line < all[j].Pos.Line
		}
		if all[i].Pos.Column != all[j].Pos.Column {
			return all[i].Pos.Column < all[j].Pos.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
}

// All returns the full repolint suite in stable order: the five
// syntactic invariants, then the four type-aware dataflow invariants.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		SentinelCmp,
		CtxBackground,
		ObsNames,
		BoundedGo,
		RawDataFlow,
		BudgetFlow,
		LockDiscipline,
		WALOrder,
	}
}
