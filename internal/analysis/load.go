package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleRoot walks upward from dir to the nearest directory containing a
// go.mod and returns it along with the declared module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// Load resolves go-style package patterns ("./...", "./internal/obs/...",
// "./cmd/repolint") against the module rooted at root and parses every
// matching package. Like the go tool, it skips directories named testdata
// or vendor and hidden directories. Test files are loaded and marked; it
// is up to each analyzer whether they are in scope.
func Load(root, modPath string, patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(root, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/..."))
			if err := walkGoDirs(base, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(root, pat)] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := LoadDir(dir, importPathFor(root, modPath, dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkg.Resolver = ModuleResolver(root, modPath)
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ModuleResolver maps import paths under modPath to their directories
// under root, for type-checking module-local dependencies from source.
func ModuleResolver(root, modPath string) func(string) (string, bool) {
	return func(importPath string) (string, bool) {
		if importPath == modPath {
			return root, true
		}
		rel, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return "", false
		}
		return filepath.Join(root, filepath.FromSlash(rel)), true
	}
}

// importPathFor maps a directory under root to its import path.
func importPathFor(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// walkGoDirs records every directory under base containing at least one
// .go file, skipping testdata, vendor, and hidden directories.
func walkGoDirs(base string, out map[string]bool) error {
	return filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			out[filepath.Dir(p)] = true
		}
		return nil
	})
}

// LoadDir parses every .go file directly inside dir into one Package with
// the given import path. A directory with no .go files yields (nil, nil).
// In-package and external (_test-suffixed) test files are both loaded
// into the same Package, marked Test; the package name is taken from the
// non-test files when any exist.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Path: filepath.ToSlash(importPath), Dir: dir, Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fp := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fp)
		if err != nil {
			return nil, fmt.Errorf("analysis: read %s: %w", fp, err)
		}
		f, err := parser.ParseFile(fset, fp, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", fp, err)
		}
		sf := &SourceFile{
			Path: fp,
			Test: strings.HasSuffix(e.Name(), "_test.go") || strings.HasSuffix(f.Name.Name, "_test"),
			AST:  f,
			Src:  src,
		}
		sf.collectIgnores(fset)
		pkg.Files = append(pkg.Files, sf)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.Name = pkg.Files[0].AST.Name.Name
	for _, sf := range pkg.Files {
		if !sf.Test {
			pkg.Name = sf.AST.Name.Name
			break
		}
	}
	return pkg, nil
}
