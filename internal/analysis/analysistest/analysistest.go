// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want annotations,
// mirroring golang.org/x/tools/go/analysis/analysistest without the
// dependency.
//
// A fixture line expecting a diagnostic carries a trailing comment:
//
//	rand.Intn(6) // want `global rand\.Intn`
//
// The backquoted (or double-quoted) text is a regexp that must match the
// message of a diagnostic reported on that line. Lines without a want
// comment must produce no diagnostics, and every want must be matched —
// both directions fail the test. Suppressed diagnostics (lint:ignore)
// count as absent, so fixtures can also assert the escape hatch works.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"singlingout/internal/analysis"
)

// want is one expectation: a regexp on a specific file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the annotation payloads from a `// want ...` comment:
// one or more backquoted or double-quoted regexps.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package dir (relative to testdata/src, also
// serving as its import path) and checks analyzer diagnostics against the
// fixture's want annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
		pkg, err := analysis.LoadDir(dir, pkgPath)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		if pkg == nil {
			t.Fatalf("%s: no Go files in %s", pkgPath, dir)
		}
		// Type-aware analyzers resolve fixture imports (including stub
		// packages standing in for module internals) against testdata/src.
		pkg.Resolver = srcResolver(filepath.Join("testdata", "src"))
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		checkDiagnostics(t, pkgPath, diags, wants)
	}
}

// srcResolver maps import paths onto fixture directories under
// testdata/src, mirroring how analysis.Load resolves module-local
// imports. Paths with no fixture directory fall through to the stdlib
// importer.
func srcResolver(srcRoot string) func(string) (string, bool) {
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		abs = srcRoot
	}
	return func(importPath string) (string, bool) {
		dir := filepath.Join(abs, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// collectWants scans every fixture file's comments for want annotations.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// checkDiagnostics matches diagnostics to wants one-to-one by (file,
// line, regexp) and reports both unexpected diagnostics and unmatched
// wants.
func checkDiagnostics(t *testing.T, pkgPath string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic %s", pkgPath, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgPath, w.file, w.line, w.re)
		}
	}
}
