package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"singlingout/internal/analysis"
)

// runOnDir loads a throwaway package directory and runs one analyzer.
func runOnDir(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, "fixpkg")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

// applyTo applies all fixes and rewrites the files, returning how many
// files changed.
func applyTo(t *testing.T, diags []analysis.Diagnostic) int {
	t.Helper()
	fixed, _, err := analysis.ApplyFixes(diags)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	for path, content := range fixed {
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	return len(fixed)
}

// TestSentinelCmpFix checks the == → errors.Is rewrite end to end: the
// comparison is replaced, the errors import appears, the result is
// gofmt-clean, and a second -fix pass is a no-op (idempotence).
func TestSentinelCmpFix(t *testing.T) {
	dir := t.TempDir()
	src := `package fixpkg

import (
	"fmt"
	"io"
)

var ErrBoom = fmt.Errorf("boom")

func check(err error) string {
	if err == ErrBoom {
		return "boom"
	}
	if err != io.EOF {
		return "not eof"
	}
	return ""
}
`
	path := filepath.Join(dir, "a.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runOnDir(t, analysis.SentinelCmp, dir)
	if len(diags) != 2 {
		t.Fatalf("want 2 findings before fixing, got %d: %v", len(diags), diags)
	}
	if n := applyTo(t, diags); n != 1 {
		t.Fatalf("want 1 file rewritten, got %d", n)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(got)
	for _, want := range []string{
		`"errors"`,
		"errors.Is(err, ErrBoom)",
		"!errors.Is(err, io.EOF)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fixed file missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "err == ErrBoom") || strings.Contains(text, "err != io.EOF") {
		t.Errorf("identity comparison survived the fix:\n%s", text)
	}

	// Idempotence: the fixed tree has no findings left, so a second
	// apply changes nothing.
	again := runOnDir(t, analysis.SentinelCmp, dir)
	if len(again) != 0 {
		t.Fatalf("fixed tree still has %d finding(s): %v", len(again), again)
	}
	if n := applyTo(t, again); n != 0 {
		t.Fatalf("second fix pass rewrote %d file(s); want 0", n)
	}
}

// TestCtxBackgroundFix checks the in-scope-ctx rewrite: the fresh root
// context is replaced by the parameter already in scope.
func TestCtxBackgroundFix(t *testing.T) {
	dir := t.TempDir()
	src := `package fixpkg

import "context"

func work(ctx context.Context) error {
	sub, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = sub
	return nil
}
`
	path := filepath.Join(dir, "a.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runOnDir(t, analysis.CtxBackground, dir)
	if len(diags) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Fix == nil {
		t.Fatal("finding carries no fix despite an in-scope ctx parameter")
	}
	applyTo(t, diags)

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "context.WithCancel(ctx)") {
		t.Errorf("fix did not thread the in-scope ctx:\n%s", got)
	}
	if again := runOnDir(t, analysis.CtxBackground, dir); len(again) != 0 {
		t.Fatalf("fixed tree still has %d finding(s): %v", len(again), again)
	}
}

// TestApplyFixesConflict checks that overlapping fixes are applied
// first-come and the conflicting one skipped, never both.
func TestApplyFixesConflict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.go")
	src := "package fixpkg\n\nvar x = 1\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Two fixes rewriting the same bytes to different text.
	start := strings.Index(src, "1")
	diags := []analysis.Diagnostic{
		{Fix: &analysis.SuggestedFix{Edits: []analysis.TextEdit{{File: path, Start: start, End: start + 1, NewText: "2"}}}},
		{Fix: &analysis.SuggestedFix{Edits: []analysis.TextEdit{{File: path, Start: start, End: start + 1, NewText: "3"}}}},
	}
	fixed, applied, err := analysis.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("want 1 fix applied (the second conflicts), got %d", applied)
	}
	if !strings.Contains(string(fixed[path]), "var x = 2") {
		t.Errorf("first fix not applied:\n%s", fixed[path])
	}
}
