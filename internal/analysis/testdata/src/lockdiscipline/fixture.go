// Fixture for the lockdiscipline analyzer: no second lock, network
// I/O, or blocking channel op while a shard mutex is held. The held-set
// is a dataflow fact — `unlockedFirst` below is syntactically identical
// to `sendHeld` except for the position of the Unlock, which only the
// CFG ordering sees.
package lockdiscipline

import (
	"net"
	"sync"
	"time"
)

type shard struct {
	mu sync.Mutex
}

type wal struct {
	mu sync.Mutex
}

func (w *wal) append(b []byte) error { return nil }

// doubleLock: acquiring a second shard's mutex nests locks.
func doubleLock(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquiring b\.mu while a\.mu is held`
	b.mu.Unlock()
}

// sendHeld: a channel send can block indefinitely inside the critical
// section.
func sendHeld(s *shard, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

// unlockedFirst: the same send after the Unlock is fine.
func unlockedFirst(s *shard, ch chan int) {
	s.mu.Lock()
	s.mu.Unlock()
	ch <- 1 // ok: lock released before the send
}

// sleepHeld: a known blocker under the lock.
func sleepHeld(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
}

// dialHeld: network I/O under the lock turns the shard into a convoy.
func dialHeld(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	net.LookupHost("example.com") // want `net\.LookupHost while s\.mu is held`
}

// walAppend: the one allowlisted blocking call — write-ahead durability
// requires the disk append inside the ledger critical section.
func walAppend(s *shard, w *wal, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.append(b) // ok: allowlisted WAL file append
}

// nonBlockingSend: a select with default never blocks; dropping for
// slow subscribers under the lock is the sanctioned journal pattern.
func nonBlockingSend(s *shard, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1: // ok: default clause makes this non-blocking
	default:
	}
}

// blockingSelect: without a default the select blocks like a bare send.
func blockingSelect(s *shard, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1: // want `blocking select while s\.mu is held`
	}
}

// acknowledged: the escape hatch documents itself.
func acknowledged(s *shard, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockdiscipline fixture-sanctioned blocking send
	ch <- 1
}
