// Fixture for the ctxbackground analyzer: library code must thread the
// caller's context instead of minting a root.
package libx

import "context"

// BadInScope has a ctx parameter but severs it anyway — the exact shape
// of the pre-fix experiments harness bug.
func BadInScope(ctx context.Context) error {
	return work(context.Background()) // want `context\.Background\(\) in package libx: a ctx parameter is in scope`
}

// BadNoParam has no ctx parameter; the fix is to grow one.
func BadNoParam() error {
	return work(context.TODO()) // want `context\.TODO\(\) in package libx: the enclosing function should accept`
}

// BadInClosure: the enclosing literal's parent function has ctx in scope.
func BadInClosure(ctx context.Context) func() error {
	return func() error {
		return work(context.Background()) // want `a ctx parameter is in scope`
	}
}

// Good threads the caller's context.
func Good(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
