// Counterpart fixture: package webui is not in the deterministic set, so
// clock reads and global rand are out of the analyzer's scope here.
package webui

import (
	"math/rand"
	"time"
)

// Render may read the clock freely; only the attack/experiment packages
// carry the byte-identical-output guarantee.
func Render() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}
