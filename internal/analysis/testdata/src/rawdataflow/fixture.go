// Fixture for the rawdataflow analyzer: raw-microdata values must not
// reach wire/JSON/journal/log sinks. Every violating case here is
// dataflow-dependent — a syntactic walker cannot tell `json.Marshal(r)`
// leaking a row from `json.Marshal(n)` releasing a count; only tracking
// what r holds can.
package rawdataflow

import (
	"encoding/json"
	"fmt"

	"singlingout/internal/census"
	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
	"singlingout/internal/query/remote"
)

func direct(ds dataset.Dataset) {
	json.Marshal(ds.Rows) // want `raw microdata reaches json\.Marshal`
}

// flow: the leak is two assignments away from the source — this is the
// case the old AST-only framework could not express.
func flow(ds dataset.Dataset) {
	r := ds.Rows[0]
	row := r
	fmt.Println(row) // want `raw microdata reaches fmt\.Println`
}

func tuple(t census.Tuple) {
	json.Marshal(t) // want `raw microdata reaches json\.Marshal`
}

// constructor: remote.Dataset returns a raw bit vector ([]int64 is too
// anonymous to match by type, so the call itself is the source).
func regenerated() {
	bits := remote.Dataset(7, 128, 0.5)
	json.Marshal(bits) // want `raw microdata reaches json\.Marshal`
}

// scalars: aggregate statistics derived from raw data are exactly what
// the system releases — counts and rates never carry taint.
func aggregate(ds dataset.Dataset) {
	n := len(ds.Rows)
	sum := 0
	for _, r := range ds.Rows {
		sum += int(r[0])
	}
	fmt.Println(n, sum) // ok: scalar carriers
}

// killed: a strong update to a clean value ends the taint — only the
// CFG-ordered dataflow can tell this apart from `regenerated` above.
func killed() {
	bits := remote.Dataset(7, 64, 0.5)
	bits = nil
	json.Marshal(bits) // ok: bits was overwritten before the sink
}

// sanitized: the anonymization mechanism's output is a sanctioned
// release even though it is row-shaped.
func sanitized(ds dataset.Dataset) {
	out := kanon.Suppress(ds.Rows, 2)
	json.Marshal(out) // ok: kanon is a sanitizer
}

// suppressed: deliberate raw egress documents itself.
func exported(ds dataset.Dataset) {
	//lint:ignore rawdataflow fixture-sanctioned deliberate export
	json.Marshal(ds.Rows)
}

// errs: error results of calls over raw data are diagnostics, not rows.
func errs(ds dataset.Dataset) error {
	rows, err := process(ds.Rows)
	_ = rows
	fmt.Println(err) // ok: error values do not carry microdata
	return err
}

func process(rows []dataset.Record) ([]dataset.Record, error) { return rows, nil }
