// Fixture for the walorder analyzer: in-memory ledger applies must be
// dominated by a successful WAL append. Each violation is a path
// property — `canonical` below contains the same statements as the
// violations, ordered correctly.
package walorder

type entry struct{ Seq int64 }

type wal struct{}

func (w *wal) append(e entry) error { return nil }

type ledger struct {
	wal     *wal
	entries []entry
	totals  map[string]int
}

// applyFirst: write-behind — the memory moves before the log.
func (l *ledger) applyFirst(e entry) error {
	l.entries = append(l.entries, e) // want `not preceded by a WAL append`
	if l.wal != nil {
		if err := l.wal.append(e); err != nil {
			return err
		}
	}
	return nil
}

// applyOnFailure: the error branch applies anyway — a failed disk write
// must leave the ledger unmoved.
func (l *ledger) applyOnFailure(e entry) error {
	if err := l.wal.append(e); err != nil {
		l.totals["a"] = 1 // want `reachable from the WAL append's error branch`
		return err
	}
	l.entries = append(l.entries, e)
	return nil
}

// unchecked: applying before branching on the append's error means the
// write may have failed.
func (l *ledger) unchecked(e entry) error {
	err := l.wal.append(e)
	l.entries = append(l.entries, e) // want `before the WAL append's error is checked`
	return err
}

// discarded: an ignored append error cannot fail the movement.
func (l *ledger) discarded(e entry) {
	l.wal.append(e) // want `WAL append error discarded`
	l.entries = append(l.entries, e)
}

// canonical: the sanctioned shape — nil-guarded append, error checked,
// memory applied only on the success path (or with no WAL attached).
func (l *ledger) canonical(e entry) error {
	if l.wal != nil {
		if err := l.wal.append(e); err != nil {
			return err
		}
	}
	l.entries = append(l.entries, e)
	l.totals["a"]++
	return nil
}

// acknowledged: the escape hatch documents itself.
func (l *ledger) acknowledged(e entry) error {
	//lint:ignore walorder fixture-sanctioned write-behind
	l.entries = append(l.entries, e)
	if err := l.wal.append(e); err != nil {
		return err
	}
	return nil
}
