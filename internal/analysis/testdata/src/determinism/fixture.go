// Fixture for the determinism analyzer: package recon is in the
// deterministic set, so ambient entropy is flagged while injected
// randomness is not.
package recon

import (
	crand "crypto/rand" // want `crypto/rand in deterministic package recon`
	"math/rand"
	"time"
)

// Bad draws from every forbidden ambient source.
func Bad() (int, float64) {
	start := time.Now()          // want `time\.Now in deterministic package recon`
	elapsed := time.Since(start) // want `time\.Since in deterministic package recon`
	_ = elapsed
	v := rand.Intn(6)                  // want `global rand\.Intn in deterministic package recon`
	f := rand.Float64()                // want `global rand\.Float64 in deterministic package recon`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle in deterministic package recon`
	var buf [8]byte
	_, _ = crand.Read(buf[:])
	return v, f
}

// Good derives every stream from an injected seed: the constructors are
// allowed, only the process-global top-level functions are not.
func Good(seed int64, index int) float64 {
	rng := rand.New(rand.NewSource(seed ^ int64(index)))
	return rng.Float64()
}

// Suppressed shows the escape hatch: a labelled wall-time measurement.
func Suppressed() time.Time {
	//lint:ignore determinism labelled timing output, not part of the reconstruction result
	return time.Now()
}
