// Fixture for the budgetflow analyzer: every path performing a ledger
// spend must settle it (refund, deny, or commit) before returning an
// error. The violations are reachability properties of the CFG — no
// syntactic pattern distinguishes `leak` from `settled` below.
package budgetflow

type entry struct{ Cumulative int }

type ledger struct{}

func (l *ledger) spend(analyst string, cost, budget int) (entry, bool, error) {
	return entry{}, true, nil
}

func (l *ledger) refund(analyst string, cost int) (entry, error) { return entry{}, nil }

func fail(msg string)     {}
func backendBroken() bool { return false }

// leak: the backend-failure path returns an error with the spend still
// outstanding — the analyst is charged for answers never released.
func leak(l *ledger) {
	_, ok, err := l.spend("a", 1, 10)
	if err != nil {
		fail("wal refused") // ok: the spend never took effect
		return
	}
	if !ok {
		fail("denied") // ok: the ledger recorded a deny, nothing moved
		return
	}
	if backendBroken() {
		fail("backend") // want `unsettled ledger spend`
		return
	}
}

// settled: the same shape with the refund in place is the sanctioned
// all-or-nothing pattern.
func settled(l *ledger) {
	_, ok, err := l.spend("a", 1, 10)
	if err != nil {
		fail("wal refused")
		return
	}
	if !ok {
		fail("denied")
		return
	}
	if backendBroken() {
		l.refund("a", 1)
		fail("backend") // ok: refunded first
		return
	}
}

// guarded: the handleQuery shape — spend and refund both behind
// correlated `fresh > 0` guards. The zero-cost path reaches the error
// exit clean, so not EVERY path is spent and the exit is sanctioned.
func guarded(l *ledger, fresh int) {
	if fresh > 0 {
		_, ok, err := l.spend("a", fresh, 10)
		if err != nil {
			fail("wal refused")
			return
		}
		if !ok {
			fail("denied")
			return
		}
	}
	if backendBroken() {
		if fresh > 0 {
			l.refund("a", fresh)
		}
		fail("backend") // ok: refunded (or never spent)
		return
	}
}

// suppressed: the escape hatch documents itself.
func acknowledged(l *ledger) {
	_, _, _ = l.spend("a", 1, 10)
	if backendBroken() {
		//lint:ignore budgetflow fixture-sanctioned leak
		fail("backend")
		return
	}
}
