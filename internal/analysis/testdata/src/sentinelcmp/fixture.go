// Fixture for the sentinelcmp analyzer: identity comparison against
// exported sentinels is flagged module-wide; errors.Is is the compliant
// form.
package sentinel

import (
	"errors"
	"io"
)

// ErrBudgetExhausted mirrors the query package's sentinel.
var ErrBudgetExhausted = errors.New("budget exhausted")

// Bad compares sentinels by identity, which stops matching the moment a
// caller wraps the error with %w.
func Bad(err error) int {
	if err == io.EOF { // want `io\.EOF compared with ==`
		return 0
	}
	if err != ErrBudgetExhausted { // want `ErrBudgetExhausted compared with !=`
		return 1
	}
	return 2
}

// Good survives wrapping.
func Good(err error) int {
	if errors.Is(err, io.EOF) {
		return 0
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		return 1
	}
	// Nil checks are not sentinel comparisons.
	if err == nil {
		return 2
	}
	return 3
}
