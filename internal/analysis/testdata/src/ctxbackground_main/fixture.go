// Counterpart fixture: main packages own the process root context, so
// minting one is exactly right there.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
