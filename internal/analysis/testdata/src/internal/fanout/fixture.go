// Fixture for the boundedgo analyzer: internal packages outside
// internal/par must not spawn raw goroutines — fan-out goes through the
// deterministic pool or the gate.
package fanout

// Bad spawns unbounded goroutines; results depend on scheduling and the
// worker-count invariance guarantee is gone.
func Bad(items []int) {
	for range items {
		go func() {}() // want `bare go statement in internal/fanout`
	}
}

// Suppressed shows the escape hatch for infrastructure goroutines.
func Suppressed(serve func() error) {
	//lint:ignore boundedgo accept loop, lifetime bounded by Close
	go serve()
}
