// Counterpart fixture: internal/par is the one place allowed to spawn
// goroutines — it is the bounded pool the rest of internal/ must use.
package par

import "sync"

// ForEach may use raw goroutines: it is the primitive.
func ForEach(workers int, fn func()) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
