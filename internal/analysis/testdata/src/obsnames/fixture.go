// Fixture for the obsnames analyzer: metric names must be lowercase
// dotted string literals or Metric* constants so the Prometheus renderer
// and the benchdiff gate key on stable names.
package metrics

import "fmt"

// Metric constants are checked at their definition site...
const (
	MetricGood     = "qserver.batch_queries"
	MetricBad      = "Qserver.BatchQueries" // want `metric constant MetricBad value "Qserver\.BatchQueries" is not lowercase dotted`
	MetricRetries  = "remote.retries"       // client-side retry counter family
	MetricBackoff  = "remote.backoff_ns"
	MetricBadUnits = "remote.backoff-NS" // want `metric constant MetricBadUnits value "remote\.backoff-NS" is not lowercase dotted`
)

// registry stands in for *obs.Registry; the analyzer is syntactic and
// keys on the constructor method names.
type registry struct{}

func (registry) Counter(name string) int   { return len(name) }
func (registry) Gauge(name string) int     { return len(name) }
func (registry) Histogram(name string) int { return len(name) }
func (registry) Curve(name string) int     { return len(name) }

// Event mirrors obs.Event.
type Event struct{ Phase string }

func register(r registry, shard int) {
	r.Counter("census.blocks_solved")
	r.Gauge(MetricGood)
	r.Counter("census.BlocksSolved")               // want `obs Counter name "census\.BlocksSolved" is not lowercase dotted`
	r.Histogram(fmt.Sprintf("shard%d.lat", shard)) // want `obs Histogram name must be a constant`
	r.Counter("obs.journal_dropped")
	r.Counter("obs.curve_dropped")
	r.Counter("converge.queries")
	r.Curve("recon.lp.accuracy")
	r.Curve("census.exact_fraction")
	r.Curve("Recon.LP.Accuracy") // want `obs Curve name "Recon\.LP\.Accuracy" is not lowercase dotted`
	_ = Event{Phase: "run_start"}
	_ = Event{Phase: "budget.spend"} // dotted ledger phases are in-convention
	_ = Event{Phase: "query_retry"}
	_ = Event{Phase: "attack.converge"}
	_ = Event{Phase: "Run Start"}   // want `obs\.Event Phase "Run Start" is not lowercase dotted`
	_ = Event{Phase: "budget.Deny"} // want `obs\.Event Phase "budget\.Deny" is not lowercase dotted`
}

// histogram is a domain function that happens to share a constructor
// name; its arity keeps it out of scope.
func histogram(rng int, counts []int64, eps float64) []int64 { return counts }

type mech struct{}

func (mech) Histogram(rng int, counts []int64, eps float64) []int64 { return counts }

func release(m mech) []int64 {
	return m.Histogram(1, []int64{2}, 0.5) // three args: not an obs constructor
}
