// Package remote is a fixture stub for the regeneration-contract
// dataset constructor.
package remote

func Dataset(seed int64, n int, p float64) []int64 { return make([]int64, n) }
