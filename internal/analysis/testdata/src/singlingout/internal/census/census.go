// Package census is a fixture stub mirroring the real module's census
// microdata tuple type.
package census

type Tuple struct {
	Sex, AgeBucket, Race, Ethnicity int
}
