// Package synth is a fixture stub for the raw bit-vector constructor.
package synth

func BinaryDataset(seed int64, n int, p float64) []int64 { return make([]int64, n) }
