// Package dataset is a fixture stub mirroring the real module's
// raw-microdata types so type-path matching works in analyzer fixtures.
package dataset

type Schema struct{ Cols int }

type Record []int64

type Dataset struct {
	Schema *Schema
	Rows   []Record
}
