// Package kanon is a fixture stub for the anonymization mechanism the
// rawdataflow analyzer treats as a sanitizer.
package kanon

import "singlingout/internal/dataset"

func Suppress(rows []dataset.Record, k int) [][]int64 { return nil }
