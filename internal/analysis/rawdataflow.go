package analysis

import (
	"go/ast"
	"strings"
)

// RawDataFlow enforces the paper's core boundary: raw microdata never
// crosses the statistics interface. "Linear Program Reconstruction in
// Practice" needed exactly one accidental leak path in a production
// query system; this analyzer makes that class of bug a compile-time
// failure in the serving stack (internal/query/remote, internal/obs, and
// every cmd/ binary).
//
// Sources (tainted values):
//   - any expression whose type is (or transports, through
//     slices/maps/pointers) dataset.Dataset, dataset.Record, or
//     census.Tuple — the row-level microdata types;
//   - calls to remote.Dataset or synth.BinaryDataset, the raw bit-vector
//     constructors ([]int64 is too anonymous to match by type alone).
//
// Sinks (egress): encoding/json Marshal/Encode, fmt Print/Fprint
// families, log, encoding/csv writers, io Write/WriteString methods, the
// obs journal (Journal.Emit) and the remote wire helper writeJSON.
//
// Sanctioned paths: scalar results (counts, rates, accuracies) never
// carry taint — releasing statistics is the system's whole job; the
// dispute is rows. Calls into internal/kanon and internal/dp are
// sanitizers: their outputs went through an anonymization mechanism.
// The one sanctioned raw egress contract is regeneration — the server
// advertises (seed, n, p) and both ends call remote.Dataset locally —
// which needs no exemption here because a seed is a scalar. Anything
// else (e.g. cmd/anonymize's deliberate CSV export) documents itself
// with a lint:ignore and a reason.
var RawDataFlow = &Analyzer{
	Name: "rawdataflow",
	Doc: "forbid raw-microdata values (dataset.Dataset/Record, census.Tuple, remote.Dataset " +
		"bit vectors) from reaching wire/JSON/journal/log sinks in the serving stack; " +
		"the only sanctioned egress is (seed,n,p) regeneration",
	NeedsTypes: true,
	Wants:      wantsServingStack,
	Run:        runRawDataFlow,
}

// wantsServingStack scopes the analyzer to where the wire boundary
// lives: the query service, the telemetry layer, every binary, and this
// analyzer's fixtures.
func wantsServingStack(pkg *Package) bool {
	switch {
	case pkg.Path == "singlingout/internal/query/remote",
		pkg.Path == "singlingout/internal/obs",
		strings.HasPrefix(pkg.Path, "singlingout/internal/obs/"),
		strings.HasPrefix(pkg.Path, "singlingout/cmd/"),
		strings.HasPrefix(pkg.Path, "rawdataflow"):
		return true
	}
	return false
}

// rawTypes lists the microdata types per declaring package path.
var rawTypes = map[string]map[string]bool{
	"singlingout/internal/dataset": {"Dataset": true, "Record": true},
	"singlingout/internal/census":  {"Tuple": true},
}

// rawConstructors lists (package path, function name) pairs whose
// results are raw microdata regardless of type.
var rawConstructors = map[[2]string]bool{
	{"singlingout/internal/query/remote", "Dataset"}: true,
	{"singlingout/internal/synth", "BinaryDataset"}:  true,
}

func runRawDataFlow(pass *Pass) error {
	if pass.TypesInfo == nil {
		return nil
	}
	spec := TaintSpec{
		Source:    func(x ast.Expr) bool { return rawSource(pass, x) },
		Sink:      func(call *ast.CallExpr) ([]int, string, bool) { return egressSink(pass, call) },
		Sanitizer: func(call *ast.CallExpr) bool { return anonymizerCall(pass, call) },
		Carrier:   ScalarCarrier,
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fb := range FuncBodies(f.AST, false) {
			g := NewCFG(fb.Body)
			for _, finding := range RunTaint(pass.TypesInfo, g, spec) {
				pass.Reportf(finding.Call.Pos(),
					"raw microdata reaches %s in %s: rows must never cross the wire/journal/log boundary — release statistics, or regenerate via the (seed,n,p) contract",
					finding.Desc, fb.Name)
			}
		}
	}
	return nil
}

// rawSource reports expressions that are microdata by type or by
// constructor.
func rawSource(pass *Pass, x ast.Expr) bool {
	if call, ok := x.(*ast.CallExpr); ok {
		if fn := pass.CalleeFunc(call); fn != nil {
			if rawConstructors[[2]string{FuncPkgPath(fn), fn.Name()}] {
				return true
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	// Conversions and type expressions are not values of the type.
	if tv.IsType() {
		return false
	}
	for pkgPath, names := range rawTypes {
		if ElemNamedFrom(tv.Type, pkgPath, names) {
			return true
		}
	}
	return false
}

// egressSink classifies wire/journal/log egress calls. It returns the
// argument indices that must be clean (empty = all arguments).
func egressSink(pass *Pass, call *ast.CallExpr) ([]int, string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return nil, "", false
	}
	pkg, name := FuncPkgPath(fn), fn.Name()
	recv := RecvNamed(fn)
	switch {
	case pkg == "encoding/json" && (name == "Marshal" || name == "MarshalIndent"):
		return []int{0}, "json." + name, true
	case pkg == "encoding/json" && recv == "Encoder" && name == "Encode":
		return []int{0}, "json.Encoder.Encode", true
	case pkg == "fmt" && strings.HasPrefix(name, "Fprint"):
		return nil, "fmt." + name, true // all args incl. the writer's payload
	case pkg == "fmt" && strings.HasPrefix(name, "Print"):
		return nil, "fmt." + name, true
	case pkg == "log":
		return nil, "log." + name, true
	case pkg == "encoding/csv" && recv == "Writer" && (name == "Write" || name == "WriteAll"):
		return []int{0}, "csv.Writer." + name, true
	case recv == "Journal" && name == "Emit" && strings.HasSuffix(pkg, "internal/obs"):
		return []int{0}, "Journal.Emit", true
	case name == "writeJSON" && len(call.Args) >= 3:
		return []int{2}, "writeJSON", true
	case (name == "Write" || name == "WriteString") && recv != "" && len(call.Args) == 1:
		// io.Writer-shaped methods: the payload must be clean.
		return []int{0}, recv + "." + name, true
	}
	return nil, "", false
}

// anonymizerCall reports calls into the anonymization mechanisms, whose
// outputs are sanctioned releases even when row-shaped.
func anonymizerCall(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	pkg := FuncPkgPath(fn)
	return strings.HasSuffix(pkg, "internal/kanon") || strings.HasSuffix(pkg, "internal/dp")
}
