package analysis_test

import (
	"testing"

	"singlingout/internal/analysis"
	"singlingout/internal/analysis/analysistest"
)

// TestBoundedGo checks that bare go statements are flagged in internal/
// packages, allowed in internal/par (the pool primitive), and
// suppressible for infrastructure goroutines.
func TestBoundedGo(t *testing.T) {
	analysistest.Run(t, analysis.BoundedGo, "internal/fanout", "internal/par")
}
