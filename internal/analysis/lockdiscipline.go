package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockDiscipline keeps shard critical sections non-blocking. The query
// server's scalability story is "no lock spans shards": each cache and
// ledger shard has its own mutex, and the code holding one must not
// acquire another lock, perform network I/O, or block on a channel —
// any of those turns a shard lock into a convoy (or a deadlock) under
// load, which shows up as tail latency in exactly the admission-control
// measurements the loadgen gates on.
//
// The analysis is an intra-procedural lock-set dataflow: sync.Mutex /
// sync.RWMutex Lock/RLock calls add the receiver to the held set,
// Unlock/RUnlock remove it (a deferred Unlock holds to function exit,
// which is the sanctioned pattern), and while the set is non-empty the
// analyzer flags:
//
//   - acquiring any further mutex (second shard lock, or a self-deadlock
//     on the same one);
//   - channel sends, receives, and select statements;
//   - known blockers: time.Sleep, sync.WaitGroup.Wait, sync.Cond.Wait;
//   - network I/O (any call into net or net/http).
//
// The single allowlisted blocking call is the WAL file append
// (wal.append): write-ahead durability REQUIRES the disk write inside
// the ledger shard's critical section — that ordering is what walorder
// enforces — and the WAL is a local file, not a network round-trip.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "no second lock acquisition, network I/O, or blocking channel operation while a " +
		"shard mutex is held; the WAL file append is the one allowlisted blocking call",
	NeedsTypes: true,
	Wants:      wantsLockedCode,
	Run:        runLockDiscipline,
}

func wantsLockedCode(pkg *Package) bool {
	return pkg.Path == "singlingout/internal/query/remote" ||
		pkg.Path == "singlingout/internal/obs" ||
		strings.HasPrefix(pkg.Path, "lockdiscipline")
}

func runLockDiscipline(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fb := range FuncBodies(f.AST, false) {
			checkLockDiscipline(pass, fb)
		}
	}
	return nil
}

// lockSet is the set of held mutexes, keyed by a stable rendering of the
// receiver chain (object identity of the base + selector path), mapped
// to a printable name for diagnostics.
type lockSet map[string]string

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// selectComms classifies the comm statements (`case ch <- x:`,
// `case v := <-ch:`) of every select in one function: a select with a
// default clause never blocks, so its comm operations are exempt; a
// select without one blocks like a bare channel op.
type selectComms struct {
	comm     map[ast.Stmt]bool // any select's comm statement
	blocking map[ast.Stmt]bool // comm of a select WITHOUT default
}

func collectSelectComms(body *ast.BlockStmt) selectComms {
	sc := selectComms{comm: map[ast.Stmt]bool{}, blocking: map[ast.Stmt]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		for _, cl := range sel.Body.List {
			if comm := cl.(*ast.CommClause).Comm; comm != nil {
				sc.comm[comm] = true
				if !hasDefault {
					sc.blocking[comm] = true
				}
			}
		}
		return true
	})
	return sc
}

func checkLockDiscipline(pass *Pass, fb FuncBody) {
	g := NewCFG(fb.Body)
	sc := collectSelectComms(fb.Body)
	in := make([]lockSet, len(g.Blocks))
	in[g.Entry.Index] = lockSet{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := ldTransferBlock(pass, blk, sc, in[blk.Index].clone(), nil)
		for _, e := range blk.Succs {
			if in[e.To.Index] == nil {
				in[e.To.Index] = out.clone()
				work = append(work, e.To)
				continue
			}
			changed := false
			for k, v := range out { // may-held union join
				if _, ok := in[e.To.Index][k]; !ok {
					in[e.To.Index][k] = v
					changed = true
				}
			}
			if changed {
				work = append(work, e.To)
			}
		}
	}
	for _, blk := range g.Blocks {
		if in[blk.Index] == nil {
			continue // unreachable
		}
		ldTransferBlock(pass, blk, sc, in[blk.Index].clone(), func(n ast.Node, held lockSet, what string) {
			pass.Reportf(n.Pos(), "%s while %s is held in %s: shard critical sections must not block (wal.append is the only allowlisted blocking call)",
				what, heldNames(held), fb.Name)
		})
	}
}

// ldTransferBlock folds the block over the lock set; report, when
// non-nil, receives each violation with the set in force there.
func ldTransferBlock(pass *Pass, blk *Block, sc selectComms, held lockSet, report func(ast.Node, lockSet, string)) lockSet {
	for _, n := range blk.Nodes {
		inDefer := false
		if _, ok := n.(*ast.DeferStmt); ok {
			inDefer = true
		}
		// Comm statements of a select with default never block; comms of
		// a default-less select block exactly like the bare operation.
		chanOpsExempt := false
		if stmt, ok := n.(ast.Stmt); ok && sc.comm[stmt] {
			if sc.blocking[stmt] {
				if len(held) > 0 && report != nil {
					report(n, held, "blocking select")
				}
			}
			chanOpsExempt = true
		}
		InspectHead(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.SendStmt:
				if !chanOpsExempt && len(held) > 0 && report != nil {
					report(c, held, "channel send")
				}
			case *ast.UnaryExpr:
				if c.Op == token.ARROW && !chanOpsExempt && len(held) > 0 && report != nil {
					report(c, held, "channel receive")
				}
			case *ast.FuncLit:
				return false // runs later, not under this critical section
			case *ast.CallExpr:
				key, name, op, ok := mutexOp(pass, c)
				if ok {
					switch op {
					case "Lock", "RLock":
						if len(held) > 0 && report != nil {
							report(c, held, "acquiring "+name)
						}
						held[key] = name
					case "Unlock", "RUnlock":
						if !inDefer {
							delete(held, key)
						}
						// Deferred unlocks run at exit: the lock stays held
						// for the rest of the body, which is the point.
					}
					return true
				}
				if len(held) > 0 && report != nil {
					if what, bad := blockingCall(pass, c); bad {
						report(c, held, what)
					}
				}
			}
			return true
		})
	}
	return held
}

// mutexOp recognizes Lock/RLock/Unlock/RUnlock calls on sync.Mutex /
// sync.RWMutex, returning a stable key and printable name for the
// receiver.
func mutexOp(pass *Pass, call *ast.CallExpr) (key, name, op string, ok bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || FuncPkgPath(fn) != "sync" {
		return "", "", "", false
	}
	recv := RecvNamed(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	key, name = receiverKey(pass, sel.X)
	return key, name, fn.Name(), true
}

// receiverKey renders a selector chain (e.g. l.mu, s.caches[i].mu) into
// a stable key plus a human-readable name.
func receiverKey(pass *Pass, x ast.Expr) (key, name string) {
	var parts []string
	base := ""
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{e.Sel.Name}, parts...)
			x = e.X
			continue
		case *ast.IndexExpr:
			parts = append([]string{"[]"}, parts...)
			x = e.X
			continue
		case *ast.StarExpr:
			x = e.X
			continue
		case *ast.Ident:
			parts = append([]string{e.Name}, parts...)
			if obj := objOfIdent(pass, e); obj != nil {
				base = fmt.Sprintf("%p", obj)
			}
		}
		break
	}
	name = strings.Join(parts, ".")
	return base + "|" + name, name
}

// blockingCall classifies calls that must not run under a shard lock.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return "", false
	}
	pkg, name, recv := FuncPkgPath(fn), fn.Name(), RecvNamed(fn)
	switch {
	case recv == "wal" && name == "append":
		return "", false // the allowlisted WAL file append
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && name == "Wait" && (recv == "WaitGroup" || recv == "Cond"):
		return "sync." + recv + ".Wait", true
	case pkg == "net" || strings.HasPrefix(pkg, "net/"):
		if recv != "" {
			return pkg + "." + recv + "." + name, true
		}
		return pkg + "." + name, true
	}
	return "", false
}

// heldNames lists the held locks deterministically for the diagnostic.
func heldNames(held lockSet) string {
	var names []string
	for _, v := range held {
		names = append(names, v)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
