package analysis_test

import (
	"testing"

	"singlingout/internal/analysis"
	"singlingout/internal/analysis/analysistest"
)

// TestCtxBackground checks that context.Background()/TODO() is flagged in
// library code — with the message distinguishing a ctx parameter already
// in scope from a function that should grow one — and exempted in main
// packages.
func TestCtxBackground(t *testing.T) {
	analysistest.Run(t, analysis.CtxBackground, "ctxbackground", "ctxbackground_main")
}
