package analysis_test

import (
	"testing"

	"singlingout/internal/analysis"
	"singlingout/internal/analysis/analysistest"
)

// TestDeterminism checks that ambient entropy (clock, global rand,
// crypto/rand) is flagged inside the deterministic package set and that
// injected *rand.Rand streams, out-of-scope packages, and lint:ignore
// suppressions are not.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism", "determinism_other")
}
