package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"singlingout/internal/analysis"
)

// buildCFG parses a function body and returns its CFG.
func buildCFG(t *testing.T, body string) *analysis.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return analysis.NewCFG(fd.Body)
}

// edgeCount returns (total, conditional) edge counts.
func edgeCount(g *analysis.CFG) (total, cond int) {
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			total++
			if e.Cond != nil {
				cond++
			}
		}
	}
	return total, cond
}

func TestCFGIf(t *testing.T) {
	g := buildCFG(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x
	`)
	_, cond := edgeCount(g)
	if cond != 2 {
		t.Fatalf("if/else: want 2 condition-labeled edges (true and false arm), got %d", cond)
	}
	// Exactly one of the two condition edges is the negated (false) arm.
	neg := 0
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil && e.Neg {
				neg++
			}
		}
	}
	if neg != 1 {
		t.Fatalf("if/else: want exactly 1 negated edge, got %d", neg)
	}
	if !g.Reachable(g.Entry)[g.Exit] {
		t.Fatal("exit not reachable from entry")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := buildCFG(t, `
		x := 1
		if x > 0 {
			return
		}
		x = 2
		_ = x
	`)
	// The return statement's block must flow straight to Exit.
	foundReturnEdge := false
	for _, b := range g.Blocks {
		hasReturn := false
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				hasReturn = true
			}
		}
		if !hasReturn {
			continue
		}
		for _, e := range b.Succs {
			if e.To == g.Exit {
				foundReturnEdge = true
			}
		}
	}
	if !foundReturnEdge {
		t.Fatal("early return: no edge from the return block to Exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildCFG(t, `
		for i := 0; i < 10; i++ {
			_ = i
		}
	`)
	// A loop must contain a back edge (a successor with a smaller or
	// equal block index than some block reachable from it).
	back := false
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.To.Index < b.Index && e.To != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("for loop: no back edge found")
	}
	if !g.Reachable(g.Entry)[g.Exit] {
		t.Fatal("for loop: exit unreachable (cond-false edge missing)")
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	withDefault := buildCFG(t, `
		switch x := 1; x {
		case 1:
		default:
		}
	`)
	withoutDefault := buildCFG(t, `
		switch x := 1; x {
		case 1:
		}
	`)
	// Both shapes must keep Exit reachable; the no-default switch does so
	// via the implicit entry→after edge.
	if !withDefault.Reachable(withDefault.Entry)[withDefault.Exit] {
		t.Fatal("switch with default: exit unreachable")
	}
	if !withoutDefault.Reachable(withoutDefault.Entry)[withoutDefault.Exit] {
		t.Fatal("switch without default: exit unreachable (implicit skip edge missing)")
	}
}

func TestCFGDefer(t *testing.T) {
	g := buildCFG(t, `
		defer println("a")
		defer println("b")
		println("body")
	`)
	if len(g.Defers) != 2 {
		t.Fatalf("defers: want 2 collected, got %d", len(g.Defers))
	}
}

func TestCFGRange(t *testing.T) {
	g := buildCFG(t, `
		xs := []int{1, 2}
		for _, x := range xs {
			_ = x
		}
	`)
	// The range head must branch both into the body and past the loop.
	var head *analysis.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("range: no head block holding the RangeStmt")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head: want 2 successors (body, after), got %d", len(head.Succs))
	}
}
