package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"singlingout/internal/analysis"
)

// taintProgram defines a tiny vocabulary — source() produces tainted
// slices, sink(...) is the egress, sanitize() launders, count() returns
// a scalar — and one function per dataflow shape under test.
const taintProgram = `package p

func source() []int { return nil }
func sink(args ...interface{}) {}
func sanitize(x []int) []int { return x }
func count(x []int) int { return len(x) }

func direct() { sink(source()) }
func flow() { x := source(); y := x; sink(y) }
func kill() { x := source(); x = nil; sink(x) }
func branchJoin(c bool) { x := []int{}; if c { x = source() }; sink(x) }
func branchClean(c bool) { x := source(); if c { x = nil; sink(x) } }
func scalar() { sink(count(source())) }
func sanitized() { sink(sanitize(source())) }
func rangeFlow() { xs := source(); for _, v := range xs { sink(v) } }
func closure() { x := source(); f := func() { sink(x) }; f() }
func derived() { x := source(); y := append(x, 1); sink(y) }
`

// wantFindings maps each function to the number of sink violations the
// engine must report in it.
var wantFindings = map[string]int{
	"direct":      1,
	"flow":        1,
	"kill":        0,
	"branchJoin":  1, // tainted on one incoming path suffices
	"branchClean": 0, // the sink only runs on the overwritten arm
	"scalar":      0, // int cannot carry
	"sanitized":   0,
	"rangeFlow":   1, // element of a tainted slice
	"closure":     1, // sink inside a literal sees the creation state
	"derived":     1, // builtin append propagates
}

func TestTaintEngine(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", taintProgram, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}

	calleeName := func(call *ast.CallExpr) string {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name
		}
		return ""
	}
	spec := analysis.TaintSpec{
		Source: func(x ast.Expr) bool {
			call, ok := x.(*ast.CallExpr)
			return ok && calleeName(call) == "source"
		},
		Sink: func(call *ast.CallExpr) ([]int, string, bool) {
			if calleeName(call) == "sink" {
				return nil, "sink", true
			}
			return nil, "", false
		},
		Sanitizer: func(call *ast.CallExpr) bool { return calleeName(call) == "sanitize" },
		Carrier:   analysis.ScalarCarrier,
	}

	for _, fb := range analysis.FuncBodies(f, false) {
		want, ok := wantFindings[fb.Name]
		if !ok {
			continue // the vocabulary functions themselves
		}
		g := analysis.NewCFG(fb.Body)
		got := len(analysis.RunTaint(info, g, spec))
		if got != want {
			t.Errorf("%s: want %d finding(s), got %d", fb.Name, want, got)
		}
	}
}
