package analysis

import (
	"go/ast"
	"strings"
)

// BoundedGo flags bare `go` statements in internal/ packages outside
// internal/par. Unbounded fan-out breaks two guarantees at once: the
// worker-count invariance of reconstruction tables (par derives per-item
// RNGs and dispenses indices in order — a raw goroutine has neither) and
// the qserver's bounded-concurrency contract (par.Gate). cmd/ packages
// are exempt: a main owning its process may run an HTTP server or signal
// loop on a raw goroutine.
var BoundedGo = &Analyzer{
	Name: "boundedgo",
	Doc: "flag bare go statements in internal/ packages outside internal/par; " +
		"fan-out must go through par.Pool/par.ForEach (deterministic) or par.Gate (bounded)",
	Run: runBoundedGo,
}

func runBoundedGo(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path+"/", "internal/") || strings.HasSuffix(pass.Pkg.Path, "internal/par") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue // test helpers may spin goroutines freely
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare go statement in %s: route fan-out through par.ForEach/par.Pool (deterministic) or par.Gate (bounded)", pass.Pkg.Path)
			}
			return true
		})
	}
	return nil
}
