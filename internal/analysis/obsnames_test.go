package analysis_test

import (
	"testing"

	"singlingout/internal/analysis"
	"singlingout/internal/analysis/analysistest"
)

// TestObsNames checks the lowercase dotted convention on metric-name
// literals, Metric* constant definitions, and obs.Event Phase fields, and
// that same-named domain functions with different arity stay out of
// scope.
func TestObsNames(t *testing.T) {
	analysistest.Run(t, analysis.ObsNames, "obsnames")
}
