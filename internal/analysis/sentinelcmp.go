package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// SentinelCmp flags == / != comparisons against exported error sentinels
// (ErrFoo, io.EOF). PR 4 made query.ErrBudgetExhausted and
// query.ErrInvalidQuery flow through oracle wrappers and the wire client
// wrapped (%w), so identity comparison silently stops matching; errors.Is
// is the only comparison that survives wrapping.
var SentinelCmp = &Analyzer{
	Name: "sentinelcmp",
	Doc: "flag err == / err != comparisons against exported sentinel errors " +
		"(ErrFoo, io.EOF); wrapped errors (%w) defeat identity comparison — use errors.Is",
	Run: runSentinelCmp,
}

func runSentinelCmp(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		// Tests are in scope: assertions on wrapped sentinels are exactly
		// where identity comparison bites hardest.
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if name, ok := sentinelName(side); ok {
					pass.ReportfFix(be.Pos(), sentinelFix(pass, file.AST, be, side),
						"%s compared with %s: use errors.Is (sentinels may arrive wrapped)", name, be.Op)
					break
				}
			}
			return true
		})
	}
	return nil
}

// sentinelFix rewrites `err == ErrFoo` to `errors.Is(err, ErrFoo)` (and
// != to its negation), importing errors when the file doesn't already.
// The rewrite is exact: operand spellings are copied from the source,
// and the errors.Is call binds at least as tightly as the comparison it
// replaces, so surrounding expressions keep their meaning.
func sentinelFix(pass *Pass, f *ast.File, be *ast.BinaryExpr, sentinel ast.Expr) *SuggestedFix {
	other := be.X
	if other == sentinel {
		other = be.Y
	}
	otherSrc := pass.SourceText(other.Pos(), other.End())
	sentSrc := pass.SourceText(sentinel.Pos(), sentinel.End())
	if otherSrc == "" || sentSrc == "" {
		return nil
	}
	errorsName, imported := ImportName(f, "errors")
	if !imported {
		errorsName = "errors"
	}
	repl := errorsName + ".Is(" + otherSrc + ", " + sentSrc + ")"
	if be.Op == token.NEQ {
		repl = "!" + repl
	}
	fix := &SuggestedFix{
		Message: "replace the identity comparison with " + errorsName + ".Is",
		Edits:   []TextEdit{pass.Edit(be.Pos(), be.End(), repl)},
	}
	if !imported {
		if imp, ok := pass.ImportEdit(f, "errors"); ok {
			fix.Edits = append(fix.Edits, imp)
		}
	}
	return fix
}

// sentinelName reports whether e denotes an exported error-sentinel
// value: an identifier or package-qualified selector named ErrXxx or EOF.
func sentinelName(e ast.Expr) (string, bool) {
	var name, qual string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			qual = id.Name + "."
		}
		name = v.Sel.Name
	default:
		return "", false
	}
	if name == "EOF" {
		return qual + name, true
	}
	if strings.HasPrefix(name, "Err") && len(name) > 3 && unicode.IsUpper(rune(name[3])) {
		return qual + name, true
	}
	return "", false
}
