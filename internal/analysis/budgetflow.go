package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BudgetFlow checks the all-or-nothing accounting contract of the query
// server: once a handler performs a ledger spend, every control-flow
// path must settle it — refund it, have it denied, or commit the batch —
// before reporting an error to the client. A path that spends and then
// fails without settling silently leaks budget: the analyst is charged
// for answers that were never released, and the privacy-loss ledger
// (the artifact auditors replay) drifts from the truth the server
// enforced.
//
// The analysis runs per function over the CFG with a path-state set
// lattice {clean, spent, settled}:
//
//   - a call to spend moves every path to spent; refund/deny move to
//     settled;
//   - condition edges refine the spend's results: along `err != nil` the
//     spend never happened (clean); along `!ok` the ledger denied it and
//     recorded the denial (settled);
//   - an error exit (a fail/failOverloaded call, or returning a non-nil
//     error) is reported iff EVERY path reaching it is in spent — a mixed
//     set means some path did not spend (e.g. the correlated `fresh > 0`
//     guards in handleQuery), which is the sanctioned shape.
//
// Reaching the function exit in spent via a non-error path is the
// successful commit and is fine.
var BudgetFlow = &Analyzer{
	Name: "budgetflow",
	Doc: "every control-flow path that performs a ledger spend must refund, be denied, " +
		"or commit before returning an error — no path may leak spent budget",
	NeedsTypes: true,
	Wants:      wantsLedgerCallers,
	Run:        runBudgetFlow,
}

func wantsLedgerCallers(pkg *Package) bool {
	return pkg.Path == "singlingout/internal/query/remote" ||
		strings.HasPrefix(pkg.Path, "budgetflow")
}

// Path-state bits.
const (
	bfClean   = 1 << iota // no outstanding spend on this path
	bfSpent               // a spend was granted and not yet settled
	bfSettled             // the spend was refunded, denied, or failed cleanly
)

func runBudgetFlow(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fb := range FuncBodies(f.AST, false) {
			checkBudgetFlow(pass, fb)
		}
	}
	return nil
}

// spendResults are the bool/error result objects of the spend calls in
// one function, used to interpret branch conditions.
type spendResults struct {
	ok, err map[types.Object]bool
}

func checkBudgetFlow(pass *Pass, fb FuncBody) {
	// Cheap prefilter: a function with no spend call has nothing to check.
	hasSpend := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ledgerOp(pass, call) == "spend" {
			hasSpend = true
		}
		return !hasSpend
	})
	if !hasSpend {
		return
	}

	res := collectSpendResults(pass, fb.Body)
	g := NewCFG(fb.Body)

	// Forward fixpoint over path-state sets.
	in := make([]uint8, len(g.Blocks))
	in[g.Entry.Index] = bfClean
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := bfTransferBlock(pass, blk, in[blk.Index], nil)
		for _, e := range blk.Succs {
			next := bfRefine(pass, out, e, res)
			if in[e.To.Index]|next != in[e.To.Index] {
				in[e.To.Index] |= next
				work = append(work, e.To)
			}
		}
	}

	// Report pass at fixpoint: walk each block again, flagging error
	// exits whose path-state set is exactly {spent}.
	for _, blk := range g.Blocks {
		if in[blk.Index] == 0 {
			continue // unreachable
		}
		bfTransferBlock(pass, blk, in[blk.Index], func(n ast.Node, state uint8) {
			if state == bfSpent {
				pass.Reportf(n.Pos(),
					"error path in %s returns with an unsettled ledger spend: refund or deny before failing (all-or-nothing accounting)",
					fb.Name)
			}
		})
	}
}

// bfTransferBlock folds the block's nodes over the state set. When
// report is non-nil, it is invoked on each error-exit node with the
// state in force there.
func bfTransferBlock(pass *Pass, blk *Block, state uint8, report func(ast.Node, uint8)) uint8 {
	for _, n := range blk.Nodes {
		if report != nil && isErrorExit(pass, n) {
			report(n, state)
		}
		InspectHead(n, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch ledgerOp(pass, call) {
			case "spend":
				state = bfSpent
			case "refund", "deny":
				state = bfSettled
			}
			return true
		})
	}
	return state
}

// bfRefine narrows the state set along a condition edge using the
// recorded spend result objects.
func bfRefine(pass *Pass, state uint8, e Edge, res spendResults) uint8 {
	if e.Cond == nil || state&bfSpent == 0 {
		return state
	}
	switch cond := ast.Unparen(e.Cond).(type) {
	case *ast.BinaryExpr:
		// err != nil / err == nil on a spend's error result: the failing
		// side means the spend never took effect.
		if nilComparand(pass, cond, res.err) {
			errIsNil := (cond.Op == token.EQL) != e.Neg // (err == nil) true edge, or (err != nil) false edge
			if !errIsNil {
				return state&^bfSpent | bfClean
			}
		}
	case *ast.Ident:
		// `if ok { ... } else { denied }`
		if obj := objOfIdent(pass, cond); obj != nil && res.ok[obj] && e.Neg {
			return state&^bfSpent | bfSettled
		}
	case *ast.UnaryExpr:
		// `if !ok { denied }`
		if cond.Op == token.NOT {
			if id, isID := ast.Unparen(cond.X).(*ast.Ident); isID {
				if obj := objOfIdent(pass, id); obj != nil && res.ok[obj] && !e.Neg {
					return state&^bfSpent | bfSettled
				}
			}
		}
	}
	return state
}

// nilComparand reports whether cond compares an ident from objs against
// nil.
func nilComparand(pass *Pass, cond *ast.BinaryExpr, objs map[types.Object]bool) bool {
	if cond.Op != token.EQL && cond.Op != token.NEQ {
		return false
	}
	pick := func(a, b ast.Expr) bool {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			return false
		}
		if nb, ok := ast.Unparen(b).(*ast.Ident); !ok || nb.Name != "nil" {
			return false
		}
		obj := objOfIdent(pass, id)
		return obj != nil && objs[obj]
	}
	return pick(cond.X, cond.Y) || pick(cond.Y, cond.X)
}

func objOfIdent(pass *Pass, id *ast.Ident) types.Object {
	if pass.TypesInfo == nil {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// collectSpendResults finds every `a, ok, err := led.spend(...)`-shaped
// assignment and records which LHS objects are the bool and error
// results.
func collectSpendResults(pass *Pass, body *ast.BlockStmt) spendResults {
	res := spendResults{ok: map[types.Object]bool{}, err: map[types.Object]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || ledgerOp(pass, call) != "spend" {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOfIdent(pass, id)
			if obj == nil || obj.Type() == nil {
				continue
			}
			switch {
			case isBool(obj.Type()):
				res.ok[obj] = true
			case isErrorType(obj.Type()):
				res.err[obj] = true
			}
		}
		return true
	})
	return res
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// ledgerOp classifies a call as one of the ledger budget operations
// ("spend", "refund", "deny") by method name — typed when the callee
// resolves, syntactic otherwise (tolerant checking can leave fixture
// callees unresolved).
func ledgerOp(pass *Pass, call *ast.CallExpr) string {
	name := ""
	if fn := pass.CalleeFunc(call); fn != nil {
		if RecvNamed(fn) == "" {
			return "" // plain function: ledger ops are methods
		}
		name = fn.Name()
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = sel.Sel.Name
	}
	switch name {
	case "spend", "refund", "deny":
		return name
	}
	return ""
}

// isErrorExit reports nodes that hand an error to the client: calls to
// fail/failOverloaded helpers, and return statements whose results
// include a non-nil error-typed expression.
func isErrorExit(pass *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if pass.TypesInfo != nil {
				if tv, ok := pass.TypesInfo.Types[r]; ok && tv.Type != nil && isErrorType(tv.Type) {
					return true
				}
			}
		}
		return false
	default:
		exit := false
		ast.Inspect(n, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name == "fail" || name == "failOverloaded" {
				exit = true
			}
			return !exit
		})
		return exit
	}
}
