package analysis_test

import (
	"testing"

	"singlingout/internal/analysis"
	"singlingout/internal/analysis/analysistest"
)

// The four dataflow analyzers: each fixture pairs violations with the
// structurally-identical compliant shape (and a lint:ignore escape),
// so the tests pin both directions — the finding fires, and the
// sanctioned pattern stays quiet.

func TestRawDataFlow(t *testing.T) {
	analysistest.Run(t, analysis.RawDataFlow, "rawdataflow")
}

func TestBudgetFlow(t *testing.T) {
	analysistest.Run(t, analysis.BudgetFlow, "budgetflow")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysis.LockDiscipline, "lockdiscipline")
}

func TestWALOrder(t *testing.T) {
	analysistest.Run(t, analysis.WALOrder, "walorder")
}
