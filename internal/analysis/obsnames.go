package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// obsNameRE is the lowercase dotted convention every metric name must
// follow: the Prometheus renderer in internal/obs/serve maps dots to
// underscores and assumes no further sanitization is needed, and
// cmd/benchdiff keys regression rows by these names, so a stray uppercase
// or formatted name silently forks a metric family.
var obsNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

// obsNameMethods are the registry constructors whose first argument is a
// metric name. Curve covers CurveSet.Curve: convergence-curve names flow
// into journal event ids and the /converge endpoint, so they follow the
// same convention. Tracer.Begin/NewLane are deliberately out of scope:
// trace lane titles are display strings and embed pool/worker ids by
// design.
var obsNameMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "StartSpan": true,
	"Curve": true,
}

// ObsNames requires metric and journal names passed to obs to be either
// lowercase dotted string literals or Metric*-named constants (whose
// definitions it also checks), so names are grep-able and stable across
// the Prometheus endpoint, the JSONL journal, and the bench gate.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "require metric/journal names in obs calls (Counter/Gauge/Histogram/StartSpan, " +
		"Event.Phase, Metric* constants) to be lowercase dotted string literals; the " +
		"Prometheus sanitization in internal/obs/serve and the benchdiff gate key on them",
	Run: runObsNames,
}

func runObsNames(pass *Pass) error {
	if pass.Pkg.Name == "obs" {
		// The registry implementation and its tests exercise arbitrary
		// names (sanitization round-trips, collision cases) on purpose.
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkObsCall(pass, v)
			case *ast.CompositeLit:
				checkEventLit(pass, v)
			case *ast.GenDecl:
				checkMetricConsts(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkObsCall validates the name argument of reg.Counter(...)-shaped
// calls. The receiver is not type-resolved (the framework is syntactic),
// so any single-argument method named Counter/Gauge/Histogram/StartSpan
// is held to the convention — the obs constructors take exactly the name,
// which keeps same-named domain functions (e.g. dp.Histogram(rng, counts,
// eps)) out of scope; a residual false positive can be suppressed with
// lint:ignore.
func checkObsCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !obsNameMethods[sel.Sel.Name] || len(call.Args) != 1 {
		return
	}
	switch arg := call.Args[0].(type) {
	case *ast.BasicLit:
		if arg.Kind != token.STRING {
			return
		}
		if name, err := strconv.Unquote(arg.Value); err == nil && !obsNameRE.MatchString(name) {
			pass.Reportf(arg.Pos(), "obs %s name %q is not lowercase dotted ([a-z0-9_.])", sel.Sel.Name, name)
		}
	case *ast.Ident:
		if !strings.HasPrefix(arg.Name, "Metric") {
			pass.Reportf(arg.Pos(), "obs %s name must be a lowercase dotted string literal or a Metric* constant, not %s", sel.Sel.Name, arg.Name)
		}
	case *ast.SelectorExpr:
		if !strings.HasPrefix(arg.Sel.Name, "Metric") {
			pass.Reportf(arg.Pos(), "obs %s name must be a lowercase dotted string literal or a Metric* constant, not %s", sel.Sel.Name, exprString(arg))
		}
	default:
		pass.Reportf(call.Args[0].Pos(), "obs %s name must be a constant — a lowercase dotted string literal or a Metric* constant, not a computed expression", sel.Sel.Name)
	}
}

// checkEventLit validates the Phase field of obs.Event composite
// literals: phases become journal event keys and the /healthz run-phase
// gauge label.
func checkEventLit(pass *Pass, lit *ast.CompositeLit) {
	if !isEventType(lit.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Phase" {
			continue
		}
		if bl, ok := kv.Value.(*ast.BasicLit); ok && bl.Kind == token.STRING {
			if name, err := strconv.Unquote(bl.Value); err == nil && !obsNameRE.MatchString(name) {
				pass.Reportf(bl.Pos(), "obs.Event Phase %q is not lowercase dotted ([a-z0-9_.])", name)
			}
		}
	}
}

// checkMetricConsts validates the definitions of Metric*-named string
// constants, which checkObsCall accepts by name at use sites.
func checkMetricConsts(pass *Pass, decl *ast.GenDecl) {
	if decl.Tok != token.CONST {
		return
	}
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, id := range vs.Names {
			if !strings.HasPrefix(id.Name, "Metric") || i >= len(vs.Values) {
				continue
			}
			bl, ok := vs.Values[i].(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				pass.Reportf(vs.Values[i].Pos(), "metric constant %s must be a plain lowercase dotted string literal", id.Name)
				continue
			}
			if name, err := strconv.Unquote(bl.Value); err == nil && !obsNameRE.MatchString(name) {
				pass.Reportf(bl.Pos(), "metric constant %s value %q is not lowercase dotted ([a-z0-9_.])", id.Name, name)
			}
		}
	}
}

// isEventType matches the obs.Event (or dot-imported Event) literal type.
func isEventType(t ast.Expr) bool {
	switch v := t.(type) {
	case *ast.SelectorExpr:
		return v.Sel.Name == "Event"
	case *ast.Ident:
		return v.Name == "Event"
	}
	return false
}

// exprString renders a short selector chain for messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "expression"
}
