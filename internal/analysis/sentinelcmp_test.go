package analysis_test

import (
	"testing"

	"singlingout/internal/analysis"
	"singlingout/internal/analysis/analysistest"
)

// TestSentinelCmp checks that == / != against exported sentinels (ErrFoo,
// io.EOF) is flagged while errors.Is and nil checks are not.
func TestSentinelCmp(t *testing.T) {
	analysistest.Run(t, analysis.SentinelCmp, "sentinelcmp")
}
