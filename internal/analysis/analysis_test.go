package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirective pins the staticcheck-style strictness: the
// directive must start the comment, carry an analyzer list, and carry a
// reason.
func TestIgnoreDirective(t *testing.T) {
	cases := []struct {
		text          string
		wantAnalyzers []string
		ok, malformed bool
	}{
		{"//lint:ignore determinism labelled timing output", []string{"determinism"}, true, false},
		{"//lint:ignore boundedgo,obsnames two at once", []string{"boundedgo", "obsnames"}, true, false},
		{"//lint:ignore determinism", nil, true, true}, // no reason
		{"//lint:ignore", nil, true, true},             // no list, no reason
		{"// lint:ignore determinism spaced is prose, not a directive", nil, false, false},
		{"// suppress with lint:ignore when needed", nil, false, false},
		{"//lint:ignorexyz not the directive", nil, false, false},
		{"// plain comment", nil, false, false},
	}
	for _, c := range cases {
		got, ok, malformed := ignoreDirective(c.text)
		if ok != c.ok || malformed != c.malformed {
			t.Errorf("ignoreDirective(%q) = ok=%v malformed=%v, want ok=%v malformed=%v", c.text, ok, malformed, c.ok, c.malformed)
			continue
		}
		if strings.Join(got, ",") != strings.Join(c.wantAnalyzers, ",") {
			t.Errorf("ignoreDirective(%q) analyzers = %v, want %v", c.text, got, c.wantAnalyzers)
		}
	}
}

// TestImportName covers default, renamed, blank, and absent imports.
func TestImportName(t *testing.T) {
	src := `package p
import (
	"math/rand"
	crand "crypto/rand"
	_ "net/http/pprof"
)
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name, ok := ImportName(f, "math/rand"); !ok || name != "rand" {
		t.Errorf("math/rand = %q,%v; want rand,true", name, ok)
	}
	if name, ok := ImportName(f, "crypto/rand"); !ok || name != "crand" {
		t.Errorf("crypto/rand = %q,%v; want crand,true", name, ok)
	}
	if _, ok := ImportName(f, "net/http/pprof"); ok {
		t.Error("blank import should not resolve to a usable name")
	}
	if _, ok := ImportName(f, "context"); ok {
		t.Error("absent import should not resolve")
	}
}

// TestSuppression runs a real analyzer over an in-memory package and
// checks that a directive covers its own line and the next, names the
// right analyzer, and that malformed directives surface as findings.
func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package recon

import "time"

func a() time.Time {
	//lint:ignore determinism labelled timing
	return time.Now()
}

func b() time.Time {
	return time.Now() //lint:ignore determinism trailing form
}

func c() time.Time {
	//lint:ignore sentinelcmp wrong analyzer name
	return time.Now()
}

func d() time.Time {
	//lint:ignore determinism
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "recon")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAll([]*Analyzer{Determinism}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	var open, suppressed, malformed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "repolint":
			malformed++
		case d.Suppressed:
			suppressed++
		default:
			open++
		}
	}
	// a and b are suppressed; c names the wrong analyzer and d's directive
	// is malformed (no reason), so both time.Now calls stay findings.
	if suppressed != 2 || open != 2 || malformed != 1 {
		t.Errorf("got open=%d suppressed=%d malformed=%d, want 2/2/1\n%v", open, suppressed, malformed, diags)
	}
}

// TestModuleRootAndLoad resolves this repository's own module and loads a
// package through the pattern path used by cmd/repolint.
func TestModuleRootAndLoad(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "singlingout" {
		t.Errorf("module path = %q, want singlingout", modPath)
	}
	pkgs, err := Load(root, modPath, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	var self, fixtures bool
	for _, p := range pkgs {
		if p.Path == "singlingout/internal/analysis" {
			self = true
		}
		if strings.Contains(p.Dir, "testdata") {
			fixtures = true
		}
	}
	if !self {
		t.Error("Load did not find singlingout/internal/analysis")
	}
	if fixtures {
		t.Error("Load must skip testdata fixtures, like the go tool")
	}
}
