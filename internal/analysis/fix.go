package analysis

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strconv"
)

// SuggestedFix is a machine-applicable repair attached to a Diagnostic:
// a set of byte-offset text edits that remove the finding. repolint -fix
// applies every unsuppressed fix, reformats, and rewrites the files;
// applying a fixed tree again must be a no-op (idempotence is tested).
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces file bytes [Start, End) with NewText. Offsets are
// resolved at report time (Pass.Edit), so edits survive serialization to
// -json and are applied without re-resolving positions.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// ApplyFixes applies the fixes of the given diagnostics and returns the
// new gofmt-formatted content of every changed file. Fixes whose edits
// overlap an already-accepted fix are skipped (identical edits — e.g.
// two findings both inserting the same import — are deduplicated
// first); a fix producing unparseable code is an error, never a written
// file.
func ApplyFixes(diags []Diagnostic) (map[string][]byte, int, error) {
	type edit struct {
		TextEdit
		fix int // accepted-fix ordinal, for conflict attribution
	}
	byFile := map[string][]edit{}
	applied := 0
	for _, d := range diags {
		if d.Fix == nil || d.Suppressed || len(d.Fix.Edits) == 0 {
			continue
		}
		// Accept the fix only if none of its edits conflicts with an
		// already-accepted, non-identical edit.
		ok := true
		for _, te := range d.Fix.Edits {
			for _, prev := range byFile[te.File] {
				if prev.TextEdit == te {
					continue // exact duplicate: harmless
				}
				if te.Start < prev.End && prev.Start < te.End {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		applied++
		for _, te := range d.Fix.Edits {
			dup := false
			for _, prev := range byFile[te.File] {
				if prev.TextEdit == te {
					dup = true
					break
				}
			}
			if !dup {
				byFile[te.File] = append(byFile[te.File], edit{te, applied})
			}
		}
	}
	out := map[string][]byte{}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		fixed := append([]byte(nil), src...)
		for _, e := range edits {
			if e.Start < 0 || e.End > len(fixed) || e.Start > e.End {
				return nil, 0, fmt.Errorf("analysis: fix edit out of range in %s: [%d,%d) of %d bytes", file, e.Start, e.End, len(fixed))
			}
			fixed = append(fixed[:e.Start], append([]byte(e.NewText), fixed[e.End:]...)...)
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: fixed %s does not parse (fix bug): %w", file, err)
		}
		if string(formatted) != string(src) {
			out[file] = formatted
		}
	}
	return out, applied, nil
}

// ImportEdit returns the TextEdit inserting an import of path into file
// f (in sorted position within the first import group), or ok=false when
// the file already imports it. Analyzers attach it alongside a fix that
// introduces a new package reference — e.g. the sentinelcmp rewrite to
// errors.Is needs "errors" imported.
func (p *Pass) ImportEdit(f *ast.File, path string) (TextEdit, bool) {
	if _, ok := ImportName(f, path); ok {
		return TextEdit{}, false
	}
	quoted := strconv.Quote(path)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// Grouped: insert before the first spec with a larger path,
			// or after the last spec.
			for _, spec := range gd.Specs {
				is := spec.(*ast.ImportSpec)
				if is.Path.Value > quoted {
					return p.Edit(is.Pos(), is.Pos(), quoted+"\n"), true
				}
			}
			last := gd.Specs[len(gd.Specs)-1].(*ast.ImportSpec)
			return p.Edit(last.End(), last.End(), "\n"+quoted), true
		}
		// Single non-grouped import: add another import line after it.
		return p.Edit(gd.End(), gd.End(), "\nimport "+quoted), true
	}
	// No imports at all: insert after the package clause.
	return p.Edit(f.Name.End(), f.Name.End(), "\n\nimport "+quoted), true
}
