package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is a forward taint engine over the CFG: a worklist fixpoint
// tracking which variables (types.Objects) may hold values derived from
// a source, reporting every sink call that receives one. It is
// parameterized by TaintSpec, so one engine serves any
// source/sink/sanitizer vocabulary (rawdataflow instantiates it with raw
// microdata sources and wire/journal/log sinks).
//
// Precision choices, deliberately conservative in the leak direction:
//
//   - assignments to a variable strongly update it; assignments through
//     a selector or index (s.f = x, m[k] = x) weakly taint the root;
//   - call results propagate taint from any tainted argument or method
//     receiver, unless the call is a Sanitizer or every result is a
//     non-Carrier type (scalars cannot transport microdata);
//   - function literals are walked flow-insensitively in the state at
//     their creation point: sinks inside closures are checked, taint
//     assigned inside them escapes to the enclosing state.

// TaintSpec parameterizes one taint analysis.
type TaintSpec struct {
	// Source reports whether the expression is inherently tainted
	// (independent of dataflow), e.g. any expression whose type is a raw
	// microdata type, or a call to a raw-data constructor.
	Source func(ast.Expr) bool
	// Sink inspects a call; when it is a sink it returns the indices of
	// the arguments that must be clean and a short description.
	Sink func(*ast.CallExpr) (args []int, desc string, ok bool)
	// Sanitizer reports calls whose results are clean regardless of
	// their arguments (sanctioned release paths). Optional.
	Sanitizer func(*ast.CallExpr) bool
	// Carrier reports whether a type can transport tainted data. When
	// nil every type carries. Types reported false (typically scalars)
	// terminate propagation: an aggregate statistic computed FROM raw
	// data is a release the mechanism sanctions, the rows are not.
	Carrier func(types.Type) bool
}

// TaintFinding is one sink call observed with a tainted argument.
type TaintFinding struct {
	Call *ast.CallExpr
	Arg  ast.Expr
	Desc string
}

// taintState is the per-program-point fact: the set of possibly-tainted
// objects.
type taintState map[types.Object]bool

func (s taintState) clone() taintState {
	c := make(taintState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s taintState) equal(o taintState) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

type taintEngine struct {
	info     *types.Info
	spec     TaintSpec
	findings []TaintFinding
	reported map[token.Pos]bool
}

// RunTaint runs the spec to fixpoint over one function's CFG and returns
// the sink violations. info may be partial; unresolved expressions are
// treated as clean (a missing type is indistinguishable from a scalar),
// which keeps fixture stubs and degraded type-checking quiet rather than
// noisy.
func RunTaint(info *types.Info, g *CFG, spec TaintSpec) []TaintFinding {
	e := &taintEngine{info: info, spec: spec, reported: map[token.Pos]bool{}}
	in := make([]taintState, len(g.Blocks))
	in[g.Entry.Index] = taintState{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		if in[blk.Index] == nil {
			continue
		}
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			e.transfer(n, out)
		}
		for _, succ := range blk.Succs {
			cur := in[succ.To.Index]
			if cur == nil {
				in[succ.To.Index] = out.clone()
				work = append(work, succ.To)
				continue
			}
			changed := false
			for k := range out {
				if !cur[k] {
					cur[k] = true
					changed = true
				}
			}
			if changed {
				work = append(work, succ.To)
			}
		}
	}
	// Re-run the transfer once per block at fixpoint to emit findings
	// with final states (findings are deduped by call position).
	e.findings = nil
	e.reported = map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		if in[blk.Index] == nil {
			continue
		}
		st := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			e.transfer(n, st)
		}
	}
	// Defers run at exit: check their calls in the exit state's
	// over-approximation (union of all states) — a tainted value handed
	// to a deferred sink still leaks.
	if len(g.Defers) > 0 {
		union := taintState{}
		for _, st := range in {
			for k := range st {
				union[k] = true
			}
		}
		for _, d := range g.Defers {
			e.scanExpr(d.Call, union)
		}
	}
	return e.findings
}

// transfer applies one node's effect to st, checking sinks on the way.
func (e *taintEngine) transfer(n ast.Node, st taintState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			e.scanExpr(rhs, st)
		}
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			t := e.tainted(n.Rhs[0], st)
			for _, lhs := range n.Lhs {
				e.assign(lhs, t, st)
			}
			return
		}
		for i, lhs := range n.Lhs {
			if i < len(n.Rhs) {
				e.assign(lhs, e.tainted(n.Rhs[i], st), st)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				e.scanExpr(v, st)
			}
			for i, name := range vs.Names {
				t := false
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					t = e.tainted(vs.Values[0], st)
				} else if i < len(vs.Values) {
					t = e.tainted(vs.Values[i], st)
				}
				e.assign(name, t, st)
			}
		}
	case *ast.RangeStmt:
		e.scanExpr(n.X, st)
		if e.tainted(n.X, st) {
			if n.Value != nil {
				// Element extraction moves the data itself, not a derived
				// aggregate: the bound variable is tainted even when its
				// type is scalar — each element of a raw bit-vector is
				// microdata, matching how xs[i] propagates.
				e.taintLHS(n.Value, st)
			}
			// Keys of maps can carry data; slice/array indices cannot.
			if n.Key != nil && e.info != nil {
				if tv, ok := e.info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						e.taintLHS(n.Key, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// Checked at exit in RunTaint; scanning here too catches taint
		// present at creation.
		e.scanExpr(n.Call, st)
	case *ast.GoStmt:
		e.scanExpr(n.Call, st)
	case *ast.ExprStmt:
		e.scanExpr(n.X, st)
	case *ast.SendStmt:
		e.scanExpr(n.Chan, st)
		e.scanExpr(n.Value, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			e.scanExpr(r, st)
		}
	case *ast.IncDecStmt:
		e.scanExpr(n.X, st)
	case ast.Expr:
		// Branch conditions, switch tags, case expressions.
		e.scanExpr(n, st)
	case ast.Stmt:
		// Type-switch assign clauses and other residual statements: scan
		// any contained expressions for sinks without state updates.
		ast.Inspect(n, func(x ast.Node) bool {
			if expr, ok := x.(ast.Expr); ok {
				e.scanExpr(expr, st)
				return false
			}
			return true
		})
	}
}

// assign updates st for `lhs = (tainted?)`.
func (e *taintEngine) assign(lhs ast.Expr, tainted bool, st taintState) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := e.objOf(lhs)
		if obj == nil {
			return
		}
		// A variable whose type cannot carry the data stays clean even
		// when the RHS is tainted: `n, err := f(rows)` taints neither the
		// count nor the error.
		if tainted && e.spec.Carrier != nil && obj.Type() != nil && !e.spec.Carrier(obj.Type()) {
			tainted = false
		}
		if tainted {
			st[obj] = true
		} else {
			delete(st, obj) // strong update: the variable now holds a clean value
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// Writing into a structure: weakly taint the root object (other
		// fields/elements may retain older taint, so never kill).
		if tainted {
			if obj := e.rootObj(lhs); obj != nil {
				st[obj] = true
			}
		}
	}
}

// taintLHS marks lhs tainted unconditionally, with no Carrier filter —
// reserved for bindings that hold the source data itself (range
// elements) rather than something computed from it.
func (e *taintEngine) taintLHS(lhs ast.Expr, st taintState) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := e.objOf(lhs); obj != nil {
			st[obj] = true
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if obj := e.rootObj(lhs); obj != nil {
			st[obj] = true
		}
	}
}

// rootObj digs to the base identifier of a selector/index/star chain.
func (e *taintEngine) rootObj(x ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			return e.objOf(v)
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			return nil
		}
	}
}

func (e *taintEngine) objOf(id *ast.Ident) types.Object {
	if e.info == nil {
		return nil
	}
	if obj := e.info.Uses[id]; obj != nil {
		return obj
	}
	return e.info.Defs[id]
}

// scanExpr walks an expression checking every call against the sink set
// (with the current state) and descending into function literals.
func (e *taintEngine) scanExpr(x ast.Expr, st taintState) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			e.checkSink(n, st)
		case *ast.FuncLit:
			// Flow-insensitive walk of the closure body in the creation
			// state: transfers apply (assignments inside may taint
			// captured variables) and sinks are checked.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return true // nested literals: keep descending
				case ast.Stmt:
					e.transfer(m, st)
				case *ast.CallExpr:
					e.checkSink(m, st)
				}
				return true
			})
			return false
		}
		return true
	})
}

// checkSink reports the call if it is a sink receiving a tainted arg.
func (e *taintEngine) checkSink(call *ast.CallExpr, st taintState) {
	args, desc, ok := e.spec.Sink(call)
	if !ok || e.reported[call.Lparen] {
		return
	}
	for _, i := range args {
		if i < len(call.Args) && e.tainted(call.Args[i], st) {
			e.reported[call.Lparen] = true
			e.findings = append(e.findings, TaintFinding{Call: call, Arg: call.Args[i], Desc: desc})
			return
		}
	}
	if len(args) == 0 { // sink over all arguments
		for _, a := range call.Args {
			if e.tainted(a, st) {
				e.reported[call.Lparen] = true
				e.findings = append(e.findings, TaintFinding{Call: call, Arg: a, Desc: desc})
				return
			}
		}
	}
}

// tainted evaluates whether x may hold source-derived data in state st.
func (e *taintEngine) tainted(x ast.Expr, st taintState) bool {
	if x == nil {
		return false
	}
	if e.spec.Source != nil && e.spec.Source(x) {
		return true
	}
	switch x := x.(type) {
	case *ast.Ident:
		obj := e.objOf(x)
		return obj != nil && st[obj]
	case *ast.ParenExpr:
		return e.tainted(x.X, st)
	case *ast.StarExpr:
		return e.tainted(x.X, st)
	case *ast.UnaryExpr:
		return e.tainted(x.X, st)
	case *ast.TypeAssertExpr:
		return e.tainted(x.X, st)
	case *ast.IndexExpr:
		return e.tainted(x.X, st)
	case *ast.SliceExpr:
		return e.tainted(x.X, st)
	case *ast.SelectorExpr:
		// A package-qualified name is never tainted by its qualifier.
		if id, ok := x.X.(*ast.Ident); ok && e.info != nil {
			if _, isPkg := e.info.Uses[id].(*types.PkgName); isPkg {
				return false
			}
		}
		return e.tainted(x.X, st) && e.carries(x)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if e.tainted(el, st) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return (e.tainted(x.X, st) || e.tainted(x.Y, st)) && e.carries(x)
	case *ast.CallExpr:
		if e.spec.Sanitizer != nil && e.spec.Sanitizer(x) {
			return false
		}
		if !e.carries(x) {
			return false
		}
		for _, a := range x.Args {
			if e.tainted(a, st) {
				return true
			}
		}
		// Method value on a tainted receiver: d.Clone(), d.Key(idx)…
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			return e.tainted(sel, st)
		}
		return false
	}
	return false
}

// carries applies the Carrier predicate to x's resolved type; untyped or
// unresolved expressions conservatively carry.
func (e *taintEngine) carries(x ast.Expr) bool {
	if e.spec.Carrier == nil || e.info == nil {
		return true
	}
	tv, ok := e.info.Types[x]
	if !ok || tv.Type == nil {
		return true
	}
	return e.spec.Carrier(tv.Type)
}

// ScalarCarrier is the standard Carrier: booleans, numbers, and error
// values cannot transport microdata rows — aggregate statistics and
// diagnostics are exactly the releases the mechanism sanctions.
// Everything else (strings, slices, maps, structs, non-error
// interfaces, pointers, channels, functions) can.
func ScalarCarrier(t types.Type) bool {
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true
	}
	return basic.Info()&(types.IsBoolean|types.IsNumeric) == 0
}
