package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file threads go/types information into a Pass without leaving the
// standard library. The package under analysis is type-checked against
// its own parsed ASTs (so types.Info entries are keyed by the exact
// nodes the analyzers walk); its imports are resolved by a shared,
// process-wide checker that type-checks module-local dependencies from
// source via Package.Resolver and falls back to the stdlib source
// importer for everything else.
//
// Checking is deliberately tolerant: fixtures reference stub packages,
// and a partial types.Info is far more useful to a dataflow analyzer
// than no Info at all. Every error is swallowed, unresolvable imports
// become empty placeholder packages, and analyzers must treat missing
// Info entries as "unknown" rather than assuming resolution succeeded.

// EnsureTypes populates pkg.Types and pkg.Info (best effort, idempotent).
// Only non-test files are checked: external _test packages would make
// the file set ill-formed, and the dataflow invariants police production
// code anyway — analyzers using type info must skip f.Test files.
func (p *Package) EnsureTypes() {
	if p.checked {
		return
	}
	p.checked = true
	var files []*ast.File
	for _, f := range p.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		return
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &tolerantImporter{resolve: p.Resolver},
		Error:    func(error) {}, // collect-and-continue: partial Info beats none
	}
	// Check returns a usable (partial) package even when it also returns
	// an error; both the error and any panic from the importer chain are
	// deliberately dropped.
	func() {
		defer func() { _ = recover() }()
		p.Types, _ = conf.Check(p.Path, p.Fset, files, p.Info)
	}()
}

// sharedImports caches type-checked dependencies (stdlib and
// module-local) across every package EnsureTypes touches in the process:
// repolint ./... type-checks the net/http closure once, not once per
// analyzed package.
var sharedImports = struct {
	mu   sync.Mutex
	fset *token.FileSet
	std  types.Importer
	// byDir memoizes module-local (resolver-supplied) packages by
	// directory; byPath memoizes stdlib importer results.
	byDir  map[string]*types.Package
	byPath map[string]*types.Package
}{
	fset:   token.NewFileSet(),
	byDir:  map[string]*types.Package{},
	byPath: map[string]*types.Package{},
}

// tolerantImporter resolves imports for one package under analysis. It
// never returns an error: an unresolvable or cyclic import yields an
// empty placeholder package, degrading the analysis instead of aborting
// it.
type tolerantImporter struct {
	resolve func(string) (string, bool)
}

func (ti *tolerantImporter) Import(importPath string) (*types.Package, error) {
	sharedImports.mu.Lock()
	defer sharedImports.mu.Unlock()
	return importLocked(importPath, ti.resolve), nil
}

// importLocked resolves one import under the sharedImports lock,
// recursing for module-local dependency chains.
func importLocked(importPath string, resolve func(string) (string, bool)) *types.Package {
	if resolve != nil {
		if dir, ok := resolve(importPath); ok {
			return checkDirLocked(importPath, dir, resolve)
		}
	}
	if pkg, ok := sharedImports.byPath[importPath]; ok {
		return pkg
	}
	pkg := stdlibImport(importPath)
	if pkg == nil {
		pkg = placeholder(importPath)
	}
	sharedImports.byPath[importPath] = pkg
	return pkg
}

// stdlibImport type-checks a non-module package via the stdlib source
// importer, converting any error or panic into nil.
func stdlibImport(importPath string) (pkg *types.Package) {
	defer func() { _ = recover() }()
	if sharedImports.std == nil {
		sharedImports.std = importer.ForCompiler(sharedImports.fset, "source", nil)
	}
	pkg, err := sharedImports.std.Import(importPath)
	if err != nil {
		return nil
	}
	return pkg
}

// checkDirLocked type-checks the non-test files of one resolver-supplied
// directory, memoized. A dependency cycle (impossible in compiling Go,
// possible in broken fixtures) resolves to a placeholder.
func checkDirLocked(importPath, dir string, resolve func(string) (string, bool)) *types.Package {
	if pkg, ok := sharedImports.byDir[dir]; ok {
		if pkg == nil { // in progress: cycle
			return placeholder(importPath)
		}
		return pkg
	}
	sharedImports.byDir[dir] = nil // mark in progress
	pkg := func() (pkg *types.Package) {
		defer func() { _ = recover() }()
		files, err := parseDirNonTest(sharedImports.fset, dir)
		if err != nil || len(files) == 0 {
			return nil
		}
		conf := types.Config{
			Importer: importFunc(func(p string) (*types.Package, error) {
				return importLocked(p, resolve), nil
			}),
			Error: func(error) {},
		}
		pkg, _ = conf.Check(importPath, sharedImports.fset, files, nil)
		return pkg
	}()
	if pkg == nil {
		pkg = placeholder(importPath)
	}
	sharedImports.byDir[dir] = pkg
	return pkg
}

// parseDirNonTest parses every non-test .go file directly in dir.
func parseDirNonTest(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// placeholder is an empty, complete package standing in for an import
// that could not be type-checked; references into it simply fail to
// resolve, which the tolerant Check config absorbs.
func placeholder(importPath string) *types.Package {
	pkg := types.NewPackage(importPath, path.Base(importPath))
	pkg.MarkComplete()
	return pkg
}

// importFunc adapts a function to types.Importer.
type importFunc func(string) (*types.Package, error)

func (f importFunc) Import(path string) (*types.Package, error) { return f(path) }

// NamedFrom reports whether t is (or points/aliases to) a named type
// declared in package pkgPath with one of the given names. It unwraps
// pointers but deliberately not slices/maps — callers wanting element
// matching use ElemNamedFrom.
func NamedFrom(t types.Type, pkgPath string, names map[string]bool) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && (names == nil || names[obj.Name()])
}

// ElemNamedFrom reports whether t transports values matching NamedFrom:
// the type itself, or the element type of a slice/array/map/chan/pointer
// chain around it.
func ElemNamedFrom(t types.Type, pkgPath string, names map[string]bool) bool {
	for i := 0; i < 8 && t != nil; i++ {
		if NamedFrom(t, pkgPath, names) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

// CalleeFunc resolves the called function or method of call via the
// pass's type info (nil when unresolved or not a static callee).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	if p.TypesInfo == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// FuncPkgPath returns the declaring package path of fn ("" for
// builtins/universe).
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// RecvNamed returns the name of fn's receiver's named type ("" when fn
// is not a method or the receiver type is unnamed).
func RecvNamed(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
