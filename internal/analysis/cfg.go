package analysis

import (
	"go/ast"
	"go/token"
)

// This file is a lightweight intra-procedural control-flow graph over
// go/ast, built for the dataflow analyzers (taint.go, budgetflow,
// lockdiscipline, walorder). It models exactly what those passes need:
//
//   - basic blocks of simple statements and the condition expressions
//     that guard branches;
//   - condition-labeled edges (Edge.Cond/Neg), so a pass can refine its
//     state along the true vs false arm of `if err != nil` — the
//     difference between "the spend failed, nothing moved" and "the
//     spend stuck";
//   - return edges into a synthetic Exit block, and the function's defer
//     statements collected on the side (defers run at every exit).
//
// Not modeled: goto (absent from this repository; a goto conservatively
// jumps to Exit), and panic/recover edges. Function literals are NOT
// inlined — the literal appears as a node in the block where it is
// created, and each engine decides how to treat its body.

// CFG is one function body's control-flow graph. Blocks[0] is the entry.
type CFG struct {
	Entry  *Block
	Exit   *Block // synthetic; every return and the final fallthrough land here
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// Block is a straight-line run of AST nodes. Nodes hold simple
// statements plus the guard expressions of any branch that terminates
// the block (an if/for/switch condition is *in* the block that evaluates
// it, so expression-level effects like function calls are visible).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// Edge is one control transfer. Cond, when non-nil, is the branch
// condition the transfer depends on; Neg marks the edge taken when Cond
// evaluates false.
type Edge struct {
	To   *Block
	Cond ast.Expr
	Neg  bool
}

// NewCFG builds the CFG of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: map[string]*labelTarget{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmt(body)
	b.jump(b.g.Exit)
	return b.g
}

// Reachable returns the set of blocks reachable from `from`, including
// itself.
func (g *CFG) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{from: true}
	work := []*Block{from}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range blk.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

type labelTarget struct {
	brk, cont *Block
}

type cfgBuilder struct {
	g   *CFG
	cur *Block

	breaks    []*Block // innermost-last break targets (loops, switch, select)
	continues []*Block // innermost-last continue targets (loops)

	labels       map[string]*labelTarget
	pendingLabel string // label naming the next loop/switch/select
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// edge adds from→to with the given condition label.
func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, neg bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Neg: neg})
}

// jump ends the current block with an unconditional transfer and leaves
// the builder in a fresh (possibly unreachable) block.
func (b *cfgBuilder) jump(to *Block) {
	b.edge(b.cur, to, nil, false)
	b.cur = b.newBlock()
}

// takeLabel consumes the pending label for the statement that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	if cont != nil {
		b.continues = append(b.continues, cont)
	}
	if label != "" {
		b.labels[label] = &labelTarget{brk: brk, cont: cont}
	}
}

func (b *cfgBuilder) popLoop(hasCont bool) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if hasCont {
		b.continues = b.continues[:len(b.continues)-1]
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cond, then, s.Cond, false)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after, nil, false)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els, s.Cond, true)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after, nil, false)
		} else {
			b.edge(cond, after, s.Cond, true)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.edge(b.cur, head, nil, false)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, body, s.Cond, false)
			b.edge(head, after, s.Cond, true)
		} else {
			b.edge(head, body, nil, false)
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont, nil, false)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(post, head, nil, false)
		}
		b.popLoop(true)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head, nil, false)
		b.cur = head
		b.add(s) // the whole range clause: X evaluation + Key/Value binding
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head, nil, false)
		b.popLoop(true)
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body, func(cc *ast.CaseClause) ([]ast.Stmt, []ast.Expr, bool) {
			return cc.Body, cc.List, cc.List == nil
		})
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body, func(cc *ast.CaseClause) ([]ast.Stmt, []ast.Expr, bool) {
			return cc.Body, nil, cc.List == nil
		})
	case *ast.SelectStmt:
		label := b.takeLabel()
		entry := b.cur
		after := b.newBlock()
		b.pushLoop(label, after, nil)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(entry, blk, nil, false)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.edge(b.cur, after, nil, false)
		}
		b.popLoop(false)
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s, false); t != nil {
				b.jump(t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s, true); t != nil {
				b.jump(t)
			}
		case token.GOTO:
			b.jump(b.g.Exit) // conservative: no goto in this repository
		case token.FALLTHROUGH:
			// handled structurally by caseClauses
		}
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	default:
		// ExprStmt, AssignStmt, DeclStmt, SendStmt, IncDecStmt, GoStmt,
		// EmptyStmt: straight-line.
		b.add(s)
	}
}

// branchTarget resolves a break/continue to its block.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, cont bool) *Block {
	if s.Label != nil {
		if t := b.labels[s.Label.Name]; t != nil {
			if cont {
				return t.cont
			}
			return t.brk
		}
		return b.g.Exit // unknown label: conservative
	}
	if cont {
		if len(b.continues) == 0 {
			return b.g.Exit
		}
		return b.continues[len(b.continues)-1]
	}
	if len(b.breaks) == 0 {
		return b.g.Exit
	}
	return b.breaks[len(b.breaks)-1]
}

// caseClauses builds the shared switch/type-switch shape: the entry
// block branches to every case body, fallthrough chains to the next
// body, and a missing default adds an entry→after edge.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt, split func(*ast.CaseClause) ([]ast.Stmt, []ast.Expr, bool)) {
	entry := b.cur
	after := b.newBlock()
	b.pushLoop(label, after, nil)
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(entry, blocks[i], nil, false)
		if _, _, isDefault := split(cc); isDefault {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		stmts, exprs, _ := split(cc)
		b.cur = blocks[i]
		for _, e := range exprs {
			b.add(e)
		}
		falls := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1], nil, false)
		} else {
			b.edge(b.cur, after, nil, false)
		}
	}
	if !hasDefault {
		b.edge(entry, after, nil, false)
	}
	b.popLoop(false)
	b.cur = after
}

// InspectHead visits the expressions a block node evaluates itself,
// without re-descending into nested statements that the CFG places in
// their own blocks: a RangeStmt appears whole in its head block, but
// only Key/Value/X belong to the head — the body's statements are
// visited via their own blocks. Every other node type is fully
// contained in its block and is walked as-is.
func InspectHead(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
			if e != nil {
				ast.Inspect(e, fn)
			}
		}
		return
	}
	ast.Inspect(n, fn)
}

// FuncBodies yields every function body in file f that has one —
// declarations and, when inlineLits is set, function literals — paired
// with the enclosing declaration name for diagnostics.
func FuncBodies(f *ast.File, inlineLits bool) []FuncBody {
	var out []FuncBody
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncBody{Name: fd.Name.Name, Decl: fd, Body: fd.Body})
		if inlineLits {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, FuncBody{Name: fd.Name.Name + ".func", Body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

// FuncBody is one analyzable body: a declared function or a literal.
type FuncBody struct {
	Name string
	Decl *ast.FuncDecl // nil for literals
	Body *ast.BlockStmt
}
