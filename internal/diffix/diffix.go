// Package diffix re-implements the anonymizing query interface attacked
// by Cohen and Nissim in "Linear Program Reconstruction in Practice" ([13]
// in the paper): a Diffix-style "cloak" that answers counting queries with
// sticky noise (the same query always gets the same noise, to block
// averaging attacks) and refuses to answer queries over small user sets
// (low-count suppression). The package then demonstrates that these two
// defenses do not prevent linear-program reconstruction of the protected
// attribute.
package diffix

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"singlingout/internal/query"
	"singlingout/internal/recon"
)

// ErrSuppressed is the sentinel for queries over too few users (low-count
// suppression). The Cloak and the query service's diffix backend wrap it,
// so call sites match with errors.Is.
var ErrSuppressed = errors.New("diffix: bucket suppressed (too few users)")

// Cloak is the anonymizing query interface. It implements query.Oracle,
// so the reconstruction attacks in package recon run against it unchanged
// — in-process or behind the query service's diffix endpoint. Its answers
// are deterministic in (Seed, query set) and the statistics counters are
// atomic, so a Cloak may serve concurrent analysts.
type Cloak struct {
	// X is the protected binary attribute per user.
	X []int64
	// SD is the sticky noise standard deviation (Diffix layers a few
	// Gaussian noise terms; we model their sum).
	SD float64
	// Threshold is the low-count suppression bound: queries naming fewer
	// users are refused.
	Threshold int
	// Seed keys the sticky-noise PRF.
	Seed int64

	queries    atomic.Int64
	suppressed atomic.Int64
}

// N implements query.Oracle.
func (c *Cloak) N() int { return len(c.X) }

// Queries returns the number of answered queries (statistic).
func (c *Cloak) Queries() int { return int(c.queries.Load()) }

// Suppressed returns the number of refused queries (statistic).
func (c *Cloak) Suppressed() int { return int(c.suppressed.Load()) }

// Answer implements query.Oracle: each query is answered with the count
// of flagged users among q plus sticky noise, or refused with a wrapped
// ErrSuppressed. The batch fails as a unit on the first refused or
// malformed query.
func (c *Cloak) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	out := make([]float64, len(queries))
	for qi, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, err := c.answerOne(q)
		if err != nil {
			return nil, err
		}
		out[qi] = a
	}
	return out, nil
}

// answerOne is the per-query cloak: suppression, validation, sticky noise.
func (c *Cloak) answerOne(q []int) (float64, error) {
	if len(q) < c.Threshold {
		c.suppressed.Add(1)
		return 0, fmt.Errorf("%w: %d < %d", ErrSuppressed, len(q), c.Threshold)
	}
	// Same well-formedness contract as the query package's oracles: a
	// duplicated user would be counted twice here but once by the LP
	// decoder's coefficient rows, so the query is rejected instead.
	if err := query.ValidateQuery(len(c.X), q); err != nil {
		return 0, fmt.Errorf("diffix: %w", err)
	}
	var sum int64
	h := uint64(c.Seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for _, i := range q {
		sum += c.X[i]
		// Order-independent sticky hash of the query set: queries are
		// canonical (sorted index sets), so mixing sequentially is stable.
		h ^= (uint64(i) + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		h *= 0x94d049bb133111eb
	}
	c.queries.Add(1)
	// Sticky noise: deterministic in the query set.
	rng := rand.New(rand.NewSource(int64(h)))
	return float64(sum) + rng.NormFloat64()*c.SD, nil
}

// AttackResult summarizes a reconstruction attack against a Cloak.
type AttackResult struct {
	// QueriesIssued is the number of answered queries used.
	QueriesIssued int
	// HammingError is the fraction of users whose protected bit was
	// reconstructed incorrectly.
	HammingError float64
	// MeanAbsResidual is the LP's mean per-query violation (diagnostic).
	MeanAbsResidual float64
}

// Attack mounts the Cohen–Nissim LP reconstruction: it issues m random
// subset queries that are large enough to evade suppression, then solves
// the L1-fitting linear program for the protected bits.
func Attack(ctx context.Context, rng *rand.Rand, c *Cloak, m int) (AttackResult, []int64, error) {
	n := c.N()
	if m <= 0 {
		return AttackResult{}, nil, fmt.Errorf("diffix: need a positive query count")
	}
	queries := make([][]int, 0, m)
	for len(queries) < m {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				q = append(q, i)
			}
		}
		if len(q) < c.Threshold {
			continue // would be suppressed; the attacker skips it
		}
		queries = append(queries, q)
	}
	guess, frac, err := recon.LPDecode(ctx, query.Instrument(c, nil), queries, recon.L1Slack)
	if err != nil {
		return AttackResult{}, nil, fmt.Errorf("diffix: %w", err)
	}
	res := AttackResult{
		QueriesIssued: len(queries),
		HammingError:  recon.HammingError(c.X, guess),
	}
	// Residual diagnostic: replay the sticky answers against the LP's
	// fractional solution.
	replay, err := c.Answer(ctx, queries) // sticky: same answers as during the attack
	if err != nil {
		return AttackResult{}, nil, err
	}
	var resid float64
	for qi, q := range queries {
		s := 0.0
		for _, i := range q {
			s += frac[i]
		}
		resid += math.Abs(replay[qi] - s)
	}
	res.MeanAbsResidual = resid / float64(len(queries))
	return res, guess, nil
}

// StickinessCheck verifies the averaging defense: issuing the same query
// repeatedly must return the identical answer. It returns an error if two
// answers differ (which would indicate the defense is broken).
func StickinessCheck(ctx context.Context, c *Cloak, q []int, repeats int) error {
	if repeats <= 0 {
		return nil
	}
	batch := make([][]int, repeats)
	for i := range batch {
		batch[i] = q
	}
	answers, err := c.Answer(ctx, batch)
	if err != nil {
		return err
	}
	for _, a := range answers[1:] {
		if a != answers[0] {
			return fmt.Errorf("diffix: sticky noise broken: %v != %v", a, answers[0])
		}
	}
	return nil
}

var _ query.Oracle = (*Cloak)(nil)
