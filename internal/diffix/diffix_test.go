package diffix

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"singlingout/internal/query"
	"singlingout/internal/synth"
)

var ctx = context.Background()

func TestStickyNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := &Cloak{X: synth.BinaryDataset(rng, 50, 0.5), SD: 2, Threshold: 5, Seed: 7}
	q := []int{0, 3, 7, 9, 12, 20}
	if err := StickinessCheck(ctx, c, q, 10); err != nil {
		t.Fatal(err)
	}
	// A different query gets (almost surely) different noise.
	a1, _ := query.AnswerOne(ctx, c, q)
	a2, _ := query.AnswerOne(ctx, c, []int{0, 3, 7, 9, 12, 21})
	if a1 == a2 {
		t.Error("distinct queries returned identical answers (suspicious)")
	}
	// Different seeds decorrelate answers to the same query.
	c2 := &Cloak{X: c.X, SD: 2, Threshold: 5, Seed: 8}
	b1, _ := query.AnswerOne(ctx, c2, q)
	if b1 == a1 {
		t.Error("different cloak seeds returned identical noise")
	}
}

func TestSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := &Cloak{X: synth.BinaryDataset(rng, 50, 0.5), SD: 1, Threshold: 10, Seed: 1}
	_, err := query.AnswerOne(ctx, c, []int{1, 2, 3})
	if !errors.Is(err, ErrSuppressed) {
		t.Fatalf("want suppression, got %v", err)
	}
	if c.Suppressed() != 1 {
		t.Errorf("Suppressed = %d", c.Suppressed())
	}
	if _, err := query.AnswerOne(ctx, c, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Errorf("large query should be answered: %v", err)
	}
	if c.Queries() != 1 {
		t.Errorf("Queries = %d", c.Queries())
	}
	if _, err := query.AnswerOne(ctx, c, make([]int, 11)); err == nil {
		// all zeros: index 0 repeated — a malformed query the cloak must
		// reject, like every other oracle (it would count user 0 eleven
		// times while the LP decoder counts them once).
		t.Error("duplicate-index query should fail")
	} else if !errors.Is(err, query.ErrInvalidQuery) {
		t.Errorf("malformed query should wrap ErrInvalidQuery, got %v", err)
	}
	bad := make([]int, 12)
	bad[3] = 99
	if _, err := query.AnswerOne(ctx, c, bad); err == nil {
		t.Error("out-of-range user should fail")
	}
}

func TestAnswerBatchFailsAsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := &Cloak{X: synth.BinaryDataset(rng, 30, 0.5), SD: 1, Threshold: 5, Seed: 2}
	// Second query is below the suppression threshold: the whole batch
	// is refused and no answers leak.
	if _, err := c.Answer(ctx, [][]int{{0, 1, 2, 3, 4, 5}, {0}}); !errors.Is(err, ErrSuppressed) {
		t.Fatalf("want suppression for the batch, got %v", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Answer(cancelled, [][]int{{0, 1, 2, 3, 4, 5}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAttackReconstructs(t *testing.T) {
	// The headline result of [13]: sticky noise + suppression do not
	// prevent LP reconstruction.
	rng := rand.New(rand.NewSource(3))
	n := 64
	c := &Cloak{X: synth.BinaryDataset(rng, n, 0.5), SD: 1.5, Threshold: 8, Seed: 99}
	res, guess, err := Attack(ctx, rng, c, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 4*n {
		t.Errorf("QueriesIssued = %d", res.QueriesIssued)
	}
	if len(guess) != n {
		t.Fatalf("guess length %d", len(guess))
	}
	if res.HammingError > 0.12 {
		t.Errorf("reconstruction error = %v, want <= 0.12", res.HammingError)
	}
	if res.MeanAbsResidual > 3*c.SD {
		t.Errorf("mean residual = %v suspiciously large", res.MeanAbsResidual)
	}
}

func TestAttackFailsUnderHugeNoise(t *testing.T) {
	// Enough noise does defeat the attack — the "fundamental law" has two
	// sides. (Diffix's actual noise was far too small for its n.)
	rng := rand.New(rand.NewSource(4))
	n := 48
	c := &Cloak{X: synth.BinaryDataset(rng, n, 0.5), SD: float64(n), Threshold: 8, Seed: 5}
	res, _, err := Attack(ctx, rng, c, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.HammingError < 0.15 {
		t.Errorf("error = %v under SD=n noise; expected reconstruction to fail", res.HammingError)
	}
}

func TestAttackValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := &Cloak{X: []int64{0, 1}, SD: 1, Threshold: 1, Seed: 1}
	if _, _, err := Attack(ctx, rng, c, 0); err == nil {
		t.Error("zero queries should fail")
	}
}
