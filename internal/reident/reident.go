// Package reident implements the re-identification attacks the paper's
// introduction surveys: Sweeney's quasi-identifier uniqueness analysis and
// linkage attack on de-identified microdata (the GIC episode), and a
// Narayanan–Shmatikov style scoreboard attack on sparse ratings data (the
// Netflix episode).
package reident

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

// UniquenessReport summarizes how identifying a quasi-identifier
// combination is within a dataset.
type UniquenessReport struct {
	// Records is the dataset size.
	Records int
	// Unique counts records whose QI combination appears exactly once —
	// Sweeney's headline statistic ("87% of the US population is unique
	// under (ZIP, birth date, sex)").
	Unique int
	// ClassSizes histograms QI-combination multiplicities: ClassSizes[s]
	// is the number of combinations shared by exactly s records.
	ClassSizes map[int]int
}

// UniqueFraction returns Unique / Records.
func (u UniquenessReport) UniqueFraction() float64 {
	if u.Records == 0 {
		return 0
	}
	return float64(u.Unique) / float64(u.Records)
}

// Uniqueness measures QI uniqueness of the dataset under the given
// attribute indices.
func Uniqueness(d *dataset.Dataset, qi []int) UniquenessReport {
	counts := map[string]int{}
	for _, r := range d.Rows {
		counts[r.Key(qi)]++
	}
	rep := UniquenessReport{Records: d.Len(), ClassSizes: map[int]int{}}
	for _, c := range counts {
		rep.ClassSizes[c]++
		if c == 1 {
			rep.Unique += c
		}
	}
	return rep
}

// LinkageResult summarizes a Sweeney-style linkage attack.
type LinkageResult struct {
	// Released is the number of de-identified records attacked.
	Released int
	// UniqueMatches counts released records matching exactly one registry
	// identity on the QI.
	UniqueMatches int
	// Correct counts unique matches that identify the right person.
	Correct int
}

// MatchRate returns UniqueMatches / Released.
func (l LinkageResult) MatchRate() float64 {
	if l.Released == 0 {
		return 0
	}
	return float64(l.UniqueMatches) / float64(l.Released)
}

// Precision returns Correct / UniqueMatches.
func (l LinkageResult) Precision() float64 {
	if l.UniqueMatches == 0 {
		return 0
	}
	return float64(l.Correct) / float64(l.UniqueMatches)
}

// Linkage mounts the GIC attack: released is a de-identified dataset whose
// row indices coincide with population identities (names redacted but rows
// intact, as in the GIC release); registry is an identified dataset built
// by synth.Registry. Records are matched on the shared quasi-identifiers
// (ZIP, birth date, sex).
func Linkage(released *dataset.Dataset, registry *dataset.Dataset) (LinkageResult, error) {
	relQI, err := indicesOf(released.Schema, synth.AttrZIP, synth.AttrBirthDate, synth.AttrSex)
	if err != nil {
		return LinkageResult{}, err
	}
	regQI, err := indicesOf(registry.Schema, synth.AttrZIP, synth.AttrBirthDate, synth.AttrSex)
	if err != nil {
		return LinkageResult{}, err
	}
	pid := registry.Schema.MustIndex(synth.RegistryPersonID)
	regIndex := map[string][]int64{}
	for _, row := range registry.Rows {
		key := fmt.Sprintf("%d|%d|%d|", row[regQI[0]], row[regQI[1]], row[regQI[2]])
		regIndex[key] = append(regIndex[key], row[pid])
	}
	var res LinkageResult
	for i, row := range released.Rows {
		res.Released++
		key := fmt.Sprintf("%d|%d|%d|", row[relQI[0]], row[relQI[1]], row[relQI[2]])
		cands := regIndex[key]
		if len(cands) != 1 {
			continue
		}
		res.UniqueMatches++
		if cands[0] == int64(i) {
			res.Correct++
		}
	}
	return res, nil
}

func indicesOf(s *dataset.Schema, names ...string) ([]int, error) {
	out := make([]int, len(names))
	for j, n := range names {
		i, ok := s.Index(n)
		if !ok {
			return nil, fmt.Errorf("reident: schema lacks attribute %q", n)
		}
		out[j] = i
	}
	return out, nil
}

// AuxiliaryRating is a noisy observation of a target's rating, the
// attacker's background knowledge in the scoreboard attack (e.g. from
// public IMDb reviews: correct movie, approximate date, approximate
// stars).
type AuxiliaryRating struct {
	Movie     int
	Stars     int
	Day       int
	StarsSlop int // |observed - true| stars tolerance
	DaySlop   int // |observed - true| days tolerance
}

// Scoreboard is the Narayanan–Shmatikov de-anonymization scorer over a
// released (pseudonymized) ratings matrix.
type Scoreboard struct {
	Released *synth.Ratings
	// StarsSlop and DaySlop define when an auxiliary rating "matches" a
	// released rating.
	StarsSlop int
	DaySlop   int
	// Eccentricity is the minimum gap, in standard deviations of the
	// score distribution, between best and second-best candidate for a
	// match to be declared (1.5 in the original paper).
	Eccentricity float64
}

// scoreUser computes the similarity between the auxiliary information and
// one released user's ratings: each matching movie contributes weight
// inversely log-proportional to the movie's popularity (rare movies are
// strong identifiers).
func (sb *Scoreboard) scoreUser(aux []AuxiliaryRating, user []synth.Rating, popularity []int) float64 {
	byMovie := map[int]synth.Rating{}
	for _, r := range user {
		byMovie[r.Movie] = r
	}
	score := 0.0
	for _, a := range aux {
		r, ok := byMovie[a.Movie]
		if !ok {
			continue
		}
		if abs(r.Stars-a.Stars) > sb.StarsSlop+a.StarsSlop {
			continue
		}
		if abs(r.Day-a.Day) > sb.DaySlop+a.DaySlop {
			continue
		}
		p := popularity[a.Movie]
		if p < 1 {
			p = 1
		}
		score += 1 / math.Log(1+float64(p))
	}
	return score
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Identify runs the scoreboard over all released users and returns the
// best candidate index, or -1 if the best score is not sufficiently
// eccentric (the algorithm's abstention rule).
func (sb *Scoreboard) Identify(aux []AuxiliaryRating) int {
	popularity := make([]int, sb.Released.NumMovies)
	for _, user := range sb.Released.ByUser {
		for _, r := range user {
			popularity[r.Movie]++
		}
	}
	scores := make([]float64, sb.Released.NumUsers)
	for u, user := range sb.Released.ByUser {
		scores[u] = sb.scoreUser(aux, user, popularity)
	}
	best, second := -1, -1
	for u, s := range scores {
		switch {
		case best < 0 || s > scores[best]:
			second = best
			best = u
		case second < 0 || s > scores[second]:
			second = u
		}
	}
	if best < 0 || scores[best] == 0 {
		return -1
	}
	// Eccentricity test: (best - second) / stddev(scores).
	sd := stddev(scores)
	if sd == 0 {
		return -1
	}
	secondScore := 0.0
	if second >= 0 {
		secondScore = scores[second]
	}
	if (scores[best]-secondScore)/sd < sb.Eccentricity {
		return -1
	}
	return best
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)-1))
}

// SampleAuxiliary simulates the attacker's background knowledge about a
// target user: k of the target's ratings chosen at random, with stars and
// days perturbed within the given slops (some knowledge is imprecise, as
// in the original attack's IMDb matching).
func SampleAuxiliary(rng *rand.Rand, ratings *synth.Ratings, user, k, starsSlop, daySlop int) []AuxiliaryRating {
	rs := ratings.ByUser[user]
	idx := rng.Perm(len(rs))
	if k > len(rs) {
		k = len(rs)
	}
	aux := make([]AuxiliaryRating, 0, k)
	for _, i := range idx[:k] {
		r := rs[i]
		aux = append(aux, AuxiliaryRating{
			Movie:     r.Movie,
			Stars:     clamp(r.Stars+rng.Intn(2*starsSlop+1)-starsSlop, 1, 5),
			Day:       r.Day + rng.Intn(2*daySlop+1) - daySlop,
			StarsSlop: starsSlop,
			DaySlop:   daySlop,
		})
	}
	sort.Slice(aux, func(i, j int) bool { return aux[i].Movie < aux[j].Movie })
	return aux
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DeAnonymizationRate runs the scoreboard attack against `targets` random
// users with k auxiliary ratings each and returns the fraction correctly
// identified and the fraction incorrectly identified (non-abstaining but
// wrong).
func DeAnonymizationRate(rng *rand.Rand, ratings *synth.Ratings, sb *Scoreboard, targets, k int) (correct, wrong float64) {
	if targets <= 0 {
		return 0, 0
	}
	nCorrect, nWrong := 0, 0
	for t := 0; t < targets; t++ {
		user := rng.Intn(ratings.NumUsers)
		aux := SampleAuxiliary(rng, ratings, user, k, sb.StarsSlop, sb.DaySlop)
		got := sb.Identify(aux)
		switch {
		case got == user:
			nCorrect++
		case got >= 0:
			nWrong++
		}
	}
	return float64(nCorrect) / float64(targets), float64(nWrong) / float64(targets)
}
