package reident

import (
	"math/rand"
	"testing"

	"singlingout/internal/dataset"
	"singlingout/internal/synth"
)

func TestUniquenessSweeneyStyle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 10000, ZIPs: 20, BlocksPerZIP: 10})
	qi := []int{
		pop.Schema.MustIndex(synth.AttrZIP),
		pop.Schema.MustIndex(synth.AttrBirthDate),
		pop.Schema.MustIndex(synth.AttrSex),
	}
	rep := Uniqueness(pop, qi)
	if rep.Records != 10000 {
		t.Fatalf("Records = %d", rep.Records)
	}
	// The paper: (ZIP, birth date, sex) is unique for a vast majority.
	if rep.UniqueFraction() < 0.85 {
		t.Errorf("unique fraction = %v, want >= 0.85", rep.UniqueFraction())
	}
	// Class-size histogram must account for every record.
	total := 0
	for size, count := range rep.ClassSizes {
		total += size * count
	}
	if total != 10000 {
		t.Errorf("class sizes cover %d records", total)
	}
}

func TestUniquenessCoarseQILessUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 10000, ZIPs: 5, BlocksPerZIP: 5})
	zipI := pop.Schema.MustIndex(synth.AttrZIP)
	sexI := pop.Schema.MustIndex(synth.AttrSex)
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	fine := Uniqueness(pop, []int{zipI, pop.Schema.MustIndex(synth.AttrBirthDate), sexI})
	coarse := Uniqueness(pop, []int{zipI, ageI, sexI})
	if coarse.UniqueFraction() >= fine.UniqueFraction() {
		t.Errorf("coarse QI (%v) should be less unique than fine QI (%v)",
			coarse.UniqueFraction(), fine.UniqueFraction())
	}
	if got := Uniqueness(dataset.New(pop.Schema), []int{zipI}); got.UniqueFraction() != 0 {
		t.Error("empty dataset should report 0")
	}
}

func TestLinkageGICAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, _ := synth.Population(rng, synth.PopulationConfig{N: 8000, ZIPs: 15, BlocksPerZIP: 10})
	reg, _ := synth.Registry(rng, pop, 0.6)
	res, err := Linkage(pop, reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != 8000 {
		t.Fatalf("Released = %d", res.Released)
	}
	// With 60% registry coverage, roughly coverage × uniqueness of the
	// released population should uniquely match.
	if res.MatchRate() < 0.4 {
		t.Errorf("match rate = %v, want >= 0.4", res.MatchRate())
	}
	// Unique QI matches are correct identifications unless two people
	// share a QI combination; precision should be near 1.
	if res.Precision() < 0.98 {
		t.Errorf("precision = %v, want ~1", res.Precision())
	}
	if res.Correct > res.UniqueMatches || res.UniqueMatches > res.Released {
		t.Fatalf("inconsistent result %+v", res)
	}
}

func TestLinkageMissingAttribute(t *testing.T) {
	s := dataset.MustSchema(dataset.Attribute{Name: "x", Kind: dataset.Int, Min: 0, Max: 1})
	d := dataset.New(s)
	if _, err := Linkage(d, d); err == nil {
		t.Error("missing QI attributes should fail")
	}
	var zero LinkageResult
	if zero.MatchRate() != 0 || zero.Precision() != 0 {
		t.Error("zero-value rates should be 0")
	}
}

func TestScoreboardIdentifiesWithGoodAux(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ratings, _ := synth.GenerateRatings(rng, synth.RatingsConfig{
		Users: 400, Movies: 300, MeanRatings: 25, Days: 1000,
	})
	sb := &Scoreboard{Released: ratings, StarsSlop: 1, DaySlop: 14, Eccentricity: 1.5}
	correct, wrong := DeAnonymizationRate(rng, ratings, sb, 40, 8)
	// Narayanan–Shmatikov: 8 ratings with dates suffice for the vast
	// majority of users.
	if correct < 0.8 {
		t.Errorf("de-anonymization rate = %v, want >= 0.8", correct)
	}
	if wrong > 0.05 {
		t.Errorf("wrong identification rate = %v, want ~0", wrong)
	}
}

func TestScoreboardFewerAuxRatingsWeaker(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ratings, _ := synth.GenerateRatings(rng, synth.RatingsConfig{
		Users: 400, Movies: 300, MeanRatings: 25, Days: 1000,
	})
	sb := &Scoreboard{Released: ratings, StarsSlop: 1, DaySlop: 14, Eccentricity: 1.5}
	correct8, _ := DeAnonymizationRate(rng, ratings, sb, 30, 8)
	// A weak attacker: one rating, with timing information useless (slop
	// spans the whole rating period).
	weak := &Scoreboard{Released: ratings, StarsSlop: 1, DaySlop: 2000, Eccentricity: 1.5}
	correct1, _ := DeAnonymizationRate(rng, ratings, weak, 30, 1)
	if correct1 >= correct8 {
		t.Errorf("1 dateless aux rating (%v) should underperform 8 dated ones (%v)", correct1, correct8)
	}
	if correct1 > 0.5 {
		t.Errorf("1 dateless aux rating identifies %v, want < 0.5", correct1)
	}
}

func TestScoreboardAbstainsWithUselessAux(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ratings, _ := synth.GenerateRatings(rng, synth.RatingsConfig{
		Users: 200, Movies: 100, MeanRatings: 15, Days: 500,
	})
	sb := &Scoreboard{Released: ratings, StarsSlop: 1, DaySlop: 14, Eccentricity: 1.5}
	// Auxiliary info about a movie nobody can match: out-of-range days.
	aux := []AuxiliaryRating{{Movie: 0, Stars: 3, Day: 99999}}
	if got := sb.Identify(aux); got != -1 {
		t.Errorf("Identify = %d, want abstention (-1)", got)
	}
	if got := sb.Identify(nil); got != -1 {
		t.Errorf("Identify(nil) = %d, want -1", got)
	}
}

func TestSampleAuxiliaryWithinSlop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ratings, _ := synth.GenerateRatings(rng, synth.RatingsConfig{
		Users: 10, Movies: 50, MeanRatings: 10, Days: 100,
	})
	aux := SampleAuxiliary(rng, ratings, 0, 5, 1, 3)
	if len(aux) == 0 {
		t.Fatal("no auxiliary ratings sampled")
	}
	byMovie := map[int]synth.Rating{}
	for _, r := range ratings.ByUser[0] {
		byMovie[r.Movie] = r
	}
	for _, a := range aux {
		truth, ok := byMovie[a.Movie]
		if !ok {
			t.Fatalf("aux movie %d not rated by target", a.Movie)
		}
		if abs(a.Stars-truth.Stars) > 1+1 { // slop + clamping headroom
			t.Errorf("stars perturbed too far: %d vs %d", a.Stars, truth.Stars)
		}
		if abs(a.Day-truth.Day) > 3 {
			t.Errorf("day perturbed too far: %d vs %d", a.Day, truth.Day)
		}
	}
	// Requesting more aux than the user has ratings clamps gracefully.
	many := SampleAuxiliary(rng, ratings, 0, 10000, 1, 3)
	if len(many) != len(ratings.ByUser[0]) {
		t.Errorf("aux len = %d, want all %d", len(many), len(ratings.ByUser[0]))
	}
}

func TestDeAnonymizationRateZeroTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ratings, _ := synth.GenerateRatings(rng, synth.RatingsConfig{Users: 5, Movies: 10, MeanRatings: 3, Days: 10})
	sb := &Scoreboard{Released: ratings, Eccentricity: 1.5}
	c, w := DeAnonymizationRate(rng, ratings, sb, 0, 3)
	if c != 0 || w != 0 {
		t.Error("zero targets should return zeros")
	}
}
