// Package remote puts the statistical-query interface on the network: a
// qserver-side HTTP handler exposing counting/subset-sum oracles over a
// loaded synthetic dataset, and a client-side Oracle implementing
// query.Oracle over HTTP, so every reconstruction attack in the
// repository runs unchanged against a remote curator. This is the paper's
// actual threat model — the Census Bureau, a Diffix deployment, any
// "query answering system" is a service, not an in-process struct — and
// the per-analyst budget accounting, answer caching and suppression
// behavior all live on the trusted side of the wire.
package remote

import (
	"math/rand"

	"singlingout/internal/synth"
)

// V is the baseline wire schema version. Every request and response
// carries its version as "v"; an unsupported version is rejected with
// code "unsupported_version" so incompatible clients fail loudly instead
// of misinterpreting fields.
//
// V2 extends the schema with production-serving metadata: /v1/meta?v=2
// additionally advertises the server's shard count, per-shard admission
// queue depth and overload retry hint, and overload refusals carry a
// retry_after_ms hint. The query/ledger bodies are unchanged — a v1
// client interoperates with a v2 server (it simply never asks for the
// extended meta), and a v2 client downgrades to v1 against a v1 server
// (an old server ignores the ?v= parameter and answers with v:1).
const (
	V    = 1
	V2   = 2
	VMax = V2
)

// Error codes carried in ErrorResponse. The client maps the first three
// back to the repository's sentinel errors (query.ErrInvalidQuery,
// query.ErrBudgetExhausted, diffix.ErrSuppressed).
const (
	CodeInvalidQuery       = "invalid_query"       // 400: malformed subset query
	CodeBudgetExhausted    = "budget_exhausted"    // 429: analyst budget would be exceeded
	CodeSuppressed         = "suppressed"          // 422: low-count suppression refused the batch
	CodeUnknownBackend     = "unknown_backend"     // 404: no such oracle endpoint
	CodeBadRequest         = "bad_request"         // 400: undecodable body, oversized batch
	CodeInternal           = "internal"            // 500: server-side failure
	CodeOverloaded         = "overloaded"          // 503: admission queue full, request shed; retry after the hint
	CodeUnsupportedVersion = "unsupported_version" // 400: wire version outside [1, VMax]
)

// Trace-propagation headers. The client stamps every query POST with
// them; the server continues the span and stamps its journal events and
// ledger entries with the trace id, so one distributed request is legible
// end to end (see docs/INVARIANTS.md, "budget.* journal phases and trace
// headers").
const (
	// HeaderTraceID carries the client's wire trace id (16 hex chars,
	// deterministically derived from analyst/backend identity).
	HeaderTraceID = "X-Trace-Id"
	// HeaderParentSpan carries the client-side span id (decimal) the
	// server-side span should report as its parent.
	HeaderParentSpan = "X-Parent-Span"
	// HeaderAnalyst duplicates the body's analyst identity at the HTTP
	// layer so middleware and access logs can attribute without parsing.
	HeaderAnalyst = "X-Analyst"
)

// Ledger entry operations. Spend and refund move the analyst's cumulative
// budget; deny records a refused reservation without moving it.
const (
	LedgerSpend  = "spend"
	LedgerRefund = "refund"
	LedgerDeny   = "deny"
)

// LedgerEntry is one line of the append-only per-analyst privacy-loss
// ledger. Entries are ordered by Seq (a server-global sequence number —
// deliberately timestamp-free, so a fixed workload replays to an
// identical ledger) and carry enough to audit exactly when an analyst
// crossed which fraction of their budget: the canonical batch hash, the
// fresh-query cost, and the analyst's cumulative spend after the entry.
type LedgerEntry struct {
	Seq        int64  `json:"seq"`
	Analyst    string `json:"analyst"`
	Op         string `json:"op"`
	Backend    string `json:"backend"`
	QueryHash  string `json:"query_hash"`
	Cost       int    `json:"cost"`
	Cumulative int    `json:"cumulative"`
	Trace      string `json:"trace,omitempty"`
}

// LedgerResponse is the body of GET /v1/ledger (also mounted at /ledger):
// the full entry history (optionally filtered with ?analyst=) plus the
// current per-analyst net totals. ReplayLedger(Entries) == Totals always
// holds for an unfiltered response.
type LedgerResponse struct {
	V       int            `json:"v"`
	Budget  int            `json:"budget"` // configured per-analyst budget, 0 = unlimited
	Totals  map[string]int `json:"totals"`
	Entries []LedgerEntry  `json:"entries"`
}

// QueryRequest is the body of POST /v1/query/{backend}: a batch of subset
// queries from one analyst. Queries need not be sorted; the server
// canonicalizes (sorts) each index set before validation, caching and
// noise derivation.
type QueryRequest struct {
	V       int     `json:"v"`
	Analyst string  `json:"analyst,omitempty"`
	Queries [][]int `json:"queries"`
}

// QueryResponse answers a QueryRequest: one answer per query in request
// order. Cached counts the queries served from the answer cache (which do
// not spend budget); BudgetRemaining is the analyst's remaining budget
// after this batch, or -1 when the server enforces no budget.
type QueryResponse struct {
	V               int       `json:"v"`
	Answers         []float64 `json:"answers"`
	Cached          int       `json:"cached"`
	BudgetRemaining int       `json:"budget_remaining"`
}

// Meta is the body of GET /v1/meta: everything a client needs to run an
// attack. Seed/N/P let an evaluation harness regenerate the dataset
// locally (remote.Dataset) to score reconstructions without the server
// ever shipping the raw bits over a query endpoint.
//
// The trailing fields are v2 schema: GET /v1/meta?v=2 fills them, a v1
// response omits them (Dial negotiates — Meta.V reports what the server
// actually spoke). They describe the serving topology and overload
// semantics: how many shards partition the answer cache and ledger, how
// deep each shard's admission queue is, and how long a shed client
// should back off before retrying.
type Meta struct {
	V        int      `json:"v"`
	N        int      `json:"n"`
	Seed     int64    `json:"seed"`
	P        float64  `json:"p"`
	Backends []string `json:"backends"`
	Budget   int      `json:"budget"`    // per-analyst fresh-query budget, 0 = unlimited
	MaxBatch int      `json:"max_batch"` // largest accepted batch

	Shards       int `json:"shards,omitempty"`         // v2: cache/ledger partitions
	QueueDepth   int `json:"queue_depth,omitempty"`    // v2: per-shard admission queue bound
	RetryAfterMs int `json:"retry_after_ms,omitempty"` // v2: suggested overload backoff
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	V   int       `json:"v"`
	Err ErrorBody `json:"error"`
}

// ErrorBody carries the machine-readable code and the human-readable
// message of a refusal. Overload refusals (CodeOverloaded) additionally
// carry RetryAfterMs, the server's backoff hint, which the client folds
// into its retry delay (the coarser HTTP Retry-After header is set too,
// for intermediaries that speak only seconds).
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int    `json:"retry_after_ms,omitempty"`
}

// Dataset regenerates the server's dataset from its advertised (seed, n,
// p). Server and scoring harness both call this, which is what makes
// remote reconstruction tables byte-identical to in-process ones: the
// truth is a pure function of the meta, never transmitted.
func Dataset(seed int64, n int, p float64) []int64 {
	return synth.BinaryDataset(rand.New(rand.NewSource(seed)), n, p)
}
