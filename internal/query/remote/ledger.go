package remote

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// ledger is the server's append-only privacy-loss accounting: every
// budget movement (spend, refund, denial) becomes an immutable
// LedgerEntry, and the per-analyst totals the server enforces are derived
// state — ReplayLedger over the entry history reconstructs them exactly.
// This replaces the bare analyst->int budget map: the paper's framing is
// that privacy loss is a quantifiable, accountable resource, and a flat
// counter cannot answer an auditor's "when did this analyst cross half
// their budget, and on which queries?".
//
// Sequence numbers are timestamp-free by design: under a deterministic
// (sequential) workload the whole ledger is byte-identical across runs,
// which is what lets cmd/loadgen pin its two-run invariance test on the
// ledger summary.
type ledger struct {
	mu      sync.Mutex
	entries []LedgerEntry
	totals  map[string]int
	nextSeq int64
}

func newLedger() *ledger {
	return &ledger{totals: map[string]int{}}
}

// add appends one entry under the held lock and returns it.
func (l *ledger) add(op, analyst, backend, hash, trace string, cost, cumulative int) LedgerEntry {
	l.nextSeq++
	e := LedgerEntry{
		Seq: l.nextSeq, Analyst: analyst, Op: op, Backend: backend,
		QueryHash: hash, Cost: cost, Cumulative: cumulative, Trace: trace,
	}
	l.entries = append(l.entries, e)
	return e
}

// spend atomically checks the analyst's budget and appends either a spend
// entry (reserving cost fresh queries) or a deny entry (budget > 0 and
// the reservation would exceed it; the cumulative is left unmoved). ok
// reports whether the reservation was granted. budget == 0 never denies.
func (l *ledger) spend(analyst, backend, hash, trace string, cost, budget int) (e LedgerEntry, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.totals[analyst]
	if budget > 0 && cur+cost > budget {
		return l.add(LedgerDeny, analyst, backend, hash, trace, cost, cur), false
	}
	cur += cost
	l.totals[analyst] = cur
	return l.add(LedgerSpend, analyst, backend, hash, trace, cost, cur), true
}

// refund reverses a prior spend (a batch that failed while being
// answered): the analyst's cumulative drops by cost.
func (l *ledger) refund(analyst, backend, hash, trace string, cost int) LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.totals[analyst] - cost
	l.totals[analyst] = cur
	return l.add(LedgerRefund, analyst, backend, hash, trace, cost, cur)
}

// total returns the analyst's current net spend.
func (l *ledger) total(analyst string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals[analyst]
}

// snapshot copies the entry history (filtered to one analyst when
// analyst != "") and the current totals.
func (l *ledger) snapshot(analyst string) ([]LedgerEntry, map[string]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var entries []LedgerEntry
	for _, e := range l.entries {
		if analyst == "" || e.Analyst == analyst {
			entries = append(entries, e)
		}
	}
	totals := make(map[string]int, len(l.totals))
	for a, v := range l.totals {
		totals[a] = v
	}
	return entries, totals
}

// ReplayLedger folds an entry history back into the per-analyst net
// totals: spends add their cost, refunds subtract it, denials move
// nothing. An auditor replaying a /ledger response (or the budget.*
// journal events) must land exactly on the server's enforced state; the
// per-entry Cumulative field is cross-checked so a tampered or reordered
// history fails loudly instead of replaying to a plausible wrong total.
func ReplayLedger(entries []LedgerEntry) (map[string]int, error) {
	totals := map[string]int{}
	for i, e := range entries {
		switch e.Op {
		case LedgerSpend:
			totals[e.Analyst] += e.Cost
		case LedgerRefund:
			totals[e.Analyst] -= e.Cost
		case LedgerDeny:
			// no movement
		default:
			return nil, fmt.Errorf("remote: ledger entry %d (seq %d): unknown op %q", i, e.Seq, e.Op)
		}
		if totals[e.Analyst] != e.Cumulative {
			return nil, fmt.Errorf("remote: ledger entry %d (seq %d): replayed cumulative %d for %q, entry says %d",
				i, e.Seq, totals[e.Analyst], e.Analyst, e.Cumulative)
		}
	}
	return totals, nil
}

// batchHash is the canonical content hash of one batch's fresh queries
// (FNV-1a over the backend-qualified cache keys), the query_hash the
// ledger records so an auditor can tie a budget movement back to exactly
// which canonical queries were charged.
func batchHash(keys []string) string {
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
