package remote

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// ledger is one shard of the server's append-only privacy-loss
// accounting: every budget movement (spend, refund, denial) becomes an
// immutable LedgerEntry, and the per-analyst totals the server enforces
// are derived state — ReplayLedger over the entry history reconstructs
// them exactly. This replaces the bare analyst->int budget map: the
// paper's framing is that privacy loss is a quantifiable, accountable
// resource, and a flat counter cannot answer an auditor's "when did this
// analyst cross half their budget, and on which queries?".
//
// Sharding: each analyst is pinned to exactly one shard (consistent
// hashing on the analyst id), so one analyst's entries are serialized by
// one shard lock — the per-analyst cumulative order ReplayLedger checks
// is a per-shard property, and no lock spans shards. Sequence numbers
// come from a server-global atomic so the merged history has a total
// order; they are timestamp-free by design — under a deterministic
// (sequential) workload the whole ledger is byte-identical across runs,
// which is what lets cmd/loadgen pin its two-run invariance test on the
// ledger summary.
//
// Durability: when a wal is attached, an entry is appended to the log
// BEFORE it is applied in memory. A failed disk write therefore leaves
// the ledger unmoved and fails the request — the server refuses to move
// budget it cannot account for durably.
type ledger struct {
	seq *atomic.Int64 // server-global sequence source, shared across shards
	wal *wal          // nil = in-memory only

	mu      sync.Mutex
	entries []LedgerEntry
	totals  map[string]int
}

func newLedger(seq *atomic.Int64, w *wal) *ledger {
	return &ledger{seq: seq, wal: w, totals: map[string]int{}}
}

// add appends one entry under the held lock (WAL first) and returns it.
func (l *ledger) add(op, analyst, backend, hash, trace string, cost, cumulative int) (LedgerEntry, error) {
	e := LedgerEntry{
		Seq: l.seq.Add(1), Analyst: analyst, Op: op, Backend: backend,
		QueryHash: hash, Cost: cost, Cumulative: cumulative, Trace: trace,
	}
	if l.wal != nil {
		if err := l.wal.append(e); err != nil {
			return LedgerEntry{}, err
		}
	}
	l.entries = append(l.entries, e)
	return e, nil
}

// seed loads replayed WAL entries into this shard without re-logging
// them; called once at construction, before the shard serves traffic.
func (l *ledger) seed(entries []LedgerEntry, totals map[string]int) {
	l.entries = append(l.entries, entries...)
	for a, v := range totals {
		l.totals[a] = v
	}
}

// spend atomically checks the analyst's budget and appends either a spend
// entry (reserving cost fresh queries) or a deny entry (budget > 0 and
// the reservation would exceed it; the cumulative is left unmoved). ok
// reports whether the reservation was granted. budget == 0 never denies.
// A non-nil error means the WAL refused the append: nothing moved.
func (l *ledger) spend(analyst, backend, hash, trace string, cost, budget int) (e LedgerEntry, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.totals[analyst]
	if budget > 0 && cur+cost > budget {
		e, err = l.add(LedgerDeny, analyst, backend, hash, trace, cost, cur)
		return e, false, err
	}
	e, err = l.add(LedgerSpend, analyst, backend, hash, trace, cost, cur+cost)
	if err != nil {
		return LedgerEntry{}, false, err
	}
	l.totals[analyst] = cur + cost
	return e, true, nil
}

// refund reverses a prior spend (a batch that failed while being
// answered): the analyst's cumulative drops by cost.
func (l *ledger) refund(analyst, backend, hash, trace string, cost int) (LedgerEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.totals[analyst] - cost
	e, err := l.add(LedgerRefund, analyst, backend, hash, trace, cost, cur)
	if err != nil {
		return LedgerEntry{}, err
	}
	l.totals[analyst] = cur
	return e, nil
}

// total returns the analyst's current net spend.
func (l *ledger) total(analyst string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals[analyst]
}

// snapshot copies the shard's entry history (filtered to one analyst
// when analyst != "") and current totals.
func (l *ledger) snapshot(analyst string) ([]LedgerEntry, map[string]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var entries []LedgerEntry
	for _, e := range l.entries {
		if analyst == "" || e.Analyst == analyst {
			entries = append(entries, e)
		}
	}
	totals := make(map[string]int, len(l.totals))
	for a, v := range l.totals {
		totals[a] = v
	}
	return entries, totals
}

// mergeSnapshots folds per-shard snapshots into the single history and
// totals view /v1/ledger serves: entries re-ordered by the global
// sequence number, totals unioned (analyst partitioning makes the union
// disjoint).
func mergeSnapshots(shards []*ledger, analyst string) ([]LedgerEntry, map[string]int) {
	var entries []LedgerEntry
	totals := map[string]int{}
	for _, l := range shards {
		es, ts := l.snapshot(analyst)
		entries = append(entries, es...)
		for a, v := range ts {
			totals[a] = v
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return entries, totals
}

// ReplayLedger folds an entry history back into the per-analyst net
// totals: spends add their cost, refunds subtract it, denials move
// nothing. An auditor replaying a /ledger response (or the budget.*
// journal events) must land exactly on the server's enforced state; the
// per-entry Cumulative field is cross-checked so a tampered or reordered
// history fails loudly instead of replaying to a plausible wrong total.
// The server itself runs this over its WAL on startup — a restart that
// cannot replay to a consistent state refuses to serve.
func ReplayLedger(entries []LedgerEntry) (map[string]int, error) {
	totals := map[string]int{}
	for i, e := range entries {
		switch e.Op {
		case LedgerSpend:
			totals[e.Analyst] += e.Cost
		case LedgerRefund:
			totals[e.Analyst] -= e.Cost
		case LedgerDeny:
			// no movement
		default:
			return nil, fmt.Errorf("remote: ledger entry %d (seq %d): unknown op %q", i, e.Seq, e.Op)
		}
		if totals[e.Analyst] != e.Cumulative {
			return nil, fmt.Errorf("remote: ledger entry %d (seq %d): replayed cumulative %d for %q, entry says %d",
				i, e.Seq, totals[e.Analyst], e.Analyst, e.Cumulative)
		}
	}
	return totals, nil
}

// batchHash is the canonical content hash of one batch's fresh queries
// (FNV-1a over the backend-qualified cache keys), the query_hash the
// ledger records so an auditor can tie a budget movement back to exactly
// which canonical queries were charged.
func batchHash(keys []string) string {
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
