package remote

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndInRange(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := r.shard(k)
		if s < 0 || s >= 4 {
			t.Fatalf("shard(%q) = %d, out of range", k, s)
		}
		if again := r.shard(k); again != s {
			t.Fatalf("shard(%q) = %d then %d", k, s, again)
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	const shards = 8
	r := newRing(shards)
	hit := make([]bool, shards)
	for i := 0; i < 4096; i++ {
		hit[r.shard(fmt.Sprintf("key-%d", i))] = true
	}
	for s, ok := range hit {
		if !ok {
			t.Fatalf("shard %d received no keys out of 4096", s)
		}
	}
}

// TestRingConsistencyUnderGrowth pins the property the WAL replay relies
// on: growing the ring only moves keys onto the NEW shards. A key the
// 4-shard ring assigns to shard 0 or 1 is exactly where the 2-shard ring
// put it, because the old shards' virtual points are unchanged and
// adding points can only bring a key's successor closer.
func TestRingConsistencyUnderGrowth(t *testing.T) {
	r2, r4 := newRing(2), newRing(4)
	moved := 0
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("key-%d", i)
		s2, s4 := r2.shard(k), r4.shard(k)
		if s4 < 2 && s4 != s2 {
			t.Fatalf("key %q moved between surviving shards: %d -> %d", k, s2, s4)
		}
		if s4 != s2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key moved to the new shards — the ring is not spreading")
	}
}

func TestRingRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newRing(0) should panic")
		}
	}()
	newRing(0)
}
