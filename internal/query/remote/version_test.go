package remote_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"singlingout/internal/obs"
	"singlingout/internal/query/remote"
)

func getMeta(t *testing.T, url string) (remote.Meta, int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m remote.Meta
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
	}
	return m, resp.StatusCode, body
}

func TestMetaVersionNegotiation(t *testing.T) {
	_, ts := newTestServer(t, remote.ServerConfig{Seed: 31, Shards: 2})

	// Baseline request: v1 shape, no topology fields.
	m, status, _ := getMeta(t, ts.URL+"/v1/meta")
	if status != http.StatusOK || m.V != 1 || m.Shards != 0 || m.RetryAfterMs != 0 {
		t.Fatalf("v1 meta = %+v (status %d), want V=1 without topology fields", m, status)
	}

	// v2 request: topology and overload semantics advertised.
	m2, status, _ := getMeta(t, ts.URL+"/v1/meta?v=2")
	if status != http.StatusOK || m2.V != 2 || m2.Shards != 2 || m2.QueueDepth != 64 || m2.RetryAfterMs <= 0 {
		t.Fatalf("v2 meta = %+v (status %d)", m2, status)
	}

	// Future version: typed refusal.
	_, status, body := getMeta(t, ts.URL+"/v1/meta?v=9")
	if status != http.StatusBadRequest {
		t.Fatalf("v9 meta status = %d, want 400", status)
	}
	var er remote.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Err.Code != remote.CodeUnsupportedVersion {
		t.Fatalf("v9 meta body = %s, want code %q", body, remote.CodeUnsupportedVersion)
	}

	// Dial lands on v2 and sees the topology.
	o, err := remote.Dial(ctx, ts.URL, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if o.WireVersion() != 2 || o.Meta().Shards != 2 {
		t.Fatalf("negotiated v%d with meta %+v, want v2 with shards", o.WireVersion(), o.Meta())
	}
}

// TestPostVersionEcho: the server accepts any version in [1, VMax] and
// answers in the version the request spoke, so old clients keep decoding
// exactly what they always did.
func TestPostVersionEcho(t *testing.T) {
	_, ts := newTestServer(t, remote.ServerConfig{Seed: 37})
	post := func(v int) (remote.QueryResponse, remote.ErrorResponse, int) {
		t.Helper()
		body, _ := json.Marshal(remote.QueryRequest{V: v, Queries: [][]int{{0}}})
		resp, err := http.Post(ts.URL+"/v1/query/exact", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr remote.QueryResponse
		var er remote.ErrorResponse
		payload := new(bytes.Buffer)
		payload.ReadFrom(resp.Body)
		json.Unmarshal(payload.Bytes(), &qr)
		json.Unmarshal(payload.Bytes(), &er)
		return qr, er, resp.StatusCode
	}
	if qr, _, status := post(1); status != http.StatusOK || qr.V != 1 {
		t.Fatalf("v1 request answered with status %d v%d, want 200 v1", status, qr.V)
	}
	if qr, _, status := post(2); status != http.StatusOK || qr.V != 2 {
		t.Fatalf("v2 request answered with status %d v%d, want 200 v2", status, qr.V)
	}
	if _, er, status := post(3); status != http.StatusBadRequest || er.Err.Code != remote.CodeUnsupportedVersion {
		t.Fatalf("v3 request: status %d code %q, want 400 %q", status, er.Err.Code, remote.CodeUnsupportedVersion)
	}
	if _, er, status := post(0); status != http.StatusBadRequest || er.Err.Code != remote.CodeUnsupportedVersion {
		t.Fatalf("v0 request: status %d code %q, want 400 %q", status, er.Err.Code, remote.CodeUnsupportedVersion)
	}
}

// TestDialDowngradesToLegacyServer: a pre-negotiation server ignores the
// ?v= parameter and answers the baseline schema; Dial settles on v1.
func TestDialDowngradesToLegacyServer(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(remote.Meta{
			V: 1, N: 16, Seed: 1, P: 0.5, Backends: []string{"exact"}, MaxBatch: 64,
		})
	}))
	defer legacy.Close()
	o, err := remote.Dial(ctx, legacy.URL, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if o.WireVersion() != 1 {
		t.Fatalf("negotiated v%d against a legacy server, want 1", o.WireVersion())
	}
}

// TestDialRefusesFutureServer: a server whose advertised version is past
// the client's range fails the dial instead of being misread.
func TestDialRefusesFutureServer(t *testing.T) {
	future := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(remote.Meta{V: 9, N: 16, Seed: 1, P: 0.5, MaxBatch: 64})
	}))
	defer future.Close()
	if _, err := remote.Dial(ctx, future.URL, fastOpts()); err == nil {
		t.Fatal("Dial should refuse a server speaking a future wire version")
	}
}

// TestGetRetriesTransient: GETs (meta, ledger, trace) share the POST
// path's retry treatment — transient 5xx responses are retried with
// backoff and counted in remote.retries.
func TestGetRetriesTransient(t *testing.T) {
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(remote.Meta{
			V: 2, N: 16, Seed: 1, P: 0.5, Backends: []string{"exact"}, MaxBatch: 64, Shards: 1,
		})
	}))
	defer flaky.Close()
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	opts := fastOpts()
	opts.Registry = reg
	o, err := remote.Dial(ctx, flaky.URL, opts)
	if err != nil {
		t.Fatalf("Dial should outlast two transient failures: %v", err)
	}
	if o.WireVersion() != 2 {
		t.Fatalf("negotiated v%d, want 2", o.WireVersion())
	}
	if got := reg.Counter(remote.MetricClientRetries).Value(); got != 2 {
		t.Fatalf("remote.retries = %d, want 2", got)
	}
}
