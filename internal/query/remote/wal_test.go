package remote_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"singlingout/internal/query"
	"singlingout/internal/query/remote"
)

// dialAnalyst dials ts as one analyst against one backend with fast
// retries.
func dialAnalyst(t *testing.T, url, backend, analyst string) *remote.Oracle {
	t.Helper()
	opts := fastOpts()
	opts.Backend = backend
	opts.Analyst = analyst
	o, err := remote.Dial(ctx, url, opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestWALRestartKeepsSpentBudget is the restart-durability acceptance
// test: epsilon spent before a restart is still spent after it. The
// second server even runs a different shard count, proving the WAL is
// portable across serving topologies (partitioning is recomputed per
// analyst on replay).
func TestWALRestartKeepsSpentBudget(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ledger.wal")
	cfg := remote.ServerConfig{Seed: 3, Budget: 8, WALPath: walPath}

	srv, ts := newTestServer(t, cfg)
	o := dialAnalyst(t, ts.URL, "laplace", "alice")
	if _, err := o.Answer(ctx, [][]int{{0}, {1}, {2}, {3}, {4}, {5}}); err != nil {
		t.Fatal(err)
	}
	if got := srv.BudgetSpent("alice"); got != 6 {
		t.Fatalf("spent %d fresh queries, want 6", got)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the WAL, under a different shard count.
	cfg.Shards = 3
	srv2, ts2 := newTestServer(t, cfg)
	if got := srv2.BudgetSpent("alice"); got != 6 {
		t.Fatalf("restarted server remembers %d spent, want 6 — a restart must never refund epsilon", got)
	}
	o2 := dialAnalyst(t, ts2.URL, "laplace", "alice")
	// 3 more fresh queries would exceed the budget of 8.
	if _, err := o2.Answer(ctx, [][]int{{6}, {7}, {8}}); !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("over-budget batch after restart: err = %v, want ErrBudgetExhausted", err)
	}
	// 2 fit exactly.
	if _, err := o2.Answer(ctx, [][]int{{6}, {7}}); err != nil {
		t.Fatal(err)
	}
	if got := srv2.BudgetSpent("alice"); got != 8 {
		t.Fatalf("spent %d after restart+spend, want 8", got)
	}

	// The on-disk history replays cleanly to the enforced state, denial
	// included.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := remote.ReadWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	totals, err := remote.ReplayLedger(entries)
	if err != nil {
		t.Fatalf("WAL does not replay: %v", err)
	}
	if totals["alice"] != 8 {
		t.Fatalf("WAL replays to %d spent, want 8", totals["alice"])
	}
}

// TestWALRestartRechargesCachedQueries pins the conservative direction
// of non-persistence: the answer cache is not durable, so a query that
// was free (cached) before the restart charges budget again after it.
// Over-charging across restarts is acceptable; under-charging never is.
func TestWALRestartRechargesCachedQueries(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ledger.wal")
	cfg := remote.ServerConfig{Seed: 5, WALPath: walPath}

	srv, ts := newTestServer(t, cfg)
	o := dialAnalyst(t, ts.URL, "exact", "bob")
	batch := [][]int{{1}, {2}}
	first, err := o.Answer(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Answer(ctx, batch); err != nil { // cached: free
		t.Fatal(err)
	}
	if got := srv.BudgetSpent("bob"); got != 2 {
		t.Fatalf("spent %d before restart, want 2 (repeat was cached)", got)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, cfg)
	o2 := dialAnalyst(t, ts2.URL, "exact", "bob")
	second, err := o2.Answer(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("answer %d changed across restart: %v -> %v", i, first[i], second[i])
		}
	}
	if got := srv2.BudgetSpent("bob"); got != 4 {
		t.Fatalf("spent %d after restart re-ask, want 4 (cache is not durable, the charge repeats)", got)
	}
}

// TestWALTornTailTolerated: a crash mid-append leaves a torn final line;
// replay drops it (the entry never took effect in memory either) and the
// server restarts cleanly on the intact prefix.
func TestWALTornTailTolerated(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ledger.wal")
	cfg := remote.ServerConfig{Seed: 7, Budget: 10, WALPath: walPath}

	srv, ts := newTestServer(t, cfg)
	o := dialAnalyst(t, ts.URL, "exact", "carol")
	if _, err := o.Answer(ctx, [][]int{{0}, {1}, {2}}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"analyst":"carol","op":"spe`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, err := remote.ReadWAL(walPath)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("replayed %d entries, want the 1 intact one", len(entries))
	}
	srv2, ts2 := newTestServer(t, cfg)
	_ = ts2
	if got := srv2.BudgetSpent("carol"); got != 3 {
		t.Fatalf("restart over torn tail remembers %d, want 3", got)
	}
}

// TestWALCorruptionRefusesToServe: an undecodable line in the middle of
// the log is corruption, not a torn tail — replay and server
// construction both fail loudly rather than serving a smaller spend.
func TestWALCorruptionRefusesToServe(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ledger.wal")
	content := `{"seq":1,"analyst":"a","op":"spend","backend":"exact","query_hash":"h","cost":1,"cumulative":1}
not json at all
{"seq":2,"analyst":"a","op":"spend","backend":"exact","query_hash":"h","cost":1,"cumulative":2}
`
	if err := os.WriteFile(walPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.ReadWAL(walPath); err == nil {
		t.Fatal("mid-file corruption must fail ReadWAL")
	}
	if _, err := remote.NewServer(remote.ServerConfig{N: 16, P: 0.5, WALPath: walPath}); err == nil {
		t.Fatal("a server must refuse to start on a corrupt WAL")
	}
}

// TestWALTamperFailsReplay: a WAL whose cumulative chain has been edited
// fails the ReplayLedger cross-check at startup.
func TestWALTamperFailsReplay(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ledger.wal")
	content := `{"seq":1,"analyst":"a","op":"spend","backend":"exact","query_hash":"h","cost":1,"cumulative":1}
{"seq":2,"analyst":"a","op":"spend","backend":"exact","query_hash":"h","cost":1,"cumulative":5}
`
	if err := os.WriteFile(walPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.NewServer(remote.ServerConfig{N: 16, P: 0.5, WALPath: walPath}); err == nil {
		t.Fatal("a server must refuse a WAL whose cumulative chain does not replay")
	}
}
