package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"

	"singlingout/internal/obs"
	"singlingout/internal/query"
	"singlingout/internal/query/remote"
)

// doubleBackend is a custom registry entry: exact answers scaled by two.
// Deterministic per canonical query, as the Backend contract requires.
type doubleBackend struct{}

func (doubleBackend) Name() string { return "double" }
func (doubleBackend) Open(_ remote.ServerConfig, x []int64) (query.Oracle, error) {
	return scaledOracle{inner: &query.Exact{X: x}}, nil
}

type scaledOracle struct{ inner query.Oracle }

func (s scaledOracle) N() int { return s.inner.N() }
func (s scaledOracle) Answer(ctx context.Context, qs [][]int) ([]float64, error) {
	a, err := s.inner.Answer(ctx, qs)
	if err != nil {
		return nil, err
	}
	for i := range a {
		a[i] *= 2
	}
	return a, nil
}

type renamedBackend struct {
	name string
	remote.Backend
}

func (r renamedBackend) Name() string { return r.name }

func TestCustomBackendRegistration(t *testing.T) {
	cfg := remote.ServerConfig{
		Seed:     13,
		Backends: append(remote.Builtins(), doubleBackend{}),
	}
	_, ts := newTestServer(t, cfg)
	exact := dialAnalyst(t, ts.URL, "exact", "a")
	double := dialAnalyst(t, ts.URL, "double", "a")
	if got := exact.Meta().Backends; len(got) != 4 || got[0] != "diffix" || got[1] != "double" {
		t.Fatalf("advertised backends = %v", got)
	}
	batch := [][]int{{0, 1, 2}, {3}, {4, 5}}
	base, err := exact.Answer(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := double.Answer(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if twice[i] != 2*base[i] {
			t.Fatalf("double[%d] = %v, want %v", i, twice[i], 2*base[i])
		}
	}
}

func TestBackendRegistryValidation(t *testing.T) {
	base := remote.ServerConfig{N: 16, P: 0.5}
	dup := base
	dup.Backends = []remote.Backend{doubleBackend{}, doubleBackend{}}
	if _, err := remote.NewServer(dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate backend name: err = %v", err)
	}
	bad := base
	bad.Backends = []remote.Backend{renamedBackend{name: "Not-A-Name", Backend: doubleBackend{}}}
	if _, err := remote.NewServer(bad); err == nil || !strings.Contains(err.Error(), "must match") {
		t.Fatalf("invalid backend name: err = %v", err)
	}
	empty := base
	empty.Backends = []remote.Backend{}
	// nil means Builtins(); an explicitly empty registry is the zero-value
	// nil again, so it also falls back — assert the builtin set survives.
	srv, err := remote.NewServer(empty)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Meta().Backends; len(got) != 3 {
		t.Fatalf("empty registry should fall back to builtins, got %v", got)
	}
}

// blockingBackend parks every Answer call until release is closed,
// signalling entry on entered — the deterministic way to hold a server's
// active slot while the test probes its overload behavior.
type blockingBackend struct {
	entered chan struct{}
	release chan struct{}
}

func (blockingBackend) Name() string { return "block" }
func (b blockingBackend) Open(_ remote.ServerConfig, x []int64) (query.Oracle, error) {
	return &blockingOracle{n: len(x), entered: b.entered, release: b.release}, nil
}

type blockingOracle struct {
	n       int
	entered chan struct{}
	release chan struct{}
}

func (o *blockingOracle) N() int { return o.n }
func (o *blockingOracle) Answer(ctx context.Context, qs [][]int) ([]float64, error) {
	select {
	case o.entered <- struct{}{}:
	default:
	}
	select {
	case <-o.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return make([]float64, len(qs)), nil
}

// TestOverloadShedsTyped drives the server into deterministic overload
// (one active slot, no waiting room, a backend that blocks) and checks
// both halves of the contract: the wire carries a typed CodeOverloaded
// refusal with retry hints, and the client surfaces query.ErrOverloaded
// once retries are exhausted. Shedding is visible in qserver.shed.
func TestOverloadShedsTyped(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	bb := blockingBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	// Release on any exit path — a Fatalf before the explicit release must
	// not leave the parked request holding the test server open forever.
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(bb.release) }) }
	t.Cleanup(release)
	cfg := remote.ServerConfig{
		Seed:          29,
		MaxConcurrent: 1,
		Shards:        1,
		QueueDepth:    -1, // no waiting room: second request sheds immediately
		Backends:      []remote.Backend{bb},
		Registry:      reg,
	}
	_, ts := newTestServer(t, cfg)

	first := dialAnalyst(t, ts.URL, "block", "alice")
	done := make(chan error, 1)
	go func() {
		_, err := first.Answer(ctx, [][]int{{0}})
		done <- err
	}()
	<-bb.entered // the lone active slot is now held

	// Raw wire view of the shed.
	resp, err := http.Post(ts.URL+"/v1/query/block", "application/json",
		strings.NewReader(`{"v":1,"analyst":"alice","queries":[[1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response is missing the Retry-After header")
	}
	var er remote.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Err.Code != remote.CodeOverloaded || er.Err.RetryAfterMs <= 0 {
		t.Fatalf("shed body = %+v, want code %q with a positive retry hint", er.Err, remote.CodeOverloaded)
	}

	// Client view: retries disabled, the sentinel surfaces directly.
	opts := fastOpts()
	opts.Backend = "block"
	opts.Analyst = "alice"
	opts.Retries = -1
	second, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Answer(ctx, [][]int{{2}}); !errors.Is(err, query.ErrOverloaded) {
		t.Fatalf("shed client error = %v, want query.ErrOverloaded", err)
	}

	if got := reg.Counter(remote.MetricShed).Value(); got != 2 {
		t.Fatalf("qserver.shed = %d, want 2", got)
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("the admitted request should complete after release: %v", err)
	}

	// With the slot free again, a retrying client succeeds.
	opts.Retries = 3
	third, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := third.Answer(ctx, [][]int{{3}}); err != nil {
		t.Fatalf("post-overload request failed: %v", err)
	}
}
