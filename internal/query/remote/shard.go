package remote

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"singlingout/internal/obs"
)

// This file is the server's partitioning and admission layer. The answer
// cache is partitioned by canonicalized query key and the privacy-loss
// ledger by analyst id, both via one consistent-hash ring, so no lock in
// the request path is global: two requests touching different analysts
// and different queries never contend. Admission control is per ledger
// shard — each shard owns a bounded queue in front of a bounded set of
// active slots, and a request arriving at a full queue is shed with a
// typed overload refusal instead of piling up unbounded goroutines.

// ringReplicas is the virtual-node count per shard on the hash ring.
// Enough points that key load spreads evenly at small shard counts.
const ringReplicas = 64

// ring is a consistent-hash ring over shard ids: each shard contributes
// ringReplicas virtual points, and a key maps to the shard owning the
// first point clockwise from the key's hash. Consistent hashing (rather
// than hash % shards) keeps most keys on their shard when the shard
// count changes — a WAL written by a 2-shard server replays cleanly into
// a 4-shard one because partitioning is recomputed per key, and the keys
// that do move land exactly where the new ring says they live.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds the ring for `shards` shards. shards < 1 panics: the
// server validates its config before building one.
func newRing(shards int) *ring {
	if shards < 1 {
		panic(fmt.Sprintf("remote: newRing(%d): shard count must be positive", shards))
	}
	r := &ring{points: make([]ringPoint, 0, shards*ringReplicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: fnvKey(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// shard maps a key to its owning shard: the first ring point at or after
// the key's hash, wrapping to the first point past the top.
func (r *ring) shard(key string) int {
	h := fnvKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// fnvKey is the ring's hash: FNV-1a over the key bytes (the same family
// the ledger's batch hash and the wire trace ids use), finished with a
// splitmix64-style avalanche. FNV alone leaves similar short strings —
// exactly what vnode labels and canonical query keys are — correlated in
// the bits that decide ring order, starving some shards of arc length;
// the finalizer spreads them uniformly.
func fnvKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ledgerKey namespaces analyst ids on the ring so the ledger partition of
// analyst "a" is decorrelated from the cache partition of a query whose
// key happens to collide with the bare string "a".
func ledgerKey(analyst string) string { return "ledger|" + analyst }

// cacheShard is one partition of the answer cache, guarded by its own
// lock. Answers are deterministic per (backend, canonical query), so a
// racing double-compute stores the same value — sharding cannot change
// what any analyst observes.
type cacheShard struct {
	mu sync.Mutex
	m  map[string]float64
}

// admission is one shard's overload gate: a bounded queue (admitted
// requests, waiting or running) in front of a bounded active set. enter
// either claims a queue slot immediately or sheds — it never blocks on a
// full queue, which is the difference between load shedding and letting
// latency grow without bound under overload.
type admission struct {
	queue   chan struct{} // cap = active + waiting room
	active  chan struct{} // cap = concurrent requests actually served
	waiting *atomic.Int64 // server-wide queued-not-active count
	depth   *obs.Gauge    // qserver.queue_depth mirror of waiting
}

// errShed is the internal admission refusal; the handler maps it to a
// CodeOverloaded wire refusal with the retry hint.
var errShed = fmt.Errorf("admission queue full")

// newAdmission builds a gate with `active` concurrent slots and `wait`
// additional waiting slots (both >= 0; active < 1 is clamped to 1).
func newAdmission(active, wait int, waiting *atomic.Int64, depth *obs.Gauge) *admission {
	if active < 1 {
		active = 1
	}
	if wait < 0 {
		wait = 0
	}
	return &admission{
		queue:   make(chan struct{}, active+wait),
		active:  make(chan struct{}, active),
		waiting: waiting,
		depth:   depth,
	}
}

// enter admits the caller or refuses immediately: errShed when the queue
// is full, ctx.Err() when the caller gives up while waiting for an
// active slot. On nil the caller must leave() exactly once.
func (a *admission) enter(ctx context.Context) error {
	select {
	case a.queue <- struct{}{}:
	default:
		return errShed
	}
	// Admitted. Fast path: an active slot is free right now.
	select {
	case a.active <- struct{}{}:
		return nil
	default:
	}
	// Queued: visible in qserver.queue_depth until a slot frees up.
	a.depth.Set(float64(a.waiting.Add(1)))
	defer func() { a.depth.Set(float64(a.waiting.Add(-1))) }()
	select {
	case a.active <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-a.queue
		return ctx.Err()
	}
}

// leave releases the active slot and the queue slot claimed by enter.
func (a *admission) leave() {
	<-a.active
	<-a.queue
}
