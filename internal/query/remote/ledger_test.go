package remote_test

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"singlingout/internal/obs"
	"singlingout/internal/query"
	"singlingout/internal/query/remote"
)

func TestLedgerEndpointAndReplay(t *testing.T) {
	srv, ts := newTestServer(t, remote.ServerConfig{Seed: 7, Budget: 5})
	alice, err := remote.Dial(ctx, ts.URL, remote.Options{Analyst: "alice", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := remote.Dial(ctx, ts.URL, remote.Options{Analyst: "bob", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// alice: 3 fresh, then 2 fresh; bob: 1 fresh; alice: 4 fresh denied.
	if _, err := alice.Answer(ctx, [][]int{{0}, {1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Answer(ctx, [][]int{{3}, {4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Answer(ctx, [][]int{{9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Answer(ctx, [][]int{{5}, {6}, {7}, {8}}); !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("over-budget batch: err = %v, want ErrBudgetExhausted", err)
	}

	lr, err := alice.FetchLedger(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if lr.Budget != 5 {
		t.Errorf("ledger budget = %d, want 5", lr.Budget)
	}
	if len(lr.Entries) != 4 {
		t.Fatalf("ledger entries = %d, want 4 (3 spends + 1 deny): %+v", len(lr.Entries), lr.Entries)
	}
	for i, e := range lr.Entries {
		if e.Seq != int64(i+1) {
			t.Errorf("entry %d: seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.QueryHash == "" || e.Backend != "exact" {
			t.Errorf("entry %d: missing hash/backend: %+v", i, e)
		}
	}
	last := lr.Entries[3]
	if last.Op != remote.LedgerDeny || last.Analyst != "alice" || last.Cost != 4 || last.Cumulative != 5 {
		t.Errorf("deny entry = %+v", last)
	}

	// The /ledger totals replay from the entry history and agree with the
	// server's enforced counters.
	totals, err := remote.ReplayLedger(lr.Entries)
	if err != nil {
		t.Fatalf("ReplayLedger: %v", err)
	}
	for analyst, want := range map[string]int{"alice": 5, "bob": 1} {
		if totals[analyst] != want {
			t.Errorf("replayed total[%s] = %d, want %d", analyst, totals[analyst], want)
		}
		if lr.Totals[analyst] != want {
			t.Errorf("served total[%s] = %d, want %d", analyst, lr.Totals[analyst], want)
		}
		if got := srv.BudgetSpent(analyst); got != want {
			t.Errorf("BudgetSpent(%s) = %d, want %d", analyst, got, want)
		}
	}

	// ?analyst= filters the history but not the totals.
	lr, err = alice.FetchLedger(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Entries) != 1 || lr.Entries[0].Analyst != "bob" {
		t.Errorf("filtered entries = %+v", lr.Entries)
	}
	if len(lr.Totals) != 2 {
		t.Errorf("filtered totals = %+v, want both analysts", lr.Totals)
	}
}

func TestReplayLedgerDetectsTamper(t *testing.T) {
	entries := []remote.LedgerEntry{
		{Seq: 1, Analyst: "a", Op: remote.LedgerSpend, Cost: 3, Cumulative: 3},
		{Seq: 2, Analyst: "a", Op: remote.LedgerRefund, Cost: 1, Cumulative: 2},
		{Seq: 3, Analyst: "a", Op: remote.LedgerDeny, Cost: 9, Cumulative: 2},
	}
	if _, err := remote.ReplayLedger(entries); err != nil {
		t.Fatalf("well-formed history should replay: %v", err)
	}
	tampered := append([]remote.LedgerEntry(nil), entries...)
	tampered[1].Cumulative = 3
	if _, err := remote.ReplayLedger(tampered); err == nil {
		t.Error("tampered cumulative should fail replay")
	}
	unknown := append([]remote.LedgerEntry(nil), entries...)
	unknown[2].Op = "grant"
	if _, err := remote.ReplayLedger(unknown); err == nil {
		t.Error("unknown op should fail replay")
	}
	if _, err := remote.ReplayLedger(nil); err != nil {
		t.Errorf("empty history should replay: %v", err)
	}
}

// TestTraceHeadersAndBudgetJournal pins the wire contract: every query
// POST carries the trace headers, and the server's journal stamps both
// its query_batch and budget.* events with the client's trace id.
func TestTraceHeadersAndBudgetJournal(t *testing.T) {
	var journal bytes.Buffer
	srv, err := remote.NewServer(remote.ServerConfig{
		N: 16, P: 0.5, Seed: 3, Budget: 2,
		Journal: obs.NewJournal(&journal),
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotTrace, gotAnalyst atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/query/") {
			gotTrace.Store(r.Header.Get(remote.HeaderTraceID))
			gotAnalyst.Store(r.Header.Get(remote.HeaderAnalyst))
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	o, err := remote.Dial(ctx, ts.URL, remote.Options{Analyst: "mallory", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.TraceID()) != 16 {
		t.Fatalf("TraceID() = %q, want 16 hex chars", o.TraceID())
	}
	if _, err := o.Answer(ctx, [][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}
	if gotTrace.Load() != o.TraceID() {
		t.Errorf("X-Trace-Id = %v, want %q", gotTrace.Load(), o.TraceID())
	}
	if gotAnalyst.Load() != "mallory" {
		t.Errorf("X-Analyst = %v, want mallory", gotAnalyst.Load())
	}

	// A second Dial with the same identity derives the same trace id
	// (deterministic, not random).
	o2, err := remote.Dial(ctx, ts.URL, remote.Options{Analyst: "mallory", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if o2.TraceID() != o.TraceID() {
		t.Errorf("trace id not deterministic: %q != %q", o2.TraceID(), o.TraceID())
	}

	events, err := obs.ReadEvents(&journal)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, e := range events {
		phases[e.Phase]++
		if e.Trace != o.TraceID() {
			t.Errorf("%s event trace = %q, want %q", e.Phase, e.Trace, o.TraceID())
		}
	}
	if phases["query_batch"] != 1 || phases["budget.spend"] != 1 {
		t.Errorf("journal phases = %v, want one query_batch and one budget.spend", phases)
	}
}

// TestClientRetryTelemetry pins the retry observability: each retried
// chunk bumps remote.retries, records its backoff sleep, and emits a
// query_retry journal event.
func TestClientRetryTelemetry(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerConfig{N: 16, P: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var failuresLeft atomic.Int32
	failuresLeft.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/query/") && failuresLeft.Add(-1) >= 0 {
			http.Error(w, `{"v":1,"error":{"code":"internal","message":"injected"}}`, http.StatusBadGateway)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	var journal bytes.Buffer
	o, err := remote.Dial(ctx, ts.URL, remote.Options{
		Backoff:  time.Millisecond,
		Registry: reg,
		Journal:  obs.NewJournal(&journal),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Answer(ctx, [][]int{{0}}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters[remote.MetricClientRetries] != 2 {
		t.Errorf("remote.retries = %d, want 2", snap.Counters[remote.MetricClientRetries])
	}
	if h := snap.Histograms[remote.MetricClientBackoff]; h.Count != 2 {
		t.Errorf("remote.backoff_ns count = %d, want 2", h.Count)
	}
	events, err := obs.ReadEvents(&journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("journal events = %d, want 2 query_retry: %+v", len(events), events)
	}
	for i, e := range events {
		if e.Phase != "query_retry" || e.Sizes["attempt"] != i+1 || e.Trace != o.TraceID() || e.Error == "" {
			t.Errorf("retry event %d = %+v", i, e)
		}
	}
}
