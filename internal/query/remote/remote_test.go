package remote_test

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"singlingout/internal/diffix"
	"singlingout/internal/experiments"
	"singlingout/internal/query"
	"singlingout/internal/query/remote"
)

var ctx = context.Background()

func newTestServer(t *testing.T, cfg remote.ServerConfig) (*remote.Server, *httptest.Server) {
	t.Helper()
	if cfg.N == 0 {
		cfg.N = 32
	}
	if cfg.P == 0 {
		cfg.P = 0.5
	}
	srv, err := remote.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

func fastOpts() remote.Options {
	return remote.Options{Backoff: time.Millisecond}
}

func TestDialServerDown(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := ts.URL
	ts.Close()
	if _, err := remote.Dial(ctx, addr, fastOpts()); err == nil {
		t.Fatal("Dial against a closed server should fail")
	}
}

func TestRemoteMatchesExact(t *testing.T) {
	srv, ts := newTestServer(t, remote.ServerConfig{Seed: 11})
	o, err := remote.Dial(ctx, ts.URL, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	meta := o.Meta()
	if meta.N != 32 || meta.Seed != 11 {
		t.Fatalf("meta = %+v", meta)
	}
	truth := remote.Dataset(meta.Seed, meta.N, meta.P)
	local := &query.Exact{X: truth}
	queries := query.RandomSubsets(rand.New(rand.NewSource(1)), meta.N, 40)
	got, err := o.Answer(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Answer(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Unsorted submissions canonicalize to the same cached answers.
	rev := [][]int{{5, 3, 0}}
	a1, err := o.Answer(ctx, rev)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := o.Answer(ctx, [][]int{{0, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if a1[0] != a2[0] {
		t.Errorf("canonicalization broken: %v != %v", a1[0], a2[0])
	}
	if srv.CacheLen() == 0 {
		t.Error("answer cache never populated")
	}
	if got, _ := o.Answer(ctx, nil); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

func TestRetryOnTransient5xx(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerConfig{N: 16, P: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var reqs, failuresLeft atomic.Int32
	failuresLeft.Store(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/query/") {
			reqs.Add(1)
			if failuresLeft.Add(-1) >= 0 {
				http.Error(w, `{"v":1,"error":{"code":"internal","message":"injected"}}`, http.StatusBadGateway)
				return
			}
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.MaxBatch = 2 // force chunking: the failure lands mid-Answer
	o, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
	got, err := o.Answer(ctx, queries)
	if err != nil {
		t.Fatalf("Answer should survive transient 5xx: %v", err)
	}
	truth := remote.Dataset(3, 16, 0.5)
	for i, q := range queries {
		if got[i] != float64(truth[q[0]]) {
			t.Errorf("answer %d = %v, want %v", i, got[i], truth[q[0]])
		}
	}
	if reqs.Load() != 3+2 { // 3 chunks + 2 retried failures
		t.Errorf("query requests = %d, want 5", reqs.Load())
	}

	// With retries disabled, the same injected failure is fatal.
	failuresLeft.Store(1)
	opts.Retries = -1
	o2, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o2.Answer(ctx, [][]int{{9}}); err == nil {
		t.Fatal("Answer with retries disabled should surface the 5xx")
	}
}

func TestBudgetExhaustionSentinel(t *testing.T) {
	srv, ts := newTestServer(t, remote.ServerConfig{Seed: 5, Budget: 5})
	opts := fastOpts()
	opts.Analyst = "mallory"
	o, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A batch over budget is refused whole and spends nothing.
	big := [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}}
	if _, err := o.Answer(ctx, big); !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("over-budget batch: got %v, want ErrBudgetExhausted", err)
	}
	if spent := srv.BudgetSpent("mallory"); spent != 0 {
		t.Fatalf("refused batch spent %d", spent)
	}
	// A fitting batch spends exactly its distinct fresh queries.
	if _, err := o.Answer(ctx, [][]int{{0}, {1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if spent := srv.BudgetSpent("mallory"); spent != 3 {
		t.Fatalf("spent = %d, want 3", spent)
	}
	// The remaining budget still refuses a 3-fresh batch, sentinel intact.
	if _, err := o.Answer(ctx, [][]int{{3}, {4}, {5}}); !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// Budgets are per analyst.
	opts.Analyst = "bob"
	ob, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ob.Answer(ctx, [][]int{{3}, {4}, {5}}); err != nil {
		t.Fatalf("bob's budget is fresh: %v", err)
	}
}

func TestCacheHitDoesNotSpendBudget(t *testing.T) {
	srv, ts := newTestServer(t, remote.ServerConfig{Seed: 9, Budget: 2})
	opts := fastOpts()
	opts.Analyst = "alice"
	o, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := [][]int{{1, 2, 3}}
	first, err := o.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Re-asking (any number of times, in any index order) is free.
	for i := 0; i < 10; i++ {
		again, err := o.Answer(ctx, [][]int{{3, 2, 1}})
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		if again[0] != first[0] {
			t.Fatalf("cached answer drifted: %v != %v", again[0], first[0])
		}
	}
	if spent := srv.BudgetSpent("alice"); spent != 1 {
		t.Fatalf("spent = %d after repeats, want 1", spent)
	}
	// A batch repeating one fresh query spends a single unit.
	if _, err := o.Answer(ctx, [][]int{{4}, {4}, {4}}); err != nil {
		t.Fatal(err)
	}
	if spent := srv.BudgetSpent("alice"); spent != 2 {
		t.Fatalf("spent = %d, want 2", spent)
	}
}

func TestSentinelMappings(t *testing.T) {
	_, ts := newTestServer(t, remote.ServerConfig{Seed: 2, Threshold: 4})
	// Malformed queries map to query.ErrInvalidQuery.
	o, err := remote.Dial(ctx, ts.URL, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Answer(ctx, [][]int{{0, 0}}); !errors.Is(err, query.ErrInvalidQuery) {
		t.Errorf("duplicate index: got %v, want ErrInvalidQuery", err)
	}
	if _, err := o.Answer(ctx, [][]int{{99}}); !errors.Is(err, query.ErrInvalidQuery) {
		t.Errorf("out of range: got %v, want ErrInvalidQuery", err)
	}
	// Low-count suppression on the diffix backend maps to ErrSuppressed.
	opts := fastOpts()
	opts.Backend = "diffix"
	od, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := od.Answer(ctx, [][]int{{0, 1}}); !errors.Is(err, diffix.ErrSuppressed) {
		t.Errorf("small query: got %v, want ErrSuppressed", err)
	}
	// Unknown backends fail loudly at query time.
	opts.Backend = "nonesuch"
	on, err := remote.Dial(ctx, ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := on.Answer(ctx, [][]int{{0}}); err == nil || errors.Is(err, query.ErrInvalidQuery) {
		t.Errorf("unknown backend: got %v, want a non-sentinel refusal", err)
	}
}

// TestRemoteReconstructionInvariance is the acceptance criterion: the E02
// reconstruction table produced against a qserver (exact backend) is
// byte-identical to the one produced against the in-process exact oracle
// over the same regenerated dataset at the same seed.
func TestRemoteReconstructionInvariance(t *testing.T) {
	const (
		seed = int64(42)
		n    = 32
		p    = 0.5
	)
	_, ts := newTestServer(t, remote.ServerConfig{N: n, Seed: seed, P: p})
	o, err := remote.Dial(ctx, ts.URL, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	truth := remote.Dataset(seed, n, p)
	remoteTable, err := experiments.E02OverOracle(ctx, o, truth, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	localTable, err := experiments.E02OverOracle(ctx, &query.Exact{X: truth}, truth, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	if remoteTable.String() != localTable.String() {
		t.Fatalf("remote and in-process tables differ:\nremote:\n%s\nlocal:\n%s", remoteTable, localTable)
	}
}

// TestRemoteStreamInvariance is the anytime analogue of
// TestRemoteReconstructionInvariance: streaming the workload chunk by
// chunk against a live qserver must land on the same final
// reconstruction — byte-identical — as streaming against an in-process
// exact oracle, and the milestone table must match too.
func TestRemoteStreamInvariance(t *testing.T) {
	const (
		seed  = int64(42)
		n     = 32
		chunk = 16
	)
	_, ts := newTestServer(t, remote.ServerConfig{N: n, Seed: seed, P: 0.5})
	o, err := remote.Dial(ctx, ts.URL, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	truth := remote.Dataset(seed, n, 0.5)
	remoteTab, remoteRes, err := experiments.E02StreamOverOracle(ctx, o, truth, seed, chunk, nil)
	if err != nil {
		t.Fatal(err)
	}
	localTab, localRes, err := experiments.E02StreamOverOracle(ctx, &query.Exact{X: truth}, truth, seed, chunk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remoteRes.Final) != n || len(localRes.Final) != n {
		t.Fatalf("final lengths %d/%d", len(remoteRes.Final), len(localRes.Final))
	}
	for i := range remoteRes.Final {
		if remoteRes.Final[i] != localRes.Final[i] {
			t.Fatalf("bit %d: remote stream %d, local stream %d", i, remoteRes.Final[i], localRes.Final[i])
		}
	}
	if remoteTab.String() != localTab.String() {
		t.Fatalf("remote and local milestone tables differ:\nremote:\n%s\nlocal:\n%s", remoteTab, localTab)
	}
	if remoteRes.FinalAccuracy < 0.999 {
		t.Errorf("final accuracy = %v against the exact backend", remoteRes.FinalAccuracy)
	}
}
