package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"

	"singlingout/internal/diffix"
	"singlingout/internal/obs"
	"singlingout/internal/query"
)

// Metric names recorded by the client Oracle.
const (
	MetricClientRetries = "remote.retries"    // retried requests (POST chunks and GETs)
	MetricClientBackoff = "remote.backoff_ns" // per-retry backoff sleeps
)

// Options configures a client Oracle. The zero value is usable: exact
// backend, anonymous analyst, server-advertised batch limit, 3 retries
// with 50ms initial backoff, http.DefaultClient.
type Options struct {
	// Backend selects the server oracle: "exact", "laplace" or "diffix".
	Backend string
	// Analyst is the budget-accounting identity sent with every batch.
	Analyst string
	// MaxBatch caps queries per HTTP request (chunking larger Answer
	// calls); 0 means the server's advertised max_batch.
	MaxBatch int
	// Retries is how many times a transient failure (network error, 5xx,
	// or an overload shed) is retried per request; 0 means 3. Negative
	// disables retries.
	Retries int
	// Backoff is the initial retry delay, doubled per attempt; 0 means
	// 50ms. An overload refusal's retry_after_ms hint is used instead
	// when it is longer than the computed backoff.
	Backoff time.Duration
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Registry receives the client's remote.* metrics; nil means
	// obs.Default().
	Registry *obs.Registry
	// Journal receives query_retry events (one per retried attempt); nil
	// means none.
	Journal *obs.Journal
}

// Oracle is the client side of the query service: a query.Oracle whose
// Answer travels over HTTP. Attacks in package recon and the experiment
// harnesses run against it exactly as against an in-process oracle; the
// network, batching, retry and budget semantics live here. Every POST is
// traced (when the default tracer is enabled) and stamped with the wire
// trace headers, so the server's journal and ledger entries correlate
// back to this client's spans.
type Oracle struct {
	base   string
	opts   Options
	meta   Meta
	v      int    // negotiated wire version, stamped on every request
	trace  string // wire trace id, stable for the oracle's lifetime
	tracer *obs.Tracer
	lane   int

	retries *obs.Counter
	backoff *obs.Histogram
}

// Dial fetches baseURL/v1/meta and returns an Oracle bound to that
// server. It negotiates the wire version: the client asks for its newest
// schema (/v1/meta?v=2) and falls back to the baseline request when the
// server refuses the parameter; either way the server's answer names the
// version it speaks, and every subsequent request is stamped with it. A
// server outside the client's [1, VMax] range fails the dial. The meta
// fetch retries transient failures like any other request.
func Dial(ctx context.Context, baseURL string, opts Options) (*Oracle, error) {
	if opts.Backend == "" {
		opts.Backend = "exact"
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.Backoff == 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	tracer := obs.DefaultTracer()
	o := &Oracle{
		base:    baseURL,
		opts:    opts,
		trace:   traceID(baseURL, opts.Backend, opts.Analyst),
		tracer:  tracer,
		lane:    tracer.NewLane("remote client " + opts.Backend),
		retries: reg.Counter(MetricClientRetries),
		backoff: reg.Histogram(MetricClientBackoff),
	}
	if err := o.getJSON(ctx, "/v1/meta?v="+strconv.Itoa(VMax), &o.meta); err != nil {
		// A pre-negotiation server may refuse the ?v= parameter outright;
		// re-ask in the baseline shape before giving up.
		o.meta = Meta{}
		if ferr := o.getJSON(ctx, "/v1/meta", &o.meta); ferr != nil {
			return nil, fmt.Errorf("remote: dialing query server: %w", err)
		}
	}
	if o.meta.V < V || o.meta.V > VMax {
		return nil, fmt.Errorf("remote: server speaks wire version %d, client speaks 1..%d", o.meta.V, VMax)
	}
	o.v = o.meta.V
	if o.meta.N <= 0 {
		return nil, fmt.Errorf("remote: server advertises dataset size %d", o.meta.N)
	}
	if opts.MaxBatch <= 0 || opts.MaxBatch > o.meta.MaxBatch {
		o.opts.MaxBatch = o.meta.MaxBatch
	}
	return o, nil
}

// Meta returns the server's advertised metadata (dataset seed/size,
// backends, budget; plus serving topology when v2 was negotiated).
func (o *Oracle) Meta() Meta { return o.meta }

// WireVersion reports the wire schema version negotiated at Dial.
func (o *Oracle) WireVersion() int { return o.v }

// TraceID returns the oracle's wire trace id: 16 hex characters,
// deterministically derived from (base URL, backend, analyst), stamped on
// every POST as the X-Trace-Id header. A merged Chrome trace filters the
// server's dump on it to keep only this client's spans.
func (o *Oracle) TraceID() string { return o.trace }

// traceID derives the deterministic wire trace id for one client
// identity (FNV-1a, same family as the ledger's batch hash).
func traceID(base, backend, analyst string) string {
	h := fnv.New64a()
	for _, s := range []string{base, backend, analyst} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FetchTrace GETs the server's /trace endpoint: its collected spans as an
// obs.TraceDump, ready for Tracer.AddProcess on the client side.
func (o *Oracle) FetchTrace(ctx context.Context) (obs.TraceDump, error) {
	var d obs.TraceDump
	if err := o.getJSON(ctx, "/trace", &d); err != nil {
		return d, err
	}
	if d.V != obs.TraceDumpV {
		return d, fmt.Errorf("remote: trace dump version %d, want %d", d.V, obs.TraceDumpV)
	}
	return d, nil
}

// FetchLedger GETs the server's privacy-loss ledger (all analysts when
// analyst is empty).
func (o *Oracle) FetchLedger(ctx context.Context, analyst string) (LedgerResponse, error) {
	path := "/v1/ledger"
	if analyst != "" {
		path += "?analyst=" + analyst
	}
	var lr LedgerResponse
	if err := o.getJSON(ctx, path, &lr); err != nil {
		return lr, err
	}
	if lr.V != V {
		return lr, fmt.Errorf("remote: ledger wire version %d, want %d", lr.V, V)
	}
	return lr, nil
}

// getJSON GETs base+path and decodes the JSON body into v, retrying
// transient failures (network errors, 5xx) with the same backoff and
// telemetry as query submission — a ledger or trace fetch racing a
// server restart deserves the same persistence as a batch.
func (o *Oracle) getJSON(ctx context.Context, path string, v any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryable, err := o.getOnce(ctx, path, v)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= o.opts.Retries {
			return lastErr
		}
		if werr := o.await(ctx, attempt, 0, 0, err); werr != nil {
			return werr
		}
	}
}

// getOnce performs one GET attempt; retryable marks failures worth
// re-asking (the request never mutates server state).
func (o *Oracle) getOnce(ctx context.Context, path string, v any) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.base+path, nil)
	if err != nil {
		return false, fmt.Errorf("remote: %w", err)
	}
	resp, err := o.opts.Client.Do(req)
	if err != nil {
		return true, fmt.Errorf("remote: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode >= 500, fmt.Errorf("remote: GET %s returned %s", path, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(v); err != nil {
		return false, fmt.Errorf("remote: GET %s: undecodable body: %w", path, err)
	}
	return false, nil
}

// N implements query.Oracle.
func (o *Oracle) N() int { return o.meta.N }

// Answer implements query.Oracle: the batch is chunked to the negotiated
// batch limit and submitted as POST /v1/query/{backend} requests.
// Transient failures (network errors, 5xx, overload sheds) are retried
// with exponential backoff; refusals come back as the repository's
// sentinel errors — errors.Is(err, query.ErrBudgetExhausted) on an
// exhausted budget, query.ErrInvalidQuery on a malformed query,
// diffix.ErrSuppressed on low-count suppression, query.ErrOverloaded on
// a shed the retries could not outlast — so attack code handles remote
// and in-process oracles identically.
func (o *Oracle) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	out := make([]float64, 0, len(queries))
	for start := 0; start < len(queries); start += o.opts.MaxBatch {
		end := start + o.opts.MaxBatch
		if end > len(queries) {
			end = len(queries)
		}
		answers, err := o.submit(ctx, queries[start:end])
		if err != nil {
			return nil, err
		}
		out = append(out, answers...)
	}
	if len(queries) == 0 {
		return []float64{}, nil
	}
	return out, nil
}

// submit POSTs one chunk, retrying transient failures. Each retry bumps
// the remote.retries counter, records the backoff sleep into
// remote.backoff_ns, and (when a journal is configured) emits one
// query_retry event naming the attempt and the transient error. An
// overload shed counts as transient: the server said "later", and its
// retry_after_ms hint stretches the backoff when longer.
func (o *Oracle) submit(ctx context.Context, chunk [][]int) ([]float64, error) {
	body, err := json.Marshal(QueryRequest{V: o.v, Analyst: o.opts.Analyst, Queries: chunk})
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		answers, retryable, hintMs, err := o.post(ctx, body, len(chunk))
		if err == nil {
			return answers, nil
		}
		lastErr = err
		if !retryable || attempt >= o.opts.Retries {
			return nil, lastErr
		}
		if werr := o.await(ctx, attempt, hintMs, len(chunk), err); werr != nil {
			return nil, werr
		}
	}
}

// await sleeps one retry backoff: exponential from Options.Backoff,
// stretched to the server's retry hint when that is longer, recorded in
// remote.retries / remote.backoff_ns and the journal.
func (o *Oracle) await(ctx context.Context, attempt, hintMs, queries int, cause error) error {
	delay := o.opts.Backoff << uint(attempt)
	if hint := time.Duration(hintMs) * time.Millisecond; hint > delay {
		delay = hint
	}
	o.retries.Add(1)
	o.backoff.Observe(delay.Nanoseconds())
	o.journalRetry(attempt+1, queries, cause)
	t := time.NewTimer(delay)
	select {
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// journalRetry emits one query_retry event (when a journal is
// configured): which backend, which attempt is about to run, how many
// queries the request carries (0 for a GET), and the transient error
// being retried.
func (o *Oracle) journalRetry(attempt, queries int, err error) {
	if o.opts.Journal == nil {
		return
	}
	_ = o.opts.Journal.Emit(obs.Event{
		Phase: "query_retry",
		ID:    o.opts.Backend,
		Trace: o.trace,
		Sizes: map[string]int{"attempt": attempt, "queries": queries},
		Error: err.Error(),
	})
}

// post performs one HTTP attempt. retryable marks transient failures
// (network errors, 5xx, overload sheds — hintMs carries the shed's
// retry_after_ms); 4xx refusals are mapped to sentinels and never
// retried — resubmitting an over-budget batch cannot succeed.
func (o *Oracle) post(ctx context.Context, body []byte, want int) (answers []float64, retryable bool, hintMs int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		o.base+"/v1/query/"+o.opts.Backend, bytes.NewReader(body))
	if err != nil {
		return nil, false, 0, fmt.Errorf("remote: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the trace over the wire: the server continues this span
	// (X-Parent-Span becomes its span's parent) and stamps its journal
	// events and ledger entries with X-Trace-Id.
	sp := o.tracer.Begin("query_post", "remote", o.lane, obs.NoSpan).WithArg("trace", o.trace)
	defer sp.End()
	req.Header.Set(HeaderTraceID, o.trace)
	if id := sp.ID(); id != obs.NoSpan {
		req.Header.Set(HeaderParentSpan, strconv.FormatInt(int64(id), 10))
	}
	if o.opts.Analyst != "" {
		req.Header.Set(HeaderAnalyst, o.opts.Analyst)
	}
	resp, err := o.opts.Client.Do(req)
	if err != nil {
		return nil, true, 0, fmt.Errorf("remote: query server unreachable: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, true, 0, fmt.Errorf("remote: reading response: %w", err)
	}
	if resp.StatusCode >= 500 {
		var er ErrorResponse
		if json.Unmarshal(payload, &er) == nil && er.Err.Code == CodeOverloaded {
			return nil, true, er.Err.RetryAfterMs,
				fmt.Errorf("remote: %s: %w", er.Err.Message, query.ErrOverloaded)
		}
		return nil, true, 0, fmt.Errorf("remote: server error %s: %s", resp.Status, errMessage(payload))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, 0, refusalError(resp.StatusCode, payload)
	}
	var qr QueryResponse
	if err := json.Unmarshal(payload, &qr); err != nil {
		return nil, false, 0, fmt.Errorf("remote: undecodable response: %w", err)
	}
	if qr.V != o.v {
		return nil, false, 0, fmt.Errorf("remote: response wire version %d, want %d", qr.V, o.v)
	}
	if len(qr.Answers) != want {
		return nil, false, 0, fmt.Errorf("remote: %d answers for %d queries", len(qr.Answers), want)
	}
	return qr.Answers, false, 0, nil
}

// refusalError maps a 4xx ErrorResponse to the repository's sentinel
// errors where one exists.
func refusalError(status int, payload []byte) error {
	var er ErrorResponse
	if json.Unmarshal(payload, &er) != nil || er.Err.Code == "" {
		return fmt.Errorf("remote: server refused with status %d: %s", status, payload)
	}
	switch er.Err.Code {
	case CodeBudgetExhausted:
		return fmt.Errorf("remote: %s: %w", er.Err.Message, query.ErrBudgetExhausted)
	case CodeInvalidQuery:
		return fmt.Errorf("remote: %s: %w", er.Err.Message, query.ErrInvalidQuery)
	case CodeSuppressed:
		return fmt.Errorf("remote: %s: %w", er.Err.Message, diffix.ErrSuppressed)
	default:
		return fmt.Errorf("remote: server refused (%s): %s", er.Err.Code, er.Err.Message)
	}
}

func errMessage(payload []byte) string {
	var er ErrorResponse
	if json.Unmarshal(payload, &er) == nil && er.Err.Code != "" {
		return er.Err.Code + ": " + er.Err.Message
	}
	if len(payload) > 200 {
		payload = payload[:200]
	}
	return string(payload)
}

var _ query.Oracle = (*Oracle)(nil)
