package remote

import (
	"fmt"
	"regexp"

	"singlingout/internal/diffix"
	"singlingout/internal/query"
)

// Backend is a pluggable oracle factory: one wire endpoint
// (POST /v1/query/{Name}) backed by one query.Oracle over the server's
// dataset. The built-in exact/laplace/diffix backends are registered
// through the same interface (Builtins), so a k-anonymized or
// DP-histogram backend plugs into the server by appearing in
// ServerConfig.Backends — no server code changes, and the wire schema,
// budget accounting, caching and sharding apply to it unmodified.
//
// Open is called once at server construction. The returned oracle must
// be safe for concurrent use and deterministic per canonical query
// (same query set, same answer) — the answer cache and the shard
// invariance guarantee both rely on it.
type Backend interface {
	// Name is the wire name of the endpoint: lowercase identifier
	// ([a-z][a-z0-9_]*), unique within one server.
	Name() string
	// Open builds the backend's oracle over the generated dataset x.
	// cfg carries the backend knobs (Seed, Eps, SD, Threshold) with
	// defaults already applied.
	Open(cfg ServerConfig, x []int64) (query.Oracle, error)
}

// Builtins returns the three reference backends every qserver serves by
// default: the exact (calibration) oracle, the sticky-Laplace DP oracle
// and the Diffix-style sticky-noise cloak. ServerConfig.Backends == nil
// means exactly this set; a custom set can include them alongside new
// backends (append(remote.Builtins(), myBackend)).
func Builtins() []Backend {
	return []Backend{exactBackend{}, laplaceBackend{}, diffixBackend{}}
}

type exactBackend struct{}

func (exactBackend) Name() string { return "exact" }
func (exactBackend) Open(_ ServerConfig, x []int64) (query.Oracle, error) {
	return &query.Exact{X: x}, nil
}

type laplaceBackend struct{}

func (laplaceBackend) Name() string { return "laplace" }
func (laplaceBackend) Open(cfg ServerConfig, x []int64) (query.Oracle, error) {
	return &query.StickyLaplace{X: x, Eps: cfg.Eps, Seed: cfg.Seed}, nil
}

type diffixBackend struct{}

func (diffixBackend) Name() string { return "diffix" }
func (diffixBackend) Open(cfg ServerConfig, x []int64) (query.Oracle, error) {
	return &diffix.Cloak{X: x, SD: cfg.SD, Threshold: cfg.Threshold, Seed: cfg.Seed}, nil
}

// backendName validates wire endpoint names: the name becomes a URL path
// segment and a cache-key prefix, so it must be a plain lowercase
// identifier.
var backendName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// openBackends materializes the registered backends into the server's
// name -> oracle table, rejecting invalid and duplicate names.
func openBackends(cfg ServerConfig, x []int64, regs []Backend) (map[string]query.Oracle, error) {
	if len(regs) == 0 {
		return nil, fmt.Errorf("remote: server needs at least one backend")
	}
	out := make(map[string]query.Oracle, len(regs))
	for _, b := range regs {
		name := b.Name()
		if !backendName.MatchString(name) {
			return nil, fmt.Errorf("remote: backend name %q: must match %s", name, backendName)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("remote: backend %q registered twice", name)
		}
		o, err := b.Open(cfg, x)
		if err != nil {
			return nil, fmt.Errorf("remote: opening backend %q: %w", name, err)
		}
		if o == nil {
			return nil, fmt.Errorf("remote: backend %q opened to a nil oracle", name)
		}
		out[name] = o
	}
	return out, nil
}
