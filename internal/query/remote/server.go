package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"singlingout/internal/diffix"
	"singlingout/internal/obs"
	"singlingout/internal/par"
	"singlingout/internal/query"
)

// Metric names recorded by the server into its registry.
const (
	MetricRequests       = "qserver.requests"
	MetricBatchQueries   = "qserver.batch_queries"
	MetricCacheHits      = "qserver.cache_hits"
	MetricCacheMisses    = "qserver.cache_misses"
	MetricBudgetDenied   = "qserver.budget_denied"
	MetricBudgetSpent    = "qserver.budget_spent"    // fresh queries charged, all analysts
	MetricBudgetRefunded = "qserver.budget_refunded" // fresh queries refunded on failed batches
	MetricErrors         = "qserver.errors"
	MetricLatency        = "qserver.latency_ns"
	MetricCacheSize      = "qserver.cache_size"
)

// ServerConfig configures a query server. The dataset is generated, not
// supplied: X = Dataset(Seed, N, P), so the /v1/meta the server advertises
// is consistent with its answers by construction.
type ServerConfig struct {
	N    int     // dataset size
	Seed int64   // dataset + sticky-noise seed
	P    float64 // Bernoulli parameter of the protected bit

	Eps       float64 // laplace backend: per-query epsilon
	SD        float64 // diffix backend: sticky noise standard deviation
	Threshold int     // diffix backend: low-count suppression bound

	Budget        int // per-analyst fresh-query budget, 0 = unlimited
	MaxBatch      int // largest accepted batch, 0 = default 4096
	MaxConcurrent int // concurrent request bound, 0 = default 16
	Workers       int // pool workers per fresh sub-batch, 0 = GOMAXPROCS

	Registry *obs.Registry // nil = obs.Default()
	Journal  *obs.Journal  // nil = no journal events
	Tracer   *obs.Tracer   // nil = obs.DefaultTracer(); server-side spans when enabled
}

// Server answers statistical queries over HTTP. It owns the only copy of
// the dataset; analysts see nothing but noisy (or exact, for the
// calibration backend) counting-query answers, per-analyst budget
// accounting, and an answer cache that makes repeated queries free — the
// reference architecture the paper's attacks are aimed at.
type Server struct {
	cfg      ServerConfig
	x        []int64
	backends map[string]query.Oracle
	names    []string
	gate     *par.Gate
	mux      *http.ServeMux
	tracer   *obs.Tracer
	lane     int // trace lane of the query handler

	mu    sync.Mutex
	cache map[string]float64 // "<backend>|<canonical query>" -> answer

	ledger *ledger // append-only per-analyst budget accounting

	requests       *obs.Counter
	batchQueries   *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	budgetDenied   *obs.Counter
	budgetSpent    *obs.Counter
	budgetRefunded *obs.Counter
	errs           *obs.Counter
	latency        *obs.Histogram
	cacheSize      *obs.Gauge
}

// NewServer builds a Server from cfg, generating the dataset and the
// exact/laplace/diffix backends over it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("remote: server needs a positive dataset size, got %d", cfg.N)
	}
	if cfg.P <= 0 || cfg.P >= 1 {
		return nil, fmt.Errorf("remote: P must be in (0,1), got %v", cfg.P)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 1
	}
	if cfg.SD <= 0 {
		cfg.SD = 1.5
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 8
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	x := Dataset(cfg.Seed, cfg.N, cfg.P)
	s := &Server{
		cfg: cfg,
		x:   x,
		backends: map[string]query.Oracle{
			"exact":   &query.Exact{X: x},
			"laplace": &query.StickyLaplace{X: x, Eps: cfg.Eps, Seed: cfg.Seed},
			"diffix":  &diffix.Cloak{X: x, SD: cfg.SD, Threshold: cfg.Threshold, Seed: cfg.Seed},
		},
		gate:   par.NewGate(cfg.MaxConcurrent),
		tracer: tracer,
		lane:   tracer.NewLane("qserver http"),
		cache:  make(map[string]float64),
		ledger: newLedger(),

		requests:       reg.Counter(MetricRequests),
		batchQueries:   reg.Counter(MetricBatchQueries),
		cacheHits:      reg.Counter(MetricCacheHits),
		cacheMisses:    reg.Counter(MetricCacheMisses),
		budgetDenied:   reg.Counter(MetricBudgetDenied),
		budgetSpent:    reg.Counter(MetricBudgetSpent),
		budgetRefunded: reg.Counter(MetricBudgetRefunded),
		errs:           reg.Counter(MetricErrors),
		latency:        reg.Histogram(MetricLatency),
		cacheSize:      reg.Gauge(MetricCacheSize),
	}
	for name := range s.backends {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/meta", s.handleMeta)
	s.mux.HandleFunc("/v1/query/", s.handleQuery)
	s.mux.HandleFunc("/v1/ledger", s.handleLedger)
	s.mux.HandleFunc("/ledger", s.handleLedger)
	return s, nil
}

// Handler returns the /v1/* HTTP handler. Mount it alongside the obs
// serve.Server handler to get /metrics, /snapshot, /healthz and /journal
// on the same listener (see cmd/qserver).
func (s *Server) Handler() http.Handler { return s.mux }

// Meta returns what GET /v1/meta serves.
func (s *Server) Meta() Meta {
	return Meta{
		V:        V,
		N:        s.cfg.N,
		Seed:     s.cfg.Seed,
		P:        s.cfg.P,
		Backends: append([]string(nil), s.names...),
		Budget:   s.cfg.Budget,
		MaxBatch: s.cfg.MaxBatch,
	}
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "GET only")
		return
	}
	s.requests.Add(1)
	writeJSON(w, http.StatusOK, s.Meta())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sp := s.latency.Span()
	defer sp.End()
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	// Continue the client's trace: the span this handler records carries
	// the wire trace id and reports the client-side span as its parent,
	// so a merged Chrome trace (client /trace fetch + AddProcess) shows
	// the server lane nested under the client's batch span.
	trace := r.Header.Get(HeaderTraceID)
	var parent obs.SpanID
	if v := r.Header.Get(HeaderParentSpan); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			parent = obs.SpanID(id)
		}
	}
	tsp := s.tracer.Begin("query_batch", "qserver", s.lane, parent)
	if trace != "" {
		tsp = tsp.WithArg("trace", trace)
	}
	defer tsp.End()
	ctx := r.Context()
	if err := s.gate.Enter(ctx); err != nil {
		s.fail(w, http.StatusServiceUnavailable, CodeInternal, "cancelled while waiting for a slot")
		return
	}
	defer s.gate.Leave()

	name := strings.TrimPrefix(r.URL.Path, "/v1/query/")
	backend, ok := s.backends[name]
	if !ok {
		s.fail(w, http.StatusNotFound, CodeUnknownBackend, fmt.Sprintf("no backend %q (have %s)", name, strings.Join(s.names, ", ")))
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "undecodable body: "+err.Error())
		return
	}
	if req.V != V {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("wire version %d, server speaks %d", req.V, V))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("batch of %d exceeds max_batch %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	analyst := req.Analyst
	if analyst == "" {
		analyst = "anon"
	}
	s.batchQueries.Add(int64(len(req.Queries)))

	// Canonicalize at the trust boundary: every query becomes a sorted
	// copy and is validated once, here — the single place duplicate
	// indices and out-of-range users are rejected for the whole service
	// (backends still re-check, but no malformed query reaches them).
	keys := make([]string, len(req.Queries))
	canon := make([][]int, len(req.Queries))
	for i, q := range req.Queries {
		cq := append([]int(nil), q...)
		sort.Ints(cq)
		if err := query.ValidateQuery(s.cfg.N, cq); err != nil {
			s.fail(w, http.StatusBadRequest, CodeInvalidQuery, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		canon[i] = cq
		keys[i] = queryKey(name, cq)
	}

	// Cache pass under the lock: split the batch into hits and distinct
	// misses. Only fresh (uncached) queries spend budget — asking again
	// is free.
	type missT struct {
		key string
		q   []int
	}
	var misses []missT
	var missKeys []string
	seen := make(map[string]bool)
	cached := 0
	s.mu.Lock()
	for i, k := range keys {
		if _, ok := s.cache[k]; ok {
			cached++
			continue
		}
		if !seen[k] {
			seen[k] = true
			misses = append(misses, missT{k, canon[i]})
			missKeys = append(missKeys, k)
		}
	}
	s.mu.Unlock()
	fresh := len(misses)

	// Reserve the fresh queries all-or-nothing against the ledger: a
	// granted reservation appends a spend entry, a refused one a deny
	// entry — either way the movement is on the audit trail before any
	// backend runs. Zero-cost batches (all cached) leave no entry.
	hash := batchHash(missKeys)
	if fresh > 0 {
		entry, ok := s.ledger.spend(analyst, name, hash, trace, fresh, s.cfg.Budget)
		s.journalBudget(entry)
		if !ok {
			s.budgetDenied.Add(1)
			s.journal(name, analyst, trace, len(req.Queries), cached, fresh, CodeBudgetExhausted)
			s.fail(w, http.StatusTooManyRequests, CodeBudgetExhausted,
				fmt.Sprintf("analyst %q: %d fresh queries over budget (%d of %d spent)",
					analyst, fresh, entry.Cumulative, s.cfg.Budget))
			return
		}
		s.budgetSpent.Add(int64(fresh))
	}
	s.cacheHits.Add(int64(cached))
	s.cacheMisses.Add(int64(fresh))

	// Answer the misses on the pool. The backends are sticky/deterministic
	// per canonical query, so parallel order does not affect answers.
	fresh64 := make([]float64, fresh)
	if err := par.ForEach(s.cfg.Workers, fresh, func(i int) error {
		a, err := query.AnswerOne(ctx, backend, misses[i].q)
		if err != nil {
			return err
		}
		fresh64[i] = a
		return nil
	}); err != nil {
		// All-or-nothing: a failed batch spends nothing — the refund is
		// its own ledger entry, so the audit trail shows the attempt.
		if fresh > 0 {
			s.journalBudget(s.ledger.refund(analyst, name, hash, trace, fresh))
			s.budgetRefunded.Add(int64(fresh))
		}
		status, code := http.StatusInternalServerError, CodeInternal
		switch {
		case errors.Is(err, diffix.ErrSuppressed):
			status, code = http.StatusUnprocessableEntity, CodeSuppressed
		case errors.Is(err, query.ErrInvalidQuery):
			status, code = http.StatusBadRequest, CodeInvalidQuery
		case errors.Is(err, query.ErrBudgetExhausted):
			status, code = http.StatusTooManyRequests, CodeBudgetExhausted
		}
		s.journal(name, analyst, trace, len(req.Queries), cached, fresh, code)
		s.fail(w, status, code, err.Error())
		return
	}

	s.mu.Lock()
	for i, m := range misses {
		s.cache[m.key] = fresh64[i]
	}
	answers := make([]float64, len(keys))
	for i, k := range keys {
		answers[i] = s.cache[k]
	}
	s.cacheSize.Set(float64(len(s.cache)))
	s.mu.Unlock()
	remaining := -1
	if s.cfg.Budget > 0 {
		remaining = s.cfg.Budget - s.ledger.total(analyst)
	}

	s.journal(name, analyst, trace, len(req.Queries), cached, fresh, "")
	writeJSON(w, http.StatusOK, QueryResponse{V: V, Answers: answers, Cached: cached, BudgetRemaining: remaining})
}

// journal emits one run-journal event per query batch (when a journal is
// configured): which backend, how much was cached vs freshly spent, the
// wire trace id, and the refusal code if the batch was refused.
func (s *Server) journal(backend, analyst, trace string, queries, cached, fresh int, code string) {
	if s.cfg.Journal == nil {
		return
	}
	e := obs.Event{
		Phase: "query_batch",
		ID:    backend,
		Seed:  s.cfg.Seed,
		Trace: trace,
		Sizes: map[string]int{"queries": queries, "cached": cached, "fresh": fresh},
	}
	if code != "" {
		e.Error = code
	}
	_ = s.cfg.Journal.Emit(e)
}

// journalBudget emits one budget.spend / budget.refund / budget.deny
// event per ledger entry (when a journal is configured), carrying the
// sequence number, cost and cumulative so the journal alone replays to
// the enforced budget state.
func (s *Server) journalBudget(e LedgerEntry) {
	if s.cfg.Journal == nil {
		return
	}
	_ = s.cfg.Journal.Emit(obs.Event{
		Phase: "budget." + e.Op,
		ID:    e.Analyst,
		Seed:  s.cfg.Seed,
		Trace: e.Trace,
		Sizes: map[string]int{"seq": int(e.Seq), "cost": e.Cost, "cumulative": e.Cumulative},
	})
}

// handleLedger serves the append-only privacy-loss ledger (GET, optional
// ?analyst= filter): the full spend/refund/deny history plus the current
// per-analyst net totals. Mounted at both /v1/ledger and /ledger.
func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "GET only")
		return
	}
	s.requests.Add(1)
	entries, totals := s.ledger.snapshot(r.URL.Query().Get("analyst"))
	writeJSON(w, http.StatusOK, LedgerResponse{
		V: V, Budget: s.cfg.Budget, Totals: totals, Entries: entries,
	})
}

func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.errs.Add(1)
	writeJSON(w, status, ErrorResponse{V: V, Err: ErrorBody{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// queryKey is the answer-cache key: backend name plus the canonical
// (sorted) index set.
func queryKey(backend string, canonical []int) string {
	var b strings.Builder
	b.WriteString(backend)
	b.WriteByte('|')
	for i, v := range canonical {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// BudgetSpent reports the fresh queries an analyst has net spent (test
// and telemetry hook); it is the analyst's ledger total.
func (s *Server) BudgetSpent(analyst string) int {
	return s.ledger.total(analyst)
}

// Ledger returns the current entry history and totals (optionally
// filtered to one analyst), the same view GET /v1/ledger serves.
func (s *Server) Ledger(analyst string) ([]LedgerEntry, map[string]int) {
	return s.ledger.snapshot(analyst)
}

// CacheLen reports the answer-cache population.
func (s *Server) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}
