package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"singlingout/internal/diffix"
	"singlingout/internal/obs"
	"singlingout/internal/par"
	"singlingout/internal/query"
)

// Metric names recorded by the server into its registry.
const (
	MetricRequests       = "qserver.requests"
	MetricBatchQueries   = "qserver.batch_queries"
	MetricCacheHits      = "qserver.cache_hits"
	MetricCacheMisses    = "qserver.cache_misses"
	MetricBudgetDenied   = "qserver.budget_denied"
	MetricBudgetSpent    = "qserver.budget_spent"    // fresh queries charged, all analysts
	MetricBudgetRefunded = "qserver.budget_refunded" // fresh queries refunded on failed batches
	MetricErrors         = "qserver.errors"
	MetricLatency        = "qserver.latency_ns"
	MetricCacheSize      = "qserver.cache_size"
	MetricShed           = "qserver.shed"        // requests refused by admission control
	MetricQueueDepth     = "qserver.queue_depth" // admitted requests waiting for an active slot
	MetricWALAppends     = "qserver.wal_appends" // ledger entries durably logged
)

// ServerConfig configures a query server. The dataset is generated, not
// supplied: X = Dataset(Seed, N, P), so the /v1/meta the server advertises
// is consistent with its answers by construction.
type ServerConfig struct {
	N    int     // dataset size
	Seed int64   // dataset + sticky-noise seed
	P    float64 // Bernoulli parameter of the protected bit

	Eps       float64 // laplace backend: per-query epsilon
	SD        float64 // diffix backend: sticky noise standard deviation
	Threshold int     // diffix backend: low-count suppression bound

	Budget        int // per-analyst fresh-query budget, 0 = unlimited
	MaxBatch      int // largest accepted batch, 0 = default 4096
	MaxConcurrent int // total active-request bound, split across shards; 0 = default 16
	Workers       int // pool workers per fresh sub-batch, 0 = GOMAXPROCS

	// Shards partitions the answer cache (by canonical query) and the
	// privacy-loss ledger + admission control (by analyst id) across
	// independent locks via consistent hashing; 0 = 1. Reconstruction
	// results are byte-identical at any shard count: every backend is
	// deterministic per canonical query, so partitioning changes
	// contention, never answers.
	Shards int
	// QueueDepth bounds each shard's admission queue: requests admitted
	// but waiting for an active slot. Beyond active+QueueDepth a request
	// is shed with CodeOverloaded instead of queuing unboundedly.
	// 0 = default 64, negative = no waiting room (shed when all active
	// slots are busy).
	QueueDepth int
	// RetryAfter is the backoff hint stamped on overload refusals
	// (Retry-After header + retry_after_ms body field); 0 = 50ms.
	RetryAfter time.Duration
	// Delay injects an artificial per-request service time before the
	// batch is processed — load/overload testing only (cmd/loadgen's
	// -inject-delay uses it to make shedding reproducible); 0 = none.
	Delay time.Duration

	// WALPath makes the ledger durable: every entry is appended to this
	// JSONL write-ahead log before it takes effect, and NewServer replays
	// an existing file through ReplayLedger so spent epsilon survives a
	// restart. Empty = in-memory only. The answer cache is never
	// persisted — after a restart, previously-asked queries charge again
	// (over-charging across restarts is the safe direction).
	WALPath string
	// WALSync fsyncs the WAL after every append (restart-over-crash
	// durability at a per-entry fsync cost; the file is always synced on
	// Close).
	WALSync bool

	// Backends is the oracle registry served under /v1/query/{name};
	// nil = Builtins() (exact, laplace, diffix).
	Backends []Backend

	Registry *obs.Registry // nil = obs.Default()
	Journal  *obs.Journal  // nil = no journal events
	Tracer   *obs.Tracer   // nil = obs.DefaultTracer(); server-side spans when enabled
}

// Server answers statistical queries over HTTP. It owns the only copy of
// the dataset; analysts see nothing but noisy (or exact, for the
// calibration backend) counting-query answers, per-analyst budget
// accounting, and an answer cache that makes repeated queries free — the
// reference architecture the paper's attacks are aimed at. State is
// partitioned across shards (per-query cache shards, per-analyst ledger
// and admission shards) so no lock in the request path is global, and
// the ledger optionally writes ahead to a durable log so a restart never
// forgets — and therefore never refunds — spent epsilon.
type Server struct {
	cfg      ServerConfig
	x        []int64
	backends map[string]query.Oracle
	names    []string
	mux      *http.ServeMux
	tracer   *obs.Tracer
	lane     int // trace lane of the query handler

	ring       *ring
	caches     []cacheShard
	cacheCount atomic.Int64 // distinct cached keys across shards
	ledgers    []*ledger
	seq        atomic.Int64 // global ledger sequence, shared by all shards
	wal        *wal         // nil without WALPath
	admits     []*admission
	waiting    atomic.Int64 // queued-not-active requests across shards

	requests       *obs.Counter
	batchQueries   *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	budgetDenied   *obs.Counter
	budgetSpent    *obs.Counter
	budgetRefunded *obs.Counter
	errs           *obs.Counter
	shed           *obs.Counter
	walAppends     *obs.Counter
	latency        *obs.Histogram
	cacheSize      *obs.Gauge
	queueDepth     *obs.Gauge
}

// NewServer builds a Server from cfg, generating the dataset and opening
// the registered backends over it. When cfg.WALPath names an existing
// write-ahead log, the ledger is replayed from it (cross-checked with
// ReplayLedger) before the server accepts traffic; a log that does not
// replay cleanly fails construction rather than serving from a budget
// state that cannot be audited.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("remote: server needs a positive dataset size, got %d", cfg.N)
	}
	if cfg.P <= 0 || cfg.P >= 1 {
		return nil, fmt.Errorf("remote: P must be in (0,1), got %v", cfg.P)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 1
	}
	if cfg.SD <= 0 {
		cfg.SD = 1.5
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 8
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	x := Dataset(cfg.Seed, cfg.N, cfg.P)
	regs := cfg.Backends
	if len(regs) == 0 {
		regs = Builtins()
	}
	backends, err := openBackends(cfg, x, regs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		x:        x,
		backends: backends,
		tracer:   tracer,
		lane:     tracer.NewLane("qserver http"),
		ring:     newRing(cfg.Shards),

		requests:       reg.Counter(MetricRequests),
		batchQueries:   reg.Counter(MetricBatchQueries),
		cacheHits:      reg.Counter(MetricCacheHits),
		cacheMisses:    reg.Counter(MetricCacheMisses),
		budgetDenied:   reg.Counter(MetricBudgetDenied),
		budgetSpent:    reg.Counter(MetricBudgetSpent),
		budgetRefunded: reg.Counter(MetricBudgetRefunded),
		errs:           reg.Counter(MetricErrors),
		shed:           reg.Counter(MetricShed),
		walAppends:     reg.Counter(MetricWALAppends),
		latency:        reg.Histogram(MetricLatency),
		cacheSize:      reg.Gauge(MetricCacheSize),
		queueDepth:     reg.Gauge(MetricQueueDepth),
	}
	for name := range s.backends {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)

	// Replay the WAL (if any) before any shard exists, then partition the
	// replayed history by the same ring the live path uses — entries
	// written under one shard count load cleanly under another.
	var replayed []LedgerEntry
	if cfg.WALPath != "" {
		w, entries, err := openWAL(cfg.WALPath, cfg.WALSync)
		if err != nil {
			return nil, err
		}
		if _, err := ReplayLedger(entries); err != nil {
			w.Close()
			return nil, fmt.Errorf("remote: wal %s does not replay: %w", cfg.WALPath, err)
		}
		s.wal = w
		replayed = entries
	}
	s.caches = make([]cacheShard, cfg.Shards)
	for i := range s.caches {
		s.caches[i].m = make(map[string]float64)
	}
	perShard := (cfg.MaxConcurrent + cfg.Shards - 1) / cfg.Shards
	s.ledgers = make([]*ledger, cfg.Shards)
	s.admits = make([]*admission, cfg.Shards)
	for i := range s.ledgers {
		s.ledgers[i] = newLedger(&s.seq, s.wal)
		s.admits[i] = newAdmission(perShard, cfg.QueueDepth, &s.waiting, s.queueDepth)
	}
	if len(replayed) > 0 {
		byShard := make([][]LedgerEntry, cfg.Shards)
		totals := make([]map[string]int, cfg.Shards)
		maxSeq := int64(0)
		for _, e := range replayed {
			sh := s.ring.shard(ledgerKey(e.Analyst))
			byShard[sh] = append(byShard[sh], e)
			if totals[sh] == nil {
				totals[sh] = map[string]int{}
			}
			switch e.Op {
			case LedgerSpend:
				totals[sh][e.Analyst] += e.Cost
			case LedgerRefund:
				totals[sh][e.Analyst] -= e.Cost
			}
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
		}
		s.seq.Store(maxSeq)
		for i := range s.ledgers {
			s.ledgers[i].seed(byShard[i], totals[i])
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/meta", s.handleMeta)
	s.mux.HandleFunc("/v1/query/", s.handleQuery)
	s.mux.HandleFunc("/v1/ledger", s.handleLedger)
	s.mux.HandleFunc("/ledger", s.handleLedger)
	return s, nil
}

// Close releases the server's durable resources: the ledger WAL is
// synced and closed (idempotent; a nil-WAL server closes trivially).
// In-flight requests racing a Close may fail their ledger appends — the
// batch then fails without moving budget, which is the safe side.
func (s *Server) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Handler returns the /v1/* HTTP handler. Mount it alongside the obs
// serve.Server handler to get /metrics, /snapshot, /healthz and /journal
// on the same listener (see cmd/qserver).
func (s *Server) Handler() http.Handler { return s.mux }

// Meta returns the full (v2) metadata; GET /v1/meta shapes it to the
// negotiated version.
func (s *Server) Meta() Meta {
	return Meta{
		V:            VMax,
		N:            s.cfg.N,
		Seed:         s.cfg.Seed,
		P:            s.cfg.P,
		Backends:     append([]string(nil), s.names...),
		Budget:       s.cfg.Budget,
		MaxBatch:     s.cfg.MaxBatch,
		Shards:       s.cfg.Shards,
		QueueDepth:   s.cfg.QueueDepth,
		RetryAfterMs: int(s.cfg.RetryAfter / time.Millisecond),
	}
}

// metaAt shapes the metadata to one wire version: a v1 view omits the
// v2 topology/overload fields entirely, so pre-v2 clients decode exactly
// the schema they were built against.
func (s *Server) metaAt(v int) Meta {
	m := s.Meta()
	m.V = v
	if v < V2 {
		m.Shards, m.QueueDepth, m.RetryAfterMs = 0, 0, 0
	}
	return m
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, V, http.StatusMethodNotAllowed, CodeBadRequest, "GET only")
		return
	}
	s.requests.Add(1)
	v := V
	if raw := r.URL.Query().Get("v"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > VMax {
			s.fail(w, V, http.StatusBadRequest, CodeUnsupportedVersion,
				fmt.Sprintf("requested wire version %q, server speaks 1..%d", raw, VMax))
			return
		}
		v = parsed
	}
	writeJSON(w, http.StatusOK, s.metaAt(v))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sp := s.latency.Span()
	defer sp.End()
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, V, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	// Continue the client's trace: the span this handler records carries
	// the wire trace id and reports the client-side span as its parent,
	// so a merged Chrome trace (client /trace fetch + AddProcess) shows
	// the server lane nested under the client's batch span.
	trace := r.Header.Get(HeaderTraceID)
	var parent obs.SpanID
	if v := r.Header.Get(HeaderParentSpan); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			parent = obs.SpanID(id)
		}
	}
	tsp := s.tracer.Begin("query_batch", "qserver", s.lane, parent)
	if trace != "" {
		tsp = tsp.WithArg("trace", trace)
	}
	defer tsp.End()
	ctx := r.Context()

	name := strings.TrimPrefix(r.URL.Path, "/v1/query/")
	backend, ok := s.backends[name]
	if !ok {
		s.fail(w, V, http.StatusNotFound, CodeUnknownBackend, fmt.Sprintf("no backend %q (have %s)", name, strings.Join(s.names, ", ")))
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, V, http.StatusBadRequest, CodeBadRequest, "undecodable body: "+err.Error())
		return
	}
	if req.V < V || req.V > VMax {
		s.fail(w, V, http.StatusBadRequest, CodeUnsupportedVersion,
			fmt.Sprintf("wire version %d, server speaks 1..%d", req.V, VMax))
		return
	}
	v := req.V // responses echo the request's version
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, v, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("batch of %d exceeds max_batch %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	analyst := req.Analyst
	if analyst == "" {
		analyst = "anon"
	}

	// Admission control on the analyst's shard: claim a bounded queue
	// slot or shed immediately — under overload the server answers
	// "retry later" in microseconds instead of stacking requests.
	shard := s.ring.shard(ledgerKey(analyst))
	if err := s.admits[shard].enter(ctx); err != nil {
		if errors.Is(err, errShed) {
			s.shed.Add(1)
			s.journal(name, analyst, trace, len(req.Queries), 0, 0, CodeOverloaded)
			s.failOverloaded(w, v, fmt.Sprintf("shard %d admission queue full", shard))
			return
		}
		s.fail(w, v, http.StatusServiceUnavailable, CodeInternal, "cancelled while waiting for a slot")
		return
	}
	defer s.admits[shard].leave()

	// Injected service time (overload testing): holds the active slot so
	// concurrent load actually contends on admission.
	if s.cfg.Delay > 0 {
		t := time.NewTimer(s.cfg.Delay)
		select {
		case <-ctx.Done():
			t.Stop()
			s.fail(w, v, http.StatusServiceUnavailable, CodeInternal, "cancelled during injected delay")
			return
		case <-t.C:
		}
	}
	s.batchQueries.Add(int64(len(req.Queries)))

	// Canonicalize at the trust boundary: every query becomes a sorted
	// copy and is validated once, here — the single place duplicate
	// indices and out-of-range users are rejected for the whole service
	// (backends still re-check, but no malformed query reaches them).
	keys := make([]string, len(req.Queries))
	canon := make([][]int, len(req.Queries))
	for i, q := range req.Queries {
		cq := append([]int(nil), q...)
		sort.Ints(cq)
		if err := query.ValidateQuery(s.cfg.N, cq); err != nil {
			s.fail(w, v, http.StatusBadRequest, CodeInvalidQuery, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		canon[i] = cq
		keys[i] = queryKey(name, cq)
	}

	// Cache pass, one lock per touched cache shard: split the batch into
	// hits and distinct misses. Only fresh (uncached) queries spend
	// budget — asking again is free.
	byShard := make([][]int, len(s.caches))
	for i, k := range keys {
		sh := s.ring.shard(k)
		byShard[sh] = append(byShard[sh], i)
	}
	cachedMask := make([]bool, len(keys))
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		c := &s.caches[si]
		c.mu.Lock()
		for _, i := range byShard[si] {
			if _, ok := c.m[keys[i]]; ok {
				cachedMask[i] = true
			}
		}
		c.mu.Unlock()
	}
	type missT struct {
		key string
		q   []int
	}
	var misses []missT
	var missKeys []string
	seen := make(map[string]bool)
	cached := 0
	for i, k := range keys {
		if cachedMask[i] {
			cached++
			continue
		}
		if !seen[k] {
			seen[k] = true
			misses = append(misses, missT{k, canon[i]})
			missKeys = append(missKeys, k)
		}
	}
	fresh := len(misses)

	// Reserve the fresh queries all-or-nothing against the analyst's
	// ledger shard: a granted reservation appends a spend entry, a
	// refused one a deny entry — either way the movement hits the WAL
	// (when durable) and the audit trail before any backend runs. A WAL
	// append failure moves nothing and fails the batch. Zero-cost batches
	// (all cached) leave no entry.
	led := s.ledgers[shard]
	hash := batchHash(missKeys)
	if fresh > 0 {
		entry, ok, lerr := led.spend(analyst, name, hash, trace, fresh, s.cfg.Budget)
		if lerr != nil {
			s.journal(name, analyst, trace, len(req.Queries), cached, fresh, CodeInternal)
			s.fail(w, v, http.StatusInternalServerError, CodeInternal, "ledger wal: "+lerr.Error())
			return
		}
		if s.wal != nil {
			s.walAppends.Add(1)
		}
		s.journalBudget(entry)
		if !ok {
			s.budgetDenied.Add(1)
			s.journal(name, analyst, trace, len(req.Queries), cached, fresh, CodeBudgetExhausted)
			s.fail(w, v, http.StatusTooManyRequests, CodeBudgetExhausted,
				fmt.Sprintf("analyst %q: %d fresh queries over budget (%d of %d spent)",
					analyst, fresh, entry.Cumulative, s.cfg.Budget))
			return
		}
		s.budgetSpent.Add(int64(fresh))
	}
	s.cacheHits.Add(int64(cached))
	s.cacheMisses.Add(int64(fresh))

	// Answer the misses on the pool. The backends are sticky/deterministic
	// per canonical query, so parallel order does not affect answers.
	fresh64 := make([]float64, fresh)
	if err := par.ForEach(s.cfg.Workers, fresh, func(i int) error {
		a, err := query.AnswerOne(ctx, backend, misses[i].q)
		if err != nil {
			return err
		}
		fresh64[i] = a
		return nil
	}); err != nil {
		// All-or-nothing: a failed batch spends nothing — the refund is
		// its own ledger entry, so the audit trail shows the attempt.
		if fresh > 0 {
			re, rerr := led.refund(analyst, name, hash, trace, fresh)
			if rerr != nil {
				s.journal(name, analyst, trace, len(req.Queries), cached, fresh, CodeInternal)
				s.fail(w, v, http.StatusInternalServerError, CodeInternal,
					fmt.Sprintf("batch failed (%v) and the ledger refund did not persist: %v", err, rerr))
				return
			}
			if s.wal != nil {
				s.walAppends.Add(1)
			}
			s.journalBudget(re)
			s.budgetRefunded.Add(int64(fresh))
		}
		status, code := http.StatusInternalServerError, CodeInternal
		switch {
		case errors.Is(err, diffix.ErrSuppressed):
			status, code = http.StatusUnprocessableEntity, CodeSuppressed
		case errors.Is(err, query.ErrInvalidQuery):
			status, code = http.StatusBadRequest, CodeInvalidQuery
		case errors.Is(err, query.ErrBudgetExhausted):
			status, code = http.StatusTooManyRequests, CodeBudgetExhausted
		}
		s.journal(name, analyst, trace, len(req.Queries), cached, fresh, code)
		s.fail(w, v, status, code, err.Error())
		return
	}

	// Store the fresh answers into their cache shards, then read every
	// answer back — all answers come from the cache, so repeated keys in
	// one batch and repeated batches across analysts observe one value.
	freshByShard := make([][]int, len(s.caches))
	for i := range misses {
		sh := s.ring.shard(misses[i].key)
		freshByShard[sh] = append(freshByShard[sh], i)
	}
	var newKeys int64
	for si := range freshByShard {
		if len(freshByShard[si]) == 0 {
			continue
		}
		c := &s.caches[si]
		c.mu.Lock()
		for _, i := range freshByShard[si] {
			if _, ok := c.m[misses[i].key]; !ok {
				newKeys++
			}
			c.m[misses[i].key] = fresh64[i]
		}
		c.mu.Unlock()
	}
	if newKeys > 0 {
		s.cacheSize.Set(float64(s.cacheCount.Add(newKeys)))
	}
	answers := make([]float64, len(keys))
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		c := &s.caches[si]
		c.mu.Lock()
		for _, i := range byShard[si] {
			answers[i] = c.m[keys[i]]
		}
		c.mu.Unlock()
	}
	remaining := -1
	if s.cfg.Budget > 0 {
		remaining = s.cfg.Budget - led.total(analyst)
	}

	s.journal(name, analyst, trace, len(req.Queries), cached, fresh, "")
	writeJSON(w, http.StatusOK, QueryResponse{V: v, Answers: answers, Cached: cached, BudgetRemaining: remaining})
}

// journal emits one run-journal event per query batch (when a journal is
// configured): which backend, how much was cached vs freshly spent, the
// wire trace id, and the refusal code if the batch was refused.
func (s *Server) journal(backend, analyst, trace string, queries, cached, fresh int, code string) {
	if s.cfg.Journal == nil {
		return
	}
	e := obs.Event{
		Phase: "query_batch",
		ID:    backend,
		Seed:  s.cfg.Seed,
		Trace: trace,
		Sizes: map[string]int{"queries": queries, "cached": cached, "fresh": fresh},
	}
	if code != "" {
		e.Error = code
	}
	_ = s.cfg.Journal.Emit(e)
}

// journalBudget emits one budget.spend / budget.refund / budget.deny
// event per ledger entry (when a journal is configured), carrying the
// sequence number, cost and cumulative so the journal alone replays to
// the enforced budget state.
func (s *Server) journalBudget(e LedgerEntry) {
	if s.cfg.Journal == nil {
		return
	}
	_ = s.cfg.Journal.Emit(obs.Event{
		Phase: "budget." + e.Op,
		ID:    e.Analyst,
		Seed:  s.cfg.Seed,
		Trace: e.Trace,
		Sizes: map[string]int{"seq": int(e.Seq), "cost": e.Cost, "cumulative": e.Cumulative},
	})
}

// handleLedger serves the append-only privacy-loss ledger (GET, optional
// ?analyst= filter): the full spend/refund/deny history merged across
// shards in sequence order, plus the current per-analyst net totals.
// Mounted at both /v1/ledger and /ledger.
func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, V, http.StatusMethodNotAllowed, CodeBadRequest, "GET only")
		return
	}
	s.requests.Add(1)
	entries, totals := mergeSnapshots(s.ledgers, r.URL.Query().Get("analyst"))
	writeJSON(w, http.StatusOK, LedgerResponse{
		V: V, Budget: s.cfg.Budget, Totals: totals, Entries: entries,
	})
}

// fail writes a refusal at the given wire version. v is V for failures
// detected before the request's version is known.
func (s *Server) fail(w http.ResponseWriter, v, status int, code, msg string) {
	s.errs.Add(1)
	writeJSON(w, status, ErrorResponse{V: v, Err: ErrorBody{Code: code, Message: msg}})
}

// failOverloaded writes the typed load-shedding refusal: 503 with the
// retry hint both as the coarse Retry-After header (whole seconds,
// minimum 1) and the precise retry_after_ms body field.
func (s *Server) failOverloaded(w http.ResponseWriter, v int, msg string) {
	s.errs.Add(1)
	ms := int(s.cfg.RetryAfter / time.Millisecond)
	secs := (ms + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		V:   v,
		Err: ErrorBody{Code: CodeOverloaded, Message: msg, RetryAfterMs: ms},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// queryKey is the answer-cache key: backend name plus the canonical
// (sorted) index set.
func queryKey(backend string, canonical []int) string {
	var b strings.Builder
	b.WriteString(backend)
	b.WriteByte('|')
	for i, v := range canonical {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// BudgetSpent reports the fresh queries an analyst has net spent (test
// and telemetry hook); it is the analyst's ledger-shard total.
func (s *Server) BudgetSpent(analyst string) int {
	return s.ledgers[s.ring.shard(ledgerKey(analyst))].total(analyst)
}

// Ledger returns the current entry history and totals (optionally
// filtered to one analyst), the same view GET /v1/ledger serves.
func (s *Server) Ledger(analyst string) ([]LedgerEntry, map[string]int) {
	return mergeSnapshots(s.ledgers, analyst)
}

// CacheLen reports the answer-cache population across all shards.
func (s *Server) CacheLen() int {
	return int(s.cacheCount.Load())
}
