package remote_test

import (
	"reflect"
	"testing"

	"singlingout/internal/query/remote"
)

// TestShardInvariance is the tentpole's correctness guarantee: the same
// workload against a 1-shard and a 4-shard server produces byte-identical
// answers, ledger entries (sequence numbers included) and totals.
// Partitioning may change contention, never observations.
func TestShardInvariance(t *testing.T) {
	analysts := []string{"alice", "bob", "carol"}
	batches := [][][]int{
		{{0}, {1}, {2, 3}},
		{{0}, {4, 5, 6}},     // {0} repeats: cached
		{{1}, {2, 3}, {7}},   // two repeats
		{{8}, {9}, {10, 11}}, // all fresh
	}
	type result struct {
		answers [][]float64
		entries []remote.LedgerEntry
		totals  map[string]int
	}
	run := func(shards int) result {
		srv, ts := newTestServer(t, remote.ServerConfig{Seed: 17, Shards: shards, Budget: 100})
		var res result
		for _, analyst := range analysts {
			o := dialAnalyst(t, ts.URL, "laplace", analyst)
			for _, b := range batches {
				a, err := o.Answer(ctx, b)
				if err != nil {
					t.Fatalf("shards=%d analyst=%s: %v", shards, analyst, err)
				}
				res.answers = append(res.answers, a)
			}
		}
		res.entries, res.totals = srv.Ledger("")
		return res
	}
	one, four := run(1), run(4)
	// Wire trace ids encode the test server's URL (its ephemeral port), so
	// they legitimately differ between the two runs; blank them before
	// comparing the histories byte-for-byte.
	for i := range one.entries {
		one.entries[i].Trace = ""
	}
	for i := range four.entries {
		four.entries[i].Trace = ""
	}
	if !reflect.DeepEqual(one.answers, four.answers) {
		t.Fatalf("answers differ between shards=1 and shards=4:\n%v\n%v", one.answers, four.answers)
	}
	if !reflect.DeepEqual(one.totals, four.totals) {
		t.Fatalf("ledger totals differ: %v vs %v", one.totals, four.totals)
	}
	if !reflect.DeepEqual(one.entries, four.entries) {
		t.Fatalf("ledger histories differ:\n%v\n%v", one.entries, four.entries)
	}
}

// TestShardedCacheCrossAnalyst: the answer cache is partitioned by query,
// not analyst — a query one analyst paid for is cached (free) for the
// next, at any shard count.
func TestShardedCacheCrossAnalyst(t *testing.T) {
	srv, ts := newTestServer(t, remote.ServerConfig{Seed: 23, Shards: 4, Budget: 10})
	a := dialAnalyst(t, ts.URL, "exact", "alice")
	b := dialAnalyst(t, ts.URL, "exact", "bob")
	batch := [][]int{{0}, {1}, {2}}
	if _, err := a.Answer(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Answer(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if got := srv.BudgetSpent("alice"); got != 3 {
		t.Fatalf("alice spent %d, want 3", got)
	}
	if got := srv.BudgetSpent("bob"); got != 0 {
		t.Fatalf("bob spent %d, want 0 (all cached by alice's batch)", got)
	}
	if got := srv.CacheLen(); got != 3 {
		t.Fatalf("cache holds %d keys, want 3", got)
	}
}
