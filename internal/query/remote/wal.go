package remote

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// wal is the ledger's write-ahead log: one JSON-encoded LedgerEntry per
// line, appended BEFORE the entry is applied to the in-memory ledger
// (write-ahead in the strict sense — if the disk write fails, the budget
// movement never happens and the request fails instead). On startup the
// server replays the file through ReplayLedger, so a restart resumes
// exactly the enforced budget state: spent epsilon stays spent.
//
// The answer cache is deliberately NOT persisted. After a restart a
// previously-answered query is fresh again and charges budget again —
// the conservative direction for a privacy ledger (an analyst can be
// over-charged across restarts, never under-charged), and the sticky
// backends still return byte-identical answers.
type wal struct {
	mu       sync.Mutex
	f        *os.File
	syncEach bool
}

// openWAL opens (creating if needed) the WAL at path for appending and
// returns it together with the entries already on disk, sorted by
// sequence number. Entry lines are written under one lock but sequence
// numbers are assigned under per-shard ledger locks, so lines can land
// slightly out of global order; sorting by Seq restores the order
// ReplayLedger validates (per-analyst order is already correct on disk,
// because an analyst's entries are serialized by their shard's lock).
func openWAL(path string, syncEach bool) (*wal, []LedgerEntry, error) {
	entries, err := ReadWAL(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("remote: opening ledger wal: %w", err)
	}
	return &wal{f: f, syncEach: syncEach}, entries, nil
}

// append durably records one entry. Called with the entry's shard-ledger
// lock held, before the in-memory append — a failure here must leave the
// ledger unmoved.
func (w *wal) append(e LedgerEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("remote: encoding ledger wal entry: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("remote: appending ledger wal entry: %w", err)
	}
	if w.syncEach {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("remote: syncing ledger wal: %w", err)
		}
	}
	return nil
}

// Close syncs and closes the WAL file.
func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("remote: syncing ledger wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("remote: closing ledger wal: %w", err)
	}
	return nil
}

// ReadWAL loads a ledger write-ahead log: one JSON LedgerEntry per line,
// returned sorted by sequence number. A torn final line (the tail of a
// crash mid-append) is dropped; an undecodable line anywhere else is
// corruption and fails loudly — a privacy ledger with a hole in the
// middle must not silently replay to a smaller spend. Callers wanting
// the cross-check run ReplayLedger over the result, as NewServer does.
func ReadWAL(path string) ([]LedgerEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("remote: ledger wal: %w", err)
		}
		return nil, fmt.Errorf("remote: reading ledger wal: %w", err)
	}
	defer f.Close()
	var entries []LedgerEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was NOT the final one: corruption, not a torn tail.
			return nil, pendingErr
		}
		var e LedgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("remote: ledger wal line %d: undecodable entry: %w", lineNo, err)
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("remote: ledger wal line %d: %w", lineNo+1, err)
		}
		return nil, fmt.Errorf("remote: reading ledger wal: %w", err)
	}
	// pendingErr still set here means the undecodable line was the last
	// one — a torn append from a crash; replay proceeds without it (the
	// entry it would have recorded never took effect in memory either,
	// since WAL append precedes the ledger append).
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return entries, nil
}
