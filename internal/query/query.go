// Package query implements the statistical-query interface of Section 1 of
// the paper: a dataset x ∈ {0,1}^n is accessed only through a mechanism
// that answers subset-sum queries q ⊆ [n] with an estimate of Σ_{i∈q} x_i.
//
// The package provides exact, bounded-error and Laplace-noised oracles, a
// query-budget wrapper, and workload generators. Reconstruction attacks
// (package recon) and the predicate-singling-out experiments (package pso)
// are written against the Oracle interface, so the same attack code runs
// against every defense — including the networked statistical-query
// service in query/remote, whose client implements the same interface
// over HTTP.
//
// The interface is batch-first and context-aware: an attack submits its
// whole workload in one Answer call, which lets a remote oracle amortize
// round trips and lets a server account, cache and parallelize the batch
// as one unit. Call sites that genuinely ask one query at a time use the
// AnswerOne helper.
package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"singlingout/internal/dist"
)

// ErrBudgetExhausted is the sentinel for a query refused because the
// analyst's query budget is spent. Budgeted oracles and the remote client
// wrap it, so call sites match with errors.Is rather than on error text.
var ErrBudgetExhausted = errors.New("query: query budget exhausted")

// ErrInvalidQuery is the sentinel for a malformed query: an out-of-range
// or duplicated index. ValidateQuery (and therefore every built-in
// oracle, the recon decoders, and the query service's wire boundary)
// wraps it.
var ErrInvalidQuery = errors.New("query: invalid query")

// ErrOverloaded is the sentinel for a query refused by admission control:
// the serving side's bounded queue was full and the request was shed
// rather than answered. Unlike ErrBudgetExhausted it spends nothing and
// is transient — the remote client retries it with backoff (honoring the
// server's retry-after hint) before surfacing it, so a caller seeing it
// has already outlasted the retry policy.
var ErrOverloaded = errors.New("query: server overloaded")

// Oracle answers subset-sum queries over a hidden binary dataset.
type Oracle interface {
	// Answer returns one estimate of Σ_{i∈q} x_i per query, in order.
	// Implementations define their own error guarantee. Every query must
	// be a well-formed subset query (see ValidateQuery): the built-in
	// oracles reject out-of-range and duplicated indices. A batch fails
	// or succeeds as a unit — on error no answers are returned — and
	// implementations honor ctx cancellation between queries.
	Answer(ctx context.Context, queries [][]int) ([]float64, error)
	// N returns the number of records in the hidden dataset.
	N() int
}

// AnswerOne asks a single query — the thin helper for call sites that
// genuinely issue one query at a time (averaging attacks, diagnostics).
func AnswerOne(ctx context.Context, o Oracle, q []int) (float64, error) {
	a, err := o.Answer(ctx, [][]int{q})
	if err != nil {
		return 0, err
	}
	if len(a) != 1 {
		return 0, fmt.Errorf("query: oracle returned %d answers for 1 query", len(a))
	}
	return a[0], nil
}

// answerEach is the shared batch loop of the in-process oracles: one
// answer per query, honoring ctx cancellation between queries.
func answerEach(ctx context.Context, queries [][]int, one func(q []int) (float64, error)) ([]float64, error) {
	out := make([]float64, len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, err := one(q)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// Exact answers every query with the true sum — the "blatantly non-private"
// end of the spectrum. Safe for concurrent use (it is a pure read).
type Exact struct {
	X []int64
}

// Answer implements Oracle with zero error.
func (e *Exact) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	return answerEach(ctx, queries, func(q []int) (float64, error) {
		s, err := trueSum(e.X, q)
		return float64(s), err
	})
}

// N implements Oracle.
func (e *Exact) N() int { return len(e.X) }

// BoundedNoise answers with the true sum plus independent uniform noise in
// [-Alpha, Alpha] — the "within error α" oracle of Theorem 1.1.
type BoundedNoise struct {
	X     []int64
	Alpha float64
	Rng   *rand.Rand
}

// Answer implements Oracle with |answer - truth| <= Alpha per query.
func (b *BoundedNoise) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	return answerEach(ctx, queries, func(q []int) (float64, error) {
		s, err := trueSum(b.X, q)
		if err != nil {
			return 0, err
		}
		return float64(s) + (2*b.Rng.Float64()-1)*b.Alpha, nil
	})
}

// N implements Oracle.
func (b *BoundedNoise) N() int { return len(b.X) }

// Laplace answers with the true sum plus Laplace(1/Eps) noise. Each answer
// individually satisfies Eps-differential privacy (the subset-sum of a
// binary dataset has sensitivity 1); callers issuing k queries consume
// k·Eps of budget under basic composition.
type Laplace struct {
	X   []int64
	Eps float64
	Rng *rand.Rand
}

// Answer implements Oracle with fresh Laplace noise per query.
func (l *Laplace) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	return answerEach(ctx, queries, func(q []int) (float64, error) {
		s, err := trueSum(l.X, q)
		if err != nil {
			return 0, err
		}
		return float64(s) + dist.Laplace(l.Rng, 1/l.Eps), nil
	})
}

// N implements Oracle.
func (l *Laplace) N() int { return len(l.X) }

// StickyLaplace answers with the true sum plus Laplace(1/Eps) noise that
// is a deterministic function of (Seed, query set) — the "same query,
// same answer" behavior of deployed statistical-query systems, which
// blocks averaging attacks and makes answers cacheable. The noise is
// order-independent in the query's indices, so {2,0} and {0,2} get the
// same answer. Unlike Laplace it holds no mutable state, so it is safe
// for concurrent use; the query service's laplace backend is built on it.
type StickyLaplace struct {
	X    []int64
	Eps  float64
	Seed int64
}

// Answer implements Oracle with sticky per-query Laplace noise.
func (s *StickyLaplace) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	return answerEach(ctx, queries, func(q []int) (float64, error) {
		sum, err := trueSum(s.X, q)
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(StickySeed(s.Seed, q)))
		return float64(sum) + dist.Laplace(rng, 1/s.Eps), nil
	})
}

// N implements Oracle.
func (s *StickyLaplace) N() int { return len(s.X) }

// StickySeed derives a deterministic per-query-set noise seed from a base
// seed and a query: a commutative mix of per-index hashes, so the seed
// depends only on the set of indices, never their order.
func StickySeed(seed int64, q []int) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	var mix uint64
	for _, i := range q {
		x := (uint64(i) + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		x ^= x >> 31
		x *= 0x94d049bb133111eb
		mix += x
	}
	return int64(h ^ mix)
}

// Budgeted wraps an oracle and fails once Limit queries are spent,
// modeling the "limit the number of queries" defense discussed alongside
// Theorem 1.1. A batch is debited as a unit: if the remaining budget
// cannot cover the whole batch, nothing is debited and the batch is
// refused with ErrBudgetExhausted; if the inner oracle then fails, the
// reservation is refunded (refused queries were never answered). The
// accounting is atomic, so a Budgeted oracle may be shared by concurrent
// attackers (provided the inner oracle tolerates concurrency).
type Budgeted struct {
	Inner Oracle
	Limit int
	used  atomic.Int64
}

// Answer implements Oracle, debiting the whole batch from the budget.
func (b *Budgeted) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	k := int64(len(queries))
	if k == 0 {
		return []float64{}, nil
	}
	for {
		u := b.used.Load()
		if u+k > int64(b.Limit) {
			return nil, fmt.Errorf("batch of %d with %d of %d spent: %w", k, u, b.Limit, ErrBudgetExhausted)
		}
		if b.used.CompareAndSwap(u, u+k) {
			break
		}
	}
	a, err := b.Inner.Answer(ctx, queries)
	if err != nil {
		b.used.Add(-k)
		return nil, err
	}
	return a, nil
}

// N implements Oracle.
func (b *Budgeted) N() int { return b.Inner.N() }

// Used returns the number of queries spent so far.
func (b *Budgeted) Used() int { return int(b.used.Load()) }

// ValidateQuery checks that q is a well-formed subset-sum query over a
// dataset of n records: every index in range and no index repeated. This
// is the single place query well-formedness is defined — a query is a
// subset q ⊆ [n], so a duplicated index has no meaning. Before duplicates
// were rejected here, the built-in oracles counted a duplicated index
// twice while the attacks' candidate evaluations (e.g. the bitmask scan in
// recon.Exhaustive) collapsed it to one, so attacker and oracle silently
// disagreed on what the query meant. Both sides now call ValidateQuery and
// fail identically, as does the query service's wire boundary — a
// malformed query over HTTP is rejected before it reaches any oracle.
// Failures wrap ErrInvalidQuery.
func ValidateQuery(n int, q []int) error {
	if len(q) <= smallQuery {
		// Quadratic scan: cheaper than allocating for the short queries the
		// adaptive attacks issue.
		for j, i := range q {
			if i < 0 || i >= n {
				return fmt.Errorf("%w: index %d outside dataset of size %d", ErrInvalidQuery, i, n)
			}
			for _, prev := range q[:j] {
				if prev == i {
					return fmt.Errorf("%w: duplicate index %d (a query is a subset of [n])", ErrInvalidQuery, i)
				}
			}
		}
		return nil
	}
	seen := make([]bool, n)
	for _, i := range q {
		if i < 0 || i >= n {
			return fmt.Errorf("%w: index %d outside dataset of size %d", ErrInvalidQuery, i, n)
		}
		if seen[i] {
			return fmt.Errorf("%w: duplicate index %d (a query is a subset of [n])", ErrInvalidQuery, i)
		}
		seen[i] = true
	}
	return nil
}

// smallQuery is the length under which duplicate detection scans
// quadratically instead of allocating a seen-bitmap.
const smallQuery = 16

func trueSum(x []int64, q []int) (int64, error) {
	if err := ValidateQuery(len(x), q); err != nil {
		return 0, err
	}
	var s int64
	for _, i := range q {
		s += x[i]
	}
	return s, nil
}

// RandomSubsets draws m independent uniformly random subsets of [n] (each
// element included with probability 1/2) — the standard workload of the
// polynomial Dinur–Nissim attack.
func RandomSubsets(rng *rand.Rand, n, m int) [][]int {
	qs := make([][]int, m)
	for j := range qs {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				q = append(q, i)
			}
		}
		qs[j] = q
	}
	return qs
}

// AllSubsets enumerates every subset of [n]; it panics if n > 24 to avoid
// accidental exponential blow-ups. Used by the exhaustive attack (E1) at
// small n.
func AllSubsets(n int) [][]int {
	if n > 24 {
		panic("query: AllSubsets limited to n <= 24")
	}
	out := make([][]int, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		var q []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				q = append(q, i)
			}
		}
		out = append(out, q)
	}
	return out
}

// MaxError reports the largest absolute deviation of the oracle's answers
// from the true sums over the given workload. It is the empirical α. The
// workload is submitted as one batch, so a budgeted oracle that cannot
// cover it fails with ErrBudgetExhausted.
func MaxError(ctx context.Context, o Oracle, x []int64, queries [][]int) (float64, error) {
	answers, err := o.Answer(ctx, queries)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for qi, q := range queries {
		s, err := trueSum(x, q)
		if err != nil {
			return 0, err
		}
		if d := abs(answers[qi] - float64(s)); d > worst {
			worst = d
		}
	}
	return worst, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
