// Package query implements the statistical-query interface of Section 1 of
// the paper: a dataset x ∈ {0,1}^n is accessed only through a mechanism
// that answers subset-sum queries q ⊆ [n] with an estimate of Σ_{i∈q} x_i.
//
// The package provides exact, bounded-error and Laplace-noised oracles, a
// query-budget wrapper, and workload generators. Reconstruction attacks
// (package recon) and the predicate-singling-out experiments (package pso)
// are written against the Oracle interface, so the same attack code runs
// against every defense.
package query

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"singlingout/internal/dist"
)

// ErrBudgetExhausted is returned by a budgeted oracle once the allowed
// number of queries has been spent.
var ErrBudgetExhausted = errors.New("query: query budget exhausted")

// Oracle answers subset-sum queries over a hidden binary dataset.
type Oracle interface {
	// SubsetSum returns an estimate of Σ_{i∈q} x_i. Implementations define
	// their own error guarantee. q must be a well-formed subset query (see
	// ValidateQuery): the built-in oracles reject out-of-range and
	// duplicated indices.
	SubsetSum(q []int) (float64, error)
	// N returns the number of records in the hidden dataset.
	N() int
}

// Exact answers every query with the true sum — the "blatantly non-private"
// end of the spectrum.
type Exact struct {
	X []int64
}

// SubsetSum implements Oracle with zero error.
func (e *Exact) SubsetSum(q []int) (float64, error) {
	s, err := trueSum(e.X, q)
	return float64(s), err
}

// N implements Oracle.
func (e *Exact) N() int { return len(e.X) }

// BoundedNoise answers with the true sum plus independent uniform noise in
// [-Alpha, Alpha] — the "within error α" oracle of Theorem 1.1.
type BoundedNoise struct {
	X     []int64
	Alpha float64
	Rng   *rand.Rand
}

// SubsetSum implements Oracle with |answer - truth| <= Alpha.
func (b *BoundedNoise) SubsetSum(q []int) (float64, error) {
	s, err := trueSum(b.X, q)
	if err != nil {
		return 0, err
	}
	return float64(s) + (2*b.Rng.Float64()-1)*b.Alpha, nil
}

// N implements Oracle.
func (b *BoundedNoise) N() int { return len(b.X) }

// Laplace answers with the true sum plus Laplace(1/Eps) noise. Each answer
// individually satisfies Eps-differential privacy (the subset-sum of a
// binary dataset has sensitivity 1); callers issuing k queries consume
// k·Eps of budget under basic composition.
type Laplace struct {
	X   []int64
	Eps float64
	Rng *rand.Rand
}

// SubsetSum implements Oracle with Laplace noise.
func (l *Laplace) SubsetSum(q []int) (float64, error) {
	s, err := trueSum(l.X, q)
	if err != nil {
		return 0, err
	}
	return float64(s) + dist.Laplace(l.Rng, 1/l.Eps), nil
}

// N implements Oracle.
func (l *Laplace) N() int { return len(l.X) }

// Budgeted wraps an oracle and fails after Limit queries, modeling the
// "limit the number of queries" defense discussed alongside Theorem 1.1.
// The budget accounting is atomic, so a Budgeted oracle may be shared by
// concurrent attackers (provided the inner oracle tolerates concurrency).
type Budgeted struct {
	Inner Oracle
	Limit int
	used  atomic.Int64
}

// SubsetSum implements Oracle, debiting one query from the budget.
func (b *Budgeted) SubsetSum(q []int) (float64, error) {
	for {
		u := b.used.Load()
		if u >= int64(b.Limit) {
			return 0, ErrBudgetExhausted
		}
		if b.used.CompareAndSwap(u, u+1) {
			break
		}
	}
	return b.Inner.SubsetSum(q)
}

// N implements Oracle.
func (b *Budgeted) N() int { return b.Inner.N() }

// Used returns the number of queries spent so far.
func (b *Budgeted) Used() int { return int(b.used.Load()) }

// ValidateQuery checks that q is a well-formed subset-sum query over a
// dataset of n records: every index in range and no index repeated. This
// is the single place query well-formedness is defined — a query is a
// subset q ⊆ [n], so a duplicated index has no meaning. Before duplicates
// were rejected here, the built-in oracles counted a duplicated index
// twice while the attacks' candidate evaluations (e.g. the bitmask scan in
// recon.Exhaustive) collapsed it to one, so attacker and oracle silently
// disagreed on what the query meant. Both sides now call ValidateQuery and
// fail identically.
func ValidateQuery(n int, q []int) error {
	if len(q) <= smallQuery {
		// Quadratic scan: cheaper than allocating for the short queries the
		// adaptive attacks issue.
		for j, i := range q {
			if i < 0 || i >= n {
				return fmt.Errorf("query: index %d outside dataset of size %d", i, n)
			}
			for _, prev := range q[:j] {
				if prev == i {
					return fmt.Errorf("query: duplicate index %d (a query is a subset of [n])", i)
				}
			}
		}
		return nil
	}
	seen := make([]bool, n)
	for _, i := range q {
		if i < 0 || i >= n {
			return fmt.Errorf("query: index %d outside dataset of size %d", i, n)
		}
		if seen[i] {
			return fmt.Errorf("query: duplicate index %d (a query is a subset of [n])", i)
		}
		seen[i] = true
	}
	return nil
}

// smallQuery is the length under which duplicate detection scans
// quadratically instead of allocating a seen-bitmap.
const smallQuery = 16

func trueSum(x []int64, q []int) (int64, error) {
	if err := ValidateQuery(len(x), q); err != nil {
		return 0, err
	}
	var s int64
	for _, i := range q {
		s += x[i]
	}
	return s, nil
}

// RandomSubsets draws m independent uniformly random subsets of [n] (each
// element included with probability 1/2) — the standard workload of the
// polynomial Dinur–Nissim attack.
func RandomSubsets(rng *rand.Rand, n, m int) [][]int {
	qs := make([][]int, m)
	for j := range qs {
		var q []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				q = append(q, i)
			}
		}
		qs[j] = q
	}
	return qs
}

// AllSubsets enumerates every subset of [n]; it panics if n > 24 to avoid
// accidental exponential blow-ups. Used by the exhaustive attack (E1) at
// small n.
func AllSubsets(n int) [][]int {
	if n > 24 {
		panic("query: AllSubsets limited to n <= 24")
	}
	out := make([][]int, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		var q []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				q = append(q, i)
			}
		}
		out = append(out, q)
	}
	return out
}

// MaxError reports the largest absolute deviation of the oracle's answers
// from the true sums over the given workload. It is the empirical α.
func MaxError(o Oracle, x []int64, queries [][]int) (float64, error) {
	worst := 0.0
	for _, q := range queries {
		a, err := o.SubsetSum(q)
		if err != nil {
			return 0, err
		}
		s, err := trueSum(x, q)
		if err != nil {
			return 0, err
		}
		if d := abs(a - float64(s)); d > worst {
			worst = d
		}
	}
	return worst, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
