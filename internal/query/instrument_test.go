package query

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"singlingout/internal/obs"
)

// TestBudgetExhaustedMidAttack drives a budgeted oracle past its limit the
// way a single-query attack workload would and checks both the error
// identity and the instrumented accounting of the denials.
func TestBudgetExhaustedMidAttack(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	x := []int64{1, 0, 1, 1, 0, 1}
	b := &Budgeted{Inner: &Exact{X: x}, Limit: 3}
	in := Instrument(b, reg)

	qs := RandomSubsets(rand.New(rand.NewSource(7)), len(x), 10)
	answered, denied := 0, 0
	for _, q := range qs {
		_, err := AnswerOne(ctx, in, q)
		switch {
		case err == nil:
			answered++
		case errors.Is(err, ErrBudgetExhausted):
			denied++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if answered != 3 || denied != 7 {
		t.Fatalf("answered %d denied %d, want 3/7", answered, denied)
	}
	if got := b.Used(); got != 3 {
		t.Errorf("Used() = %d, want 3", got)
	}
	s := reg.Snapshot()
	if s.Counters[MetricQueries] != 10 {
		t.Errorf("%s = %d, want 10 (denied queries still count as issued)", MetricQueries, s.Counters[MetricQueries])
	}
	if s.Counters[MetricBudgetDenied] != 7 {
		t.Errorf("%s = %d, want 7", MetricBudgetDenied, s.Counters[MetricBudgetDenied])
	}
	if s.Counters[MetricErrors] != 7 {
		t.Errorf("%s = %d, want 7", MetricErrors, s.Counters[MetricErrors])
	}
	if got := s.Gauges[MetricBudgetUsed]; got != 3 {
		t.Errorf("%s = %v, want 3", MetricBudgetUsed, got)
	}
}

// TestInstrumentedBatchAccounting checks that a batch of k queries counts
// as k issued queries, one latency observation, and one error on failure.
func TestInstrumentedBatchAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	in := Instrument(&Exact{X: []int64{1, 0, 1}}, reg)
	if _, err := in.Answer(ctx, [][]int{{0}, {1, 2}, {0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Answer(ctx, [][]int{{0}, {9}}); err == nil {
		t.Fatal("bad batch should fail")
	}
	s := reg.Snapshot()
	if s.Counters[MetricQueries] != 5 {
		t.Errorf("%s = %d, want 5", MetricQueries, s.Counters[MetricQueries])
	}
	if s.Counters[MetricErrors] != 1 {
		t.Errorf("%s = %d, want 1 (errors count batches)", MetricErrors, s.Counters[MetricErrors])
	}
	if h := s.Histograms[MetricLatency]; h.Count != 2 {
		t.Errorf("latency count = %d, want 2 (one per batch)", h.Count)
	}
	if h := s.Histograms[MetricSubsetSize]; h.Count != 5 || h.Sum != 1+2+3+1+1 {
		t.Errorf("subset-size count/sum = %d/%d, want 5/8", h.Count, h.Sum)
	}
}

// TestAnswerOutOfRange checks every oracle type rejects out-of-range
// indices instead of panicking or answering garbage.
func TestAnswerOutOfRange(t *testing.T) {
	x := []int64{1, 0, 1}
	rng := rand.New(rand.NewSource(1))
	oracles := map[string]Oracle{
		"exact":    &Exact{X: x},
		"bounded":  &BoundedNoise{X: x, Alpha: 1, Rng: rng},
		"laplace":  &Laplace{X: x, Eps: 1, Rng: rng},
		"sticky":   &StickyLaplace{X: x, Eps: 1, Seed: 3},
		"budgeted": &Budgeted{Inner: &Exact{X: x}, Limit: 10},
		"instrumented": Instrument(&Exact{X: x},
			func() *obs.Registry { r := obs.NewRegistry(); r.SetEnabled(true); return r }()),
	}
	for name, o := range oracles {
		for _, q := range [][]int{{0, 3}, {-1}, {0, 1, 2, 99}} {
			if _, err := AnswerOne(ctx, o, q); err == nil {
				t.Errorf("%s: AnswerOne(%v) should fail", name, q)
			}
		}
		// A valid query must still work afterwards.
		if got, err := AnswerOne(ctx, o, []int{0, 2}); err != nil {
			t.Errorf("%s: valid query failed: %v", name, err)
		} else if got < 2-1.5 || got > 2+3 { // exact answer 2, generous noise margin
			t.Errorf("%s: AnswerOne([0 2]) = %v, implausibly far from 2", name, got)
		}
	}
}

// TestInstrumentedErrorCounting checks that failed batches land in the
// error counter, not just the query counter.
func TestInstrumentedErrorCounting(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	in := Instrument(&Exact{X: []int64{1, 1}}, reg)
	if _, err := AnswerOne(ctx, in, []int{5}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := AnswerOne(ctx, in, []int{0}); err != nil {
		t.Fatalf("valid query failed: %v", err)
	}
	s := reg.Snapshot()
	if s.Counters[MetricQueries] != 2 || s.Counters[MetricErrors] != 1 {
		t.Errorf("queries %d errors %d, want 2/1", s.Counters[MetricQueries], s.Counters[MetricErrors])
	}
	if s.Counters[MetricBudgetDenied] != 0 {
		t.Errorf("out-of-range errors must not count as budget denials")
	}
}

// TestInstrumentNoDoubleWrap checks wrapping an already-instrumented
// oracle does not double count.
func TestInstrumentNoDoubleWrap(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	in := Instrument(&Exact{X: []int64{1}}, reg)
	if again := Instrument(in, reg); again != in {
		t.Fatal("Instrument should return an already-instrumented oracle unchanged")
	}
}

// TestInstrumentedConcurrent hammers one instrumented budgeted oracle from
// many goroutines; run under -race this checks both the atomic budget and
// the atomic metric accounting, and the totals must still balance.
func TestInstrumentedConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	const (
		workers = 8
		perW    = 500
		limit   = 1234
	)
	x := make([]int64, 32)
	for i := range x {
		x[i] = int64(i % 2)
	}
	b := &Budgeted{Inner: &Exact{X: x}, Limit: limit}
	in := Instrument(b, reg)

	var wg sync.WaitGroup
	denials := make([]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				q := RandomSubsets(rng, len(x), 1)[0]
				if _, err := AnswerOne(context.Background(), in, q); errors.Is(err, ErrBudgetExhausted) {
					denials[w]++
				} else if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	totalDenied := 0
	for _, d := range denials {
		totalDenied += d
	}
	total := workers * perW
	if b.Used() != limit {
		t.Errorf("budget used %d, want exactly %d", b.Used(), limit)
	}
	if totalDenied != total-limit {
		t.Errorf("denials %d, want %d", totalDenied, total-limit)
	}
	s := reg.Snapshot()
	if s.Counters[MetricQueries] != int64(total) {
		t.Errorf("%s = %d, want %d", MetricQueries, s.Counters[MetricQueries], total)
	}
	if s.Counters[MetricBudgetDenied] != int64(total-limit) {
		t.Errorf("%s = %d, want %d", MetricBudgetDenied, s.Counters[MetricBudgetDenied], total-limit)
	}
	if h := s.Histograms[MetricLatency]; h.Count != int64(total) {
		t.Errorf("latency count %d, want %d", h.Count, total)
	}
	if h := s.Histograms[MetricSubsetSize]; h.Count != int64(total) {
		t.Errorf("subset-size count %d, want %d", h.Count, total)
	}
}
