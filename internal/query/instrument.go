package query

import (
	"context"
	"errors"

	"singlingout/internal/obs"
)

// Metric names recorded by the instrumented oracle. Every attack in the
// repository runs against the Oracle interface, so wrapping the oracle
// measures the attack's query complexity without touching attack code.
// The census pipeline accounts the published statistics it consumes under
// the same MetricQueries name (each published table cell is the answer to
// one counting query), keeping "oracle query count" comparable across
// pipelines.
const (
	// MetricQueries counts subset-sum (and equivalent counting-query)
	// answers consumed by attacks.
	MetricQueries = "query.count"
	// MetricSubsetSize is the histogram of queried subset sizes.
	MetricSubsetSize = "query.subset_size"
	// MetricLatency is the histogram of per-batch answer latencies (ns);
	// single-query call sites make it per-answer.
	MetricLatency = "query.latency_ns"
	// MetricErrors counts failed batches (bad index, suppression, ...).
	MetricErrors = "query.errors"
	// MetricBudgetDenied counts queries refused by an exhausted budget.
	MetricBudgetDenied = "query.budget_denied"
	// MetricBudgetUsed gauges the budget consumed by the innermost
	// Budgeted oracle.
	MetricBudgetUsed = "query.budget_used"
)

// Instrumented wraps an Oracle and records query counts, subset sizes,
// batch latency and budget consumption into an obs.Registry. It is safe
// for concurrent use whenever the wrapped oracle is; all accounting is
// atomic, so `go test -race` passes on concurrent workloads.
type Instrumented struct {
	Inner Oracle

	queries      *obs.Counter
	errs         *obs.Counter
	budgetDenied *obs.Counter
	subset       *obs.Histogram
	latency      *obs.Histogram
	budgetUsed   *obs.Gauge
}

// Instrument wraps o so every Answer batch is accounted in r (nil means
// obs.Default()). Wrapping an already-instrumented oracle returns it
// unchanged to avoid double counting.
func Instrument(o Oracle, r *obs.Registry) *Instrumented {
	if in, ok := o.(*Instrumented); ok {
		return in
	}
	if r == nil {
		r = obs.Default()
	}
	return &Instrumented{
		Inner:        o,
		queries:      r.Counter(MetricQueries),
		errs:         r.Counter(MetricErrors),
		budgetDenied: r.Counter(MetricBudgetDenied),
		subset:       r.Histogram(MetricSubsetSize),
		latency:      r.Histogram(MetricLatency),
		budgetUsed:   r.Gauge(MetricBudgetUsed),
	}
}

// Answer implements Oracle, delegating to the wrapped oracle and
// recording the batch. The answers and error pass through unchanged.
func (in *Instrumented) Answer(ctx context.Context, queries [][]int) ([]float64, error) {
	in.queries.Add(int64(len(queries)))
	for _, q := range queries {
		in.subset.Observe(int64(len(q)))
	}
	sp := in.latency.Span()
	a, err := in.Inner.Answer(ctx, queries)
	sp.End()
	if err != nil {
		in.errs.Add(1)
		if errors.Is(err, ErrBudgetExhausted) {
			in.budgetDenied.Add(1)
		}
	} else if b, ok := in.Inner.(*Budgeted); ok {
		in.budgetUsed.Set(float64(b.Used()))
	}
	return a, err
}

// N implements Oracle.
func (in *Instrumented) N() int { return in.Inner.N() }
