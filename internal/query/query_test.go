package query

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"singlingout/internal/synth"
)

var ctx = context.Background()

func TestExactOracle(t *testing.T) {
	x := []int64{1, 0, 1, 1, 0}
	o := &Exact{X: x}
	if o.N() != 5 {
		t.Fatalf("N = %d", o.N())
	}
	got, err := AnswerOne(ctx, o, []int{0, 2, 3})
	if err != nil || got != 3 {
		t.Errorf("AnswerOne = %v, %v", got, err)
	}
	got, err = AnswerOne(ctx, o, nil)
	if err != nil || got != 0 {
		t.Errorf("empty query = %v, %v", got, err)
	}
	if _, err := AnswerOne(ctx, o, []int{5}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("out-of-range index: want ErrInvalidQuery, got %v", err)
	}
	if _, err := AnswerOne(ctx, o, []int{-1}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("negative index: want ErrInvalidQuery, got %v", err)
	}
}

func TestExactOracleBatch(t *testing.T) {
	o := &Exact{X: []int64{1, 0, 1, 1, 0}}
	got, err := o.Answer(ctx, [][]int{{0}, {0, 2, 3}, nil})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("answers[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// A batch fails as a unit: one bad query, no answers.
	if _, err := o.Answer(ctx, [][]int{{0}, {9}}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("bad batch: want ErrInvalidQuery, got %v", err)
	}
}

func TestAnswerHonorsContext(t *testing.T) {
	o := &Exact{X: []int64{1, 0, 1}}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Answer(cancelled, [][]int{{0}}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: got %v", err)
	}
}

func TestBoundedNoiseWithinAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := synth.BinaryDataset(rng, 100, 0.5)
	o := &BoundedNoise{X: x, Alpha: 3, Rng: rng}
	exact := &Exact{X: x}
	for trial := 0; trial < 500; trial++ {
		q := RandomSubsets(rng, 100, 1)[0]
		noisy, err := AnswerOne(ctx, o, q)
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := AnswerOne(ctx, exact, q)
		if math.Abs(noisy-truth) > 3 {
			t.Fatalf("noise exceeded alpha: %v vs %v", noisy, truth)
		}
	}
}

func TestLaplaceOracleNoiseScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := synth.BinaryDataset(rng, 50, 0.5)
	o := &Laplace{X: x, Eps: 0.5, Rng: rng}
	exact := &Exact{X: x}
	q := RandomSubsets(rng, 50, 1)[0]
	truth, _ := AnswerOne(ctx, exact, q)
	var sumAbs float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		a, err := AnswerOne(ctx, o, q)
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(a - truth)
	}
	// E|Lap(1/eps)| = 1/eps = 2.
	if got := sumAbs / trials; math.Abs(got-2) > 0.1 {
		t.Errorf("mean |noise| = %v, want ~2", got)
	}
}

func TestStickyLaplace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := synth.BinaryDataset(rng, 60, 0.5)
	o := &StickyLaplace{X: x, Eps: 0.5, Seed: 7}
	q := []int{0, 3, 7, 9, 12, 20}
	first, err := AnswerOne(ctx, o, q)
	if err != nil {
		t.Fatal(err)
	}
	// Sticky: the same query set always gets the same answer, in any
	// index order.
	for i := 0; i < 5; i++ {
		if a, _ := AnswerOne(ctx, o, q); a != first {
			t.Fatalf("sticky noise broken: %v != %v", a, first)
		}
	}
	if a, _ := AnswerOne(ctx, o, []int{20, 12, 9, 7, 3, 0}); a != first {
		t.Error("sticky noise should be order-independent in the query set")
	}
	// A different query set (almost surely) gets different noise.
	if a, _ := AnswerOne(ctx, o, []int{0, 3, 7, 9, 12, 21}); a == first {
		t.Error("distinct queries returned identical answers (suspicious)")
	}
	// Different seeds decorrelate answers to the same query.
	o2 := &StickyLaplace{X: x, Eps: 0.5, Seed: 8}
	if a, _ := AnswerOne(ctx, o2, q); a == first {
		t.Error("different seeds returned identical noise")
	}
	// The noise has the advertised Laplace scale across many distinct
	// queries: E|Lap(1/eps)| = 2.
	exact := &Exact{X: x}
	qs := RandomSubsets(rng, 60, 4000)
	noisy, err := o.Answer(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	truths, _ := exact.Answer(ctx, qs)
	var sumAbs float64
	for i := range qs {
		sumAbs += math.Abs(noisy[i] - truths[i])
	}
	if got := sumAbs / float64(len(qs)); math.Abs(got-2) > 0.25 {
		t.Errorf("mean |sticky noise| = %v, want ~2", got)
	}
}

func TestBudgetedOracle(t *testing.T) {
	x := []int64{1, 1}
	b := &Budgeted{Inner: &Exact{X: x}, Limit: 2}
	if b.N() != 2 {
		t.Fatalf("N = %d", b.N())
	}
	for i := 0; i < 2; i++ {
		if _, err := AnswerOne(ctx, b, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := AnswerOne(ctx, b, []int{0}); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected budget exhaustion, got %v", err)
	}
	if b.Used() != 2 {
		t.Errorf("Used = %d", b.Used())
	}
}

func TestBudgetedBatchAllOrNothing(t *testing.T) {
	b := &Budgeted{Inner: &Exact{X: []int64{1, 1, 0}}, Limit: 5}
	// A batch larger than the remaining budget is refused whole and debits
	// nothing.
	big := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 2}}
	if _, err := b.Answer(ctx, big); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("oversized batch: want ErrBudgetExhausted, got %v", err)
	}
	if b.Used() != 0 {
		t.Fatalf("refused batch debited budget: Used = %d", b.Used())
	}
	// A batch the inner oracle rejects is refunded.
	if _, err := b.Answer(ctx, [][]int{{0}, {99}}); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("invalid batch: want ErrInvalidQuery, got %v", err)
	}
	if b.Used() != 0 {
		t.Fatalf("failed batch kept its reservation: Used = %d", b.Used())
	}
	// A fitting batch spends exactly its size.
	if _, err := b.Answer(ctx, big[:5]); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 5 {
		t.Fatalf("Used = %d, want 5", b.Used())
	}
	// The empty batch is free.
	if _, err := b.Answer(ctx, nil); err != nil {
		t.Fatalf("empty batch should succeed: %v", err)
	}
}

func TestRandomSubsetsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	qs := RandomSubsets(rng, 200, 50)
	if len(qs) != 50 {
		t.Fatalf("m = %d", len(qs))
	}
	total := 0
	for _, q := range qs {
		for i := 1; i < len(q); i++ {
			if q[i] <= q[i-1] {
				t.Fatal("subset indices must be strictly increasing")
			}
		}
		total += len(q)
	}
	mean := float64(total) / 50
	if math.Abs(mean-100) > 10 {
		t.Errorf("mean subset size = %v, want ~100", mean)
	}
}

func TestAllSubsets(t *testing.T) {
	qs := AllSubsets(3)
	if len(qs) != 8 {
		t.Fatalf("|subsets| = %d", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		key := ""
		for _, i := range q {
			key += string(rune('a' + i))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %q", key)
		}
		seen[key] = true
	}
}

func TestAllSubsetsPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AllSubsets(25)
}

func TestMaxError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := synth.BinaryDataset(rng, 64, 0.5)
	queries := RandomSubsets(rng, 64, 200)
	exactErr, err := MaxError(ctx, &Exact{X: x}, x, queries)
	if err != nil || exactErr != 0 {
		t.Errorf("exact oracle max error = %v, %v", exactErr, err)
	}
	noisyErr, err := MaxError(ctx, &BoundedNoise{X: x, Alpha: 2, Rng: rng}, x, queries)
	if err != nil {
		t.Fatal(err)
	}
	if noisyErr <= 0 || noisyErr > 2 {
		t.Errorf("bounded oracle max error = %v, want in (0,2]", noisyErr)
	}
	// Budget exhaustion propagates: the workload is one batch of 200
	// against a budget of 10.
	b := &Budgeted{Inner: &Exact{X: x}, Limit: 10}
	if _, err := MaxError(ctx, b, x, queries); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected budget error, got %v", err)
	}
}

// TestDuplicateIndexRejected is the regression test for the duplicate-index
// disagreement: trueSum used to count a repeated index twice while the
// attacks' candidate evaluations collapsed it to one, so the attacker and
// oracle disagreed on what the query meant. Duplicates are now rejected in
// ValidateQuery — the one documented place query well-formedness lives —
// so every built-in oracle fails the query instead of answering it.
func TestDuplicateIndexRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := []int64{1, 0, 1, 1, 0}
	dup := []int{0, 2, 0}
	for _, o := range []Oracle{
		&Exact{X: x},
		&BoundedNoise{X: x, Alpha: 1, Rng: rng},
		&Laplace{X: x, Eps: 1, Rng: rng},
		&StickyLaplace{X: x, Eps: 1, Seed: 1},
		&Budgeted{Inner: &Exact{X: x}, Limit: 100},
	} {
		if _, err := AnswerOne(ctx, o, dup); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("%T: duplicate-index query should fail with ErrInvalidQuery, got %v", o, err)
		}
		// The same oracle still answers the deduplicated query.
		if _, err := AnswerOne(ctx, o, []int{0, 2}); err != nil {
			t.Errorf("%T: valid query failed: %v", o, err)
		}
	}
}

func TestValidateQuery(t *testing.T) {
	if err := ValidateQuery(5, []int{0, 4, 2}); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := ValidateQuery(5, nil); err != nil {
		t.Errorf("empty query rejected: %v", err)
	}
	for _, bad := range [][]int{{5}, {-1}, {0, 0}, {1, 2, 3, 1}} {
		if err := ValidateQuery(5, bad); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("ValidateQuery(5, %v) should fail with ErrInvalidQuery, got %v", bad, err)
		}
	}
	// Exercise the large-query bitmap path (len > smallQuery).
	big := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		big = append(big, i)
	}
	if err := ValidateQuery(25, big); err != nil {
		t.Errorf("valid large query rejected: %v", err)
	}
	big[19] = 3 // duplicate
	if err := ValidateQuery(25, big); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("large duplicate query should fail with ErrInvalidQuery, got %v", err)
	}
}
