package query

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"singlingout/internal/synth"
)

func TestExactOracle(t *testing.T) {
	x := []int64{1, 0, 1, 1, 0}
	o := &Exact{X: x}
	if o.N() != 5 {
		t.Fatalf("N = %d", o.N())
	}
	got, err := o.SubsetSum([]int{0, 2, 3})
	if err != nil || got != 3 {
		t.Errorf("SubsetSum = %v, %v", got, err)
	}
	got, err = o.SubsetSum(nil)
	if err != nil || got != 0 {
		t.Errorf("empty query = %v, %v", got, err)
	}
	if _, err := o.SubsetSum([]int{5}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := o.SubsetSum([]int{-1}); err == nil {
		t.Error("negative index should fail")
	}
}

func TestBoundedNoiseWithinAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := synth.BinaryDataset(rng, 100, 0.5)
	o := &BoundedNoise{X: x, Alpha: 3, Rng: rng}
	exact := &Exact{X: x}
	for trial := 0; trial < 500; trial++ {
		q := RandomSubsets(rng, 100, 1)[0]
		noisy, err := o.SubsetSum(q)
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := exact.SubsetSum(q)
		if math.Abs(noisy-truth) > 3 {
			t.Fatalf("noise exceeded alpha: %v vs %v", noisy, truth)
		}
	}
}

func TestLaplaceOracleNoiseScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := synth.BinaryDataset(rng, 50, 0.5)
	o := &Laplace{X: x, Eps: 0.5, Rng: rng}
	exact := &Exact{X: x}
	q := RandomSubsets(rng, 50, 1)[0]
	truth, _ := exact.SubsetSum(q)
	var sumAbs float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		a, err := o.SubsetSum(q)
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(a - truth)
	}
	// E|Lap(1/eps)| = 1/eps = 2.
	if got := sumAbs / trials; math.Abs(got-2) > 0.1 {
		t.Errorf("mean |noise| = %v, want ~2", got)
	}
}

func TestBudgetedOracle(t *testing.T) {
	x := []int64{1, 1}
	b := &Budgeted{Inner: &Exact{X: x}, Limit: 2}
	if b.N() != 2 {
		t.Fatalf("N = %d", b.N())
	}
	for i := 0; i < 2; i++ {
		if _, err := b.SubsetSum([]int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.SubsetSum([]int{0}); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected budget exhaustion, got %v", err)
	}
	if b.Used() != 2 {
		t.Errorf("Used = %d", b.Used())
	}
}

func TestRandomSubsetsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	qs := RandomSubsets(rng, 200, 50)
	if len(qs) != 50 {
		t.Fatalf("m = %d", len(qs))
	}
	total := 0
	for _, q := range qs {
		for i := 1; i < len(q); i++ {
			if q[i] <= q[i-1] {
				t.Fatal("subset indices must be strictly increasing")
			}
		}
		total += len(q)
	}
	mean := float64(total) / 50
	if math.Abs(mean-100) > 10 {
		t.Errorf("mean subset size = %v, want ~100", mean)
	}
}

func TestAllSubsets(t *testing.T) {
	qs := AllSubsets(3)
	if len(qs) != 8 {
		t.Fatalf("|subsets| = %d", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		key := ""
		for _, i := range q {
			key += string(rune('a' + i))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %q", key)
		}
		seen[key] = true
	}
}

func TestAllSubsetsPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AllSubsets(25)
}

func TestMaxError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := synth.BinaryDataset(rng, 64, 0.5)
	queries := RandomSubsets(rng, 64, 200)
	exactErr, err := MaxError(&Exact{X: x}, x, queries)
	if err != nil || exactErr != 0 {
		t.Errorf("exact oracle max error = %v, %v", exactErr, err)
	}
	noisyErr, err := MaxError(&BoundedNoise{X: x, Alpha: 2, Rng: rng}, x, queries)
	if err != nil {
		t.Fatal(err)
	}
	if noisyErr <= 0 || noisyErr > 2 {
		t.Errorf("bounded oracle max error = %v, want in (0,2]", noisyErr)
	}
	// Budget exhaustion propagates.
	b := &Budgeted{Inner: &Exact{X: x}, Limit: 10}
	if _, err := MaxError(b, x, queries); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected budget error, got %v", err)
	}
}

// TestDuplicateIndexRejected is the regression test for the duplicate-index
// disagreement: trueSum used to count a repeated index twice while the
// attacks' candidate evaluations collapsed it to one, so the attacker and
// oracle disagreed on what the query meant. Duplicates are now rejected in
// ValidateQuery — the one documented place query well-formedness lives —
// so every built-in oracle fails the query instead of answering it.
func TestDuplicateIndexRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := []int64{1, 0, 1, 1, 0}
	dup := []int{0, 2, 0}
	for _, o := range []Oracle{
		&Exact{X: x},
		&BoundedNoise{X: x, Alpha: 1, Rng: rng},
		&Laplace{X: x, Eps: 1, Rng: rng},
		&Budgeted{Inner: &Exact{X: x}, Limit: 100},
	} {
		if _, err := o.SubsetSum(dup); err == nil {
			t.Errorf("%T: duplicate-index query should fail", o)
		}
		// The same oracle still answers the deduplicated query.
		if _, err := o.SubsetSum([]int{0, 2}); err != nil {
			t.Errorf("%T: valid query failed: %v", o, err)
		}
	}
}

func TestValidateQuery(t *testing.T) {
	if err := ValidateQuery(5, []int{0, 4, 2}); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := ValidateQuery(5, nil); err != nil {
		t.Errorf("empty query rejected: %v", err)
	}
	for _, bad := range [][]int{{5}, {-1}, {0, 0}, {1, 2, 3, 1}} {
		if err := ValidateQuery(5, bad); err == nil {
			t.Errorf("ValidateQuery(5, %v) should fail", bad)
		}
	}
	// Exercise the large-query bitmap path (len > smallQuery).
	big := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		big = append(big, i)
	}
	if err := ValidateQuery(25, big); err != nil {
		t.Errorf("valid large query rejected: %v", err)
	}
	big[19] = 3 // duplicate
	if err := ValidateQuery(25, big); err == nil {
		t.Error("large duplicate query should fail")
	}
}
