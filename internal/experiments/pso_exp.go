package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"singlingout/internal/dataset"
	"singlingout/internal/dist"
	"singlingout/internal/kanon"
	"singlingout/internal/legal"
	"singlingout/internal/pso"
	"singlingout/internal/synth"
)

// E04BirthdayIsolation reproduces the paper's Section 2.2 worked example:
// a fixed-date predicate over 365 uniform birthdays isolates with
// probability ≈ 1/e ≈ 37%.
func E04BirthdayIsolation(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	trials := 4000
	if quick {
		trials = 800
	}
	cfg := pso.BirthdayConfig(1e-6, trials)
	mech := pso.Count{Q: pso.Equality{Attr: 0, Value: 0, Weight: 1.0 / pso.BirthdayDomain}}
	res, err := pso.Run(rng, cfg, mech, pso.Birthday{Attr: 0, Min: 0, Domain: pso.BirthdayDomain})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E04",
		Title:  fmt.Sprintf("birthday worked example, n=365 uniform birthdays, %d trials", trials),
		Header: []string{"quantity", "measured", "paper"},
		Notes: []string{
			"the predicate has weight 1/365 — far from negligible — so these isolations are NOT predicate singling out",
		},
	}
	t.AddRow("isolation probability", pct(res.IsolationRate()), "≈37%")
	t.AddRow("PSO successes (weight ≤ 1e-6)", pct(res.SuccessRate()), "0%")
	t.AddRow("closed form n·w·(1-w)^(n-1)", pct(dist.IsolationProb(365, 1.0/365)), "≈37%")
	return t, nil
}

// E05IsolationCurve sweeps the predicate weight and compares the measured
// isolation frequency to the closed form, exposing the two negligible
// regimes (w tiny and w = ω(log n / n)).
func E05IsolationCurve(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 365
	trials := 30000
	if quick {
		trials = 6000
	}
	t := &Table{
		ID:     "E05",
		Title:  fmt.Sprintf("isolation probability vs predicate weight, n=%d, %d trials per point", n, trials),
		Header: []string{"weight w", "n·w", "empirical Pr[isolate]", "closed form", "approx n·w·e^{-n·w}"},
		Notes:  []string{"peak ≈ 1/e at w = 1/n; negligible at both tails — the shape behind Definition 2.4"},
	}
	for _, w := range []float64{1e-5, 1e-4, 1e-3, 1.0 / 365, 5e-3, 2e-2, 5e-2} {
		hits := 0
		for trial := 0; trial < trials; trial++ {
			ones := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < w {
					ones++
					if ones > 1 {
						break
					}
				}
			}
			if ones == 1 {
				hits++
			}
		}
		emp := float64(hits) / float64(trials)
		t.AddRow(g3(w), g3(float64(n)*w), f3(emp), f3(dist.IsolationProb(n, w)), f3(dist.IsolationProbApprox(n, w)))
	}
	return t, nil
}

// surveyConfig builds the high-dimensional PSO experiment population.
func surveyConfig(n, trials int) (pso.Config, synth.SurveyConfig) {
	scfg := synth.SurveyConfig{Questions: 40, Skew: 0.8}
	return pso.Config{
		N:      n,
		Schema: synth.SurveySchema(scfg),
		Sample: synth.SurveySampler(scfg),
		Tau:    1e-4,
		Trials: trials,
	}, scfg
}

func surveyQI(schema *dataset.Schema) []int {
	qi := make([]int, len(schema.Attrs))
	for i := range qi {
		qi[i] = i
	}
	return qi
}

// E06CountPSOSecurity runs the Theorem 2.5 experiment: the exact count
// mechanism M#q resists the full (non-adaptive) attack suite.
func E06CountPSOSecurity(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	trials := 600
	if quick {
		trials = 150
	}
	cfg := pso.BirthdayConfig(math.Pow(2, -20), trials)
	mech := pso.Count{Q: pso.Equality{Attr: 0, Value: 42, Weight: 1.0 / pso.BirthdayDomain}}
	t := &Table{
		ID:     "E06",
		Title:  fmt.Sprintf("count mechanism M#q vs attack suite, n=365, %d trials", trials),
		Header: []string{"attacker", "PSO success", "isolations (any weight)", "baseline", "prevents PSO?"},
		Notes:  []string{"Thm 2.5: a single exact count prevents predicate singling out"},
	}
	for _, a := range []pso.Attacker{
		pso.Baseline{Depth: 20},
		pso.Birthday{Attr: 0, Min: 0, Domain: pso.BirthdayDomain},
	} {
		res, err := pso.Run(rng, cfg, mech, a)
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Attacker, pct(res.SuccessRate()), pct(res.IsolationRate()), g3(res.BaselineRate), yesNo(res.PreventsPSO()))
	}
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E07PostProcessing runs the Theorem 2.6 experiment: arbitrary
// post-processing of a PSO-secure mechanism stays PSO-secure.
func E07PostProcessing(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	trials := 600
	if quick {
		trials = 150
	}
	cfg := pso.BirthdayConfig(math.Pow(2, -20), trials)
	base := pso.Count{Q: pso.Equality{Attr: 0, Value: 42, Weight: 1.0 / pso.BirthdayDomain}}
	t := &Table{
		ID:     "E07",
		Title:  fmt.Sprintf("post-processing robustness, n=365, %d trials", trials),
		Header: []string{"mechanism", "PSO success", "baseline", "prevents PSO?"},
		Notes:  []string{"Thm 2.6: privacy loss cannot increase by post-processing"},
	}
	mechs := []pso.Mechanism{
		base,
		pso.PostProcess{Inner: base, Name: "scale", F: func(y any) any { return y.(int) * 1000 }},
		pso.PostProcess{Inner: base, Name: "threshold", F: func(y any) any { return y.(int) > 180 }},
		pso.PostProcess{Inner: base, Name: "constant", F: func(any) any { return 0 }},
	}
	for _, m := range mechs {
		res, err := pso.Run(rng, cfg, m, pso.Baseline{Depth: 20})
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Mechanism, pct(res.SuccessRate()), g3(res.BaselineRate), yesNo(res.PreventsPSO()))
	}
	return t, nil
}

// E08CompositionAttack runs the Theorem 2.8 experiment across dataset
// sizes: ℓ = ω(log n) exact count queries single out almost always.
func E08CompositionAttack(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	ns := []int{250, 500, 1000}
	trials := 60
	if quick {
		ns = []int{250, 500}
		trials = 25
	}
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	t := &Table{
		ID:     "E08",
		Title:  "composition of exact count mechanisms vs prefix-descent attack (predicate weight 2^-40)",
		Header: []string{"n", "ℓ (queries)", "PSO success", "baseline", "prevents PSO?"},
		Notes: []string{
			"Thm 2.8: each count alone is PSO-secure (E06); ω(log n) of them compose into an attack",
			"Thm 2.5/2.8 tension is why PSO security cannot compose while counts are deemed secure",
		},
	}
	for _, n := range ns {
		depth := 40
		cfg := pso.Config{
			N: n, Schema: synth.SurveySchema(scfg), Sample: synth.SurveySampler(scfg),
			Tau: math.Pow(2, -30), Trials: trials,
		}
		att := pso.PrefixDescent{TargetDepth: depth}
		res, err := pso.Run(rng, cfg, pso.InteractiveCounts{Limit: att.Queries()}, att)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", att.Queries()), pct(res.SuccessRate()), g3(res.BaselineRate), yesNo(res.PreventsPSO()))
	}
	return t, nil
}

// E09DPPSOSecurity runs the Theorem 2.9 experiment: the same composition
// attack against epsilon-DP noisy counts collapses once epsilon is small,
// with a visible crossover as epsilon grows.
func E09DPPSOSecurity(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n, trials := 500, 60
	if quick {
		trials = 25
	}
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	t := &Table{
		ID:     "E09",
		Title:  fmt.Sprintf("prefix-descent attack vs ε-DP Laplace counts, n=%d, %d trials", n, trials),
		Header: []string{"per-query ε", "PSO success", "baseline", "prevents PSO?"},
		Notes: []string{
			"Thm 2.9: ε-DP (constant ε) prevents predicate singling out; large ε approximates exact counts",
		},
	}
	att := pso.PrefixDescent{TargetDepth: 40}
	for _, eps := range []float64{0.05, 0.1, 0.5, 1, 10, 0 /* exact */} {
		cfg := pso.Config{
			N: n, Schema: synth.SurveySchema(scfg), Sample: synth.SurveySampler(scfg),
			Tau: math.Pow(2, -30), Trials: trials,
		}
		res, err := pso.Run(rng, cfg, pso.InteractiveCounts{Limit: att.Queries(), Eps: eps}, att)
		if err != nil {
			return nil, err
		}
		label := g3(eps)
		if eps == 0 {
			label = "∞ (exact)"
		}
		t.AddRow(label, pct(res.SuccessRate()), g3(res.BaselineRate), yesNo(res.PreventsPSO()))
	}
	return t, nil
}

// E10KAnonPSOAttack runs the Theorem 2.10 experiment across k. The
// dataset size scales with k (n = 120·k) so that class boxes keep
// comparable (negligible) weight at every k — the asymptotic regime the
// theorem addresses.
func E10KAnonPSOAttack(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	scale, trials := 120, 60
	if quick {
		scale, trials = 80, 25
	}
	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("k-anonymity (Mondrian) vs class∧1/k′ attack, n=%d·k, %d trials", scale, trials),
		Header: []string{"k", "QIs", "PSO success", "isolations", "mean predicate weight", "baseline", "paper"},
		Notes: []string{
			"Thm 2.10: success ≈ (1-1/k′)^{k′-1} ≈ 37% with negligible-weight predicates",
			"dimensionality grows with k (the theorem's asymptotic regime): larger classes need more attributes for the class predicate to stay negligible",
		},
	}
	for _, k := range []int{2, 5, 10} {
		questions := 40
		if k >= 10 {
			questions = 80
		}
		scfg := synth.SurveyConfig{Questions: questions, Skew: 0.8}
		cfg := pso.Config{
			N:      scale * k,
			Schema: synth.SurveySchema(scfg),
			Sample: synth.SurveySampler(scfg),
			Tau:    1e-4,
			Trials: trials,
		}
		mech := pso.KAnonymity{QI: surveyQI(cfg.Schema), K: k, Algorithm: pso.UseMondrian}
		att := pso.KAnonClass{Sample: synth.SurveySampler(scfg), WeightSamples: 1500}
		res, err := pso.Run(rng, cfg, mech, att)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", questions+1),
			pct(res.SuccessRate()), pct(res.IsolationRate()),
			g3(res.MeanNominalWeight), g3(res.BaselineRate), "≈37%")
	}
	return t, nil
}

// E15CohenStyleAttack runs the boosted corner attack across k: success
// approaches 100% against data-dependent generalization.
func E15CohenStyleAttack(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n, trials := 600, 60
	if quick {
		n, trials = 400, 25
	}
	t := &Table{
		ID:     "E15",
		Title:  fmt.Sprintf("Cohen-style corner attack on Mondrian k-anonymity, n=%d, %d trials", n, trials),
		Header: []string{"k", "PSO success", "isolations", "paper"},
		Notes:  []string{"[12]: data-dependent boundaries are witnessed by records; isolation approaches 100%"},
	}
	for _, k := range []int{2, 5, 10} {
		cfg, scfg := surveyConfig(n, trials)
		mech := pso.KAnonymity{QI: surveyQI(cfg.Schema), K: k, Algorithm: pso.UseMondrian}
		att := pso.Corner{Attr: 0, Sample: synth.SurveySampler(scfg), WeightSamples: 1500}
		res, err := pso.Run(rng, cfg, mech, att)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), pct(res.SuccessRate()), pct(res.IsolationRate()), "→100%")
	}
	return t, nil
}

// E16LegalVerdictTable assembles the Section 2.4.3 comparison: measured
// verdicts for each technology next to the Article 29 Working Party's
// published answers.
func E16LegalVerdictTable(ctx context.Context, seed int64, quick bool) (*Table, error) {
	claims, rows, err := LegalClaims(seed, quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E16",
		Title:  "measured verdicts vs Article 29 WP Opinion 05/2014 (\"Is singling out still a risk?\")",
		Header: []string{"technology", "WP answer", "measured verdict", "consistent?"},
		Notes:  []string{"the paper's §2.4.3: the WP's 'no' for k-anonymity (and variants) is contradicted by measurement"},
	}
	for _, row := range rows {
		t.AddRow(row.Technology, row.WPAnswer, row.Measured.String(), yesNo(row.Agrees))
	}
	for _, c := range claims {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", c.Technology, c.Verdict.GDPRConclusion()))
	}
	return t, nil
}

// LegalClaims runs the verdict-producing experiment suite shared by E16
// and cmd/legalreport: k-anonymity (with ℓ-diversity and t-closeness
// checks riding on the same release) versus the boosted attack, and DP
// noisy counts versus the composition attack.
func LegalClaims(seed int64, quick bool) ([]legal.Claim, []legal.WorkingPartyRow, error) {
	rng := rand.New(rand.NewSource(seed))
	n, trials := 500, 40
	if quick {
		n, trials = 350, 15
	}
	cfg, scfg := surveyConfig(n, trials)
	sample := synth.SurveySampler(scfg)

	kanonMech := pso.KAnonymity{QI: surveyQI(cfg.Schema), K: 5, Algorithm: pso.UseMondrian}
	lDivMech := pso.KAnonymity{
		QI: surveyQI(cfg.Schema), K: 5, Algorithm: pso.UseMondrian,
		Mondrian: kanon.MondrianOptions{MinLDiversity: 2, SensitiveAttr: 1},
	}
	var kanonEvidence, lDivEvidence []pso.Result
	for _, att := range []pso.Attacker{
		pso.KAnonClass{Sample: sample, WeightSamples: 1200},
		pso.Corner{Attr: 0, Sample: sample, WeightSamples: 1200},
	} {
		r, err := pso.Run(rng, cfg, kanonMech, att)
		if err != nil {
			return nil, nil, err
		}
		kanonEvidence = append(kanonEvidence, r)
		r, err = pso.Run(rng, cfg, lDivMech, att)
		if err != nil {
			return nil, nil, err
		}
		lDivEvidence = append(lDivEvidence, r)
	}

	dpCfg := pso.Config{
		N: n, Schema: cfg.Schema, Sample: cfg.Sample,
		Tau: math.Pow(2, -30), Trials: trials,
	}
	att := pso.PrefixDescent{TargetDepth: 40}
	dpMech := pso.InteractiveCounts{Limit: att.Queries(), Eps: 0.1}
	dpRes, err := pso.Run(rng, dpCfg, dpMech, att)
	if err != nil {
		return nil, nil, err
	}
	dpBase, err := pso.Run(rng, dpCfg, dpMech, pso.Baseline{Depth: 30})
	if err != nil {
		return nil, nil, err
	}

	claims := []legal.Claim{
		legal.Evaluate("k-anonymity (Mondrian, k=5)", kanonEvidence),
		legal.Evaluate("ℓ-diversity (Mondrian, k=5, ℓ=2)", lDivEvidence),
		legal.Evaluate("differential privacy (ε=0.1 per count)", []pso.Result{dpRes, dpBase}),
	}
	measured := map[string]legal.Verdict{
		"k-anonymity": claims[0].Verdict,
		"l-diversity": claims[1].Verdict,
		// t-closeness shares k-anonymity's failure mode (footnote 3 of the
		// paper): the class-box attack is oblivious to the sensitive-value
		// distribution constraint.
		"t-closeness":          claims[0].Verdict,
		"differential privacy": claims[2].Verdict,
	}
	return claims, legal.CompareWithWorkingParty(measured), nil
}

// A02PrefixArity is the descent-arity ablation: wider rounds spend more
// queries for fewer adaptive rounds at equal success.
func A02PrefixArity(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n, trials := 500, 40
	if quick {
		n, trials = 300, 15
	}
	scfg := synth.SurveyConfig{Questions: 8, Skew: 0.8}
	t := &Table{
		ID:     "A02",
		Title:  fmt.Sprintf("prefix-descent arity ablation, n=%d, depth 40, %d trials", n, trials),
		Header: []string{"bits/round", "queries ℓ", "adaptive rounds", "PSO success"},
	}
	for _, bits := range []int{1, 2, 4} {
		att := pso.PrefixDescent{TargetDepth: 40, BitsPerRound: bits}
		cfg := pso.Config{
			N: n, Schema: synth.SurveySchema(scfg), Sample: synth.SurveySampler(scfg),
			Tau: math.Pow(2, -30), Trials: trials,
		}
		res, err := pso.Run(rng, cfg, pso.InteractiveCounts{Limit: att.Queries()}, att)
		if err != nil {
			return nil, err
		}
		rounds := (40 + bits - 1) / bits
		t.AddRow(fmt.Sprintf("%d", bits), fmt.Sprintf("%d", att.Queries()), fmt.Sprintf("%d", rounds), pct(res.SuccessRate()))
	}
	return t, nil
}

// A03MondrianSplit is the split-policy ablation: relaxed splitting lowers
// information loss while leaving the PSO attack success unchanged.
func A03MondrianSplit(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n, trials := 500, 30
	if quick {
		n, trials = 350, 12
	}
	t := &Table{
		ID:     "A03",
		Title:  fmt.Sprintf("Mondrian split policy ablation, k=5, n=%d", n),
		Header: []string{"policy", "classes", "GenILoss", "PSO success"},
	}
	cfg, scfg := surveyConfig(n, trials)
	sample := synth.SurveySampler(scfg)
	for _, p := range []struct {
		name   string
		policy kanon.SplitPolicy
	}{{"strict median", kanon.StrictMedian}, {"relaxed", kanon.RelaxedBalanced}} {
		// Info loss on one fixed dataset.
		d := dataset.New(cfg.Schema)
		r2 := rand.New(rand.NewSource(seed + 7))
		for i := 0; i < n; i++ {
			d.MustAppend(sample(r2))
		}
		rel, err := kanon.Mondrian(d, surveyQI(cfg.Schema), 5, kanon.MondrianOptions{Policy: p.policy})
		if err != nil {
			return nil, err
		}
		mech := pso.KAnonymity{QI: surveyQI(cfg.Schema), K: 5, Algorithm: pso.UseMondrian,
			Mondrian: kanon.MondrianOptions{Policy: p.policy}}
		res, err := pso.Run(rng, cfg, mech, pso.KAnonClass{Sample: sample, WeightSamples: 1200})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, fmt.Sprintf("%d", len(rel.Classes)), f3(kanon.GenILoss(rel)), pct(res.SuccessRate()))
	}
	return t, nil
}
