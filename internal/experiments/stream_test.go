package experiments

import (
	"context"
	"math/rand"
	"testing"

	"singlingout/internal/obs"
	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/recon"
	"singlingout/internal/synth"
)

func TestE02StreamMonotoneCurveAndBatchIdentity(t *testing.T) {
	ctx := context.Background()
	const (
		seed  = int64(3)
		n     = 32
		chunk = 16
	)
	x := synth.BinaryDataset(rand.New(rand.NewSource(seed)), n, 0.5)
	cs := obs.NewCurveSet()
	tab, res, err := E02StreamOverOracle(ctx, &query.Exact{X: x}, x, seed, chunk, cs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "E02.stream" || len(tab.Rows) != len(ConvergeThresholds) {
		t.Errorf("table = %s with %d rows", tab.ID, len(tab.Rows))
	}
	if res.Queries != 4*n {
		t.Errorf("queries = %d, want %d", res.Queries, 4*n)
	}
	if res.FinalAccuracy < 0.999 {
		t.Errorf("final accuracy = %v against an exact oracle", res.FinalAccuracy)
	}
	if q, ok := res.ToAccuracy[0.99]; !ok || q <= 0 || q > res.Queries {
		t.Errorf("ToAccuracy[0.99] = %d, %v", q, ok)
	}

	// The curve must be monotone in x with one point per chunk, ending at
	// the full workload.
	pts := cs.Curve("recon.lp.accuracy").Points()
	if want := res.Queries / chunk; len(pts) != want {
		t.Fatalf("curve has %d points, want %d", len(pts), want)
	}
	for i, p := range pts {
		if p.X != int64(chunk*(i+1)) {
			t.Errorf("point %d x = %d, want %d", i, p.X, chunk*(i+1))
		}
		if p.Stats["chunk"] != chunk {
			t.Errorf("point %d stats = %v", i, p.Stats)
		}
	}
	if last := pts[len(pts)-1]; last.Y != res.FinalAccuracy {
		t.Errorf("last curve y = %v, final accuracy = %v", last.Y, res.FinalAccuracy)
	}

	// The streamed final reconstruction is byte-identical to a batch
	// decode of the same workload.
	rng := par.RNG(seed, 0)
	qs := query.RandomSubsets(rng, n, 4*n)
	dec, err := recon.NewDecoder(n, qs, recon.L1Slack)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := (&query.Exact{X: x}).Answer(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	batch, _, err := dec.Decode(ctx, answers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if res.Final[i] != batch[i] {
			t.Fatalf("streamed bit %d = %d, batch %d", i, res.Final[i], batch[i])
		}
	}
}

func TestE11StreamConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("census streaming solve is seconds-long")
	}
	ctx := context.Background()
	cs := obs.NewCurveSet()
	tab, res, err := E11StreamConverge(ctx, 1, true, cs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "E11.stream" {
		t.Errorf("table = %s", tab.ID)
	}
	if res.FinalExactFraction <= 0 || res.FinalExactFraction > 1 {
		t.Errorf("final exact fraction = %v", res.FinalExactFraction)
	}
	if res.Cells <= 0 || res.Persons != 250 {
		t.Errorf("cells = %d persons = %d", res.Cells, res.Persons)
	}
	pts := cs.Curve("census.exact_fraction").Points()
	if len(pts) == 0 {
		t.Fatal("no curve points")
	}
	for i, p := range pts {
		if i > 0 && p.X <= pts[i-1].X {
			t.Errorf("curve not monotone at %d: x=%d after %d", i, p.X, pts[i-1].X)
		}
		if p.Y < 0 || p.Y > 1 {
			t.Errorf("point %d y = %v", i, p.Y)
		}
		if _, ok := p.Stats["decisions"]; !ok {
			t.Errorf("point %d carries no solver stats: %v", i, p.Stats)
		}
	}
	if last := pts[len(pts)-1]; int(last.X) != res.Cells {
		t.Errorf("last x = %d, want all %d cells", last.X, res.Cells)
	}
}
