package experiments

import (
	"context"
	"fmt"

	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/recon"
)

// E02OverOracle is the E02 LP-reconstruction sweep re-targeted at a
// caller-supplied oracle — in practice a remote.Oracle dialed against a
// running qserver, which is the paper's actual threat model: the analyst
// holds no data, only a query interface, and the truth used for scoring
// is regenerated locally from the server's advertised seed
// (remote.Dataset). Unlike E02LPReconstruction, the dataset is fixed (it
// lives on the server), so the sweep varies the query budget m = c·n
// instead of n. Rows run sequentially — against a budgeted server the
// spend order is part of the result — with per-row RNGs derived from
// (seed, row), so the table is byte-identical for any two oracles that
// answer identically (e.g. in-process exact vs remote exact backend).
func E02OverOracle(ctx context.Context, o query.Oracle, truth []int64, seed int64, quick bool) (*Table, error) {
	n := o.N()
	if len(truth) != n {
		return nil, fmt.Errorf("experiments: truth has %d entries for an oracle over %d", len(truth), n)
	}
	multipliers := []int{1, 2, 4, 8}
	if quick {
		multipliers = []int{1, 2, 4}
	}
	t := &Table{
		ID:     "E02.remote",
		Title:  fmt.Sprintf("LP-decoding reconstruction over a query oracle, n=%d, m=c·n random subset queries", n),
		Header: []string{"m/n", "queries", "Hamming error", "blatantly non-private (err<5%)?"},
		Notes:  []string{"same decoder as E02; the oracle may be remote (qserver) — truth regenerated from the advertised seed"},
	}
	// Each budget has its own constraint matrix (m differs), so each row
	// decodes cold through its own Decoder; the last row's decoder is kept
	// and replayed below.
	var lastDec *recon.Decoder
	var lastM int
	for i, c := range multipliers {
		rng := par.RNG(seed, i)
		m := c * n
		qs := query.RandomSubsets(rng, n, m)
		dec, err := recon.NewDecoder(n, qs, recon.L1Slack)
		if err != nil {
			return nil, fmt.Errorf("experiments: E02.remote at m=%d: %w", m, err)
		}
		got, _, err := dec.DecodeOracle(ctx, query.Instrument(o, nil))
		if err != nil {
			return nil, fmt.Errorf("experiments: E02.remote at m=%d: %w", m, err)
		}
		e := recon.HammingError(truth, got)
		ok := "yes"
		if e > 0.05 {
			ok = "no"
		}
		t.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", m), f3(e), ok)
		lastDec, lastM = dec, m
	}
	// Warm replay of the largest budget: the analyst re-decodes the same
	// workload from the previous optimal basis — the steady-state cost of
	// a repeated attack. For a deterministic oracle the answers (and so
	// the row) are identical to the cold decode; only the solver work
	// shrinks (lp.warm_starts / lp.pivots in the metrics).
	got, _, err := lastDec.DecodeOracle(ctx, query.Instrument(o, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: E02.remote warm replay at m=%d: %w", lastM, err)
	}
	e := recon.HammingError(truth, got)
	ok := "yes"
	if e > 0.05 {
		ok = "no"
	}
	t.AddRow(fmt.Sprintf("%d (warm replay)", multipliers[len(multipliers)-1]), fmt.Sprintf("%d", lastM), f3(e), ok)
	return t, nil
}
