package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestAllRunnersProduceTables smoke-runs every registered experiment in
// quick mode and checks the tables are well formed.
func TestAllRunnersProduceTables(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := r.Run(context.Background(), 1, true)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != r.ID {
				t.Errorf("table id %q != runner id %q", tab.ID, r.ID)
			}
			if len(tab.Header) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("empty table: %+v", tab)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("row %d width %d != header width %d", i, len(row), len(tab.Header))
				}
			}
			if tab.String() == "" {
				t.Error("empty rendering")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E08"); !ok {
		t.Error("E08 should exist")
	}
	if _, ok := ByID("e08"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

// TestE02CrossoverShape verifies the fundamental-law shape: reconstruction
// succeeds at small noise and fails at noise Θ(n).
func TestE02CrossoverShape(t *testing.T) {
	tab, err := E02LPReconstruction(context.Background(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	// First row per n is c=0 (exact): must be "yes"; last row is alpha≈n/3:
	// must be "no".
	sawYes, sawNo := false, false
	for _, row := range tab.Rows {
		switch row[3] {
		case "yes":
			sawYes = true
		case "no":
			sawNo = true
		}
	}
	if !sawYes || !sawNo {
		t.Errorf("E02 should show both regimes:\n%s", tab)
	}
	if row := tab.Rows[0]; row[3] != "yes" {
		t.Errorf("exact answers must reconstruct: %v", row)
	}
}

// TestE09CrossoverShape verifies the DP defense: small epsilon prevents
// PSO, exact counts do not.
func TestE09CrossoverShape(t *testing.T) {
	tab, err := E09DPPSOSecurity(context.Background(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]              // eps = 0.05
	last := tab.Rows[len(tab.Rows)-1] // exact
	if first[3] != "yes" {
		t.Errorf("eps=0.05 should prevent PSO: %v", first)
	}
	if last[3] != "no" {
		t.Errorf("exact counts should fail: %v", last)
	}
}

// TestE16Contradiction verifies the paper's §2.4.3 punchline appears in
// the measured table: the WP verdict for k-anonymity is contradicted and
// the DP verdict is consistent.
func TestE16Contradiction(t *testing.T) {
	tab, err := E16LegalVerdictTable(context.Background(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	var sawKAnonContradiction, sawDPConsistent bool
	for _, row := range tab.Rows {
		if row[0] == "k-anonymity" && row[3] == "no" {
			sawKAnonContradiction = true
		}
		if row[0] == "differential privacy" && row[3] == "yes" {
			sawDPConsistent = true
		}
	}
	if !sawKAnonContradiction {
		t.Errorf("k-anonymity row should contradict the WP:\n%s", tab)
	}
	if !sawDPConsistent {
		t.Errorf("differential privacy row should be consistent:\n%s", tab)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"X — demo", "long-header", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestE19DefenseShape verifies the historical arc: swapping leaves every
// block solvable while DP noise makes most unsolvable.
func TestE19DefenseShape(t *testing.T) {
	tab, err := E19CensusDefenses(context.Background(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	var rawSolved, swapSolved, dpSolved string
	for _, row := range tab.Rows {
		switch {
		case row[0] == "none (raw tables)":
			rawSolved = row[1]
		case strings.HasPrefix(row[0], "swapping 30"):
			swapSolved = row[1]
		case strings.HasPrefix(row[0], "ε=0.5"):
			dpSolved = row[1]
		}
	}
	if rawSolved == "" || swapSolved == "" || dpSolved == "" {
		t.Fatalf("missing rows:\n%s", tab)
	}
	if rawSolved != swapSolved {
		t.Errorf("swapping should leave solvability intact: raw %s vs swap %s", rawSolved, swapSolved)
	}
	var solved, blocks int
	if _, err := fmt.Sscanf(dpSolved, "%d/%d", &solved, &blocks); err != nil {
		t.Fatal(err)
	}
	if solved*4 > blocks {
		t.Errorf("DP tables should be mostly unsolvable: %s", dpSolved)
	}
}

// TestTableWideRowRendering is a regression test for rows carrying more
// cells than the header: those cells used to render at width 0, collapsing
// the column alignment.
func TestTableWideRowRendering(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "wide rows",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2", "wide-extra-cell", "tail")
	tab.AddRow("3", "4", "x", "yy")
	out := tab.String()
	if !strings.Contains(out, "wide-extra-cell") {
		t.Fatalf("extra cell missing:\n%s", out)
	}
	// The short extra cell must be padded to its column width so the row
	// tails align.
	lines := strings.Split(out, "\n")
	var tailCols []int
	for _, l := range lines {
		if i := strings.Index(l, "tail"); i >= 0 {
			tailCols = append(tailCols, i)
		}
		if i := strings.Index(l, "yy"); i >= 0 {
			tailCols = append(tailCols, i)
		}
	}
	if len(tailCols) != 2 || tailCols[0] != tailCols[1] {
		t.Errorf("row tails misaligned (columns %v):\n%s", tailCols, out)
	}
}

// TestRunInstrumented checks that metrics recorded while an experiment
// runs land in the table footer, and that oracle query counts are nonzero
// for an oracle-driven attack.
func TestRunInstrumented(t *testing.T) {
	r, ok := ByID("E01")
	if !ok {
		t.Fatal("E01 not registered")
	}
	tab, delta, err := r.RunInstrumented(context.Background(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Counters["query.count"] == 0 {
		t.Errorf("expected nonzero oracle query count, got delta %+v", delta)
	}
	if tab.Metrics.Empty() {
		t.Error("table metrics footer should be populated")
	}
	if out := tab.String(); !strings.Contains(out, "metrics:") || !strings.Contains(out, "query.count") {
		t.Errorf("rendered table missing metrics footer:\n%s", out)
	}
}
