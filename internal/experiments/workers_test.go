package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestSetWorkersClamp(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(5)
	if Workers() != 5 {
		t.Errorf("Workers() = %d, want 5", Workers())
	}
	SetWorkers(-3)
	if Workers() != 0 {
		t.Errorf("Workers() = %d after negative set, want 0", Workers())
	}
}

// TestWorkerCountInvariance is the determinism contract test for the
// parallel harnesses: the same seed must render byte-identical tables at
// -workers 1 and -workers 8. Every harness that fans out over
// internal/par is covered (E01, E02, E13 grid points; E11 census blocks).
func TestWorkerCountInvariance(t *testing.T) {
	defer SetWorkers(0)
	const seed = 7
	runners := []Runner{}
	for _, id := range []string{"E01", "E02", "E11", "E13"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		runners = append(runners, r)
	}
	render := func(workers int) map[string]string {
		t.Helper()
		SetWorkers(workers)
		out := map[string]string{}
		for _, r := range runners {
			tab, err := r.Run(context.Background(), seed, true)
			if err != nil {
				t.Fatalf("%s at workers=%d: %v", r.ID, workers, err)
			}
			var b strings.Builder
			if err := tab.Fprint(&b); err != nil {
				t.Fatal(err)
			}
			out[r.ID] = b.String()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	for id, want := range seq {
		if par[id] != want {
			t.Errorf("%s: table at workers=8 differs from workers=1\n--- workers=1 ---\n%s--- workers=8 ---\n%s", id, want, par[id])
		}
	}
}
