// Package experiments contains one harness per experiment in DESIGN.md's
// per-experiment index (E1–E16 plus ablations). Each harness generates its
// workload, runs the attack/defense under test, and returns a Table whose
// rows are the series the paper's corresponding claim predicts. The same
// harnesses back the root-level benchmarks, the CLI tools, and
// EXPERIMENTS.md.
//
// Every harness takes a seed (bit-for-bit reproducibility) and a quick
// flag: quick runs shrink sizes/trials for CI; full runs produce the
// numbers recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"singlingout/internal/obs"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics, when non-empty, is the observability delta recorded while
	// the experiment ran (oracle queries, solver pivots/conflicts, ...). It
	// renders as a footer below the notes.
	Metrics obs.Snapshot
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	// Size the column widths to the widest of header and rows; rows may
	// carry more cells than the header.
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	if !t.Metrics.Empty() {
		if _, err := fmt.Fprintln(w, "  metrics:"); err != nil {
			return err
		}
		for _, m := range t.Metrics.Flat() {
			if _, err := fmt.Fprintf(w, "    %-28s %s\n", m.Name, strconv.FormatFloat(m.Value, 'g', 6, 64)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// f3 formats a float with three significant-ish decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// g3 formats a float compactly.
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }

// Runner is the registry entry for one experiment. Run threads the
// caller's context through the harness so -serve and remote invocations
// can cancel mid-sweep; harnesses must not mint their own root context
// (enforced by repolint's ctxbackground analyzer).
type Runner struct {
	ID   string
	Desc string
	Run  func(ctx context.Context, seed int64, quick bool) (*Table, error)
}

// RunInstrumented runs the experiment with the default obs registry
// enabled and returns, alongside the table, the metric delta attributable
// to this run (also attached to the table's Metrics footer). The previous
// enabled state of the registry is restored afterwards. Experiments share
// one global registry, so concurrent RunInstrumented calls attribute each
// other's work; run experiments sequentially when metrics matter.
func (r Runner) RunInstrumented(ctx context.Context, seed int64, quick bool) (*Table, obs.Snapshot, error) {
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)
	before := reg.Snapshot()
	t, err := r.Run(ctx, seed, quick)
	delta := reg.Snapshot().Delta(before)
	if t != nil {
		t.Metrics = delta
	}
	return t, delta, err
}

// All returns every registered experiment in order.
func All() []Runner {
	return []Runner{
		{"E01", "exhaustive reconstruction (Thm 1.1(i))", E01Exhaustive},
		{"E02", "LP-decoding reconstruction and the √n crossover (Thm 1.1(ii))", E02LPReconstruction},
		{"E03", "Laplace mechanism: privacy and accuracy (Thm 1.3)", E03LaplaceDP},
		{"E04", "birthday isolation worked example (§2.2)", E04BirthdayIsolation},
		{"E05", "isolation probability curve n·w·(1-w)^(n-1) (§2.2)", E05IsolationCurve},
		{"E06", "count mechanism prevents PSO (Thm 2.5)", E06CountPSOSecurity},
		{"E07", "PSO security robust to post-processing (Thm 2.6)", E07PostProcessing},
		{"E08", "composition of counts enables PSO (Thm 2.8)", E08CompositionAttack},
		{"E09", "differential privacy prevents PSO (Thm 2.9)", E09DPPSOSecurity},
		{"E10", "k-anonymity enables PSO at ≈37% (Thm 2.10)", E10KAnonPSOAttack},
		{"E11", "census reconstruction and re-identification (§1)", E11CensusReconstruction},
		{"E12", "quasi-identifier uniqueness (Sweeney)", E12QuasiIDUniqueness},
		{"E13", "LP reconstruction of a Diffix-style system ([13])", E13DiffixReconstruction},
		{"E14", "k-anonymity fails to compose (§1.1)", E14KAnonComposition},
		{"E15", "Cohen-style corner attack approaches 100% ([12])", E15CohenStyleAttack},
		{"E16", "legal verdicts vs Article 29 Working Party (§2.4.3)", E16LegalVerdictTable},
		{"E17", "Homer-style membership inference and its DP collapse (§1)", E17MembershipInference},
		{"E18", "Netflix-style scoreboard de-anonymization (§1)", E18NetflixScoreboard},
		{"E19", "census disclosure-avoidance defenses (swapping vs DP)", E19CensusDefenses},
		{"A01", "ablation: LP decoding objective (L1 vs Chebyshev)", A01LPObjective},
		{"A02", "ablation: prefix-descent arity", A02PrefixArity},
		{"A03", "ablation: Mondrian split policy", A03MondrianSplit},
		{"A04", "ablation: cardinality encoding", A04CardinalityEncoding},
		{"A05", "ablation: integer noise (geometric vs Laplace)", A05IntegerNoise},
		{"A06", "ablation: full-domain greedy vs lattice-optimal", A06FullDomainSearch},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
