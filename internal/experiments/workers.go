package experiments

import "sync/atomic"

// poolWorkers is the worker-pool size the grid-parallel harnesses (E01,
// E02, E13) and the census pipeline (E11, E19) use. 0 selects GOMAXPROCS.
var poolWorkers atomic.Int64

// SetWorkers sets the worker-pool size used by harnesses that fan
// independent grid points / block solves over internal/par (n <= 0 selects
// GOMAXPROCS). The determinism contract holds regardless: every harness
// derives per-item randomness from (seed, index), so the same seed
// produces byte-identical tables at any worker count.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	poolWorkers.Store(int64(n))
}

// Workers returns the configured worker-pool size (0 = GOMAXPROCS).
func Workers() int { return int(poolWorkers.Load()) }
