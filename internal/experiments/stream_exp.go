package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"singlingout/internal/census"
	"singlingout/internal/obs"
	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/recon"
	"singlingout/internal/synth"
)

// ConvergeThresholds are the accuracy milestones the streaming harnesses
// report: the queries-to-X%-accuracy table, and the source of the
// BENCH.converge.qXX regression rows (q50 = queries to 50% accuracy).
var ConvergeThresholds = []float64{0.5, 0.9, 0.95, 0.99}

// StreamResult carries the anytime attack's outcome beyond the printable
// table: the final reconstruction (so callers can verify the stream
// reproduced the batch decode bit-for-bit) and the milestone crossings
// behind the BENCH.converge rows.
type StreamResult struct {
	// Final is the reconstruction after the last chunk — byte-identical
	// to decoding the full answer vector in one batch.
	Final []int64
	// Queries is the full workload size m.
	Queries int
	// FinalAccuracy is 1 - HammingError(truth, Final).
	FinalAccuracy float64
	// ToAccuracy maps each ConvergeThresholds entry to the cumulative
	// query count at which the running accuracy first reached it; absent
	// when never reached.
	ToAccuracy map[float64]int
}

// E02StreamOverOracle is the anytime form of E02OverOracle: it fixes one
// m = 4n random-subset workload, answers it through the oracle chunk
// queries at a time, and re-decodes after every chunk via the streaming
// LP decoder (each step a warm-started re-solve, see recon.StreamDecoder).
// Each step appends one point to the "recon.lp.accuracy" curve in curves
// (x = queries answered, y = fraction of rows recovered), which fans out
// to /converge SSE tails and attack.converge journal events as the attack
// runs. The returned table is the queries-to-X%-accuracy summary; the
// final reconstruction in StreamResult equals the batch decode of the
// same workload. chunk <= 0 defaults to n/4.
func E02StreamOverOracle(ctx context.Context, o query.Oracle, truth []int64, seed int64, chunk int, curves *obs.CurveSet) (*Table, *StreamResult, error) {
	n := o.N()
	if len(truth) != n {
		return nil, nil, fmt.Errorf("experiments: truth has %d entries for an oracle over %d", len(truth), n)
	}
	if chunk <= 0 {
		chunk = n / 4
		if chunk < 1 {
			chunk = 1
		}
	}
	if curves == nil {
		curves = obs.NewCurveSet()
	}
	m := 4 * n
	rng := par.RNG(seed, 0)
	qs := query.RandomSubsets(rng, n, m)
	dec, err := recon.NewDecoder(n, qs, recon.L1Slack)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: E02.stream: %w", err)
	}
	sd := dec.Stream()
	curve := curves.Curve("recon.lp.accuracy")
	inst := query.Instrument(o, nil)
	res := &StreamResult{Queries: m, ToAccuracy: map[float64]int{}}
	for sd.Remaining() > 0 {
		got, _, k, err := sd.PushOracle(ctx, inst, chunk)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: E02.stream at %d answered: %w", sd.Answered(), err)
		}
		acc := 1 - recon.HammingError(truth, got)
		answered := sd.Answered()
		for _, th := range ConvergeThresholds {
			if _, done := res.ToAccuracy[th]; !done && acc >= th-1e-12 {
				res.ToAccuracy[th] = answered
			}
		}
		curve.AddStats(int64(answered), acc, map[string]int64{"chunk": int64(k)})
		res.Final = got
		res.FinalAccuracy = acc
	}
	t := &Table{
		ID:     "E02.stream",
		Title:  fmt.Sprintf("anytime LP reconstruction over a query oracle, n=%d, m=4n=%d, chunk=%d", n, m, chunk),
		Header: []string{"accuracy milestone", "queries needed", "fraction of workload"},
		Notes: []string{
			fmt.Sprintf("final accuracy %s after all %d queries; every step is a warm-started LP re-solve (lp.warm_starts in the metrics)", f3(res.FinalAccuracy), m),
			"curve recon.lp.accuracy carries the per-chunk points (journal attack.converge events, /converge endpoint)",
		},
	}
	for _, th := range ConvergeThresholds {
		label := fmt.Sprintf("accuracy ≥ %g%%", 100*th)
		if q, ok := res.ToAccuracy[th]; ok {
			t.AddRow(label, strconv.Itoa(q), pct(float64(q)/float64(m)))
		} else {
			t.AddRow(label, "not reached", "—")
		}
	}
	return t, res, nil
}

// CensusStreamResult summarizes an anytime census reconstruction.
type CensusStreamResult struct {
	// Cells is the total number of published table cells consumed.
	Cells int
	// Persons is the population size.
	Persons int
	// FinalExactFraction is the batch-scored fraction of records
	// reconstructed exactly after all cells.
	FinalExactFraction float64
	// ToExact maps an exact-fraction threshold to the cumulative cell
	// count at which the running fraction first reached it.
	ToExact map[float64]int
}

// censusExactThresholds are the exact-fraction milestones E11Stream
// reports (the census analogue of ConvergeThresholds; census exact
// fractions plateau well below 100%, so the milestones sit lower).
var censusExactThresholds = []float64{0.10, 0.25, 0.50}

// E11StreamConverge is the anytime form of the E11 census attack: blocks
// are solved sequentially, each ingesting its published table cells one
// at a time with an incremental SAT re-solve per cell (learned clauses
// retained — see census.ReconstructBlockStream). Every step appends one
// point to the "census.exact_fraction" curve (x = cumulative cells
// consumed, y = running fraction of the whole population reconstructed
// exactly) whose stats carry the block id and the solver's cumulative
// decisions/restarts/conflicts, so the journal's attack.converge events
// expose solver cost next to accuracy.
func E11StreamConverge(ctx context.Context, seed int64, quick bool, curves *obs.CurveSet) (*Table, *CensusStreamResult, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 600
	if quick {
		n = 250
	}
	pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 4, BlocksPerZIP: 20})
	if err != nil {
		return nil, nil, err
	}
	cfg := census.DefaultConfig()
	tables := census.Tabulate(pop, cfg)
	truth := census.TrueTuples(pop, cfg)
	if curves == nil {
		curves = obs.NewCurveSet()
	}
	curve := curves.Curve("census.exact_fraction")
	cellsPerBlock := 2*cfg.Buckets() + 12 + 12
	res := &CensusStreamResult{Persons: n, ToExact: map[float64]int{}}
	var (
		seenBlock   bool
		curBlock    int64
		cellsBefore int
		exactDone   int
		curExact    int
	)
	onStep := func(st census.StreamStep) {
		if !seenBlock || st.Block != curBlock {
			if seenBlock {
				cellsBefore += cellsPerBlock
				exactDone += curExact
			}
			seenBlock, curBlock, curExact = true, st.Block, 0
		}
		curExact = st.Exact
		x := cellsBefore + st.Queries
		y := float64(exactDone+st.Exact) / float64(n)
		for _, th := range censusExactThresholds {
			if _, done := res.ToExact[th]; !done && y >= th-1e-12 {
				res.ToExact[th] = x
			}
		}
		curve.AddStats(int64(x), y, map[string]int64{
			"block":     st.Block,
			"decisions": st.Stats.Decisions,
			"restarts":  st.Stats.Restarts,
			"conflicts": st.Stats.Conflicts,
		})
	}
	results, err := census.ReconstructAllStream(ctx, tables, truth, cfg, 500000, onStep)
	if err != nil {
		return nil, nil, err
	}
	res.Cells = cellsPerBlock * len(tables)
	exact := 0
	for _, r := range results {
		if r.Solved {
			exact += census.MultisetIntersection(truth[r.Block], r.Tuples)
		}
	}
	res.FinalExactFraction = float64(exact) / float64(n)
	t := &Table{
		ID:     "E11.stream",
		Title:  fmt.Sprintf("anytime census reconstruction, %d persons, %d blocks, %d table cells", n, len(tables), res.Cells),
		Header: []string{"exact-fraction milestone", "table cells needed", "fraction of cells"},
		Notes: []string{
			fmt.Sprintf("final exact fraction %s after all %d cells; per-cell incremental SAT solves retain learned clauses", pct(res.FinalExactFraction), res.Cells),
			"curve census.exact_fraction carries the per-cell points with cumulative solver decisions/restarts/conflicts",
		},
	}
	for _, th := range censusExactThresholds {
		label := fmt.Sprintf("exact ≥ %g%%", 100*th)
		if c, ok := res.ToExact[th]; ok {
			t.AddRow(label, strconv.Itoa(c), pct(float64(c)/float64(res.Cells)))
		} else {
			t.AddRow(label, "not reached", "—")
		}
	}
	return t, res, nil
}
