package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"singlingout/internal/census"
	"singlingout/internal/dataset"
	"singlingout/internal/kanon"
	"singlingout/internal/reident"
	"singlingout/internal/sat"
	"singlingout/internal/synth"
)

// E11CensusReconstruction reproduces the census narrative end to end:
// publish block tables, SAT-reconstruct the microdata, then re-identify
// against registries of varying coverage.
func E11CensusReconstruction(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 600
	if quick {
		n = 250
	}
	pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 4, BlocksPerZIP: 20})
	if err != nil {
		return nil, err
	}
	cfg := census.DefaultConfig()
	results, sum, err := census.Reconstruct(pop, cfg, 500000, Workers())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E11",
		Title: fmt.Sprintf("census-style reconstruction + re-identification, %d persons, %d blocks",
			n, sum.Blocks),
		Header: []string{"quantity", "measured", "paper (2010 census)"},
		Notes: []string{
			"paper: exact reconstruction for 46% of population; 71% with age ±1; 17% re-identified via commercial data",
			"our tables are far coarser than SF1, and blocks synthetic — the shape (large exact fraction, sizable confirmed re-identification) is the target",
		},
	}
	t.AddRow("blocks solved", fmt.Sprintf("%d/%d", sum.Solved, sum.Blocks), "-")
	t.AddRow("blocks with unique solution", fmt.Sprintf("%d/%d", sum.Unique, sum.Blocks), "-")
	t.AddRow("records reconstructed exactly", pct(sum.ExactFraction), "46% (71% with age±1)")
	for _, b := range census.SummaryBySize(results) {
		if b.Blocks == 0 {
			continue
		}
		label := fmt.Sprintf("  … in blocks of %d-%d residents", b.Lo, b.Hi)
		if b.Hi > 1000 {
			label = fmt.Sprintf("  … in blocks of %d+ residents", b.Lo)
		}
		t.AddRow(label, pct(b.ExactFraction()), "small blocks most exposed")
	}
	for _, coverage := range []float64{0.2, 0.5, 0.8} {
		reg, err := synth.Registry(rng, pop, coverage)
		if err != nil {
			return nil, err
		}
		link := census.Linkage(pop, reg, results, cfg)
		t.AddRow(fmt.Sprintf("re-identified (putative), registry coverage %.0f%%", 100*coverage),
			pct(link.PutativeRate()), "-")
		t.AddRow(fmt.Sprintf("re-identified (confirmed), registry coverage %.0f%%", 100*coverage),
			pct(link.ConfirmedRate()), "17% confirmed")
	}
	return t, nil
}

// E12QuasiIDUniqueness reproduces Sweeney's uniqueness analysis across
// quasi-identifier sets and population scales.
func E12QuasiIDUniqueness(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{2000, 10000, 50000}
	if quick {
		sizes = []int{2000, 10000}
	}
	t := &Table{
		ID:     "E12",
		Title:  "fraction of population unique under quasi-identifier combinations",
		Header: []string{"population", "QI set", "unique", "paper"},
		Notes:  []string{"Sweeney: (ZIP, birth date, sex) unique for the vast majority (87%) of the US population"},
	}
	for _, n := range sizes {
		pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 1 + n/1000, BlocksPerZIP: 10})
		if err != nil {
			return nil, err
		}
		zipI := pop.Schema.MustIndex(synth.AttrZIP)
		bdI := pop.Schema.MustIndex(synth.AttrBirthDate)
		ageI := pop.Schema.MustIndex(synth.AttrAge)
		sexI := pop.Schema.MustIndex(synth.AttrSex)
		for _, qi := range []struct {
			name string
			idx  []int
			ref  string
		}{
			{"(ZIP, birth date, sex)", []int{zipI, bdI, sexI}, "87%"},
			{"(ZIP, age, sex)", []int{zipI, ageI, sexI}, "far lower"},
			{"(ZIP, sex)", []int{zipI, sexI}, "≈0%"},
		} {
			rep := reident.Uniqueness(pop, qi.idx)
			t.AddRow(fmt.Sprintf("%d", n), qi.name, pct(rep.UniqueFraction()), qi.ref)
		}
	}
	return t, nil
}

// E14KAnonComposition reproduces the composition failure: two releases,
// each k-anonymous, intersect to candidate sets of size 1.
func E14KAnonComposition(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 2000
	if quick {
		n = 800
	}
	pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 8, BlocksPerZIP: 6})
	if err != nil {
		return nil, err
	}
	zipI := pop.Schema.MustIndex(synth.AttrZIP)
	bdI := pop.Schema.MustIndex(synth.AttrBirthDate)
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	sexI := pop.Schema.MustIndex(synth.AttrSex)
	blockI := pop.Schema.MustIndex(synth.AttrBlock)
	t := &Table{
		ID:     "E14",
		Title:  fmt.Sprintf("intersection attack on two k-anonymous releases, n=%d", n),
		Header: []string{"k", "release-A classes", "release-B classes", "singled out (|candidates|=1)", "avg candidates"},
		Notes:  []string{"§1.1: k-anonymity is not closed under composition ([12],[23])"},
	}
	for _, k := range []int{2, 5, 10, 25} {
		relA, err := kanon.Mondrian(pop, []int{bdI, sexI}, k, kanon.MondrianOptions{})
		if err != nil {
			return nil, err
		}
		relB, err := kanon.Mondrian(pop, []int{zipI, ageI, blockI}, k, kanon.MondrianOptions{})
		if err != nil {
			return nil, err
		}
		cands := kanon.IntersectionAttack(relA, relB, pop)
		singled, total := 0, 0
		for _, c := range cands {
			if c == 1 {
				singled++
			}
			total += c
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", len(relA.Classes)),
			fmt.Sprintf("%d", len(relB.Classes)),
			pct(float64(singled)/float64(n)),
			f3(float64(total)/float64(n)))
	}
	return t, nil
}

// A04CardinalityEncoding is the SAT-encoding ablation: sequential counter
// vs pairwise at-most-one on census-style one-hot groups.
func A04CardinalityEncoding(ctx context.Context, seed int64, quick bool) (*Table, error) {
	groups := 200
	width := 60
	if quick {
		groups, width = 80, 40
	}
	t := &Table{
		ID:     "A04",
		Title:  fmt.Sprintf("at-most-one encoding ablation: %d one-hot groups of width %d", groups, width),
		Header: []string{"encoding", "clauses", "propagations", "wall time"},
	}
	for _, enc := range []struct {
		name string
		add  func(s *sat.Solver, vars []int) error
	}{
		{"sequential counter", func(s *sat.Solver, vars []int) error { return s.AtMostK(vars, 1) }},
		{"pairwise", func(s *sat.Solver, vars []int) error { return s.AtMostOnePairwise(vars) }},
	} {
		s := sat.New()
		rng := rand.New(rand.NewSource(seed))
		//lint:ignore determinism the wall-time column reports measured solver speed; it is labelled as timing, not part of the reconstruction result
		start := time.Now()
		for g := 0; g < groups; g++ {
			vars := make([]int, width)
			for i := range vars {
				vars[i] = s.NewVar()
			}
			if err := s.AddClause(vars...); err != nil {
				return nil, err
			}
			if err := enc.add(s, vars); err != nil {
				return nil, err
			}
			// Pin a random member to exercise propagation.
			if err := s.AddClause(vars[rng.Intn(width)]); err != nil {
				return nil, err
			}
		}
		if got := s.Solve(); got != sat.Sat {
			return nil, fmt.Errorf("experiments: A04 expected sat, got %v", got)
		}
		//lint:ignore determinism pairs with the time.Now above for the labelled wall-time column
		elapsed := time.Since(start)
		t.AddRow(enc.name, fmt.Sprintf("%d", s.NumClauses()), fmt.Sprintf("%d", s.Propagations), elapsed.Round(time.Millisecond).String())
	}
	return t, nil
}

// A06FullDomainSearch compares Datafly's greedy generalization against
// exhaustive lattice search at matched k (the NP-hardness workaround
// ablation).
func A06FullDomainSearch(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 3000
	if quick {
		n = 800
	}
	pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 4, BlocksPerZIP: 2})
	if err != nil {
		return nil, err
	}
	zipI := pop.Schema.MustIndex(synth.AttrZIP)
	ageI := pop.Schema.MustIndex(synth.AttrAge)
	sexI := pop.Schema.MustIndex(synth.AttrSex)
	zipH, err := dataset.NewIntRangeHierarchy(10000, 10003, 2, 4)
	if err != nil {
		return nil, err
	}
	ageH, err := dataset.NewIntRangeHierarchy(0, 110, 5, 20, 111)
	if err != nil {
		return nil, err
	}
	sexH, err := dataset.NewIntRangeHierarchy(0, 1, 2)
	if err != nil {
		return nil, err
	}
	qi := []int{zipI, ageI, sexI}
	opts := kanon.FullDomainOptions{
		Hierarchies: map[int]dataset.Hierarchy{zipI: zipH, ageI: ageH, sexI: sexH},
		MaxSuppress: n / 20,
	}
	t := &Table{
		ID:     "A06",
		Title:  fmt.Sprintf("full-domain anonymizer ablation, n=%d, 24-node lattice", n),
		Header: []string{"k", "algorithm", "GenILoss", "suppressed", "classes"},
	}
	for _, k := range []int{10, 50} {
		greedy, _, err := kanon.FullDomain(pop, qi, k, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), "Datafly greedy", f3(kanon.GenILoss(greedy)),
			fmt.Sprintf("%d", len(greedy.Suppressed)), fmt.Sprintf("%d", len(greedy.Classes)))
		optimal, _, _, err := kanon.OptimalFullDomain(pop, qi, k, opts, kanon.MinimizeGenILoss)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), "lattice optimal", f3(kanon.GenILoss(optimal)),
			fmt.Sprintf("%d", len(optimal.Suppressed)), fmt.Sprintf("%d", len(optimal.Classes)))
	}
	return t, nil
}

// E19CensusDefenses compares the disclosure-avoidance defenses of the
// census story: nothing, record swapping (the 2010 technique the attack
// defeated), and ε-DP table noise (the post-2020 remedy).
func E19CensusDefenses(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 500
	if quick {
		n = 250
	}
	pop, err := synth.Population(rng, synth.PopulationConfig{N: n, ZIPs: 4, BlocksPerZIP: 18})
	if err != nil {
		return nil, err
	}
	cfg := census.DefaultConfig()
	truth := census.TrueTuples(pop, cfg)
	reg, err := synth.Registry(rng, pop, 0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E19",
		Title:  fmt.Sprintf("census disclosure-avoidance defenses vs the reconstruction attack, %d persons", n),
		Header: []string{"defense", "blocks solved", "records exact (vs truth)", "confirmed re-id (50% registry)"},
		Notes: []string{
			"swapping (2010's defense) keeps tables consistent, so reconstruction still succeeds — only the swapped geography protects anyone",
			"ε-DP noise makes most block tables jointly unsatisfiable: the attack has nothing to solve",
		},
	}
	run := func(name string, tables []census.BlockTables) error {
		results, sum, err := census.ReconstructTables(tables, truth, cfg, 300000, Workers())
		if err != nil {
			return err
		}
		link := census.Linkage(pop, reg, results, cfg)
		t.AddRow(name,
			fmt.Sprintf("%d/%d", sum.Solved, sum.Blocks),
			pct(sum.ExactFraction),
			pct(link.ConfirmedRate()))
		return nil
	}
	if err := run("none (raw tables)", census.Tabulate(pop, cfg)); err != nil {
		return nil, err
	}
	for _, rate := range []float64{0.1, 0.3} {
		swapped := census.SwapRecords(rng, pop, rate)
		if err := run(fmt.Sprintf("swapping %.0f%%", 100*rate), census.Tabulate(swapped, cfg)); err != nil {
			return nil, err
		}
	}
	for _, eps := range []float64{1, 0.5} {
		if err := run(fmt.Sprintf("ε=%g DP table noise", eps),
			census.NoisyTables(rng, census.Tabulate(pop, cfg), eps)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
