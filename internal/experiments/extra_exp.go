package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"singlingout/internal/membership"
	"singlingout/internal/reident"
	"singlingout/internal/synth"
)

// E17MembershipInference covers the paper's Homer et al. survey point:
// exact aggregate statistics leak membership (AUC → 1 as the number of
// released statistics grows), and a DP release collapses the attack.
func E17MembershipInference(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	studyN, outs := 100, 200
	reps := 5
	if quick {
		reps = 2
	}
	t := &Table{
		ID:     "E17",
		Title:  fmt.Sprintf("Homer-style membership inference, study n=%d, AUC over %d reps", studyN, reps),
		Header: []string{"statistics released", "release", "AUC"},
		Notes: []string{
			"[26]/Dwork et al.: enough exact aggregates identify members; DP release restores ≈coin-flipping",
		},
	}
	for _, m := range []int{50, 500, 5000} {
		for _, release := range []string{"exact", "ε-DP (total ε=1)"} {
			auc := 0.0
			for r := 0; r < reps; r++ {
				model, err := membership.NewModel(rng, m, 0.05, 0.95)
				if err != nil {
					return nil, err
				}
				study, err := membership.NewStudy(rng, model, studyN)
				if err != nil {
					return nil, err
				}
				if release != "exact" {
					study.ReleaseDP(rng, 1.0/float64(m))
				}
				auc += membership.Experiment(rng, model, study, outs)
			}
			t.AddRow(fmt.Sprintf("%d", m), release, f3(auc/float64(reps)))
		}
	}
	return t, nil
}

// E18NetflixScoreboard covers the Narayanan–Shmatikov survey point: sparse
// long-tailed behavioral data is re-identifiable from a handful of noisy
// auxiliary ratings.
func E18NetflixScoreboard(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	users, movies, targets := 2000, 800, 60
	if quick {
		users, movies, targets = 600, 400, 30
	}
	ratings, err := synth.GenerateRatings(rng, synth.RatingsConfig{
		Users: users, Movies: movies, MeanRatings: 30, Days: 1000,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E18",
		Title:  fmt.Sprintf("Netflix-style scoreboard de-anonymization, %d users, %d movies", users, movies),
		Header: []string{"aux ratings k", "timing info", "identified", "misidentified", "paper"},
		Notes:  []string{"N–S 2008: 99% of users identifiable from 8 ratings with dates (2 without dates for 68%)"},
	}
	cases := []struct {
		k       int
		daySlop int
		timing  string
		ref     string
	}{
		{2, 14, "±14 days", "68% (no dates, 8 ratings)"},
		{4, 14, "±14 days", "-"},
		{8, 14, "±14 days", "99%"},
		{8, 2000, "none", "lower"},
	}
	for _, c := range cases {
		sb := &reident.Scoreboard{Released: ratings, StarsSlop: 1, DaySlop: c.daySlop, Eccentricity: 1.5}
		correct, wrong := reident.DeAnonymizationRate(rng, ratings, sb, targets, c.k)
		t.AddRow(fmt.Sprintf("%d", c.k), c.timing, pct(correct), pct(wrong), c.ref)
	}
	return t, nil
}
