package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"singlingout/internal/diffix"
	"singlingout/internal/dp"
	"singlingout/internal/par"
	"singlingout/internal/query"
	"singlingout/internal/recon"
	"singlingout/internal/synth"
)

// E01Exhaustive reproduces Theorem 1.1(i) at small n: with answer error
// alpha well below n, the exhaustive attack reconstructs nearly the whole
// database; as alpha grows toward a constant fraction of n, error climbs.
// Grid points run concurrently on the shared pool; each derives its RNG
// from (seed, point index), so the table is identical at any worker count.
func E01Exhaustive(ctx context.Context, seed int64, quick bool) (*Table, error) {
	n, queries, trials := 16, 300, 5
	if quick {
		n, queries, trials = 12, 120, 3
	}
	t := &Table{
		ID:     "E01",
		Title:  fmt.Sprintf("exhaustive reconstruction, n=%d, m=%d random subset queries", n, queries),
		Header: []string{"alpha", "alpha/n", "mean Hamming error", "reconstructed ≥95%?"},
		Notes:  []string{"Thm 1.1(i): any candidate consistent within alpha disagrees on O(alpha) entries"},
	}
	var alphas []float64
	seen := map[float64]bool{}
	for _, alpha := range []float64{0, 1, 2, float64(n) / 4, float64(n) / 2, 3 * float64(n) / 4, float64(n)} {
		if !seen[alpha] {
			seen[alpha] = true
			alphas = append(alphas, alpha)
		}
	}
	errs := make([]float64, len(alphas))
	err := par.ForEach(Workers(), len(alphas), func(i int) error {
		rng := par.RNG(seed, i)
		alpha := alphas[i]
		meanErr := 0.0
		for trial := 0; trial < trials; trial++ {
			x := synth.BinaryDataset(rng, n, 0.5)
			qs := query.RandomSubsets(rng, n, queries)
			o := query.Instrument(&query.BoundedNoise{X: x, Alpha: alpha, Rng: rng}, nil)
			got, err := recon.Exhaustive(ctx, o, qs, alpha)
			if err != nil {
				return err
			}
			meanErr += recon.HammingError(x, got)
		}
		errs[i] = meanErr / float64(trials)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, alpha := range alphas {
		ok := "yes"
		if errs[i] > 0.05 {
			ok = "no"
		}
		t.AddRow(g3(alpha), g3(alpha/float64(n)), f3(errs[i]), ok)
	}
	return t, nil
}

// E02LPReconstruction reproduces Theorem 1.1(ii) and the "fundamental law"
// crossover: LP decoding with 4n queries defeats noise up to roughly √n,
// and degrades to coin-flipping as noise approaches n.
func E02LPReconstruction(ctx context.Context, seed int64, quick bool) (*Table, error) {
	// n=96 keeps a full sweep within minutes on a laptop; the shape is
	// already stable from n≈32 (see the quick sizes). Parallelism is over
	// the ns; within one n each trial draws its database and query set
	// once and sweeps every noise level c over them, so the whole sweep
	// shares one LP constraint matrix and every solve after the first
	// warm-starts from the previous basis (recon.Decoder). Per-n RNGs keep
	// the table identical at any worker count.
	ns := []int{32, 64, 96}
	trials := 2
	if quick {
		ns = []int{32, 64}
	}
	cs := func(n int) []float64 {
		return []float64{0, 0.25, 0.5, 1, 2, float64(n) / (3 * math.Sqrt(float64(n)))}
	}
	t := &Table{
		ID:     "E02",
		Title:  "LP-decoding reconstruction, m=4n random subset queries, noise alpha = c·√n",
		Header: []string{"n", "c = alpha/√n", "mean Hamming error", "blatantly non-private (err<5%)?"},
		Notes:  []string{"Thm 1.1(ii) + Dwork–Roth fundamental law: accuracy o(√n) destroys privacy; error Θ(n) defends"},
	}
	errs := make([][]float64, len(ns))
	err := par.ForEach(Workers(), len(ns), func(i int) error {
		rng := par.RNG(seed, i)
		n := ns[i]
		cvals := cs(n)
		errs[i] = make([]float64, len(cvals))
		for trial := 0; trial < trials; trial++ {
			x := synth.BinaryDataset(rng, n, 0.5)
			qs := query.RandomSubsets(rng, n, 4*n)
			dec, err := recon.NewDecoder(n, qs, recon.L1Slack)
			if err != nil {
				return err
			}
			for ci, c := range cvals {
				alpha := c * math.Sqrt(float64(n))
				o := query.Instrument(&query.BoundedNoise{X: x, Alpha: alpha, Rng: rng}, nil)
				got, _, err := dec.DecodeOracle(ctx, o)
				if err != nil {
					return err
				}
				errs[i][ci] += recon.HammingError(x, got)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		for ci, c := range cs(n) {
			meanErr := errs[i][ci] / float64(trials)
			ok := "yes"
			if meanErr > 0.05 {
				ok = "no"
			}
			t.AddRow(fmt.Sprintf("%d", n), g3(c), f3(meanErr), ok)
		}
	}
	return t, nil
}

// E03LaplaceDP verifies Theorem 1.3 empirically: the Laplace mechanism's
// measured privacy loss stays below its advertised epsilon, and its
// accuracy degrades as 1/eps.
func E03LaplaceDP(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	trials := 300000
	if quick {
		trials = 60000
	}
	t := &Table{
		ID:     "E03",
		Title:  fmt.Sprintf("Laplace counting mechanism, %d trials per epsilon", trials),
		Header: []string{"epsilon", "empirical epsilon (lower bound)", "within bound?", "mean |error|", "theory 1/eps"},
		Notes: []string{
			"Thm 1.3: M(x) = Σx_i + Lap(1/eps) is eps-DP; accuracy/privacy trade-off",
			"the empirical epsilon is a histogram estimate with ≈±0.1 sampling noise at these trial counts",
		},
	}
	for _, eps := range []float64{0.1, 0.5, 1, 2} {
		emp := dp.EmpiricalEpsilon(rng,
			func(r *rand.Rand) float64 { return dp.LaplaceCount(r, 100, eps) },
			func(r *rand.Rand) float64 { return dp.LaplaceCount(r, 101, eps) },
			trials, 0.5/eps)
		var sumAbs float64
		for i := 0; i < trials/10; i++ {
			sumAbs += math.Abs(dp.LaplaceCount(rng, 100, eps) - 100)
		}
		within := "yes"
		if emp > eps*1.1+0.1 {
			within = "NO"
		}
		t.AddRow(g3(eps), g3(emp), within, f3(sumAbs/float64(trials/10)), f3(1/eps))
	}
	return t, nil
}

// E13DiffixReconstruction reproduces [13]: sticky noise plus low-count
// suppression do not prevent LP reconstruction until the noise reaches the
// fundamental-law scale.
func E13DiffixReconstruction(ctx context.Context, seed int64, quick bool) (*Table, error) {
	n := 96
	if quick {
		n = 48
	}
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("LP reconstruction of a Diffix-style cloak, n=%d users, m=4n queries, suppression<8", n),
		Header: []string{"sticky noise SD", "SD/√n", "Hamming error", "defeated (err<5%)?"},
		Notes:  []string{"[13]: deployed sticky-noise magnitudes are far below √n, so reconstruction succeeds"},
	}
	// One cloak + attack per noise level, fanned over the shared pool;
	// each level's RNG derives from (seed, index) for worker invariance.
	sds := []float64{1, 2, 4, math.Sqrt(float64(n)), float64(n) / 3}
	results := make([]diffix.AttackResult, len(sds))
	err := par.ForEach(Workers(), len(sds), func(i int) error {
		rng := par.RNG(seed, i)
		sd := sds[i]
		c := &diffix.Cloak{X: synth.BinaryDataset(rng, n, 0.5), SD: sd, Threshold: 8, Seed: seed + int64(sd*100)}
		res, _, err := diffix.Attack(ctx, rng, c, 4*n)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sd := range sds {
		defeated := "yes"
		if results[i].HammingError > 0.05 {
			defeated = "no"
		}
		t.AddRow(g3(sd), g3(sd/math.Sqrt(float64(n))), f3(results[i].HammingError), defeated)
	}
	return t, nil
}

// A01LPObjective is the LP-objective ablation: L1 slack minimization vs
// Chebyshev (max-violation) decoding at matched noise.
func A01LPObjective(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	n, trials := 64, 3
	if quick {
		n, trials = 32, 2
	}
	t := &Table{
		ID:     "A01",
		Title:  fmt.Sprintf("LP decoding objective ablation, n=%d, m=4n, alpha=0.5√n", n),
		Header: []string{"objective", "mean Hamming error"},
	}
	alpha := 0.5 * math.Sqrt(float64(n))
	for _, obj := range []struct {
		name string
		o    recon.LPObjective
	}{{"L1 slack", recon.L1Slack}, {"Chebyshev", recon.Chebyshev}} {
		meanErr := 0.0
		for trial := 0; trial < trials; trial++ {
			x := synth.BinaryDataset(rng, n, 0.5)
			qs := query.RandomSubsets(rng, n, 4*n)
			oracle := query.Instrument(&query.BoundedNoise{X: x, Alpha: alpha, Rng: rng}, nil)
			got, _, err := recon.LPDecode(ctx, oracle, qs, obj.o)
			if err != nil {
				return nil, err
			}
			meanErr += recon.HammingError(x, got)
		}
		t.AddRow(obj.name, f3(meanErr/float64(trials)))
	}
	return t, nil
}

// A05IntegerNoise compares the two-sided geometric and Laplace mechanisms
// for integer counts at matched epsilon.
func A05IntegerNoise(ctx context.Context, seed int64, quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	trials := 200000
	if quick {
		trials = 40000
	}
	t := &Table{
		ID:     "A05",
		Title:  fmt.Sprintf("integer-count noise ablation, %d trials per epsilon", trials),
		Header: []string{"epsilon", "Laplace mean |err|", "geometric mean |err|", "geometric integral?"},
	}
	for _, eps := range []float64{0.25, 1, 4} {
		var lap, geo float64
		for i := 0; i < trials; i++ {
			lap += math.Abs(dp.LaplaceCount(rng, 50, eps) - 50)
			geo += math.Abs(float64(dp.GeometricCount(rng, 50, eps) - 50))
		}
		t.AddRow(g3(eps), f3(lap/float64(trials)), f3(geo/float64(trials)), "yes")
	}
	return t, nil
}
