package lp

import (
	"math"
	"sort"
)

// luFactor is a sparse LU factorization of the m×m basis matrix B with
// partial pivoting, plus the product-form eta file accumulated by pivots
// since the last (re)factorization:
//
//	B · colPerm = rowPerm⁻¹ · L · U,   B_now = B · E_1 · E_2 · … · E_k
//
// Columns are factored sparsest-first (slack and error columns of the
// reconstruction LPs are singletons/doubletons, structural columns are
// dense-ish), which keeps fill-in low without a full Markowitz search.
// FTRAN/BTRAN solve through the factors and then replay the eta file;
// refactorization truncates the file and restores full accuracy.
type luFactor struct {
	m int
	// Row pivoting: rowOfPos[k] is the original row eliminated at step k;
	// posOfRow is its inverse.
	rowOfPos []int
	posOfRow []int
	// colOrder[k] is the basis position whose column was factored at
	// step k.
	colOrder []int
	// L columns (unit diagonal implicit): entries (original row, value)
	// for rows not yet pivoted at their step.
	lRows [][]int32
	lVals [][]float64
	// U columns: entries (elimination position j < k, value) and the
	// diagonal.
	uPos  [][]int32
	uVals [][]float64
	uDiag []float64
	// etas is the product-form update file: eta e replaces basis position
	// e.pos; e.rows/e.vals are the position-indexed nonzeros of the
	// FTRANed entering column, e.pivot its value at e.pos.
	etas []eta

	work    []float64 // dense scratch, len m
	touched []int32
	inWork  []bool
}

type eta struct {
	pos   int
	pivot float64
	rows  []int32
	vals  []float64
}

// luMinPivot is the singularity threshold for factorization pivots.
const luMinPivot = 1e-10

func newLU(m int) *luFactor {
	return &luFactor{
		m:        m,
		rowOfPos: make([]int, m),
		posOfRow: make([]int, m),
		colOrder: make([]int, m),
		lRows:    make([][]int32, m),
		lVals:    make([][]float64, m),
		uPos:     make([][]int32, m),
		uVals:    make([][]float64, m),
		uDiag:    make([]float64, m),
		work:     make([]float64, m),
		touched:  make([]int32, 0, m),
		inWork:   make([]bool, m),
	}
}

// factor (re)builds the LU decomposition of the basis described by
// column, a position→sparse-column accessor. It returns false when the
// basis matrix is numerically singular. The eta file is cleared.
func (f *luFactor) factor(column func(pos int) ([]int32, []float64)) bool {
	m := f.m
	f.etas = f.etas[:0]
	for i := 0; i < m; i++ {
		f.posOfRow[i] = -1
	}
	// Sparsest columns first: their pivots eliminate rows without creating
	// fill for the denser columns factored later.
	type colRef struct{ pos, nnz int }
	refs := make([]colRef, m)
	for i := 0; i < m; i++ {
		rows, _ := column(i)
		refs[i] = colRef{pos: i, nnz: len(rows)}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].nnz != refs[b].nnz {
			return refs[a].nnz < refs[b].nnz
		}
		return refs[a].pos < refs[b].pos
	})
	for k := 0; k < m; k++ {
		f.colOrder[k] = refs[k].pos
		rows, vals := column(refs[k].pos)
		// Scatter the column into the dense workspace.
		f.touched = f.touched[:0]
		for i, r := range rows {
			f.work[r] = vals[i]
			if !f.inWork[r] {
				f.inWork[r] = true
				f.touched = append(f.touched, r)
			}
		}
		// Left-looking elimination by the columns already factored.
		uPos := f.uPos[k][:0]
		uVals := f.uVals[k][:0]
		for j := 0; j < k; j++ {
			pr := f.rowOfPos[j]
			t := f.work[pr]
			if t == 0 {
				continue
			}
			uPos = append(uPos, int32(j))
			uVals = append(uVals, t)
			lr, lv := f.lRows[j], f.lVals[j]
			for i, r := range lr {
				f.work[r] -= lv[i] * t
				if !f.inWork[r] {
					f.inWork[r] = true
					f.touched = append(f.touched, r)
				}
			}
		}
		// Partial pivoting over the rows not yet eliminated.
		pivRow, pivAbs := -1, luMinPivot
		for _, r := range f.touched {
			if f.posOfRow[r] >= 0 {
				continue
			}
			if a := math.Abs(f.work[r]); a > pivAbs {
				pivAbs, pivRow = a, int(r)
			}
		}
		if pivRow < 0 {
			f.clearWork()
			return false
		}
		piv := f.work[pivRow]
		f.uDiag[k] = piv
		f.uPos[k], f.uVals[k] = uPos, uVals
		lr := f.lRows[k][:0]
		lv := f.lVals[k][:0]
		for _, r := range f.touched {
			if f.posOfRow[r] >= 0 || int(r) == pivRow {
				continue
			}
			if v := f.work[r]; v != 0 {
				lr = append(lr, r)
				lv = append(lv, v/piv)
			}
		}
		f.lRows[k], f.lVals[k] = lr, lv
		f.rowOfPos[k] = pivRow
		f.posOfRow[pivRow] = k
		f.clearWork()
	}
	return true
}

func (f *luFactor) clearWork() {
	for _, r := range f.touched {
		f.work[r] = 0
		f.inWork[r] = false
	}
	f.touched = f.touched[:0]
}

// ftran solves B·x = v. v is indexed by original row and is consumed as
// scratch; the result is written to out, indexed by basis position.
func (f *luFactor) ftran(v, out []float64) {
	m := f.m
	// Forward: L y = P v.
	for k := 0; k < m; k++ {
		t := v[f.rowOfPos[k]]
		if t == 0 {
			continue
		}
		lr, lv := f.lRows[k], f.lVals[k]
		for i, r := range lr {
			v[r] -= lv[i] * t
		}
	}
	// Back-substitute U z = y, column-wise.
	z := out // reuse out as the z buffer in elimination order via scatter below
	tmp := make([]float64, m)
	for k := 0; k < m; k++ {
		tmp[k] = v[f.rowOfPos[k]]
	}
	for k := m - 1; k >= 0; k-- {
		zk := tmp[k] / f.uDiag[k]
		tmp[k] = zk
		up, uv := f.uPos[k], f.uVals[k]
		for i, p := range up {
			tmp[p] -= uv[i] * zk
		}
	}
	for i := range z {
		z[i] = 0
	}
	for k := 0; k < m; k++ {
		z[f.colOrder[k]] = tmp[k]
	}
	// Replay the eta file.
	for e := range f.etas {
		f.applyEta(&f.etas[e], z)
	}
}

func (f *luFactor) applyEta(e *eta, v []float64) {
	t := v[e.pos] / e.pivot
	if v[e.pos] != 0 {
		for i, p := range e.rows {
			if int(p) == e.pos {
				continue
			}
			v[p] -= e.vals[i] * t
		}
	}
	v[e.pos] = t
}

// btran solves Bᵀ·y = c. c is indexed by basis position and is consumed
// as scratch; the result is written to out, indexed by original row.
func (f *luFactor) btran(c, out []float64) {
	m := f.m
	// Transposed eta replay, newest first: (Eᵀ)⁻¹ c leaves every entry but
	// c[pos] alone.
	for e := len(f.etas) - 1; e >= 0; e-- {
		et := &f.etas[e]
		s := 0.0
		for i, p := range et.rows {
			if int(p) == et.pos {
				continue
			}
			s += et.vals[i] * c[p]
		}
		c[et.pos] = (c[et.pos] - s) / et.pivot
	}
	// Uᵀ g = c (in elimination order), forward.
	g := make([]float64, m)
	for k := 0; k < m; k++ {
		s := c[f.colOrder[k]]
		up, uv := f.uPos[k], f.uVals[k]
		for i, p := range up {
			s -= uv[i] * g[p]
		}
		g[k] = s / f.uDiag[k]
	}
	// Lᵀ h = g, backward (rows in lRows have elimination positions > k).
	for k := m - 1; k >= 0; k-- {
		lr, lv := f.lRows[k], f.lVals[k]
		s := g[k]
		for i, r := range lr {
			s -= lv[i] * g[f.posOfRow[r]]
		}
		g[k] = s
	}
	for i := range out {
		out[i] = 0
	}
	for k := 0; k < m; k++ {
		out[f.rowOfPos[k]] = g[k]
	}
}

// appendEta records the product-form update for a pivot at basis
// position pos whose FTRANed entering column is d (position-indexed,
// dense). It returns false when the pivot element is too small to update
// stably — the caller should refactorize instead.
func (f *luFactor) appendEta(pos int, d []float64) bool {
	const etaPivotTol = 1e-8
	if math.Abs(d[pos]) < etaPivotTol {
		return false
	}
	e := eta{pos: pos, pivot: d[pos]}
	for i, v := range d {
		if v != 0 {
			e.rows = append(e.rows, int32(i))
			e.vals = append(e.vals, v)
		}
	}
	f.etas = append(f.etas, e)
	return true
}
