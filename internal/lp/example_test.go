package lp_test

import (
	"context"
	"fmt"

	"singlingout/internal/lp"
)

// ExampleSolve solves the classic two-variable production LP.
func ExampleSolve() {
	// maximize 3x + 5y  ⇔  minimize -3x - 5y
	p := &lp.Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{1, 0}, Rel: lp.LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: lp.LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: lp.LE, RHS: 18},
		},
	}
	s, err := lp.Solve(context.Background(), p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: x=%.0f y=%.0f value=%.0f\n", s.Status, s.X[0], s.X[1], -s.Objective)
	// Output: optimal: x=2 y=6 value=36
}
