package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRandomBoundedLPsQuick property-tests Solve on random bounded-
// feasible LPs: the status must be Optimal and the point feasible within
// the documented slack.
func TestRandomBoundedLPsQuick(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 1
		m := int(mRaw%6) + 1
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() // nonnegative
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: rng.Float64() * 4})
		}
		// Box to guarantee boundedness.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 5})
		}
		s, err := Solve(ctx, p)
		if err != nil || s.Status != Optimal {
			return false
		}
		const slack = 2e-5
		for _, x := range s.X {
			if x < -slack {
				return false
			}
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, a := range c.Coeffs {
				lhs += a * s.X[j]
			}
			if lhs > c.RHS+slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
