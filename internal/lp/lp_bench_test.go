package lp

import (
	"math/rand"
	"testing"
)

// reconLP builds the L1-fitting LP used by the reconstruction attacks.
func reconLP(rng *rand.Rand, n int) *Problem {
	m := 4 * n
	nv := n + m
	obj := make([]float64, nv)
	for j := n; j < nv; j++ {
		obj[j] = 1
	}
	p := &Problem{NumVars: nv, Objective: obj}
	for k := 0; k < m; k++ {
		up := make([]float64, nv)
		lo := make([]float64, nv)
		sum := 0.0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				up[i] = 1
				lo[i] = -1
				sum += float64(rng.Intn(2))
			}
		}
		up[n+k] = -1
		lo[n+k] = -1
		p.Constraints = append(p.Constraints,
			Constraint{Coeffs: up, Rel: LE, RHS: sum + rng.Float64()},
			Constraint{Coeffs: lo, Rel: LE, RHS: -sum + rng.Float64()})
	}
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		row[i] = 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 1})
	}
	return p
}

func benchSolve(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	p := reconLP(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Solve(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if s.Status != Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkSolveReconLP32(b *testing.B) { benchSolve(b, 32) }
func BenchmarkSolveReconLP64(b *testing.B) { benchSolve(b, 64) }
