package lp

import (
	"math"
)

// spCol is one column of a column-wise sparse matrix: parallel slices of
// row indices (ascending) and values.
type spCol struct {
	rows []int32
	vals []float64
}

func (c *spCol) add(row int, v float64) {
	if v == 0 {
		return
	}
	c.rows = append(c.rows, int32(row))
	c.vals = append(c.vals, v)
}

// standard is the revised engine's standard form of a Problem: Ax ⋈ b
// rewritten as equalities with one row variable (slack or surplus) per
// inequality row, stored column-wise sparse.
//
// Column ids are stable across solves over the same constraint matrix —
// the property the warm-start contract relies on:
//
//	0 .. nStruct-1          structural variables
//	nStruct+r               row variable of row r (slack +1 for LE,
//	                        surplus -1 for GE; inactive for EQ)
//	nStruct+m+r             artificial of row r (engine-internal; its
//	                        sign depends on the per-solve RHS)
//
// Unlike the dense tableau, rows are NOT sign-normalized by RHS sign:
// negating a row is a diagonal ±1 scaling that changes neither which
// column sets are valid bases nor the basic solution, and keeping the
// original orientation keeps the matrix — and therefore a warm-start
// Basis — valid when a new RHS crosses zero.
type standard struct {
	m, nStruct int
	nCols      int // nStruct + m; artificial ids start here
	cols       []spCol
	active     []bool // false for the unused row-variable slot of EQ rows
	rel        []Rel
	b          []float64 // perturbed RHS
	sig        uint64    // FNV-1a over the constraint structure (not RHS)
}

// buildStandard converts p. The same deterministic ε-perturbation as the
// dense tableau is applied to the RHS — row r is relaxed by perturb·(r+1)
// in the direction that grows the feasible region (LE up, GE down, EQ
// untouched) — so both engines share one numerical contract.
func buildStandard(p *Problem) *standard {
	m := len(p.Constraints)
	s := &standard{
		m:       m,
		nStruct: p.NumVars,
		nCols:   p.NumVars + m,
		cols:    make([]spCol, p.NumVars+m),
		active:  make([]bool, p.NumVars+m),
		rel:     make([]Rel, m),
		b:       make([]float64, m),
	}
	for j := 0; j < p.NumVars; j++ {
		s.active[j] = true
	}
	for r, c := range p.Constraints {
		s.rel[r] = c.Rel
		delta := perturb * float64(r+1)
		switch c.Rel {
		case LE:
			s.b[r] = c.RHS + delta
			s.cols[p.NumVars+r].add(r, 1)
			s.active[p.NumVars+r] = true
		case GE:
			s.b[r] = c.RHS - delta
			s.cols[p.NumVars+r].add(r, -1)
			s.active[p.NumVars+r] = true
		case EQ:
			s.b[r] = c.RHS
		}
	}
	// Structural columns, gathered row-major from the dense input rows.
	for r, c := range p.Constraints {
		for j, v := range c.Coeffs {
			s.cols[j].add(r, v)
		}
	}
	s.sig = s.signature()
	return s
}

// signature hashes the constraint structure — dimensions, relations and
// coefficients, but not the RHS or objective — so a warm-start Basis can
// be checked against the matrix it was produced on.
func (s *standard) signature() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.m))
	mix(uint64(s.nStruct))
	for r, rel := range s.rel {
		mix(uint64(r)<<2 | uint64(rel))
	}
	for j := 0; j < s.nStruct; j++ {
		col := &s.cols[j]
		for k, row := range col.rows {
			mix(uint64(j))
			mix(uint64(row))
			mix(math.Float64bits(col.vals[k]))
		}
	}
	return h
}
