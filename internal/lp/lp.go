// Package lp is a self-contained linear-programming solver suite. It
// replaces the commercial LP solvers (CPLEX/Gurobi) used by the
// linear-program reconstruction attacks the paper surveys ([13], [18],
// [24]) at the scale of this repository's experiments.
//
// Two engines share one Problem type and one termination contract
// (two-phase primal simplex, Bland anti-cycling fallback, deterministic
// ε-perturbation):
//
//   - Solve is the dense tableau simplex — simple, O(m·n) per pivot, and
//     the test oracle for the sparse engine.
//   - Revised is the sparse revised simplex — column-wise sparse storage,
//     an LU-factorized basis with product-form (eta-file) updates between
//     periodic refactorizations, candidate-list partial pricing, and a
//     warm-start API: it returns an opaque Basis, and a follow-up solve
//     over the same constraint matrix with a new RHS and/or objective
//     restarts from it (dual simplex when only the RHS moved).
//
// Problems are stated as: minimize c·x subject to linear constraints with
// relations ≤, =, ≥ and x ≥ 0. Callers needing free or upper-bounded
// variables encode them with the usual transformations (the recon and
// diffix packages do this).
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"singlingout/internal/obs"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ a_j x_j ≤ b
	GE            // Σ a_j x_j ≥ b
	EQ            // Σ a_j x_j = b
)

// Constraint is one dense row of the constraint system.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is a minimization LP in inequality form with x ≥ 0.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; minimized
	Constraints []Constraint

	// Progress, when set, is invoked at every phase transition and every
	// ProgressEvery pivots (default 4096) — the attacker-side iteration
	// hook for long reconstructions. It must be cheap; it runs inside the
	// pivot loop.
	Progress func(Progress)
	// ProgressEvery overrides the pivot interval between Progress calls.
	ProgressEvery int
}

// Progress describes the simplex state at a progress callback.
type Progress struct {
	// Phase is 1 during the feasibility search, 2 during optimization.
	Phase int
	// Pivots is the total pivot count so far (both phases).
	Pivots int
}

// Status describes the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a successful Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Pivots is the total number of simplex pivots performed (both
	// phases); Phase1Pivots is the feasibility-search share.
	Pivots       int
	Phase1Pivots int
	// Basis is the warm-start handle for Optimal solves of the Revised
	// engine (nil from the dense Solve): pass it to a later Revised call
	// over the same constraint matrix. Warm reports whether this solve
	// actually reused a caller-provided basis.
	Basis *Basis
	Warm  bool
}

// Metrics recorded into obs.Default() by both engines. lp.pivots counts
// every simplex pivot across both phases — the paper's "solver
// iterations" cost of an LP reconstruction attack. lp.refactorizations
// counts basis LU (re)factorizations in the revised engine;
// lp.warm_starts counts revised solves that reused a caller-provided
// basis (lp.warm_miss counts the ones that had to fall back cold), and
// lp.dual_pivots the dual-simplex share of pivots on the warm path.
var (
	mSolves     = obs.Default().Counter("lp.solves")
	mPivots     = obs.Default().Counter("lp.pivots")
	mPhase1     = obs.Default().Counter("lp.phase1_pivots")
	mInfeasible = obs.Default().Counter("lp.infeasible")
	mUnbounded  = obs.Default().Counter("lp.unbounded")
	mSolveNS    = obs.Default().Histogram("lp.solve_ns")
	mRefactor   = obs.Default().Counter("lp.refactorizations")
	mWarmStarts = obs.Default().Counter("lp.warm_starts")
	mWarmMiss   = obs.Default().Counter("lp.warm_miss")
	mDualPivots = obs.Default().Counter("lp.dual_pivots")
)

// ErrIterationLimit is returned when the simplex fails to terminate within
// its iteration budget (indicative of severe degeneracy or a bug).
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const (
	tol = 1e-9
	// blandAfter switches to Bland's rule after this many Dantzig pivots
	// to guarantee termination on degenerate problems. The ε-perturbation
	// makes cycling essentially impossible, so this is a deep backstop;
	// switching early would trade Dantzig's fast convergence for Bland's
	// glacial one.
	blandAfter = 200000
	// perturb is the per-row scale of the deterministic ε-perturbation
	// applied to the RHS to break the massive degeneracy of L1-fitting
	// LPs. Row r is relaxed by perturb·(r+1), so with up to ~1000 rows the
	// returned point may violate original constraints by at most ~1e-5 —
	// the feasibility slack documented on Solve.
	perturb = 1e-8
)

// Solve runs the two-phase dense tableau simplex. It returns a Solution
// whose Status is Optimal, Infeasible or Unbounded; X and Objective are
// meaningful only for Optimal. The context is checked every
// ProgressEvery pivots; cancellation aborts the solve with ctx.Err().
//
// Numerical contract: the solver internally relaxes each inequality by a
// tiny anti-degeneracy perturbation, so the returned point may violate the
// stated constraints by up to ~1e-5 (for problems with up to ~1000 rows);
// equalities are not perturbed.
func Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	mSolves.Add(1)
	sp := mSolveNS.Span()
	defer sp.End()
	t := newTableau(p)
	t.ctx = ctx
	t.progress = p.Progress
	t.progressEvery = p.ProgressEvery
	if t.progressEvery <= 0 {
		t.progressEvery = 4096
	}
	phase1Pivots := 0
	defer func() {
		mPivots.Add(int64(t.pivots))
		mPhase1.Add(int64(phase1Pivots))
	}()
	done := func(s *Solution) *Solution {
		s.Pivots = t.pivots
		s.Phase1Pivots = phase1Pivots
		return s
	}
	// Phase 1: minimize the sum of artificials to find a feasible basis.
	t.phase = 1
	if t.numArt > 0 {
		if t.progress != nil {
			t.progress(Progress{Phase: 1, Pivots: 0})
		}
		t.setPhase1Objective()
		if err := t.iterate(true); err != nil {
			return nil, err
		}
		if t.rhs(t.m) < -tol { // phase-1 objective value is -row value
			phase1Pivots = t.pivots
			mInfeasible.Add(1)
			return done(&Solution{Status: Infeasible}), nil
		}
		// Pivots spent driving zero-level artificials out of the basis are
		// part of the feasibility search: snapshot the phase-1 share after
		// them, so they are attributed to phase 1 (not silently lumped into
		// the phase-2 remainder).
		ok := t.driveOutArtificials()
		phase1Pivots = t.pivots
		if !ok {
			// Artificial stuck basic at nonzero level: infeasible.
			mInfeasible.Add(1)
			return done(&Solution{Status: Infeasible}), nil
		}
	}
	// Phase 2: original objective.
	t.phase = 2
	if t.progress != nil {
		t.progress(Progress{Phase: 2, Pivots: t.pivots})
	}
	t.setPhase2Objective(p.Objective)
	if err := t.iterate(false); err != nil {
		if errors.Is(err, errUnbounded) {
			mUnbounded.Add(1)
			return done(&Solution{Status: Unbounded}), nil
		}
		return nil, err
	}
	x := make([]float64, p.NumVars)
	for r := 0; r < t.m; r++ {
		if v := t.basis[r]; v < p.NumVars {
			x[v] = t.rhs(r)
		}
	}
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return done(&Solution{Status: Optimal, X: x, Objective: obj}), nil
}

func validate(p *Problem) error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: NumVars = %d, want positive", p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective length %d != NumVars %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("lp: constraint %d width %d != NumVars %d", i, len(c.Coeffs), p.NumVars)
		}
	}
	return nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is the dense simplex tableau. Rows 0..m-1 are constraints; row m
// is the objective row. Columns 0..total-1 are variables (structural,
// then slack/surplus, then artificial); column total is the RHS.
type tableau struct {
	m, nStruct, numSlack, numArt int
	total                        int // structural + slack + artificial columns
	a                            [][]float64
	basis                        []int
	artStart                     int // first artificial column
	pivots                       int
	phase                        int
	ctx                          context.Context
	progress                     func(Progress)
	progressEvery                int
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// Count slack/surplus and artificial columns.
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 { // row will be negated
			rel = flip(rel)
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		m:        m,
		nStruct:  p.NumVars,
		numSlack: numSlack,
		numArt:   numArt,
		total:    p.NumVars + numSlack + numArt,
		basis:    make([]int, m),
	}
	t.artStart = p.NumVars + numSlack
	t.a = make([][]float64, m+1)
	for r := range t.a {
		t.a[r] = make([]float64, t.total+1)
	}
	slackCol := p.NumVars
	artCol := t.artStart
	for r, c := range p.Constraints {
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, v := range c.Coeffs {
			t.a[r][j] = sign * v
		}
		// ε-perturbation: strictly increasing tiny offsets keep basic
		// solutions nondegenerate, preventing simplex stalling/cycling.
		// Only the relaxing direction is used (LE rows gain slack, GE rows
		// lose requirement, EQ rows are untouched) so the perturbed
		// feasible region contains the original one.
		delta := perturb * float64(r+1)
		t.a[r][t.total] = sign * c.RHS
		switch rel {
		case LE:
			t.a[r][t.total] += delta
		case GE:
			t.a[r][t.total] -= delta
			if t.a[r][t.total] < 0 {
				t.a[r][t.total] = 0
			}
		}
		switch rel {
		case LE:
			t.a[r][slackCol] = 1
			t.basis[r] = slackCol
			slackCol++
		case GE:
			t.a[r][slackCol] = -1
			slackCol++
			t.a[r][artCol] = 1
			t.basis[r] = artCol
			artCol++
		case EQ:
			t.a[r][artCol] = 1
			t.basis[r] = artCol
			artCol++
		}
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) rhs(r int) float64 { return t.a[r][t.total] }

// setPhase1Objective loads the objective "minimize sum of artificials",
// expressed in terms of the current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	obj := t.a[t.m]
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artStart; j < t.total; j++ {
		obj[j] = 1
	}
	// Zero the reduced costs of basic artificials by subtracting their rows.
	for r := 0; r < t.m; r++ {
		if t.basis[r] >= t.artStart {
			for j := 0; j <= t.total; j++ {
				obj[j] -= t.a[r][j]
			}
		}
	}
}

// setPhase2Objective loads the original objective, priced out against the
// current basis, and blocks artificial columns from re-entering by making
// them prohibitively expensive.
func (t *tableau) setPhase2Objective(c []float64) {
	obj := t.a[t.m]
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, c)
	for r := 0; r < t.m; r++ {
		b := t.basis[r]
		coef := obj[b]
		if coef == 0 {
			continue
		}
		for j := 0; j <= t.total; j++ {
			obj[j] -= coef * t.a[r][j]
		}
	}
	// Artificial columns must never re-enter.
	for j := t.artStart; j < t.total; j++ {
		if !t.isBasic(j) {
			obj[j] = math.Inf(1)
		}
	}
}

func (t *tableau) isBasic(col int) bool {
	for _, b := range t.basis {
		if b == col {
			return true
		}
	}
	return false
}

// iterate runs simplex pivots until optimality. In phase 1 (phase1 true)
// unboundedness cannot occur; in phase 2 it is reported via errUnbounded.
func (t *tableau) iterate(phase1 bool) error {
	maxIter := 20000 + 50*(t.m+t.total)
	for iter := 0; iter < maxIter; iter++ {
		// Cancellation check at the progress cadence: a degenerate
		// multi-second solve must honor the ctx threaded through every
		// harness, not just return eventually.
		if t.pivots%t.progressEvery == 0 {
			if err := t.ctx.Err(); err != nil {
				return err
			}
		}
		col := t.chooseEntering()
		if col < 0 {
			return nil // optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			if phase1 {
				return fmt.Errorf("lp: phase-1 unbounded (internal error)")
			}
			return errUnbounded
		}
		t.pivot(row, col)
	}
	return ErrIterationLimit
}

// chooseEntering picks the entering column: most negative reduced cost
// (Dantzig), or the lowest-index negative one after blandAfter pivots.
func (t *tableau) chooseEntering() int {
	obj := t.a[t.m]
	if t.pivots >= blandAfter {
		for j := 0; j < t.total; j++ {
			if obj[j] < -tol && !math.IsInf(obj[j], 1) {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -tol
	for j := 0; j < t.total; j++ {
		if v := obj[j]; v < bestVal && !math.IsInf(v, 1) {
			best, bestVal = j, v
		}
	}
	return best
}

// chooseLeaving runs the ratio test on the entering column; ties break by
// lowest basis index (lexicographic-ish, pairs with Bland). Tie-breaking
// never moves bestRatio upward: a row within tol of the current best used
// to overwrite it with its own (larger) ratio, so a chain of pairwise
// ties could creep the accepted ratio #ties×tol above the true minimum
// and push RHS entries negative past the roundoff clamp.
func (t *tableau) chooseLeaving(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for r := 0; r < t.m; r++ {
		a := t.a[r][col]
		if a <= tol {
			continue
		}
		ratio := t.rhs(r) / a
		if ratio < 0 {
			// Tiny negative RHS from roundoff: treat as a zero-ratio
			// (degenerate) pivot rather than an improving one.
			ratio = 0
		}
		switch {
		case ratio < bestRatio-tol:
			bestRatio, bestRow = ratio, r
		case ratio < bestRatio+tol:
			// A tie within tol: keep the minimum ratio seen so far and
			// break the tie on basis index only.
			if ratio < bestRatio {
				bestRatio = ratio
			}
			if bestRow < 0 || t.basis[r] < t.basis[bestRow] {
				bestRow = r
			}
		}
	}
	return bestRow
}

func (t *tableau) pivot(row, col int) {
	t.pivots++
	if t.progress != nil && t.pivots%t.progressEvery == 0 {
		t.progress(Progress{Phase: t.phase, Pivots: t.pivots})
	}
	piv := t.a[row][col]
	invPiv := 1 / piv
	rowData := t.a[row]
	for j := 0; j <= t.total; j++ {
		rowData[j] *= invPiv
	}
	for r := 0; r <= t.m; r++ {
		if r == row {
			continue
		}
		factor := t.a[r][col]
		if factor == 0 || math.IsInf(factor, 0) {
			continue
		}
		dst := t.a[r]
		for j := 0; j <= t.total; j++ {
			dst[j] -= factor * rowData[j]
		}
		dst[col] = 0 // enforce exact zero against roundoff
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial variable still basic at level
// zero out of the basis. It returns false if an artificial is basic at a
// nonzero level (the problem is infeasible).
func (t *tableau) driveOutArtificials() bool {
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		if math.Abs(t.rhs(r)) > 1e-7 {
			return false
		}
		// Find any non-artificial column with a nonzero entry to pivot in.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[r][j]) > 1e-7 && !t.isBasic(j) {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		// If no pivot exists the row is redundant (all zeros); leaving the
		// zero-level artificial basic is harmless because phase 2 bars
		// artificials from carrying value.
		_ = pivoted
	}
	return true
}
