package lp

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestChooseLeavingTieChainDense is the regression test for the ratio-test
// tie-break creep: four rows with ratios {0, 0.9·tol, 1.8·tol, 2.7·tol}
// and descending basis indices {10, 5, 3, 1}. Each adjacent pair ties
// within tol, so the buggy tie-break — which overwrote bestRatio with the
// larger tied ratio — would creep from row 0 all the way to row 3 (ratio
// 2.7·tol above the true minimum). Keeping the minimum ratio, only row 1
// genuinely ties with row 0, and its smaller basis index wins.
func TestChooseLeavingTieChainDense(t *testing.T) {
	ratios := []float64{0, 0.9 * tol, 1.8 * tol, 2.7 * tol}
	basis := []int{10, 5, 3, 1}
	tab := &tableau{m: 4, total: 1, basis: basis}
	tab.a = make([][]float64, 5)
	for r := 0; r < 4; r++ {
		tab.a[r] = []float64{1, ratios[r]} // entering coefficient 1, RHS = ratio
	}
	tab.a[4] = []float64{0, 0} // objective row (unused here)
	if got := tab.chooseLeaving(0); got != 1 {
		t.Errorf("chooseLeaving = row %d (basis %d), want row 1 (basis 5): accepted ratio crept above the true minimum",
			got, basis[got])
	}
}

// TestChooseLeavingTieChainRevised: the same tie chain through the
// revised engine's ratio test.
func TestChooseLeavingTieChainRevised(t *testing.T) {
	e := &revised{
		m:     4,
		d:     []float64{1, 1, 1, 1},
		xB:    []float64{0, 0.9 * tol, 1.8 * tol, 2.7 * tol},
		basis: []int{10, 5, 3, 1},
	}
	if got, _ := e.chooseLeavingPrimal(); got != 1 {
		t.Errorf("chooseLeavingPrimal = pos %d, want pos 1 (basis 5)", got)
	}
}

// driveOutProblem ends phase 1 with a zero-level artificial still basic
// (the EQ row -x = 0 prices x at +1 under the phase-1 objective, so
// regular phase-1 pivoting never touches it) whose row has a pivotable
// entry: driving it out takes exactly one pivot after phase-1 optimality.
func driveOutProblem() *Problem {
	return &Problem{
		NumVars:   2,
		Objective: []float64{0, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1, 0}, Rel: EQ, RHS: 0},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 2},
		},
	}
}

// TestDriveOutPivotAccounting is the regression test for the pivot
// accounting bug: pivots spent driving artificials out of the basis after
// phase-1 optimality must be attributed to phase 1 and reported through
// the Progress hook, not silently lumped into neither phase.
func TestDriveOutPivotAccounting(t *testing.T) {
	for _, eng := range []struct {
		name  string
		solve func(p *Problem) (*Solution, error)
	}{
		{"dense", func(p *Problem) (*Solution, error) { return Solve(ctx, p) }},
		{"revised", func(p *Problem) (*Solution, error) { return Revised(ctx, p, nil) }},
	} {
		t.Run(eng.name, func(t *testing.T) {
			p := driveOutProblem()
			p.ProgressEvery = 1
			var phase1Events int
			p.Progress = func(pr Progress) {
				if pr.Phase == 1 && pr.Pivots > 0 {
					phase1Events++
				}
			}
			s, err := eng.solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if s.Status != Optimal {
				t.Fatalf("status = %v", s.Status)
			}
			if math.Abs(s.Objective+2) > 1e-6 {
				t.Errorf("objective = %v, want -2", s.Objective)
			}
			if s.Phase1Pivots < 1 {
				t.Errorf("Phase1Pivots = %d, want >= 1: drive-out pivot not attributed to phase 1", s.Phase1Pivots)
			}
			if phase1Events < s.Phase1Pivots {
				t.Errorf("saw %d phase-1 progress events for %d phase-1 pivots: drive-out pivots not reported",
					phase1Events, s.Phase1Pivots)
			}
		})
	}
}

// TestSolveCancellation: both engines must honor context cancellation at
// the progress cadence instead of running a degenerate solve to the end.
func TestSolveCancellation(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
		ProgressEvery: 1,
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(cancelled, p); !errors.Is(err, context.Canceled) {
		t.Errorf("dense: err = %v, want context.Canceled", err)
	}
	if _, err := Revised(cancelled, p, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("revised: err = %v, want context.Canceled", err)
	}
	// Cancellation mid-solve: cancel from the progress hook.
	mid, cancelMid := context.WithCancel(context.Background())
	p.Progress = func(Progress) { cancelMid() }
	if _, err := Solve(mid, p); !errors.Is(err, context.Canceled) {
		t.Errorf("dense mid-solve: err = %v, want context.Canceled", err)
	}
}
