package lp

import (
	"errors"
	"math"
	"testing"

	"singlingout/internal/par"
)

// revisedOK solves p with the revised engine and checks feasibility.
func revisedOK(t *testing.T, p *Problem, warm *Basis) *Solution {
	t.Helper()
	s, err := Revised(ctx, p, warm)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	checkFeasible(t, p, s.X)
	if s.Basis == nil {
		t.Fatal("Optimal revised solve returned nil Basis")
	}
	return s
}

// TestRevisedMatchesDenseFixtures reruns the dense engine's fixture LPs
// through the revised engine and cross-checks the objectives.
func TestRevisedMatchesDenseFixtures(t *testing.T) {
	fixtures := []*Problem{
		{ // textbook production LP
			NumVars:   2,
			Objective: []float64{-3, -5},
			Constraints: []Constraint{
				{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
				{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
				{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
			},
		},
		{ // equality + GE rows force a real phase 1
			NumVars:   2,
			Objective: []float64{1, 1},
			Constraints: []Constraint{
				{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
				{Coeffs: []float64{1, 0}, Rel: GE, RHS: 3},
				{Coeffs: []float64{0, 1}, Rel: GE, RHS: 2},
			},
		},
		{ // negative RHS keeps its orientation in the sparse form
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []Constraint{
				{Coeffs: []float64{-1}, Rel: LE, RHS: -5},
			},
		},
		{ // degenerate corner
			NumVars:   2,
			Objective: []float64{-1, -1},
			Constraints: []Constraint{
				{Coeffs: []float64{1, 0}, Rel: LE, RHS: 0},
				{Coeffs: []float64{2, 0}, Rel: LE, RHS: 0},
				{Coeffs: []float64{1, 1}, Rel: LE, RHS: 3},
			},
		},
	}
	for i, p := range fixtures {
		want := solveOK(t, p)
		got := revisedOK(t, p, nil)
		if math.Abs(want.Objective-got.Objective) > 1e-6 {
			t.Errorf("fixture %d: revised objective %v, dense %v", i, got.Objective, want.Objective)
		}
	}
}

// TestRevisedRedundantRows: duplicated equality rows leave a zero-level
// artificial stuck basic; both engines must still agree on the optimum.
func TestRevisedRedundantRows(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3},
		},
	}
	want := solveOK(t, p)
	got := revisedOK(t, p, nil)
	if math.Abs(want.Objective-got.Objective) > 1e-6 {
		t.Errorf("objective = %v, dense %v", got.Objective, want.Objective)
	}
}

func TestRevisedInfeasibleAndUnbounded(t *testing.T) {
	infeas := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	s, err := Revised(ctx, infeas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
	if s.Basis != nil {
		t.Error("non-optimal solve should not return a Basis")
	}
	unb := &Problem{
		NumVars:   2,
		Objective: []float64{-1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	s, err = Revised(ctx, unb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

// vertexEnumerate brute-forces the optimum of a small LP by enumerating
// every basic point: each choice of NumVars rows from the constraint set
// plus the x_j >= 0 bounds, solved as equalities and checked for
// feasibility. It is the third, solver-free oracle of the equivalence
// property test.
func vertexEnumerate(p *Problem) (best float64, found bool) {
	n := p.NumVars
	type row struct {
		a []float64
		b float64
	}
	var rows []row
	for _, c := range p.Constraints {
		rows = append(rows, row{c.Coeffs, c.RHS})
	}
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		rows = append(rows, row{e, 0})
	}
	feasible := func(x []float64) bool {
		const eps = 1e-6
		for _, v := range x {
			if v < -eps {
				return false
			}
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, a := range c.Coeffs {
				lhs += a * x[j]
			}
			switch c.Rel {
			case LE:
				if lhs > c.RHS+eps {
					return false
				}
			case GE:
				if lhs < c.RHS-eps {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > eps {
					return false
				}
			}
		}
		return true
	}
	// Gaussian elimination on the chosen square system.
	solveSquare := func(idx []int) ([]float64, bool) {
		a := make([][]float64, n)
		for i, ri := range idx {
			a[i] = append(append([]float64(nil), rows[ri].a...), rows[ri].b)
		}
		for col := 0; col < n; col++ {
			piv, pv := -1, 1e-9
			for r := col; r < n; r++ {
				if v := math.Abs(a[r][col]); v > pv {
					piv, pv = r, v
				}
			}
			if piv < 0 {
				return nil, false
			}
			a[col], a[piv] = a[piv], a[col]
			for r := 0; r < n; r++ {
				if r == col {
					continue
				}
				f := a[r][col] / a[col][col]
				if f == 0 {
					continue
				}
				for j := col; j <= n; j++ {
					a[r][j] -= f * a[col][j]
				}
			}
		}
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = a[i][n] / a[i][i]
		}
		return x, true
	}
	best = math.Inf(1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(idx)
			if !ok || !feasible(x) {
				return
			}
			v := 0.0
			for j, c := range p.Objective {
				v += c * x[j]
			}
			if v < best {
				best = v
			}
			found = true
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// TestSolverEquivalenceProperty generates random small LPs — mixed LE/GE/EQ
// rows, box-bounded so unboundedness is impossible — and requires the
// dense simplex, the revised simplex and brute-force vertex enumeration
// to agree on status and optimal objective.
func TestSolverEquivalenceProperty(t *testing.T) {
	const seed = 11
	for trial := 0; trial < 120; trial++ {
		rng := par.RNG(seed, trial)
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		// A random anchor point: half the trials build rows feasible at it,
		// the other half use free RHS values (often infeasible).
		anchored := trial%2 == 0
		xStar := make([]float64, n)
		for j := range xStar {
			xStar[j] = rng.Float64() * 2
		}
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			a := make([]float64, n)
			s := 0.0
			for j := range a {
				a[j] = rng.NormFloat64()
				s += a[j] * xStar[j]
			}
			rel := Rel(rng.Intn(3))
			rhs := rng.NormFloat64() * 2
			if anchored {
				switch rel {
				case LE:
					rhs = s + rng.Float64()
				case GE:
					rhs = s - rng.Float64()
				case EQ:
					rhs = s
				}
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: a, Rel: rel, RHS: rhs})
		}
		// Box rows rule out unboundedness, so status is Optimal/Infeasible.
		for j := 0; j < n; j++ {
			e := make([]float64, n)
			e[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: e, Rel: LE, RHS: 3})
		}
		ds, err := Solve(ctx, p)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		rs, err := Revised(ctx, p, nil)
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		if ds.Status != rs.Status {
			t.Fatalf("trial %d: dense %v, revised %v", trial, ds.Status, rs.Status)
		}
		enumBest, enumFound := vertexEnumerate(p)
		switch ds.Status {
		case Optimal:
			if math.Abs(ds.Objective-rs.Objective) > 1e-5 {
				t.Fatalf("trial %d: dense obj %v, revised obj %v", trial, ds.Objective, rs.Objective)
			}
			if !enumFound {
				t.Fatalf("trial %d: solvers optimal but vertex enumeration found no feasible vertex", trial)
			}
			if math.Abs(ds.Objective-enumBest) > 1e-4 {
				t.Fatalf("trial %d: solver obj %v, vertex-enumeration obj %v", trial, ds.Objective, enumBest)
			}
			checkFeasible(t, p, ds.X)
			checkFeasible(t, p, rs.X)
		case Infeasible:
			if enumFound {
				t.Fatalf("trial %d: solvers infeasible but vertex enumeration found a feasible vertex (obj %v)", trial, enumBest)
			}
		case Unbounded:
			t.Fatalf("trial %d: box-bounded LP reported unbounded", trial)
		}
	}
}

// l1FitProblem builds the reconstruction-style L1 fitting LP for a fixed
// query matrix and the given answer vector: the constraint matrix depends
// only on the queries, the answers appear only in the RHS — exactly the
// warm-start scenario of the E02 harness.
func l1FitProblem(qRows [][]float64, answers []float64) *Problem {
	m := len(qRows)
	n := len(qRows[0])
	nv := n + m
	obj := make([]float64, nv)
	for j := n; j < nv; j++ {
		obj[j] = 1
	}
	p := &Problem{NumVars: nv, Objective: obj}
	for k, q := range qRows {
		up := make([]float64, nv)
		lo := make([]float64, nv)
		for i, v := range q {
			up[i] = v
			lo[i] = -v
		}
		up[n+k] = -1
		lo[n+k] = -1
		p.Constraints = append(p.Constraints,
			Constraint{Coeffs: up, Rel: LE, RHS: answers[k]},
			Constraint{Coeffs: lo, Rel: LE, RHS: -answers[k]})
	}
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		row[i] = 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 1})
	}
	return p
}

// TestWarmStartAfterRHSChange is the warm-start contract test: re-solving
// the same constraint matrix with a perturbed RHS from the previous basis
// must give the dense-oracle optimum with no phase 1 and (far) fewer
// pivots than the cold solve.
func TestWarmStartAfterRHSChange(t *testing.T) {
	rng := par.RNG(3, 0)
	n, m := 16, 64
	qRows := make([][]float64, m)
	answers := make([]float64, m)
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = float64(rng.Intn(2))
	}
	for k := range qRows {
		qRows[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				qRows[k][i] = 1
				answers[k] += truth[i]
			}
		}
	}
	cold, err := Revised(ctx, l1FitProblem(qRows, answers), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal || cold.Basis == nil {
		t.Fatalf("cold solve: status %v", cold.Status)
	}
	if cold.Warm {
		t.Error("cold solve reported Warm")
	}
	basis := cold.Basis
	for round := 0; round < 3; round++ {
		noisy := make([]float64, m)
		for k := range noisy {
			noisy[k] = answers[k] + rng.NormFloat64()*float64(round+1)
		}
		p := l1FitProblem(qRows, noisy)
		warm, err := Revised(ctx, p, basis)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("round %d: status %v", round, warm.Status)
		}
		if !warm.Warm {
			t.Errorf("round %d: warm start not used", round)
		}
		if warm.Phase1Pivots != 0 {
			t.Errorf("round %d: warm solve ran %d phase-1 pivots", round, warm.Phase1Pivots)
		}
		checkFeasible(t, p, warm.X)
		oracle, err := Solve(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(warm.Objective-oracle.Objective) > 1e-4 {
			t.Errorf("round %d: warm objective %v, dense oracle %v", round, warm.Objective, oracle.Objective)
		}
		coldAgain, err := Revised(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Pivots >= coldAgain.Pivots {
			t.Errorf("round %d: warm solve took %d pivots, cold %d — warm start saved nothing",
				round, warm.Pivots, coldAgain.Pivots)
		}
		basis = warm.Basis
	}
}

// TestWarmStartNewObjective: a warm basis stays primal feasible when only
// the objective changes, so the warm solve restarts directly in phase 2.
func TestWarmStartNewObjective(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	first := revisedOK(t, p, nil)
	p2 := &Problem{NumVars: 2, Objective: []float64{-5, -1}, Constraints: p.Constraints}
	warm, err := Revised(ctx, p2, first.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || !warm.Warm {
		t.Fatalf("status %v warm %v, want optimal warm solve", warm.Status, warm.Warm)
	}
	oracle := solveOK(t, p2)
	if math.Abs(warm.Objective-oracle.Objective) > 1e-6 {
		t.Errorf("objective %v, dense oracle %v", warm.Objective, oracle.Objective)
	}
}

// TestWarmStartMismatch: a basis from a different constraint matrix must
// be rejected, not silently misused.
func TestWarmStartMismatch(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 4},
		},
	}
	s := revisedOK(t, p, nil)
	other := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 4}, // different coefficient
		},
	}
	if _, err := Revised(ctx, other, s.Basis); !errors.Is(err, ErrBasisMismatch) {
		t.Errorf("err = %v, want ErrBasisMismatch", err)
	}
	// Same matrix, new RHS: accepted.
	same := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 9},
		},
	}
	if _, err := Revised(ctx, same, s.Basis); err != nil {
		t.Errorf("same-matrix warm solve: %v", err)
	}
}

// TestWarmStartInfeasibleRHS: an RHS change can make the problem
// infeasible; the dual simplex on the warm path must detect that.
func TestWarmStartInfeasibleRHS(t *testing.T) {
	mk := func(rhs float64) *Problem {
		return &Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []Constraint{
				{Coeffs: []float64{1}, Rel: LE, RHS: 1},
				{Coeffs: []float64{-1}, Rel: LE, RHS: rhs},
			},
		}
	}
	s := revisedOK(t, mk(0), nil)              // x >= 0: feasible
	warm, err := Revised(ctx, mk(-2), s.Basis) // x >= 2 but x <= 1: infeasible
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", warm.Status)
	}
}
