package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

var ctx = context.Background()

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	checkFeasible(t, p, s.X)
	return s
}

// checkFeasible verifies x ≥ 0 and all constraints within the documented
// feasibility slack of Solve.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	const eps = 2e-5
	for j, v := range x {
		if v < -eps {
			t.Fatalf("x[%d] = %v < 0", j, v)
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+eps {
				t.Fatalf("constraint %d violated: %v > %v", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-eps {
				t.Fatalf("constraint %d violated: %v < %v", i, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > eps {
				t.Fatalf("constraint %d violated: %v != %v", i, lhs, c.RHS)
			}
		}
	}
}

func TestTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), value 36.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-2) > 1e-7 || math.Abs(s.X[1]-6) > 1e-7 {
		t.Errorf("x = %v, want (2,6)", s.X)
	}
	if math.Abs(s.Objective+36) > 1e-7 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + y s.t. x + y = 10, x >= 3, y >= 2 → objective 10.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 3},
			{Coeffs: []float64{0, 1}, Rel: GE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-10) > 1e-7 {
		t.Errorf("objective = %v, want 10", s.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5).
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -5},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-5) > 1e-7 {
		t.Errorf("x = %v, want 5", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	s, err := Solve(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 0: unbounded below.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	s, err := Solve(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate corner: redundant constraints meeting at origin.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 0},
			{Coeffs: []float64{2, 0}, Rel: LE, RHS: 0},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective+3) > 1e-7 {
		t.Errorf("objective = %v, want -3", s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows leave a zero-level artificial basic; the
	// solver must still find the optimum.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	// Optimum pushes x up to its cap: (3,1) with value 5.
	if math.Abs(s.Objective-5) > 1e-7 {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(ctx, &Problem{NumVars: 0}); err == nil {
		t.Error("zero vars should fail")
	}
	if _, err := Solve(ctx, &Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Error("objective width mismatch should fail")
	}
	p := &Problem{NumVars: 2, Objective: []float64{1, 1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: 1}}}
	if _, err := Solve(ctx, p); err == nil {
		t.Error("constraint width mismatch should fail")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should render")
	}
}

// TestL1Regression exercises the exact formulation the reconstruction
// attack uses: fit x to noisy subset sums by minimizing total slack.
func TestL1Regression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, m := 12, 60
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = float64(rng.Intn(2))
	}
	// Variables: x_0..x_{n-1}, e_0..e_{m-1}. Minimize Σe.
	nv := n + m
	obj := make([]float64, nv)
	for j := n; j < nv; j++ {
		obj[j] = 1
	}
	var cons []Constraint
	for k := 0; k < m; k++ {
		row := make([]float64, nv)
		sum := 0.0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				row[i] = 1
				sum += truth[i]
			}
		}
		a := sum + (rng.Float64()-0.5)*0.4 // small noise
		// a - Σx <= e  and  Σx - a <= e
		up := make([]float64, nv)
		copy(up, row)
		up[n+k] = -1
		cons = append(cons, Constraint{Coeffs: up, Rel: LE, RHS: a})
		lo := make([]float64, nv)
		for i := 0; i < n; i++ {
			lo[i] = -row[i]
		}
		lo[n+k] = -1
		cons = append(cons, Constraint{Coeffs: lo, Rel: LE, RHS: -a})
	}
	// x_i <= 1.
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		row[i] = 1
		cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: 1})
	}
	s := solveOK(t, &Problem{NumVars: nv, Objective: obj, Constraints: cons})
	// Rounding the LP solution should recover most of the truth.
	wrong := 0
	for i := 0; i < n; i++ {
		r := 0.0
		if s.X[i] >= 0.5 {
			r = 1
		}
		if r != truth[i] {
			wrong++
		}
	}
	if wrong > 1 {
		t.Errorf("L1 regression recovered with %d/%d errors", wrong, n)
	}
}

// TestRandomLPsAgainstFeasiblePoints: the solver's optimum must never be
// worse than any sampled feasible point (a cheap but strong correctness
// property on random instances).
func TestRandomLPsAgainstFeasiblePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = math.Abs(rng.NormFloat64()) // nonneg coeffs keep it bounded
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 1 + rng.Float64()*5})
		}
		// Make the problem bounded even for negative objective entries.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 10})
		}
		s, err := Solve(ctx, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		checkFeasible(t, p, s.X)
		// Sample random feasible points by scaling random directions.
		for probe := 0; probe < 200; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			feasible := true
			for _, c := range p.Constraints {
				lhs := 0.0
				for j, a := range c.Coeffs {
					lhs += a * x[j]
				}
				if lhs > c.RHS {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			val := 0.0
			for j, cj := range p.Objective {
				val += cj * x[j]
			}
			if val < s.Objective-1e-6 {
				t.Fatalf("trial %d: feasible point beats 'optimum': %v < %v", trial, val, s.Objective)
			}
		}
	}
}

func TestZeroConstraintLP(t *testing.T) {
	// min x with no constraints: optimum at x = 0.
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	s := solveOK(t, p)
	if s.X[0] != 0 {
		t.Errorf("x = %v, want 0", s.X[0])
	}
}

// TestSolutionPivotsAndProgress checks the solver reports its pivot counts
// and drives the Progress hook through both phases.
func TestSolutionPivotsAndProgress(t *testing.T) {
	// A problem with GE rows forces a genuine phase 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 1},
			{Coeffs: []float64{0, 1}, Rel: GE, RHS: 2},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 10},
		},
		ProgressEvery: 1,
	}
	var events []Progress
	p.Progress = func(pr Progress) { events = append(events, pr) }
	s := solveOK(t, p)
	if s.Pivots <= 0 {
		t.Errorf("Pivots = %d, want positive", s.Pivots)
	}
	if s.Phase1Pivots <= 0 || s.Phase1Pivots > s.Pivots {
		t.Errorf("Phase1Pivots = %d out of range (total %d)", s.Phase1Pivots, s.Pivots)
	}
	if len(events) == 0 {
		t.Fatal("Progress hook never invoked")
	}
	sawPhase := map[int]bool{}
	lastPivots := -1
	for _, e := range events {
		sawPhase[e.Phase] = true
		if e.Pivots < lastPivots {
			t.Errorf("pivot count went backwards: %v", events)
			break
		}
		lastPivots = e.Pivots
	}
	if !sawPhase[1] || !sawPhase[2] {
		t.Errorf("expected progress from both phases, saw %v", sawPhase)
	}
}
