package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrBasisMismatch is returned by Revised when the warm-start Basis was
// produced on a different constraint matrix (the warm-start contract
// covers RHS and objective changes only).
var ErrBasisMismatch = errors.New("lp: warm-start basis does not match the constraint structure")

// ErrSingularBasis is returned when the engine cannot keep a numerically
// nonsingular basis factorization (indicative of a pathological instance
// or a bug).
var ErrSingularBasis = errors.New("lp: numerically singular basis")

// Basis is an opaque warm-start handle: the basic column set at the end
// of a Revised solve, tied by signature to the constraint matrix it was
// produced on. Pass it to a later Revised call over the same constraint
// matrix — same coefficients and relations; the RHS and objective may
// differ — to start from that basis instead of from scratch.
type Basis struct {
	sig  uint64
	m    int
	cols []int
}

const (
	// feasTol is the feasibility tolerance on basic variable values and
	// reduced costs in the revised engine.
	feasTol = 1e-7
	// refactorEvery bounds the eta file: after this many product-form
	// updates the basis is refactorized from scratch, restoring both
	// speed (every FTRAN/BTRAN replays the file, so its length multiplies
	// the per-pivot cost) and accuracy. The sparse refactorization is
	// cheap on the reconstruction LPs, so the file is kept short.
	refactorEvery = 24
	// dualBlandRun is the consecutive-degenerate-pivot threshold at which
	// the dual simplex switches its leaving-row choice from Dantzig (most
	// negative) to Bland's least-index rule. The primal side is protected
	// by the ε-perturbation and blandAfter, but the dual ratio test runs
	// on the unperturbed reduced costs, and on the massively degenerate
	// L1-fitting LPs a warm start that tightens many rows at once can set
	// Dantzig cycling; least-index selection (with the ratio test's
	// existing lowest-column tie-break) is provably finite.
	dualBlandRun = 256
)

// revised is the sparse revised-simplex engine state for one solve.
type revised struct {
	p  *Problem
	sf *standard
	m  int

	artSign []float64 // per-row artificial sign for this solve
	artCols []spCol   // artificial singleton columns (factor access)
	cost    []float64 // current phase objective, indexed by column id
	basis   []int     // basis position -> column id
	posOf   []int     // column id -> basis position, -1 if nonbasic
	xB      []float64 // basic variable values by position
	lu      *luFactor

	pivots       int
	phase1Pivots int
	dualPivots   int
	phase        int
	warm         bool

	ctx           context.Context
	progress      func(Progress)
	progressEvery int
	pricePos      int // partial-pricing cursor

	// Scratch (reused across iterations).
	rowScratch []float64 // row-indexed FTRAN/BTRAN input
	posScratch []float64 // position-indexed BTRAN input
	d          []float64 // FTRAN output (position-indexed)
	y          []float64 // BTRAN output (row-indexed)
	dualD      []float64 // dual simplex's cached nonbasic reduced costs
}

// Revised solves p with the sparse revised simplex: column-wise sparse
// constraint storage, an LU-factorized basis with product-form updates
// between periodic refactorizations, candidate-list partial pricing, and
// the same two-phase + Bland-fallback termination contract (and the same
// ε-perturbation numerical contract) as the dense Solve.
//
// warm may be nil (cold start) or the Basis of a previous Revised solve
// over the same constraint matrix. A usable warm basis skips phase 1
// entirely: if it is still primal feasible under the new RHS the solve
// resumes in phase 2, and if only dual feasible (the common case after an
// RHS change at an optimum) the engine runs the dual simplex until primal
// feasibility is restored. A warm basis that cannot be reused (singular
// under the new data, or containing artificials) falls back to a cold
// start; a basis from a *different* matrix is an ErrBasisMismatch error.
//
// The returned Solution carries the final Basis for Optimal solves. The
// context is checked every ProgressEvery pivots.
func Revised(ctx context.Context, p *Problem, warm *Basis) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	mSolves.Add(1)
	sp := mSolveNS.Span()
	defer sp.End()
	sf := buildStandard(p)
	if warm != nil && (warm.sig != sf.sig || warm.m != sf.m) {
		return nil, fmt.Errorf("%w: basis for %d rows/sig %x, matrix has %d rows/sig %x",
			ErrBasisMismatch, warm.m, warm.sig, sf.m, sf.sig)
	}
	e := newRevised(ctx, p, sf)
	sol, err := e.run(warm)
	mPivots.Add(int64(e.pivots))
	mPhase1.Add(int64(e.phase1Pivots))
	mDualPivots.Add(int64(e.dualPivots))
	if err != nil {
		return nil, err
	}
	sol.Pivots = e.pivots
	sol.Phase1Pivots = e.phase1Pivots
	sol.Warm = e.warm
	if sol.Status == Optimal {
		sol.Basis = &Basis{sig: sf.sig, m: sf.m, cols: append([]int(nil), e.basis...)}
	}
	return sol, nil
}

func newRevised(ctx context.Context, p *Problem, sf *standard) *revised {
	m := sf.m
	e := &revised{
		p:             p,
		sf:            sf,
		m:             m,
		artSign:       make([]float64, m),
		artCols:       make([]spCol, m),
		cost:          make([]float64, sf.nCols+m),
		basis:         make([]int, m),
		posOf:         make([]int, sf.nCols+m),
		xB:            make([]float64, m),
		lu:            newLU(m),
		ctx:           ctx,
		progress:      p.Progress,
		progressEvery: p.ProgressEvery,
		rowScratch:    make([]float64, m),
		posScratch:    make([]float64, m),
		d:             make([]float64, m),
		y:             make([]float64, m),
	}
	if e.progressEvery <= 0 {
		e.progressEvery = 4096
	}
	for r := 0; r < m; r++ {
		s := 1.0
		if sf.b[r] < 0 {
			s = -1
		}
		e.artSign[r] = s
		e.artCols[r] = spCol{rows: []int32{int32(r)}, vals: []float64{s}}
	}
	for j := range e.posOf {
		e.posOf[j] = -1
	}
	return e
}

func (e *revised) run(warm *Basis) (*Solution, error) {
	if warm != nil {
		sol, ok, err := e.warmPath(warm)
		if err != nil {
			return nil, err
		}
		if ok {
			return sol, nil
		}
		mWarmMiss.Add(1)
		e.resetBasis()
	}
	return e.coldPath()
}

// resetBasis clears basis bookkeeping after a failed warm attempt.
func (e *revised) resetBasis() {
	for j := range e.posOf {
		e.posOf[j] = -1
	}
	e.pricePos = 0
	e.warm = false
}

// colFor returns the sparse entries of column id j (artificials live past
// sf.nCols).
func (e *revised) colFor(j int) ([]int32, []float64) {
	if j < e.sf.nCols {
		return e.sf.cols[j].rows, e.sf.cols[j].vals
	}
	c := &e.artCols[j-e.sf.nCols]
	return c.rows, c.vals
}

// allowed reports whether column j may enter the basis: structural and
// row-variable columns only — artificial columns never (re-)enter.
func (e *revised) allowed(j int) bool {
	return j < e.sf.nCols && e.sf.active[j]
}

func (e *revised) redCost(j int, y []float64) float64 {
	c := e.cost[j]
	rows, vals := e.colFor(j)
	for i, r := range rows {
		c -= y[r] * vals[i]
	}
	return c
}

// refactor rebuilds the LU factors from the current basis and recomputes
// the basic values from the RHS.
func (e *revised) refactor() error {
	mRefactor.Add(1)
	if !e.lu.factor(func(pos int) ([]int32, []float64) { return e.colFor(e.basis[pos]) }) {
		return ErrSingularBasis
	}
	copy(e.rowScratch, e.sf.b)
	e.lu.ftran(e.rowScratch, e.xB)
	return nil
}

func (e *revised) setPhase1Cost() {
	for j := range e.cost {
		e.cost[j] = 0
	}
	for r := 0; r < e.m; r++ {
		e.cost[e.sf.nCols+r] = 1
	}
}

func (e *revised) setPhase2Cost() {
	for j := range e.cost {
		e.cost[j] = 0
	}
	copy(e.cost, e.p.Objective)
}

// btranCost computes y = Bᵀ⁻¹ c_B into e.y.
func (e *revised) btranCost() {
	for i := 0; i < e.m; i++ {
		e.posScratch[i] = e.cost[e.basis[i]]
	}
	e.lu.btran(e.posScratch, e.y)
}

// ftranCol computes d = B⁻¹ A_q into e.d.
func (e *revised) ftranCol(q int) {
	for i := range e.rowScratch {
		e.rowScratch[i] = 0
	}
	rows, vals := e.colFor(q)
	for i, r := range rows {
		e.rowScratch[r] = vals[i]
	}
	e.lu.ftran(e.rowScratch, e.d)
}

// checkCtx enforces the cancellation contract at the progress cadence.
func (e *revised) checkCtx() error {
	if e.pivots%e.progressEvery == 0 {
		return e.ctx.Err()
	}
	return nil
}

// doPivot applies the basis exchange: entering column q replaces the
// column at basis position r; the entering variable takes value theta.
// e.d must hold B⁻¹A_q.
func (e *revised) doPivot(q, r int, theta float64) error {
	for i := 0; i < e.m; i++ {
		if d := e.d[i]; d != 0 {
			e.xB[i] -= theta * d
		}
	}
	e.xB[r] = theta
	e.posOf[e.basis[r]] = -1
	e.basis[r] = q
	e.posOf[q] = r
	e.pivots++
	if e.progress != nil && e.pivots%e.progressEvery == 0 {
		e.progress(Progress{Phase: e.phase, Pivots: e.pivots})
	}
	if len(e.lu.etas) >= refactorEvery || !e.lu.appendEta(r, e.d) {
		return e.refactor()
	}
	return nil
}

// chooseEnteringPrimal prices nonbasic columns: candidate-list partial
// pricing (Dantzig within a rotating section) before blandAfter pivots,
// Bland's lowest-index rule after.
func (e *revised) chooseEnteringPrimal() int {
	total := e.sf.nCols
	if e.pivots >= blandAfter {
		for j := 0; j < total; j++ {
			if e.allowed(j) && e.posOf[j] < 0 && e.redCost(j, e.y) < -tol {
				return j
			}
		}
		return -1
	}
	section := total / 8
	if section < 64 {
		section = 64
	}
	for scanned := 0; scanned < total; {
		best, bestVal := -1, -tol
		for k := 0; k < section && scanned < total; k++ {
			j := e.pricePos
			e.pricePos++
			if e.pricePos >= total {
				e.pricePos = 0
			}
			scanned++
			if !e.allowed(j) || e.posOf[j] >= 0 {
				continue
			}
			if v := e.redCost(j, e.y); v < bestVal {
				best, bestVal = j, v
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// ratioPivTol is the minimum pivot element magnitude accepted by the
// ratio tests; it sits above the eta-update stability threshold so an
// accepted pivot can always be applied.
const ratioPivTol = 1e-7

// chooseLeavingPrimal runs the primal ratio test on e.d with the same
// minimum-keeping tie-break as the dense engine (ties on ratio within tol
// break by lowest basis column id; the accepted ratio never creeps above
// the true minimum).
func (e *revised) chooseLeavingPrimal() (int, float64) {
	bestPos := -1
	bestRatio := math.Inf(1)
	for i := 0; i < e.m; i++ {
		di := e.d[i]
		if di <= ratioPivTol {
			continue
		}
		x := e.xB[i]
		if x < 0 {
			x = 0 // roundoff: degenerate, not improving
		}
		ratio := x / di
		switch {
		case ratio < bestRatio-tol:
			bestRatio, bestPos = ratio, i
		case ratio < bestRatio+tol:
			if ratio < bestRatio {
				bestRatio = ratio
			}
			if bestPos < 0 || e.basis[i] < e.basis[bestPos] {
				bestPos = i
			}
		}
	}
	return bestPos, bestRatio
}

// primal runs primal simplex iterations until optimality; phase1 solves
// cannot be unbounded.
func (e *revised) primal(phase1 bool) error {
	maxIter := 20000 + 50*(e.m+e.sf.nCols)
	for iter := 0; iter < maxIter; iter++ {
		if err := e.checkCtx(); err != nil {
			return err
		}
		e.btranCost()
		q := e.chooseEnteringPrimal()
		if q < 0 {
			return nil // optimal
		}
		e.ftranCol(q)
		r, theta := e.chooseLeavingPrimal()
		if r < 0 {
			if phase1 {
				return fmt.Errorf("lp: phase-1 unbounded (internal error)")
			}
			return errUnbounded
		}
		if err := e.doPivot(q, r, theta); err != nil {
			return err
		}
	}
	return ErrIterationLimit
}

// driveOutArtificials pivots zero-level basic artificials out after
// phase 1 (degenerate pivots, attributed to phase 1). It returns false if
// an artificial is stuck basic at a nonzero level (infeasible). Rows
// whose artificial admits no pivot are redundant; their artificial stays
// basic at zero, barred from ever carrying value again.
func (e *revised) driveOutArtificials() (bool, error) {
	for pos := 0; pos < e.m; pos++ {
		if e.basis[pos] < e.sf.nCols {
			continue
		}
		if math.Abs(e.xB[pos]) > feasTol {
			return false, nil
		}
		// ρ = Bᵀ⁻¹ e_pos; any allowed nonbasic column with ρ·A_j ≠ 0 can
		// replace the artificial in a zero-length pivot.
		for i := range e.posScratch {
			e.posScratch[i] = 0
		}
		e.posScratch[pos] = 1
		e.lu.btran(e.posScratch, e.y)
		for j := 0; j < e.sf.nCols; j++ {
			if !e.allowed(j) || e.posOf[j] >= 0 {
				continue
			}
			alpha := 0.0
			rows, vals := e.colFor(j)
			for i, r := range rows {
				alpha += e.y[r] * vals[i]
			}
			if math.Abs(alpha) <= ratioPivTol {
				continue
			}
			e.ftranCol(j)
			if math.Abs(e.d[pos]) <= ratioPivTol {
				continue
			}
			if err := e.doPivot(j, pos, 0); err != nil {
				return false, err
			}
			break
		}
	}
	return true, nil
}

// coldPath is the two-phase solve from the crash basis (slack/surplus
// where feasible at x=0, artificials elsewhere).
func (e *revised) coldPath() (*Solution, error) {
	numArt := 0
	for r := 0; r < e.m; r++ {
		rv := e.sf.nStruct + r
		b := e.sf.b[r]
		switch {
		case e.sf.rel[r] == LE && b >= 0:
			e.basis[r] = rv
			e.xB[r] = b
		case e.sf.rel[r] == GE && b <= 0:
			e.basis[r] = rv
			e.xB[r] = -b
		default:
			e.basis[r] = e.sf.nCols + r
			e.xB[r] = math.Abs(b)
			numArt++
		}
		e.posOf[e.basis[r]] = r
	}
	if err := e.refactor(); err != nil {
		return nil, err
	}
	if numArt > 0 {
		e.phase = 1
		if e.progress != nil {
			e.progress(Progress{Phase: 1, Pivots: e.pivots})
		}
		e.setPhase1Cost()
		if err := e.primal(true); err != nil {
			return nil, err
		}
		infeasSum := 0.0
		for pos := 0; pos < e.m; pos++ {
			if e.basis[pos] >= e.sf.nCols {
				infeasSum += math.Abs(e.xB[pos])
			}
		}
		if infeasSum > feasTol {
			e.phase1Pivots = e.pivots
			mInfeasible.Add(1)
			return &Solution{Status: Infeasible}, nil
		}
		ok, err := e.driveOutArtificials()
		e.phase1Pivots = e.pivots
		if err != nil {
			return nil, err
		}
		if !ok {
			mInfeasible.Add(1)
			return &Solution{Status: Infeasible}, nil
		}
	}
	e.phase = 2
	if e.progress != nil {
		e.progress(Progress{Phase: 2, Pivots: e.pivots})
	}
	e.setPhase2Cost()
	if err := e.primal(false); err != nil {
		if errors.Is(err, errUnbounded) {
			mUnbounded.Add(1)
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	return e.extract(), nil
}

// warmPath attempts to reuse a prior basis. ok=false means the basis was
// structurally acceptable but numerically unusable (or contains
// artificials) — the caller falls back to a cold start.
func (e *revised) warmPath(warm *Basis) (*Solution, bool, error) {
	if len(warm.cols) != e.m {
		return nil, false, fmt.Errorf("%w: basis has %d columns for %d rows", ErrBasisMismatch, len(warm.cols), e.m)
	}
	for _, j := range warm.cols {
		if j < 0 || j >= e.sf.nCols || !e.sf.active[j] || e.posOf[j] >= 0 {
			// Artificial, inactive or duplicated column: not reusable.
			for k := range e.posOf {
				e.posOf[k] = -1
			}
			return nil, false, nil
		}
		e.posOf[j] = 0 // mark for duplicate detection; fixed below
	}
	for i, j := range warm.cols {
		e.basis[i] = j
		e.posOf[j] = i
	}
	if err := e.refactor(); err != nil {
		if errors.Is(err, ErrSingularBasis) {
			return nil, false, nil
		}
		return nil, false, err
	}
	e.setPhase2Cost()
	e.phase = 2
	primalFeasible := true
	for _, v := range e.xB {
		if v < -feasTol {
			primalFeasible = false
			break
		}
	}
	if !primalFeasible {
		// The usual warm case after an RHS change at an optimum: still
		// dual feasible, so restore primal feasibility with the dual
		// simplex instead of rerunning phase 1.
		e.refreshDualD()
		for j := 0; j < e.sf.nCols; j++ {
			if e.allowed(j) && e.posOf[j] < 0 && e.dualD[j] < -feasTol {
				return nil, false, nil // neither primal nor dual feasible
			}
		}
		mWarmStarts.Add(1)
		e.warm = true
		if e.progress != nil {
			e.progress(Progress{Phase: 2, Pivots: e.pivots})
		}
		sol, err := e.dual()
		if sol != nil || err != nil {
			return sol, true, err
		}
	} else {
		mWarmStarts.Add(1)
		e.warm = true
		if e.progress != nil {
			e.progress(Progress{Phase: 2, Pivots: e.pivots})
		}
	}
	for i, v := range e.xB {
		if v < 0 {
			e.xB[i] = 0
		}
	}
	if err := e.primal(false); err != nil {
		if errors.Is(err, errUnbounded) {
			mUnbounded.Add(1)
			return &Solution{Status: Unbounded}, true, nil
		}
		return nil, false, err
	}
	return e.extract(), true, nil
}

// refreshDualD recomputes the full nonbasic reduced-cost vector e.dualD
// from scratch (one BTRAN plus one pass over A). The dual simplex keeps
// it incrementally updated between refactorizations.
func (e *revised) refreshDualD() {
	if e.dualD == nil {
		e.dualD = make([]float64, e.sf.nCols)
	}
	e.btranCost()
	for j := 0; j < e.sf.nCols; j++ {
		if e.allowed(j) && e.posOf[j] < 0 {
			e.dualD[j] = e.redCost(j, e.y)
		} else {
			e.dualD[j] = 0
		}
	}
}

// dual runs dual simplex pivots until primal feasibility. It returns a
// non-nil Solution only for a definitive terminal status (Infeasible).
// e.dualD must be fresh (refreshDualD) on entry; each iteration costs one
// BTRAN (the pivot row), one FTRAN (the entering column) and one pass
// over A, with reduced costs updated in place from the pivot row.
func (e *revised) dual() (*Solution, error) {
	maxIter := 20000 + 50*(e.m+e.sf.nCols)
	alpha := make([]float64, e.sf.nCols)
	degenRun := 0 // consecutive pivots with no dual-objective progress
	for iter := 0; iter < maxIter; iter++ {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		// Leaving row: most negative basic value, or — after a degenerate
		// run long enough to suggest cycling — the infeasible row whose
		// basic variable has the lowest column id (Bland).
		r := -1
		if degenRun >= dualBlandRun {
			for i := 0; i < e.m; i++ {
				if e.xB[i] < -feasTol && (r < 0 || e.basis[i] < e.basis[r]) {
					r = i
				}
			}
		} else {
			worst := -feasTol
			for i := 0; i < e.m; i++ {
				if e.xB[i] < worst {
					worst, r = e.xB[i], i
				}
			}
		}
		if r < 0 {
			return nil, nil // primal feasible — optimal after drift check
		}
		// ρ = Bᵀ⁻¹ e_r gives row r of B⁻¹A; the ratio test runs on the
		// cached reduced costs against that row.
		for i := range e.posScratch {
			e.posScratch[i] = 0
		}
		e.posScratch[r] = 1
		e.lu.btran(e.posScratch, e.y)
		leaveCol := e.basis[r]
		q := -1
		bestRatio := math.Inf(1)
		for j := 0; j < e.sf.nCols; j++ {
			if !e.allowed(j) || e.posOf[j] >= 0 {
				alpha[j] = 0
				continue
			}
			a := 0.0
			rows, vals := e.colFor(j)
			for i, rr := range rows {
				a += e.y[rr] * vals[i]
			}
			alpha[j] = a
			if a >= -ratioPivTol {
				continue
			}
			dj := e.dualD[j]
			if dj < 0 {
				dj = 0 // clamp drift: dual feasibility is an invariant here
			}
			ratio := dj / -a
			if ratio < bestRatio-tol || (ratio < bestRatio+tol && (q < 0 || j < q)) {
				if ratio < bestRatio {
					bestRatio = ratio
				}
				q = j
			}
		}
		if q < 0 {
			// Dual unbounded: the primal is infeasible under the new RHS.
			mInfeasible.Add(1)
			return &Solution{Status: Infeasible}, nil
		}
		if bestRatio > tol {
			degenRun = 0
		} else {
			degenRun++
		}
		e.ftranCol(q)
		if math.Abs(e.d[r]) <= luMinPivot {
			if err := e.refactor(); err != nil {
				return nil, err
			}
			e.refreshDualD()
			continue
		}
		theta := e.xB[r] / e.d[r]
		// Reduced-cost update from the pivot row: d_j ← d_j − (d_q/α_q)·α_j
		// for nonbasic j; the leaving variable re-enters the nonbasic set
		// with cost −d_q/α_q.
		thetaD := e.dualD[q] / alpha[q]
		e.dualPivots++
		if err := e.doPivot(q, r, theta); err != nil {
			return nil, err
		}
		if len(e.lu.etas) == 0 {
			// doPivot refactorized: resync the cache instead of updating it.
			e.refreshDualD()
			continue
		}
		for j := 0; j < e.sf.nCols; j++ {
			if aj := alpha[j]; aj != 0 && e.posOf[j] < 0 {
				e.dualD[j] -= thetaD * aj
			}
		}
		e.dualD[q] = 0
		if e.allowed(leaveCol) {
			e.dualD[leaveCol] = -thetaD
		}
	}
	return nil, ErrIterationLimit
}

func (e *revised) extract() *Solution {
	x := make([]float64, e.sf.nStruct)
	for pos, j := range e.basis {
		if j < e.sf.nStruct {
			x[j] = e.xB[pos]
		}
	}
	obj := 0.0
	for j, c := range e.p.Objective {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}
}
