package sat_test

import (
	"fmt"

	"singlingout/internal/sat"
)

// Example encodes "exactly two of four lamps are on, lamp 1 is off" and
// reads a model.
func Example() {
	s := sat.New()
	lamps := make([]int, 4)
	for i := range lamps {
		lamps[i] = s.NewVar()
	}
	if err := s.ExactlyK(lamps, 2); err != nil {
		panic(err)
	}
	if err := s.AddClause(-lamps[0]); err != nil {
		panic(err)
	}
	fmt.Println(s.Solve())
	on := 0
	for _, v := range lamps {
		if s.Value(v) {
			on++
		}
	}
	fmt.Println("lamps on:", on, "| lamp 1 on:", s.Value(lamps[0]))
	// Output:
	// sat
	// lamps on: 2 | lamp 1 on: false
}
