// Package sat is a self-contained CDCL SAT solver with two-watched-literal
// propagation, 1UIP clause learning, VSIDS-style activity ordering, phase
// saving and Luby restarts, plus a CNF construction layer with cardinality
// encodings. It stands in for the industrial SAT solvers used by the
// census database-reconstruction experiments the paper surveys ([24]).
//
// Variables are created with NewVar and referenced in clauses by
// DIMACS-style signed integers: +v means "variable v is true", -v means
// "variable v is false".
package sat

import (
	"errors"
	"fmt"

	"singlingout/internal/obs"
)

// Result is the outcome of Solve.
type Result int

// Solve outcomes.
const (
	// Sat means a satisfying assignment was found (readable via Value).
	Sat Result = iota
	// Unsat means the formula is unsatisfiable.
	Unsat
	// Unknown means the conflict budget was exhausted first.
	Unknown
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBadLiteral is returned by AddClause for out-of-range or zero literals.
var ErrBadLiteral = errors.New("sat: literal references unknown variable")

const noReason = -1

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars   int
	clauses [][]int32 // first two literals of each clause are watched
	watches [][]int32 // lit -> clause indices watching that lit

	assign   []int8 // var -> -1 unassigned / 0 false / 1 true
	level    []int32
	reason   []int32
	trail    []int32 // assigned literals in order
	trailLim []int32 // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	polarity []bool // phase saving
	// heap is a max-heap of variables ordered by activity (lazy deletion:
	// entries may be stale or duplicated; decide() skips assigned vars).
	heap    []int32
	heapPos []int32 // var -> index in heap, -1 if absent

	seen []bool // scratch for analyze

	rootUnsat bool

	// Conflicts counts total conflicts across Solve calls (statistic).
	Conflicts int64
	// Propagations counts total unit propagations (statistic).
	Propagations int64
	// Decisions counts total branching decisions across Solve calls.
	Decisions int64
	// Restarts counts total Luby restarts across Solve calls.
	Restarts int64
	// MaxConflicts bounds the search effort of a single Solve call; zero
	// means unlimited.
	MaxConflicts int64

	// Progress, when set, is invoked every ProgressEvery conflicts (default
	// 10000) with the solver's cumulative statistics. It must be cheap; it
	// runs inside the search loop.
	Progress func(Stats)
	// ProgressEvery overrides the conflict interval between Progress calls.
	ProgressEvery int64
}

// Stats is a snapshot of the solver's cumulative search statistics, as
// passed to the Progress hook.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
}

// Stats returns the solver's cumulative search statistics.
func (s *Solver) Stats() Stats {
	return Stats{
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Conflicts:    s.Conflicts,
		Restarts:     s.Restarts,
	}
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1}
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, -1)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heapPos = append(s.heapPos, -1)
	s.heapPush(int32(s.nVars - 1))
	return s.nVars
}

// heapLess orders the decision heap by activity (max first).
func (s *Solver) heapLess(a, b int32) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapPush(v int32) {
	if s.heapPos[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.heapPos[v] = int32(len(s.heap) - 1)
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[i]] = int32(i)
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}

func (s *Solver) heapDown(i int) {
	v := s.heap[i]
	n := len(s.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = int32(i)
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}

func (s *Solver) heapPop() (int32, bool) {
	for len(s.heap) > 0 {
		v := s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heapPos[s.heap[0]] = 0
		s.heap = s.heap[:last]
		s.heapPos[v] = -1
		if len(s.heap) > 0 {
			s.heapDown(0)
		}
		if s.assign[v] < 0 {
			return v, true
		}
	}
	return 0, false
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// toLit converts a DIMACS literal to the internal encoding 2v / 2v+1.
func (s *Solver) toLit(dimacs int) (int32, error) {
	v := dimacs
	if v < 0 {
		v = -v
	}
	if v == 0 || v > s.nVars {
		return 0, fmt.Errorf("%w: %d", ErrBadLiteral, dimacs)
	}
	l := int32((v - 1) * 2)
	if dimacs < 0 {
		l++
	}
	return l, nil
}

func litVar(l int32) int32 { return l >> 1 }
func litNeg(l int32) int32 { return l ^ 1 }
func litSign(l int32) int8 { return int8(1 - l&1) } // value that makes the literal true
func fromLit(l int32) int { // back to DIMACS for debugging
	v := int(l>>1) + 1
	if l&1 == 1 {
		return -v
	}
	return v
}

// litValue returns 1 if the literal is true, 0 if false, -1 if unassigned.
func (s *Solver) litValue(l int32) int8 {
	a := s.assign[litVar(l)]
	if a < 0 {
		return -1
	}
	if a == litSign(l) {
		return 1
	}
	return 0
}

// AddClause adds a clause given as DIMACS literals. Tautologies are
// dropped, duplicates removed. Adding an empty (or all-false root) clause
// marks the formula unsatisfiable.
func (s *Solver) AddClause(lits ...int) error {
	if s.rootUnsat {
		return nil
	}
	if len(s.trailLim) != 0 {
		return errors.New("sat: AddClause only allowed at decision level 0")
	}
	// Translate, dedupe, drop tautologies and root-false literals.
	var clause []int32
	seen := map[int32]bool{}
	for _, d := range lits {
		l, err := s.toLit(d)
		if err != nil {
			return err
		}
		if seen[litNeg(l)] {
			return nil // tautology
		}
		if seen[l] {
			continue
		}
		switch s.litValue(l) {
		case 1:
			return nil // already satisfied at root
		case 0:
			continue // falsified at root: drop the literal
		}
		seen[l] = true
		clause = append(clause, l)
	}
	switch len(clause) {
	case 0:
		s.rootUnsat = true
		return nil
	case 1:
		s.enqueue(clause[0], noReason)
		if s.propagate() != noConflict {
			s.rootUnsat = true
		}
		return nil
	}
	s.attachClause(clause)
	return nil
}

func (s *Solver) attachClause(clause []int32) int32 {
	idx := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause)
	s.watches[clause[0]] = append(s.watches[clause[0]], idx)
	s.watches[clause[1]] = append(s.watches[clause[1]], idx)
	return idx
}

func (s *Solver) enqueue(l int32, reason int32) {
	v := litVar(l)
	s.assign[v] = litSign(l)
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

const noConflict = int32(-1)

// propagate performs unit propagation; it returns the index of a
// conflicting clause or noConflict.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		falseLit := litNeg(l)
		ws := s.watches[falseLit]
		kept := ws[:0]
		conflict := noConflict
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			s.Propagations++
			c := s.clauses[ci]
			// Normalize: watched false literal at position 1.
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			// If the other watch is true, clause is satisfied.
			if s.litValue(c[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if s.litValue(c[k]) != 0 {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, ci)
			if s.litValue(c[0]) == 0 {
				// Conflict: keep remaining watchers and bail.
				kept = append(kept, ws[wi+1:]...)
				conflict = ci
				break
			}
			s.enqueue(c[0], ci)
		}
		s.watches[falseLit] = kept
		if conflict != noConflict {
			s.qhead = len(s.trail)
			return conflict
		}
	}
	return noConflict
}

// analyze performs 1UIP conflict analysis; it returns the learned clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict int32) ([]int32, int32) {
	learnt := []int32{0} // placeholder for asserting literal
	counter := 0
	var p int32 = -1
	idx := len(s.trail) - 1
	curLevel := int32(len(s.trailLim))
	reasonClause := s.clauses[conflict]
	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason clause
		}
		for _, q := range reasonClause[start:] {
			v := litVar(q)
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail back to the next marked literal.
		for !s.seen[litVar(s.trail[idx])] {
			idx--
		}
		p = s.trail[idx]
		v := litVar(p)
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = litNeg(p)
			break
		}
		reasonClause = s.clauses[s.reason[v]]
		idx--
	}
	// Clear seen flags and compute backjump level.
	back := int32(0)
	for _, q := range learnt[1:] {
		if lv := s.level[litVar(q)]; lv > back {
			back = lv
		}
		s.seen[litVar(q)] = false
	}
	// Move a literal of the backjump level into watch position 1.
	if len(learnt) > 1 {
		mi := 1
		for k := 2; k < len(learnt); k++ {
			if s.level[litVar(learnt[k])] > s.level[litVar(learnt[mi])] {
				mi = k
			}
		}
		learnt[1], learnt[mi] = learnt[mi], learnt[1]
	}
	return learnt, back
}

func (s *Solver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	// Restore heap order for the bumped variable if it is queued.
	if p := s.heapPos[v]; p >= 0 {
		s.heapUp(int(p))
	}
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int32) {
	if int32(len(s.trailLim)) <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := litVar(s.trail[i])
		s.polarity[v] = s.assign[v] == 1
		s.assign[v] = -1
		s.reason[v] = noReason
		s.heapPush(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// decide picks the unassigned variable with the highest activity from the
// decision heap and assigns its saved phase.
func (s *Solver) decide() bool {
	best, ok := s.heapPop()
	if !ok {
		return false
	}
	s.Decisions++
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
	l := best * 2
	if !s.polarity[best] {
		l++
	}
	s.enqueue(l, noReason)
	return true
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k) {
			continue
		}
		return luby(i - (int64(1) << uint(k-1)) + 1)
	}
}

// Metrics recorded into obs.Default() by Solve: deltas of the solver's
// cumulative statistics are flushed once per Solve call, keeping the
// search loop free of instrumentation.
var (
	mSolves       = obs.Default().Counter("sat.solves")
	mDecisions    = obs.Default().Counter("sat.decisions")
	mPropagations = obs.Default().Counter("sat.propagations")
	mConflicts    = obs.Default().Counter("sat.conflicts")
	mRestarts     = obs.Default().Counter("sat.restarts")
	mSolveNS      = obs.Default().Histogram("sat.solve_ns")
)

// Solve searches for a satisfying assignment, honoring MaxConflicts.
func (s *Solver) Solve() Result {
	mSolves.Add(1)
	sp := mSolveNS.Span()
	defer sp.End()
	before := s.Stats()
	defer func() {
		mDecisions.Add(s.Decisions - before.Decisions)
		mPropagations.Add(s.Propagations - before.Propagations)
		mConflicts.Add(s.Conflicts - before.Conflicts)
		mRestarts.Add(s.Restarts - before.Restarts)
	}()
	if s.rootUnsat {
		return Unsat
	}
	if s.propagate() != noConflict {
		s.rootUnsat = true
		return Unsat
	}
	var restart int64 = 1
	conflictsAtStart := s.Conflicts
	budget := luby(restart) * 100
	conflictsThisRestart := int64(0)
	progressEvery := s.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 10000
	}
	for {
		conflict := s.propagate()
		if conflict != noConflict {
			s.Conflicts++
			conflictsThisRestart++
			if s.Progress != nil && s.Conflicts%progressEvery == 0 {
				s.Progress(s.Stats())
			}
			if len(s.trailLim) == 0 {
				s.rootUnsat = true
				return Unsat
			}
			learnt, back := s.analyze(conflict)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], noReason)
			} else {
				ci := s.attachClause(learnt)
				s.enqueue(learnt[0], ci)
			}
			s.varInc /= 0.95
			if s.MaxConflicts > 0 && s.Conflicts-conflictsAtStart >= s.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if conflictsThisRestart >= budget {
				restart++
				s.Restarts++
				budget = luby(restart) * 100
				conflictsThisRestart = 0
				s.cancelUntil(0)
			}
			continue
		}
		if !s.decide() {
			return Sat
		}
	}
}

// Value returns the assignment of a variable after a Sat result.
func (s *Solver) Value(v int) bool {
	if v < 1 || v > s.nVars {
		panic(fmt.Sprintf("sat: Value(%d) out of range", v))
	}
	return s.assign[v-1] == 1
}

// Model returns the current satisfying assignment as a []bool indexed by
// variable-1.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars)
	for v := 0; v < s.nVars; v++ {
		m[v] = s.assign[v] == 1
	}
	return m
}

// Backtrack undoes every decision, returning the solver to level 0 while
// keeping its learned clauses, activity scores and saved phases. It is
// the incremental-solving hook: after a Sat result (which leaves the
// trail at the final decision level), Backtrack re-opens the solver so
// new constraints can be added with AddClause and a further Solve call
// continues from everything learned so far instead of restarting cold.
func (s *Solver) Backtrack() { s.cancelUntil(0) }

// BlockModel adds a clause excluding the current assignment restricted to
// the given variables, enabling model enumeration. Call after a Sat result
// and before the next Solve. Solve resets to level 0 internally, so the
// clause must be added through a fresh level-0 path: callers should invoke
// BlockModel immediately after Solve returns Sat.
func (s *Solver) BlockModel(vars []int) error {
	lits := make([]int, 0, len(vars))
	for _, v := range vars {
		if v < 1 || v > s.nVars {
			return fmt.Errorf("%w: %d", ErrBadLiteral, v)
		}
		if s.assign[v-1] == 1 {
			lits = append(lits, -v)
		} else {
			lits = append(lits, v)
		}
	}
	s.cancelUntil(0)
	return s.AddClause(lits...)
}

// CountModels enumerates satisfying assignments projected onto vars, up to
// the given limit, by repeated solving with blocking clauses. It mutates
// the solver (adds blocking clauses).
func (s *Solver) CountModels(vars []int, limit int) (int, error) {
	count := 0
	for count < limit {
		switch s.Solve() {
		case Unsat:
			return count, nil
		case Unknown:
			return count, errors.New("sat: conflict budget exhausted during enumeration")
		}
		count++
		if err := s.BlockModel(vars); err != nil {
			return count, err
		}
	}
	return count, nil
}

// NumClauses returns the number of attached (non-unit) clauses, including
// learned clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }
