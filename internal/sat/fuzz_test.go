package sat

import "testing"

// FuzzSolver feeds random clause streams to the solver and cross-checks
// satisfiable verdicts by evaluating the returned model.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{1, 2, 0, 255, 3, 0})
	f.Add([]byte{1, 0, 255, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nVars = 6
		s := New()
		s.MaxConflicts = 10000
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]int
		var cur []int
		for _, b := range data {
			if b == 0 {
				if len(cur) > 0 {
					lits := append([]int(nil), cur...)
					if err := s.AddClause(lits...); err != nil {
						t.Fatalf("AddClause(%v): %v", lits, err)
					}
					clauses = append(clauses, lits)
					cur = cur[:0]
				}
				continue
			}
			v := int(b%nVars) + 1
			if b >= 128 {
				v = -v
			}
			cur = append(cur, v)
		}
		if got := s.Solve(); got == Sat {
			// The model must satisfy every recorded clause.
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(v) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("model violates clause %v", cl)
				}
			}
		}
	})
}
