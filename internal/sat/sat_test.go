package sat

import (
	"math/rand"
	"testing"
)

func newVars(s *Solver, n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestTrivialSat(t *testing.T) {
	s := New()
	v := newVars(s, 2)
	mustAdd(t, s, v[0])
	mustAdd(t, s, -v[0], v[1])
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.Value(v[0]) || !s.Value(v[1]) {
		t.Errorf("model = %v %v, want true true", s.Value(v[0]), s.Value(v[1]))
	}
}

func mustAdd(t *testing.T, s *Solver, lits ...int) {
	t.Helper()
	if err := s.AddClause(lits...); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	v := newVars(s, 1)
	mustAdd(t, s, v[0])
	mustAdd(t, s, -v[0])
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	newVars(s, 1)
	mustAdd(t, s)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	newVars(s, 3)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	v := newVars(s, 2)
	mustAdd(t, s, v[0], -v[0]) // tautology, no effect
	mustAdd(t, s, -v[1])
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Value(v[1]) {
		t.Error("v1 should be false")
	}
}

func TestBadLiteral(t *testing.T) {
	s := New()
	newVars(s, 1)
	if err := s.AddClause(0); err == nil {
		t.Error("literal 0 should fail")
	}
	if err := s.AddClause(5); err == nil {
		t.Error("unknown variable should fail")
	}
}

func TestValuePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Value(1)
}

// TestPigeonhole verifies UNSAT on the classic PHP(n+1, n) instances,
// which require genuine conflict-driven search.
func TestPigeonhole(t *testing.T) {
	for _, holes := range []int{3, 4, 5} {
		pigeons := holes + 1
		s := New()
		// p[i][j]: pigeon i in hole j.
		p := make([][]int, pigeons)
		for i := range p {
			p[i] = newVars(s, holes)
			mustAdd(t, s, p[i]...)
		}
		for j := 0; j < holes; j++ {
			for a := 0; a < pigeons; a++ {
				for b := a + 1; b < pigeons; b++ {
					mustAdd(t, s, -p[a][j], -p[b][j])
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want unsat", pigeons, holes, got)
		}
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the CDCL answer against
// exhaustive enumeration on small random instances.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(7)
		m := int(4.3 * float64(n))
		clauses := make([][]int, m)
		for k := range clauses {
			cl := make([]int, 3)
			for i := range cl {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[i] = v
			}
			clauses[k] = cl
		}
		// Brute force.
		bruteSat := false
		for mask := 0; mask < 1<<uint(n) && !bruteSat; mask++ {
			ok := true
			for _, cl := range clauses {
				cok := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					val := mask&(1<<uint(v-1)) != 0
					if (l > 0) == val {
						cok = true
						break
					}
				}
				if !cok {
					ok = false
					break
				}
			}
			if ok {
				bruteSat = true
			}
		}
		s := New()
		newVars(s, n)
		for _, cl := range clauses {
			mustAdd(t, s, cl...)
		}
		got := s.Solve()
		want := Unsat
		if bruteSat {
			want = Sat
		}
		if got != want {
			t.Fatalf("trial %d (n=%d m=%d): got %v want %v", trial, n, m, got, want)
		}
		if got == Sat {
			// Verify the model actually satisfies every clause.
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(v) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: returned model violates clause %v", trial, cl)
				}
			}
		}
	}
}

func TestExactlyOne(t *testing.T) {
	s := New()
	v := newVars(s, 5)
	if err := s.ExactlyOne(v); err != nil {
		t.Fatal(err)
	}
	count, err := s.CountModels(v, 100)
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("ExactlyOne over 5 vars has %d models, want 5", count)
	}
}

func TestExactlyOneEmpty(t *testing.T) {
	if err := New().ExactlyOne(nil); err == nil {
		t.Error("ExactlyOne over empty set should fail")
	}
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestCardinalityModelCounts(t *testing.T) {
	n := 6
	cases := []struct {
		name string
		add  func(s *Solver, v []int) error
		want int
	}{
		{"AtMost2", func(s *Solver, v []int) error { return s.AtMostK(v, 2) },
			binom(6, 0) + binom(6, 1) + binom(6, 2)},
		{"AtLeast4", func(s *Solver, v []int) error { return s.AtLeastK(v, 4) },
			binom(6, 4) + binom(6, 5) + binom(6, 6)},
		{"Exactly3", func(s *Solver, v []int) error { return s.ExactlyK(v, 3) }, binom(6, 3)},
		{"Exactly0", func(s *Solver, v []int) error { return s.ExactlyK(v, 0) }, 1},
		{"Exactly6", func(s *Solver, v []int) error { return s.ExactlyK(v, 6) }, 1},
		{"AtMost6Vacuous", func(s *Solver, v []int) error { return s.AtMostK(v, 6) }, 64},
		{"AtLeast0Vacuous", func(s *Solver, v []int) error { return s.AtLeastK(v, 0) }, 64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New()
			v := newVars(s, n)
			if err := c.add(s, v); err != nil {
				t.Fatal(err)
			}
			count, err := s.CountModels(v, 200)
			if err != nil {
				t.Fatal(err)
			}
			if count != c.want {
				t.Errorf("models = %d, want %d", count, c.want)
			}
		})
	}
}

func TestAtLeastKImpossible(t *testing.T) {
	s := New()
	v := newVars(s, 3)
	if err := s.AtLeastK(v, 4); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unsat {
		t.Errorf("AtLeastK(3 vars, 4) = %v, want unsat", got)
	}
}

func TestAtMostKRejectsNegativeK(t *testing.T) {
	s := New()
	v := newVars(s, 3)
	if err := s.AtMostK(v, -1); err == nil {
		t.Error("negative k should fail")
	}
}

func TestAtMostOnePairwiseAgreesWithSequential(t *testing.T) {
	count := func(enc func(s *Solver, v []int) error) int {
		s := New()
		v := newVars(s, 5)
		if err := enc(s, v); err != nil {
			t.Fatal(err)
		}
		c, err := s.CountModels(v, 100)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := count(func(s *Solver, v []int) error { return s.AtMostOnePairwise(v) })
	b := count(func(s *Solver, v []int) error { return s.AtMostK(v, 1) })
	if a != b || a != 6 {
		t.Errorf("pairwise=%d sequential=%d, want 6", a, b)
	}
}

func TestCountModelsCap(t *testing.T) {
	s := New()
	v := newVars(s, 4) // 16 models
	count, err := s.CountModels(v, 5)
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("capped count = %d, want 5", count)
	}
}

func TestMaxConflictsReturnsUnknown(t *testing.T) {
	// A hard pigeonhole instance with a tiny conflict budget.
	holes := 8
	pigeons := holes + 1
	s := New()
	s.MaxConflicts = 5
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = newVars(s, holes)
		mustAdd(t, s, p[i]...)
	}
	for j := 0; j < holes; j++ {
		for a := 0; a < pigeons; a++ {
			for b := a + 1; b < pigeons; b++ {
				mustAdd(t, s, -p[a][j], -p[b][j])
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve = %v, want unknown under tiny budget", got)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestResultString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("Result strings wrong")
	}
}

func TestStatisticsAdvance(t *testing.T) {
	s := New()
	v := newVars(s, 8)
	// Force some conflicts: XOR-ish chains.
	for i := 0; i+1 < len(v); i++ {
		mustAdd(t, s, v[i], v[i+1])
		mustAdd(t, s, -v[i], -v[i+1])
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Propagations == 0 {
		t.Error("expected some propagations")
	}
}

// TestSolverStats checks the search statistics move and the Progress hook
// fires on a formula hard enough to force conflicts and decisions.
func TestSolverStats(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(3))
	vs := newVars(s, 40)
	// Random 3-SAT near the satisfiability threshold generates plenty of
	// conflicts without being hard.
	for i := 0; i < 160; i++ {
		var lits []int
		for j := 0; j < 3; j++ {
			l := vs[rng.Intn(len(vs))]
			if rng.Intn(2) == 0 {
				l = -l
			}
			lits = append(lits, l)
		}
		if err := s.AddClause(lits...); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	s.ProgressEvery = 1
	s.Progress = func(st Stats) {
		calls++
		if st.Conflicts <= 0 {
			t.Errorf("progress with zero conflicts: %+v", st)
		}
	}
	res := s.Solve()
	if res == Unknown {
		t.Fatal("unexpected Unknown")
	}
	st := s.Stats()
	if st.Decisions <= 0 {
		t.Errorf("Decisions = %d, want positive", st.Decisions)
	}
	if st.Propagations <= 0 {
		t.Errorf("Propagations = %d, want positive", st.Propagations)
	}
	if st.Conflicts > 0 && calls == 0 {
		t.Errorf("Progress hook never fired despite %d conflicts", st.Conflicts)
	}
}

// TestBacktrackIncrementalSolve drives the incremental-solving contract
// behind census streaming: after a Sat result, Backtrack reopens the
// solver so more constraints can be added, and the next Solve continues
// from the learned state (clauses, statistics) instead of restarting.
func TestBacktrackIncrementalSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	n := 30
	vs := newVars(s, n)
	// A satisfiable planted instance: random 3-clauses each containing at
	// least one literal true under the planted assignment.
	planted := make([]bool, n)
	for i := range planted {
		planted[i] = rng.Intn(2) == 1
	}
	addPlanted := func(k int) {
		for c := 0; c < k; c++ {
			a, b, d := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			lit := func(v int) int {
				if rng.Intn(2) == 1 != planted[v] {
					return -vs[v]
				}
				return vs[v]
			}
			sat := a
			l := vs[sat]
			if !planted[sat] {
				l = -l
			}
			mustAdd(t, s, l, lit(b), lit(d))
		}
	}
	addPlanted(60)
	if got := s.Solve(); got != Sat {
		t.Fatalf("initial Solve = %v", got)
	}
	clauses, stats := s.NumClauses(), s.Stats()

	// Backtrack, add more constraints, solve again: still Sat (the planted
	// assignment satisfies everything), learned clauses and statistics
	// carried over.
	s.Backtrack()
	addPlanted(60)
	if got := s.Solve(); got != Sat {
		t.Fatalf("incremental Solve = %v", got)
	}
	if s.NumClauses() < clauses+60 {
		t.Errorf("clauses = %d after adding 60 to %d: learned state was not retained", s.NumClauses(), clauses)
	}
	if st := s.Stats(); st.Decisions < stats.Decisions || st.Propagations < stats.Propagations {
		t.Errorf("statistics went backwards: %+v then %+v", stats, st)
	}
	for i, v := range vs {
		if s.Value(v) != planted[i] {
			// Not an error per se (other models may exist), but with the
			// planted polarity in every clause the planted model should be
			// reachable; just require a genuine model.
			break
		}
	}
	// The model must satisfy a spot-check clause set: re-verify by adding
	// the blocking clause of the current model and confirming the solver
	// can still make progress (Sat or Unsat, not a crash or Unknown).
	if err := s.BlockModel(vs); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got == Unknown {
		t.Fatalf("post-block Solve = %v", got)
	}
}
