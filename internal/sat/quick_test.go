package sat

import (
	"testing"
	"testing/quick"
)

// TestCardinalityAgainstBruteForceQuick property-tests the sequential
// counter: for random (n, k, forced assignments), the encoding must admit
// exactly the assignments whose popcount satisfies the bound.
func TestCardinalityAgainstBruteForceQuick(t *testing.T) {
	check := func(mode uint8, nRaw, kRaw, forceMask, forceVal uint8) bool {
		n := int(nRaw%7) + 1
		k := int(kRaw) % (n + 2)
		s := New()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var err error
		switch mode % 3 {
		case 0:
			err = s.AtMostK(vars, k)
		case 1:
			err = s.AtLeastK(vars, k)
		default:
			err = s.ExactlyK(vars, k)
		}
		if err != nil {
			return false
		}
		// Force some variables to fixed values.
		for i := 0; i < n; i++ {
			if forceMask&(1<<uint(i)) == 0 {
				continue
			}
			lit := vars[i]
			if forceVal&(1<<uint(i)) == 0 {
				lit = -lit
			}
			if err := s.AddClause(lit); err != nil {
				return false
			}
		}
		got := s.Solve() == Sat
		// Brute force over all assignments consistent with the forcing.
		want := false
		for mask := 0; mask < 1<<uint(n); mask++ {
			okForce := true
			pop := 0
			for i := 0; i < n; i++ {
				bit := mask&(1<<uint(i)) != 0
				if bit {
					pop++
				}
				if forceMask&(1<<uint(i)) != 0 && bit != (forceVal&(1<<uint(i)) != 0) {
					okForce = false
					break
				}
			}
			if !okForce {
				continue
			}
			var sat bool
			switch mode % 3 {
			case 0:
				sat = pop <= k
			case 1:
				sat = pop >= k
			default:
				sat = pop == k
			}
			if sat {
				want = true
				break
			}
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
