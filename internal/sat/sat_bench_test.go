package sat

import (
	"math/rand"
	"testing"
)

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		holes := 7
		pigeons := holes + 1
		s := New()
		p := make([][]int, pigeons)
		for pi := range p {
			p[pi] = make([]int, holes)
			for j := range p[pi] {
				p[pi][j] = s.NewVar()
			}
			if err := s.AddClause(p[pi]...); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < holes; j++ {
			for x := 0; x < pigeons; x++ {
				for y := x + 1; y < pigeons; y++ {
					if err := s.AddClause(-p[x][j], -p[y][j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			b.Fatalf("got %v", got)
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		n := 120
		m := int(4.1 * float64(n))
		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for k := 0; k < m; k++ {
			cl := make([]int, 3)
			for j := range cl {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			if err := s.AddClause(cl...); err != nil {
				b.Fatal(err)
			}
		}
		s.Solve()
	}
}

func BenchmarkExactlyKEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		vars := make([]int, 500)
		for j := range vars {
			vars[j] = s.NewVar()
		}
		if err := s.ExactlyK(vars, 7); err != nil {
			b.Fatal(err)
		}
		if got := s.Solve(); got != Sat {
			b.Fatalf("got %v", got)
		}
	}
}
