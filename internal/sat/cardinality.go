package sat

import "fmt"

// This file provides CNF encodings of cardinality constraints over
// variables, the building blocks the census reconstruction uses to encode
// published table cells ("exactly 3 residents of this block are females
// aged 22-24"). The workhorse is a two-sided sequential counter (Sinz
// 2005) of register width k, so a constraint over n variables with bound k
// costs O(n·k) auxiliary variables and clauses.

// ExactlyOne adds clauses forcing exactly one of the given variables true
// (pairwise encoding; intended for small groups such as one-hot attribute
// encodings).
func (s *Solver) ExactlyOne(vars []int) error {
	if len(vars) == 0 {
		return fmt.Errorf("sat: ExactlyOne over empty set")
	}
	lits := make([]int, len(vars))
	copy(lits, vars)
	if err := s.AddClause(lits...); err != nil {
		return err
	}
	return s.AtMostOnePairwise(vars)
}

// counter builds sequential-counter registers over lits with width k >= 1:
// r[i][j] ⇔ at least j+1 of lits[0..i] are true (both implication
// directions, so the registers are exact and usable for lower bounds).
func (s *Solver) counter(lits []int, k int) ([][]int, error) {
	n := len(lits)
	r := make([][]int, n)
	for i := range r {
		r[i] = make([]int, k)
		for j := range r[i] {
			r[i][j] = s.NewVar()
		}
	}
	// Base case i = 0.
	if err := s.AddClause(-lits[0], r[0][0]); err != nil {
		return nil, err
	}
	if err := s.AddClause(lits[0], -r[0][0]); err != nil {
		return nil, err
	}
	for j := 1; j < k; j++ {
		if err := s.AddClause(-r[0][j]); err != nil {
			return nil, err
		}
	}
	for i := 1; i < n; i++ {
		for j := 0; j < k; j++ {
			// Upward implications (r true when enough lits are true).
			if err := s.AddClause(-r[i-1][j], r[i][j]); err != nil {
				return nil, err
			}
			if j == 0 {
				if err := s.AddClause(-lits[i], r[i][0]); err != nil {
					return nil, err
				}
			} else {
				if err := s.AddClause(-lits[i], -r[i-1][j-1], r[i][j]); err != nil {
					return nil, err
				}
			}
			// Downward implications (r true only with support).
			if j == 0 {
				if err := s.AddClause(-r[i][0], lits[i], r[i-1][0]); err != nil {
					return nil, err
				}
			} else {
				if err := s.AddClause(-r[i][j], r[i-1][j], lits[i]); err != nil {
					return nil, err
				}
				if err := s.AddClause(-r[i][j], r[i-1][j], r[i-1][j-1]); err != nil {
					return nil, err
				}
			}
		}
	}
	return r, nil
}

// AtMostK adds Σ vars ≤ k.
func (s *Solver) AtMostK(vars []int, k int) error {
	n := len(vars)
	if k < 0 {
		return fmt.Errorf("sat: AtMostK with k = %d", k)
	}
	if k >= n {
		return nil // vacuous
	}
	if k == 0 {
		for _, v := range vars {
			if err := s.AddClause(-v); err != nil {
				return err
			}
		}
		return nil
	}
	r, err := s.counter(vars, k)
	if err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		// vars[i] ∧ (≥k among previous) → overflow.
		if err := s.AddClause(-vars[i], -r[i-1][k-1]); err != nil {
			return err
		}
	}
	return nil
}

// AtLeastK adds Σ vars ≥ k.
func (s *Solver) AtLeastK(vars []int, k int) error {
	n := len(vars)
	if k <= 0 {
		return nil
	}
	if k > n {
		return s.AddClause() // impossible: empty clause
	}
	if k == n {
		for _, v := range vars {
			if err := s.AddClause(v); err != nil {
				return err
			}
		}
		return nil
	}
	r, err := s.counter(vars, k)
	if err != nil {
		return err
	}
	return s.AddClause(r[n-1][k-1])
}

// ExactlyK adds Σ vars = k using a single shared counter.
func (s *Solver) ExactlyK(vars []int, k int) error {
	n := len(vars)
	if k < 0 || k > n {
		return s.AddClause() // impossible
	}
	if k == 0 {
		return s.AtMostK(vars, 0)
	}
	if k == n {
		return s.AtLeastK(vars, n)
	}
	r, err := s.counter(vars, k)
	if err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		if err := s.AddClause(-vars[i], -r[i-1][k-1]); err != nil {
			return err
		}
	}
	return s.AddClause(r[n-1][k-1])
}

// AtMostOnePairwise adds the naive pairwise at-most-one constraint, used
// for small groups and as the ablation baseline against the sequential
// counter.
func (s *Solver) AtMostOnePairwise(vars []int) error {
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if err := s.AddClause(-vars[i], -vars[j]); err != nil {
				return err
			}
		}
	}
	return nil
}
